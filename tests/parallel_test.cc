// Tests of the deterministic parallel execution layer (common/parallel):
// thread-pool mechanics first, then the determinism contract — every
// parallel hot path must produce bit-identical results at threads=1 and
// threads=8.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "ml/crossval.h"
#include "ml/dataset.h"
#include "ml/feature_selection.h"
#include "ml/permutation_importance.h"
#include "ml/random_forest.h"
#include "ml/splits.h"

namespace trajkit {
namespace {

/// Forces a thread budget for the enclosing scope and restores the default
/// on exit, so tests do not leak their setting into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { SetMaxThreads(n); }
  ~ScopedThreads() { SetMaxThreads(0); }
};

TEST(ParallelForTest, EmptyRangeIsOkAndNeverInvokesFn) {
  ScopedThreads threads(4);
  std::atomic<int> calls{0};
  EXPECT_TRUE(ParallelFor(5, 5, 1, [&](size_t) { ++calls; }).ok());
  EXPECT_TRUE(ParallelFor(7, 3, 1, [&](size_t) { ++calls; }).ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeCoversEveryIndexOnce) {
  ScopedThreads threads(4);
  std::vector<int> hits(13, 0);
  ASSERT_TRUE(
      ParallelFor(0, hits.size(), 1000, [&](size_t i) { hits[i]++; }).ok());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnceAcrossGrains) {
  ScopedThreads threads(8);
  for (size_t grain : {size_t{1}, size_t{3}, size_t{16}, size_t{0}}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ASSERT_TRUE(
        ParallelFor(0, hits.size(), grain, [&](size_t i) { hits[i]++; })
            .ok());
    for (auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain=" << grain;
  }
}

TEST(ParallelForTest, NonZeroBeginOffsetsIndices) {
  ScopedThreads threads(4);
  std::vector<int> hits(10, 0);
  ASSERT_TRUE(ParallelFor(4, 10, 2, [&](size_t i) { hits[i]++; }).ok());
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i >= 4 ? 1 : 0);
}

TEST(ParallelForTest, ExceptionPropagatesAsInternalStatus) {
  ScopedThreads threads(4);
  const Status status = ParallelFor(0, 64, 1, [&](size_t i) {
    if (i == 17) throw std::runtime_error("boom at 17");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom at 17"), std::string::npos);
  // Serial path has the same contract.
  ScopedThreads one(1);
  const Status serial = ParallelFor(0, 4, 1, [&](size_t) {
    throw std::runtime_error("serial boom");
  });
  EXPECT_EQ(serial.code(), StatusCode::kInternal);
}

TEST(ParallelForTest, ConcurrentCallersFromMultipleThreads) {
  ScopedThreads threads(4);
  constexpr int kCallers = 6;
  constexpr size_t kPerCaller = 512;
  std::vector<std::vector<int>> hits(kCallers,
                                     std::vector<int>(kPerCaller, 0));
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      const Status status = ParallelFor(
          0, kPerCaller, 8, [&, c](size_t i) { hits[c][i]++; });
      if (!status.ok()) ++failures;
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (const auto& per_caller : hits) {
    for (int h : per_caller) ASSERT_EQ(h, 1);
  }
}

TEST(ParallelForTest, NestedInvocationDoesNotDeadlock) {
  ScopedThreads threads(4);
  std::vector<std::vector<int>> hits(16, std::vector<int>(32, 0));
  ASSERT_TRUE(ParallelFor(0, hits.size(), 1, [&](size_t outer) {
                const Status inner = ParallelFor(
                    0, hits[outer].size(), 4,
                    [&](size_t i) { hits[outer][i]++; });
                ASSERT_TRUE(inner.ok());
              }).ok());
  for (const auto& row : hits) {
    for (int h : row) ASSERT_EQ(h, 1);
  }
}

TEST(ParallelMapTest, PreservesIndexOrderForMoveOnlyResults) {
  ScopedThreads threads(8);
  // Built via append (not operator+) to sidestep a GCC 12 -Wrestrict
  // false positive (PR 105651) under -Werror.
  const auto name_for = [](size_t i) {
    std::string out("v");
    out += std::to_string(i * i);
    return out;
  };
  const auto mapped = ParallelMap<std::string>(100, 3, name_for);
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped->size(), 100u);
  for (size_t i = 0; i < mapped->size(); ++i) {
    EXPECT_EQ((*mapped)[i], name_for(i));
  }
}

TEST(ParallelMapTest, ExceptionSurfacesAsStatus) {
  ScopedThreads threads(4);
  const auto mapped = ParallelMap<int>(16, 1, [](size_t i) -> int {
    if (i == 3) throw std::runtime_error("map boom");
    return static_cast<int>(i);
  });
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInternal);
}

TEST(MaxThreadsTest, SetMaxThreadsRoundTripsAndZeroRestoresDefault) {
  SetMaxThreads(3);
  EXPECT_EQ(MaxThreads(), 3);
  SetMaxThreads(8);
  EXPECT_EQ(MaxThreads(), 8);
  SetMaxThreads(0);
  EXPECT_GE(MaxThreads(), 1);
}

// ---------------------------------------------------------------------------
// Determinism suite: threads=1 and threads=8 must agree bit-for-bit.
// ---------------------------------------------------------------------------

ml::Dataset MakeGroupedBlobs(int num_classes, int per_class, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<int> groups;
  for (int c = 0; c < num_classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      std::vector<double> row(6);
      for (double& v : row) v = rng.Gaussian(0.0, 1.0);
      row[0] += 1.8 * c;
      row[1] -= 0.9 * c;
      rows.push_back(std::move(row));
      labels.push_back(c);
      groups.push_back(i % 5);  // 5 synthetic "users".
    }
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < num_classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(ml::Dataset::Create(ml::Matrix::FromRows(rows),
                                       std::move(labels), std::move(groups),
                                       {}, std::move(class_names)))
      .value();
}

/// Runs `fn` under threads=1 and threads=8 and returns both outputs.
template <typename Fn>
auto UnderBothThreadCounts(Fn&& fn) {
  SetMaxThreads(1);
  auto serial = fn();
  SetMaxThreads(8);
  auto parallel = fn();
  SetMaxThreads(0);
  return std::make_pair(std::move(serial), std::move(parallel));
}

TEST(ParallelDeterminismTest, RandomForestFitPredictImportances) {
  const ml::Dataset data = MakeGroupedBlobs(4, 40, 11);
  auto run = [&] {
    ml::RandomForestParams params;
    params.n_estimators = 12;
    params.seed = 99;
    ml::RandomForest forest(params);
    EXPECT_TRUE(forest.Fit(data).ok());
    return std::make_tuple(forest.Serialize(), forest.FeatureImportances(),
                           forest.Predict(data.features()));
  };
  const auto [serial, parallel] = UnderBothThreadCounts(run);
  // Serialized models are textual: bit-identical forests compare equal.
  EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel));
  EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel));
  EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel));
}

TEST(ParallelDeterminismTest, PredictProbaMatchesExactly) {
  const ml::Dataset data = MakeGroupedBlobs(3, 30, 5);
  ml::RandomForestParams params;
  params.n_estimators = 10;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(data).ok());
  auto run = [&] { return std::move(forest.PredictProba(data.features())).value(); };
  const auto [serial, parallel] = UnderBothThreadCounts(run);
  ASSERT_EQ(serial.rows(), parallel.rows());
  for (size_t r = 0; r < serial.rows(); ++r) {
    for (size_t c = 0; c < serial.cols(); ++c) {
      ASSERT_EQ(serial(r, c), parallel(r, c));
    }
  }
}

TEST(ParallelDeterminismTest, CrossValidateFoldAccuracies) {
  const ml::Dataset data = MakeGroupedBlobs(3, 50, 21);
  auto run = [&] {
    ml::RandomForestParams params;
    params.n_estimators = 8;
    params.seed = 7;
    const ml::RandomForest forest(params);
    Rng fold_rng(13);
    const auto folds = ml::KFold(data.num_samples(), 4, fold_rng);
    return std::move(ml::CrossValidate(forest, data, folds)).value();
  };
  const auto [serial, parallel] = UnderBothThreadCounts(run);
  EXPECT_EQ(serial.fold_accuracy, parallel.fold_accuracy);
  EXPECT_EQ(serial.fold_macro_f1, parallel.fold_macro_f1);
  EXPECT_EQ(serial.fold_weighted_f1, parallel.fold_weighted_f1);
  EXPECT_EQ(serial.pooled_true, parallel.pooled_true);
  EXPECT_EQ(serial.pooled_pred, parallel.pooled_pred);
}

TEST(ParallelDeterminismTest, ForwardWrapperSelectionSteps) {
  const ml::Dataset data = MakeGroupedBlobs(3, 30, 31);
  auto run = [&] {
    // CV-accuracy evaluator in the same shape as the Fig. 3 harness:
    // everything captured by value or freshly constructed per call.
    const ml::SubsetEvaluator evaluator = [](const ml::Dataset& subset) {
      ml::RandomForestParams params;
      params.n_estimators = 5;
      params.seed = 3;
      const ml::RandomForest forest(params);
      Rng fold_rng(41);
      const auto folds = ml::KFold(subset.num_samples(), 3, fold_rng);
      const auto cv = ml::CrossValidate(forest, subset, folds);
      return cv.ok() ? cv->MeanAccuracy() : 0.0;
    };
    return std::move(ml::ForwardWrapperSelection(data, evaluator, 4)).value();
  };
  const auto [serial, parallel] = UnderBothThreadCounts(run);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].feature_index, parallel[i].feature_index);
    EXPECT_EQ(serial[i].score, parallel[i].score);
  }
}

TEST(ParallelDeterminismTest, PermutationImportanceScores) {
  const ml::Dataset data = MakeGroupedBlobs(3, 40, 17);
  ml::RandomForestParams params;
  params.n_estimators = 8;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(data).ok());
  auto run = [&] {
    ml::PermutationImportanceOptions options;
    options.repeats = 3;
    options.seed = 77;
    return std::move(ml::PermutationImportance(forest, data, options))
        .value();
  };
  const auto [serial, parallel] = UnderBothThreadCounts(run);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].feature_index, parallel[i].feature_index);
    EXPECT_EQ(serial[i].score, parallel[i].score);
  }
}

}  // namespace
}  // namespace trajkit
