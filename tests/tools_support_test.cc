// Tests for the CLI support surface: the Flags parser and the GeoLife
// export path the `generate` command uses.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/flags.h"
#include "common/strings.h"
#include "geolife/geolife_reader.h"
#include "synthgeo/generator.h"
#include "traj/types.h"

namespace trajkit {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;  // Keeps c_str()s alive.
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("prog"));
  for (std::string& arg : storage) {
    argv.push_back(arg.data());
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValueAndBare) {
  const Flags flags =
      MakeFlags({"--users=12", "--verbose", "--rate=0.5", "--name=x y"});
  EXPECT_EQ(flags.GetInt("users", 0), 12);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "x y");
  EXPECT_TRUE(flags.Has("users"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, FallbacksWhenAbsentOrMalformed) {
  const Flags flags = MakeFlags({"--n=notanumber"});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_EQ(flags.GetInt("absent", -1), -1);
  EXPECT_DOUBLE_EQ(flags.GetDouble("absent", 2.5), 2.5);
  EXPECT_EQ(flags.GetString("absent", "d"), "d");
}

TEST(FlagsTest, GetUint64AcceptsFullWidthSeeds) {
  // 2^63 + 42: far beyond what GetInt's narrowing through int can carry.
  const Flags flags = MakeFlags({"--seed=9223372036854775850"});
  EXPECT_EQ(flags.GetUint64("seed", 0), 9223372036854775850ULL);
  EXPECT_EQ(flags.GetUint64("absent", 17), 17u);
}

TEST(FlagsTest, GetUint64FallsBackOnMalformedOrNegative) {
  const Flags flags = MakeFlags({"--a=notanumber", "--b=-5"});
  EXPECT_EQ(flags.GetUint64("a", 3), 3u);
  EXPECT_EQ(flags.GetUint64("b", 3), 3u);
}

TEST(StringsTest, ParseUint64RoundTrips) {
  EXPECT_EQ(ParseUint64("18446744073709551615").value(),
            18446744073709551615ULL);
  EXPECT_EQ(ParseUint64("0").value(), 0u);
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("99999999999999999999999").ok());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  const Flags flags = MakeFlags({"generate", "--out=x", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "generate");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagsTest, BoolFalseSpellings) {
  const Flags flags = MakeFlags({"--a=0", "--b=false", "--c=true"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
}

// ------------------------------------------------------ GeoLife export --

TEST(GeoLifeExportTest, FormatDateTimeInvertsParse) {
  const double t = 1224730384.0;  // 2008-10-23 02:53:04 UTC.
  const std::string formatted = geolife::FormatGeoLifeDateTime(t);
  EXPECT_EQ(formatted, "2008/10/23 02:53:04");
  const auto parts = SplitString(formatted, ' ');
  const auto parsed = geolife::ParseGeoLifeDateTime(parts[0], parts[1]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value(), t);
}

TEST(GeoLifeExportTest, ExportedCorpusReloadsWithLabels) {
  const std::string root =
      (std::filesystem::path(testing::TempDir()) / "trajkit_export_test")
          .string();
  std::filesystem::remove_all(root);

  synthgeo::GeneratorOptions options;
  options.num_users = 3;
  options.days_per_user = 2;
  options.seed = 41;
  synthgeo::GeoLifeLikeGenerator generator(options);
  const std::vector<traj::Trajectory> corpus = generator.Generate();
  ASSERT_TRUE(geolife::ExportGeoLifeCorpus(corpus, root).ok());

  const auto reloaded = geolife::LoadGeoLifeCorpus(root);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), corpus.size());
  for (size_t u = 0; u < corpus.size(); ++u) {
    const auto& original = corpus[u];
    const auto& restored = (*reloaded)[u];
    EXPECT_EQ(restored.user_id, original.user_id);
    ASSERT_EQ(restored.points.size(), original.points.size());
    // Positions survive to PLT precision (1e-6 deg ≈ 0.1 m); timestamps to
    // the second; labels to the written intervals.
    size_t label_matches = 0;
    for (size_t i = 0; i < original.points.size(); ++i) {
      EXPECT_NEAR(restored.points[i].pos.lat_deg,
                  original.points[i].pos.lat_deg, 2e-6);
      EXPECT_NEAR(restored.points[i].timestamp,
                  original.points[i].timestamp, 1.0);
      if (restored.points[i].mode == original.points[i].mode) {
        ++label_matches;
      }
    }
    // Interval rounding can flip a few boundary points, nothing more.
    EXPECT_GT(static_cast<double>(label_matches) /
                  static_cast<double>(original.points.size()),
              0.99);
  }
  std::filesystem::remove_all(root);
}

TEST(GeoLifeExportTest, ExportCreatesExpectedLayout) {
  const std::string root =
      (std::filesystem::path(testing::TempDir()) / "trajkit_layout_test")
          .string();
  std::filesystem::remove_all(root);
  synthgeo::GeneratorOptions options;
  options.num_users = 1;
  options.days_per_user = 2;
  options.seed = 43;
  synthgeo::GeoLifeLikeGenerator generator(options);
  ASSERT_TRUE(
      geolife::ExportGeoLifeCorpus(generator.Generate(), root).ok());
  EXPECT_TRUE(std::filesystem::is_directory(
      std::filesystem::path(root) / "000" / "Trajectory"));
  EXPECT_TRUE(std::filesystem::is_regular_file(
      std::filesystem::path(root) / "000" / "labels.txt"));
  size_t plt_count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(root) / "000" / "Trajectory")) {
    if (entry.path().extension() == ".plt") ++plt_count;
  }
  EXPECT_EQ(plt_count, 2u);  // One per day.
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace trajkit
