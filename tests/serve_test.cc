// Tests for the online serving subsystem (src/serve): streaming feature
// parity, incremental segmentation parity, the micro-batching predictor,
// the model registry (including the hot-swap race, which must be
// TSan-clean), and the end-to-end replay-vs-offline guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/retry.h"
#include "common/rng.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "ml/random_forest.h"
#include "obs/request_trace.h"
#include "serve/batch_predictor.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "serve/serving_plane.h"
#include "serve/session_manager.h"
#include "serve/statusz.h"
#include "synthgeo/generator.h"
#include "traj/point_features.h"
#include "traj/segmentation.h"
#include "traj/trajectory_features.h"
#include "traj/types.h"

namespace trajkit::serve {
namespace {

// Random walk around Beijing with adversarial timestamp deltas: duplicates
// (dt = 0) and sub-floor gaps exercise the min-duration clamp, stalls
// exercise zero-distance bearings.
std::vector<traj::TrajectoryPoint> RandomSegmentPoints(Rng& rng, size_t n) {
  std::vector<traj::TrajectoryPoint> points;
  points.reserve(n);
  double t = 1.2e9 + rng.Uniform(0.0, 1e6);
  double lat = 39.9 + rng.Gaussian(0.0, 0.05);
  double lon = 116.3 + rng.Gaussian(0.0, 0.05);
  for (size_t i = 0; i < n; ++i) {
    traj::TrajectoryPoint point;
    point.pos = {lat, lon};
    point.timestamp = t;
    point.mode = traj::Mode::kWalk;
    points.push_back(point);
    switch (rng.NextBounded(8)) {
      case 0:
        break;  // Duplicate timestamp.
      case 1:
        t += 0.01;  // Below the min-duration floor.
        break;
      default:
        t += rng.Uniform(0.2, 60.0);
    }
    if (rng.NextBounded(10) != 0) {  // 1-in-10: stationary fix.
      lat += rng.Gaussian(0.0, 1e-4);
      lon += rng.Gaussian(0.0, 1e-4);
    }
  }
  return points;
}

std::vector<double> BatchFeatures(
    const std::vector<traj::TrajectoryPoint>& points,
    const traj::PointFeatureOptions& options = {}) {
  traj::Segment segment;
  segment.points = points;
  const traj::TrajectoryFeatureExtractor extractor(options);
  auto features = extractor.Extract(segment);
  EXPECT_TRUE(features.ok());
  return std::move(features).value();
}

// A small trained forest over the synthetic corpus, plus everything the
// replay tests need. Built once (forest training dominates test runtime).
struct ReplayFixture {
  std::vector<traj::Trajectory> corpus;
  core::LabelSet labels = core::LabelSet::Dabiri();
  ml::Dataset dataset;
  std::vector<int> offline_predictions;
  size_t offline_correct = 0;
  ServingModel model;

  static const ReplayFixture& Get() {
    static const ReplayFixture* fixture = new ReplayFixture();
    return *fixture;
  }

 private:
  ReplayFixture() {
    synthgeo::GeneratorOptions generator_options;
    generator_options.num_users = 4;
    generator_options.days_per_user = 2;
    generator_options.seed = 19;
    synthgeo::GeoLifeLikeGenerator generator(generator_options);
    corpus = generator.Generate();
    const core::Pipeline pipeline;
    dataset = std::move(pipeline.BuildDataset(corpus, labels)).value();
    ml::RandomForestParams params;
    params.n_estimators = 15;
    ml::RandomForest forest(params);
    TRAJKIT_CHECK(forest.Fit(dataset).ok());
    offline_predictions = forest.Predict(dataset.features());
    for (size_t i = 0; i < offline_predictions.size(); ++i) {
      if (offline_predictions[i] == dataset.labels()[i]) ++offline_correct;
    }
    model = std::move(MakeServingModel("v1", std::move(forest),
                                       traj::kNumTrajectoryFeatures))
                .value();
  }
};

// ------------------------------------------------------ Streaming parity --

TEST(StreamingFeaturesTest, BitIdenticalToBatchOnRandomSegments) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.NextBounded(120);
    const auto points = RandomSegmentPoints(rng, n);
    StreamingFeatureExtractor streaming;
    for (const auto& point : points) streaming.Add(point);
    const auto flushed = streaming.Flush();
    ASSERT_TRUE(flushed.ok());
    // Bit-for-bit: vector operator== is exact double equality.
    EXPECT_EQ(flushed.value(), BatchFeatures(points))
        << "trial " << trial << " n=" << n;

    // The accumulated channel buffers equal the batch kernel's arrays.
    const traj::PointFeatures batch = traj::ComputePointFeatures(points);
    EXPECT_EQ(streaming.point_features().speed, batch.speed);
    EXPECT_EQ(streaming.point_features().acceleration, batch.acceleration);
    EXPECT_EQ(streaming.point_features().jerk, batch.jerk);
    EXPECT_EQ(streaming.point_features().bearing_rate_rate,
              batch.bearing_rate_rate);
  }
}

TEST(StreamingFeaturesTest, BitIdenticalWithUnwrappedBearings) {
  traj::PointFeatureOptions options;
  options.wrap_bearing_difference = false;
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto points = RandomSegmentPoints(rng, 2 + rng.NextBounded(60));
    StreamingFeatureExtractor streaming(options);
    for (const auto& point : points) streaming.Add(point);
    const auto flushed = streaming.Flush();
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(flushed.value(), BatchFeatures(points, options));
  }
}

TEST(StreamingFeaturesTest, LiveStatsTrackBatchChannels) {
  Rng rng(3);
  const auto points = RandomSegmentPoints(rng, 40);
  StreamingFeatureExtractor streaming;
  for (const auto& point : points) streaming.Add(point);
  const traj::PointFeatures batch = traj::ComputePointFeatures(points);
  for (int channel = 0; channel < traj::kNumFeatureChannels; ++channel) {
    const std::span<const double> values =
        traj::ChannelValues(batch, channel);
    const stats::RunningStats& live = streaming.LiveStats(channel);
    ASSERT_EQ(live.count(), values.size());
    double lo = values[0], hi = values[0];
    for (const double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_EQ(live.min(), lo);
    EXPECT_EQ(live.max(), hi);
  }
}

TEST(StreamingFeaturesTest, FlushNeedsTwoPointsAndResetClears) {
  Rng rng(5);
  StreamingFeatureExtractor streaming;
  EXPECT_FALSE(streaming.Flush().ok());
  const auto points = RandomSegmentPoints(rng, 20);
  streaming.Add(points[0]);
  EXPECT_FALSE(streaming.Flush().ok());

  for (size_t i = 1; i < points.size(); ++i) streaming.Add(points[i]);
  ASSERT_TRUE(streaming.Flush().ok());

  // Reset and re-run a different segment: no leakage from the first.
  streaming.Reset();
  EXPECT_EQ(streaming.num_points(), 0u);
  const auto other = RandomSegmentPoints(rng, 30);
  for (const auto& point : other) streaming.Add(point);
  EXPECT_EQ(streaming.Flush().value(), BatchFeatures(other));
}

// -------------------------------------------------- Segmentation parity --

// Builds a trajectory that hits every offline split rule: mode changes,
// a day boundary, a long gap, and out-of-order fixes.
traj::Trajectory AdversarialTrajectory(uint64_t seed) {
  Rng rng(seed);
  traj::Trajectory trajectory;
  trajectory.user_id = 17;
  double t = 1.2e9;
  double lat = 39.9, lon = 116.3;
  const traj::Mode modes[] = {traj::Mode::kWalk, traj::Mode::kBus,
                              traj::Mode::kUnknown, traj::Mode::kBike};
  for (int block = 0; block < 12; ++block) {
    const traj::Mode mode = modes[rng.NextBounded(4)];
    const size_t n = 2 + rng.NextBounded(30);
    for (size_t i = 0; i < n; ++i) {
      traj::TrajectoryPoint point;
      point.pos = {lat, lon};
      point.timestamp = t;
      point.mode = mode;
      trajectory.points.push_back(point);
      t += rng.Uniform(1.0, 90.0);
      lat += rng.Gaussian(0.0, 1e-4);
      lon += rng.Gaussian(0.0, 1e-4);
      if (rng.NextBounded(15) == 0) {
        // Out-of-order fix: jump back in time.
        traj::TrajectoryPoint stale = point;
        stale.timestamp = point.timestamp - rng.Uniform(10.0, 1000.0);
        trajectory.points.push_back(stale);
      }
    }
    if (rng.NextBounded(3) == 0) t += 7200.0;   // Long gap.
    if (rng.NextBounded(4) == 0) t += 86400.0;  // Day boundary.
  }
  return trajectory;
}

void ExpectSessionMatchesOffline(const traj::Trajectory& trajectory,
                                 double max_gap_seconds) {
  traj::SegmentationOptions offline_options;
  offline_options.max_gap_seconds = max_gap_seconds;
  const std::vector<traj::Segment> offline =
      traj::SegmentTrajectory(trajectory, offline_options);

  SessionOptions session_options;
  session_options.max_gap_seconds = max_gap_seconds;
  session_options.keep_points = true;
  session_options.idle_after_seconds = 0.0;  // Parity mode: no eviction.
  SessionManager sessions(session_options);
  std::vector<ClosedSegment> closed;
  for (const auto& point : trajectory.points) {
    sessions.Ingest(trajectory.user_id, point, &closed);
  }
  sessions.FlushAll(&closed);

  ASSERT_EQ(closed.size(), offline.size());
  const traj::TrajectoryFeatureExtractor extractor;
  for (size_t s = 0; s < closed.size(); ++s) {
    EXPECT_EQ(closed[s].mode, offline[s].mode);
    EXPECT_EQ(closed[s].day, offline[s].day);
    ASSERT_EQ(closed[s].num_points, offline[s].points.size());
    for (size_t i = 0; i < offline[s].points.size(); ++i) {
      EXPECT_EQ(closed[s].points[i].timestamp,
                offline[s].points[i].timestamp);
      EXPECT_EQ(closed[s].points[i].pos, offline[s].points[i].pos);
    }
    // Feature vectors bit-identical to the offline extractor's.
    EXPECT_EQ(closed[s].features,
              std::move(extractor.Extract(offline[s])).value());
  }
}

TEST(SessionManagerTest, SegmentationParityVsOffline) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    ExpectSessionMatchesOffline(AdversarialTrajectory(seed),
                                /*max_gap_seconds=*/0.0);
  }
}

TEST(SessionManagerTest, SegmentationParityWithGapRule) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    ExpectSessionMatchesOffline(AdversarialTrajectory(seed),
                                /*max_gap_seconds=*/1800.0);
  }
}

TEST(SessionManagerTest, CorpusParityVsOffline) {
  synthgeo::GeneratorOptions options;
  options.num_users = 3;
  options.days_per_user = 2;
  options.seed = 77;
  synthgeo::GeoLifeLikeGenerator generator(options);
  const auto corpus = generator.Generate();
  for (const traj::Trajectory& trajectory : corpus) {
    ExpectSessionMatchesOffline(trajectory, 0.0);
  }
}

TEST(SessionManagerTest, OutOfOrderFixesDroppedAcrossSegmentBoundary) {
  SessionOptions options;
  options.min_points = 2;
  SessionManager sessions(options);
  std::vector<ClosedSegment> closed;
  Rng rng(11);
  auto points = RandomSegmentPoints(rng, 12);
  for (const auto& point : points) sessions.Ingest(1, point, &closed);
  // A mode change closes the first segment but keeps the session state.
  traj::TrajectoryPoint next = points.back();
  next.timestamp += 5.0;
  next.mode = traj::Mode::kBus;
  sessions.Ingest(1, next, &closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].reason, CloseReason::kModeChange);
  // A fix older than the last kept one is dropped even though that fix's
  // segment is already closed: the cleaning reference persists, exactly
  // like the offline segmenter's.
  traj::TrajectoryPoint stale = next;
  stale.timestamp -= 500.0;
  sessions.Ingest(1, stale, &closed);
  EXPECT_EQ(sessions.stats().points_dropped_out_of_order, 1u);
  ASSERT_EQ(closed.size(), 1u);
  // Only `next` sits in the open segment; too short to emit.
  std::vector<ClosedSegment> rest;
  sessions.FlushAll(&rest);
  EXPECT_TRUE(rest.empty());
  EXPECT_EQ(sessions.stats().segments_discarded_short, 1u);
}

TEST(SessionManagerTest, MaxWindowClosesOpenSegment) {
  SessionOptions options;
  options.min_points = 2;
  options.max_segment_points = 10;
  SessionManager sessions(options);
  std::vector<ClosedSegment> closed;
  Rng rng(13);
  const auto points = RandomSegmentPoints(rng, 25);
  for (const auto& point : points) sessions.Ingest(1, point, &closed);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].reason, CloseReason::kMaxWindow);
  EXPECT_EQ(closed[0].num_points, 10u);
  EXPECT_EQ(closed[1].num_points, 10u);
  sessions.FlushAll(&closed);
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[2].reason, CloseReason::kFlush);
  EXPECT_EQ(closed[2].num_points, 5u);
}

TEST(SessionManagerTest, IdleSessionsEvicted) {
  SessionOptions options;
  options.min_points = 2;
  options.idle_after_seconds = 600.0;
  SessionManager sessions(options);
  std::vector<ClosedSegment> closed;
  Rng rng(17);
  const auto a = RandomSegmentPoints(rng, 15);
  for (const auto& point : a) sessions.Ingest(1, point, &closed);
  const double now = a.back().timestamp;
  traj::TrajectoryPoint fresh = a.back();
  fresh.timestamp = now;
  sessions.Ingest(2, fresh, &closed);
  EXPECT_EQ(sessions.num_open_sessions(), 2u);

  sessions.EvictIdle(now + 300.0, &closed);  // Nobody idle yet.
  EXPECT_EQ(sessions.num_open_sessions(), 2u);
  ASSERT_TRUE(closed.empty());

  sessions.EvictIdle(now + 601.0, &closed);  // Both sessions idle now.
  EXPECT_EQ(sessions.num_open_sessions(), 0u);
  EXPECT_EQ(sessions.stats().sessions_evicted_idle, 2u);
  // Session 1 had enough points to emit; session 2 (one point) discarded.
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].session_id, 1);
  EXPECT_EQ(closed[0].reason, CloseReason::kIdle);
  EXPECT_EQ(sessions.stats().segments_discarded_short, 1u);
}

TEST(SessionManagerTest, SessionCapEvictsLeastRecentlyUpdated) {
  SessionOptions options;
  options.min_points = 2;
  options.max_sessions = 2;
  SessionManager sessions(options);
  std::vector<ClosedSegment> closed;
  Rng rng(23);
  const auto points = RandomSegmentPoints(rng, 6);
  for (const auto& point : points) sessions.Ingest(1, point, &closed);
  for (const auto& point : points) sessions.Ingest(2, point, &closed);
  EXPECT_EQ(sessions.num_open_sessions(), 2u);
  // Touch 1 so 2 becomes the LRU victim.
  sessions.Ingest(1, points.back(), &closed);
  ASSERT_TRUE(closed.empty());
  sessions.Ingest(3, points.front(), &closed);
  EXPECT_EQ(sessions.num_open_sessions(), 2u);
  EXPECT_EQ(sessions.stats().sessions_evicted_cap, 1u);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].session_id, 2);
  EXPECT_EQ(closed[0].reason, CloseReason::kSessionCap);
}

// ----------------------------------------------------------- Registry --

TEST(ModelRegistryTest, ValidatesModels) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Acquire().active, nullptr);

  ServingModel unfitted;
  unfitted.version = "bad";
  EXPECT_FALSE(registry.Register(std::move(unfitted)).ok());

  const ReplayFixture& fixture = ReplayFixture::Get();
  // Subset indices out of range / duplicated.
  auto bad_subset = fixture.model;
  bad_subset.version = "bad-subset";
  bad_subset.feature_subset = {0, 99};
  EXPECT_FALSE(bad_subset.Validate().ok());
  bad_subset.feature_subset = {3, 3};
  EXPECT_FALSE(bad_subset.Validate().ok());
  // Subset width must match what the forest was trained on.
  bad_subset.feature_subset = {0, 1, 2};
  EXPECT_FALSE(bad_subset.Validate().ok());
  // Normalizer width mismatch.
  auto bad_norm = fixture.model;
  bad_norm.version = "bad-norm";
  bad_norm.norm_mins = {0.0};
  bad_norm.norm_maxs = {1.0};
  EXPECT_FALSE(bad_norm.Validate().ok());

  ASSERT_TRUE(registry.Register(fixture.model).ok());
  // Duplicate version rejected.
  EXPECT_FALSE(registry.Register(fixture.model).ok());
  EXPECT_FALSE(registry.Publish("no-such-version", serve::ModelRole::kActive).ok());
  ASSERT_TRUE(registry.Publish("v1", serve::ModelRole::kActive).ok());
  ASSERT_NE(registry.Acquire().active, nullptr);
  EXPECT_EQ(registry.Acquire().active->version, "v1");
  EXPECT_EQ(registry.Versions(), std::vector<std::string>{"v1"});
  EXPECT_NE(registry.Get("v1"), nullptr);
  EXPECT_EQ(registry.Get("v2"), nullptr);
}

TEST(ModelRegistryTest, NormalizationMatchesMinMaxScaler) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  // A model whose normalizer is identity on [0, 1) plus one constant
  // column: constant columns must map to 0 like MinMaxScaler::Transform.
  auto model = fixture.model;
  model.version = "normed";
  const size_t width = static_cast<size_t>(model.num_input_features);
  model.norm_mins.assign(width, 0.0);
  model.norm_maxs.assign(width, 1.0);
  model.norm_mins[3] = 5.0;  // Constant column: range 0.
  model.norm_maxs[3] = 5.0;
  ASSERT_TRUE(model.Validate().ok());
  std::vector<std::vector<double>> rows(1, std::vector<double>(width, 2.0));
  const auto prepared = model.PrepareBatch(rows);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->At(0, 0), 2.0);  // (2-0)*1/(1-0).
  EXPECT_EQ(prepared->At(0, 3), 0.0);  // Constant column.
}

// ------------------------------------------------------ Batch predictor --

TEST(BatchPredictorTest, NoActiveModelFailsCleanly) {
  ModelRegistry registry;
  BatchPredictor predictor(&registry);
  auto future = predictor.Submit(PredictRequest(
      std::vector<double>(traj::kNumTrajectoryFeatures, 0.0)));
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BatchPredictorTest, DeterministicAcrossBatchCompositions) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());

  std::vector<std::vector<double>> requests;
  for (size_t r = 0; r < fixture.dataset.num_samples(); ++r) {
    const auto row = fixture.dataset.features().Row(r);
    requests.emplace_back(row.begin(), row.end());
  }

  const auto run = [&](size_t max_batch) {
    BatchPredictorOptions options;
    options.max_batch_size = max_batch;
    options.max_delay_seconds = 0.001;
    BatchPredictor predictor(&registry, options);
    std::vector<std::future<Result<Prediction>>> futures;
    for (const auto& request : requests) {
      futures.push_back(predictor.Submit(PredictRequest(request)));
    }
    std::vector<Prediction> predictions;
    for (auto& future : futures) {
      auto result = future.get();
      EXPECT_TRUE(result.ok());
      predictions.push_back(std::move(result).value());
    }
    return predictions;
  };

  const auto singles = run(1);
  const auto batched = run(64);
  const auto odd = run(7);
  ASSERT_EQ(singles.size(), batched.size());
  for (size_t i = 0; i < singles.size(); ++i) {
    // Per-request determinism: identical answers whatever the batch
    // composition, and identical to the offline forest.
    EXPECT_EQ(singles[i].label, batched[i].label);
    EXPECT_EQ(singles[i].label, odd[i].label);
    EXPECT_EQ(singles[i].label, fixture.offline_predictions[i]);
    EXPECT_EQ(singles[i].probabilities, batched[i].probabilities);
    EXPECT_EQ(singles[i].model_version, "v1");
    EXPECT_GT(singles[i].latency_seconds, 0.0);
  }
}

TEST(BatchPredictorTest, DeadlineDispatchesPartialBatch) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  BatchPredictorOptions options;
  options.max_batch_size = 1000;  // Never reached: deadline must fire.
  options.max_delay_seconds = 0.002;
  BatchPredictor predictor(&registry, options);
  const auto row = fixture.dataset.features().Row(0);
  auto future = predictor.Submit(PredictRequest({row.begin(), row.end()}));
  const auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().label, fixture.offline_predictions[0]);
  EXPECT_EQ(predictor.counters().batches, 1u);
}

TEST(BatchPredictorTest, BadRequestFailsOnlyItself) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  BatchPredictorOptions options;
  options.max_batch_size = 2;  // Both requests land in one batch.
  options.max_delay_seconds = 0.05;
  BatchPredictor predictor(&registry, options);
  auto bad = predictor.Submit(PredictRequest(std::vector<double>(5, 0.0)));
  const auto row = fixture.dataset.features().Row(0);
  auto good = predictor.Submit(PredictRequest({row.begin(), row.end()}));
  const auto bad_result = bad.get();
  ASSERT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kInvalidArgument);
  const auto good_result = good.get();
  ASSERT_TRUE(good_result.ok());
  EXPECT_EQ(good_result.value().label, fixture.offline_predictions[0]);
}

TEST(BatchPredictorTest, FlushProcessesPendingOnCallerThread) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  BatchPredictorOptions options;
  options.max_batch_size = 1000;
  options.max_delay_seconds = 60.0;  // Deadline effectively never fires.
  BatchPredictor predictor(&registry, options);
  std::vector<std::future<Result<Prediction>>> futures;
  for (size_t r = 0; r < 5; ++r) {
    const auto row = fixture.dataset.features().Row(r);
    futures.push_back(
        predictor.Submit(PredictRequest({row.begin(), row.end()})));
  }
  predictor.Flush();
  for (size_t r = 0; r < futures.size(); ++r) {
    const auto result = futures[r].get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().label, fixture.offline_predictions[r]);
  }
}

// The hot-swap race: one writer flips the active model while readers
// predict. Run under -DTRAJKIT_SANITIZE=thread (tools/run_ci.sh); the
// assertions also verify each reader saw one consistent snapshot.
TEST(ModelRegistryTest, HotSwapRaceKeepsSnapshotsConsistent) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  auto v2 = fixture.model;
  v2.version = "v2";
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ASSERT_TRUE(registry.Register(std::move(v2)).ok());

  constexpr int kReaders = 3;
  constexpr int kIterationsPerReader = 100;
  std::atomic<int> readers_done{0};
  // The writer keeps flipping the active model until every reader has
  // finished its iterations, so swaps genuinely overlap the reads.
  std::thread writer([&] {
    int i = 0;
    while (readers_done.load() < kReaders) {
      ASSERT_TRUE(registry.Publish(++i % 2 == 0 ? "v2" : "v1", serve::ModelRole::kActive).ok());
    }
  });

  const auto row = fixture.dataset.features().Row(0);
  const std::vector<double> request(row.begin(), row.end());
  std::vector<std::thread> readers;
  std::atomic<int> predictions{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < kIterationsPerReader; ++i) {
        const std::shared_ptr<const ServingModel> snapshot =
            registry.Acquire().active;
        ASSERT_NE(snapshot, nullptr);
        // The snapshot is an immutable, internally-consistent triple no
        // matter how many swaps happen while we hold it.
        ASSERT_TRUE(snapshot->version == "v1" || snapshot->version == "v2");
        auto prediction = snapshot->PredictOne(request);
        ASSERT_TRUE(prediction.ok());
        EXPECT_EQ(prediction->label, fixture.offline_predictions[0]);
        EXPECT_EQ(prediction->model_version, snapshot->version);
        predictions.fetch_add(1);
      }
      readers_done.fetch_add(1);
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(predictions.load(), kReaders * kIterationsPerReader);
}

// ----------------------------------------------------- Fig. 3 subset --

TEST(FeatureSubsetTest, LoadsTopKFromFig3Csv) {
  const std::string path = testing::TempDir() + "/serve_test/fig3.csv";
  ASSERT_TRUE(WriteStringToFile(
                  path,
                  "method,k,feature,cv_accuracy\n"
                  "importance,1,speed_p90,0.61\n"
                  "importance,2,distance_max,0.67\n"
                  "importance,3,speed_mean,0.70\n"
                  "wrapper,1,jerk_min,0.55\n")
                  .ok());
  const auto subset = LoadFig3FeatureSubset(path, "importance", 2);
  ASSERT_TRUE(subset.ok()) << subset.status().ToString();
  ASSERT_EQ(subset->size(), 2u);
  EXPECT_EQ((*subset)[0],
            traj::TrajectoryFeatureExtractor::FeatureIndex("speed_p90")
                .value());
  EXPECT_EQ((*subset)[1],
            traj::TrajectoryFeatureExtractor::FeatureIndex("distance_max")
                .value());

  EXPECT_FALSE(LoadFig3FeatureSubset(path, "importance", 10).ok());
  EXPECT_FALSE(LoadFig3FeatureSubset(path, "nope", 1).ok());
  EXPECT_FALSE(LoadFig3FeatureSubset(path, "importance", 0).ok());
}

// ------------------------------------------------------------- Replay --

TEST(ReplayTest, MatchesOfflinePipelineExactly) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ServingPlane plane(&registry, {});
  const auto report = ReplayCorpus(fixture.corpus, fixture.labels, plane);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Identically-segmented data: same evaluated segments, same number of
  // correct predictions, hence identical accuracy.
  EXPECT_EQ(report->segments_evaluated, fixture.dataset.num_samples());
  EXPECT_EQ(report->correct, fixture.offline_correct);
  EXPECT_DOUBLE_EQ(
      report->accuracy(),
      static_cast<double>(fixture.offline_correct) /
          static_cast<double>(fixture.dataset.num_samples()));

  // Same label multiset (replay closes in global time order, the offline
  // dataset in per-user corpus order).
  std::multiset<int> online(report->y_true.begin(), report->y_true.end());
  std::multiset<int> offline(fixture.dataset.labels().begin(),
                             fixture.dataset.labels().end());
  EXPECT_EQ(online, offline);
  EXPECT_EQ(report->session_stats.segments_emitted,
            report->segments_closed);
}

TEST(ReplayTest, ClosedSinkSeesEverySegmentWithItsResolvedPrediction) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ServingPlane plane(&registry, {});
  ReplayOptions options;
  std::vector<int> sink_predictions;
  size_t sink_with_bbox = 0;
  options.closed_sink = [&](const ClosedSegment& segment,
                            int predicted_class) {
    if (segment.bbox.IsInitialized()) ++sink_with_bbox;
    EXPECT_GT(segment.num_points, 0u);
    sink_predictions.push_back(predicted_class);
  };
  const auto report = ReplayCorpus(fixture.corpus, fixture.labels,
                                   plane, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // One sink call per closed segment, each carrying an MBR; the evaluated
  // ones carry the exact class the predictor answered (close order), the
  // rest -1.
  EXPECT_EQ(sink_predictions.size(), report->segments_closed);
  EXPECT_EQ(sink_with_bbox, report->segments_closed);
  std::vector<int> evaluated;
  for (const int cls : sink_predictions) {
    if (cls >= 0) evaluated.push_back(cls);
  }
  EXPECT_EQ(evaluated, report->y_pred);
}

TEST(ReplayTest, PeriodicIdleEvictionStillEvaluatesEverySegment) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ServingPlaneOptions plane_options;
  plane_options.session.idle_after_seconds = 6.0 * 3600.0;
  ServingPlane plane(&registry, plane_options);
  ReplayOptions options;
  options.evict_every_points = 1000;
  const auto report = ReplayCorpus(fixture.corpus, fixture.labels,
                                   plane, options);
  ASSERT_TRUE(report.ok());
  // Eviction at a 6h horizon only closes sessions at boundaries the
  // splitter would cut anyway (day change), so nothing is lost.
  EXPECT_EQ(report->segments_evaluated, fixture.dataset.num_samples());
  EXPECT_EQ(report->correct, fixture.offline_correct);
}

// ------------------------------------------------- Request lifecycle --

// Options that park the worker: the size/delay triggers can never fire, so
// queued requests sit until a deadline wakes the worker or Flush drains
// them. Used to test the admission/deadline paths without racing dispatch.
BatchPredictorOptions ParkedWorkerOptions() {
  BatchPredictorOptions options;
  options.max_batch_size = 1000;
  options.max_delay_seconds = 60.0;
  return options;
}

std::vector<double> FixtureRow(size_t r) {
  const auto row = ReplayFixture::Get().dataset.features().Row(r);
  return {row.begin(), row.end()};
}

TEST(BatchPredictorTest, ExpiredDeadlineFailsFastAtSubmit) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  BatchPredictor predictor(&registry, ParkedWorkerOptions());
  auto future = predictor.Submit(
      PredictRequest(FixtureRow(0), RequestContext::WithTimeout(-1.0)));
  // Resolves without any dispatch: the request never entered the queue.
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(predictor.counters().requests, 0u);
}

TEST(BatchPredictorTest, DeadlineExpiresWhileQueued) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  // Dispatch triggers parked: only the deadline can resolve the request,
  // which exercises the worker's wake-at-min-deadline path (no Flush).
  BatchPredictor predictor(&registry, ParkedWorkerOptions());
  auto doomed = predictor.Submit(
      PredictRequest(FixtureRow(0), RequestContext::WithTimeout(0.005)));
  auto patient = predictor.Submit(PredictRequest(FixtureRow(1)));
  const auto result = doomed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(predictor.counters().deadline_exceeded, 1u);
  // The deadline-free neighbour is untouched by the sweep.
  predictor.Flush();
  const auto kept = patient.get();
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value().label, fixture.offline_predictions[1]);
}

TEST(BatchPredictorTest, AdmissionShedsLowestPriorityFirst) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  BatchPredictorOptions options = ParkedWorkerOptions();
  options.max_queue = 2;
  BatchPredictor predictor(&registry, options);

  const auto submit = [&](size_t row, int priority) {
    PredictRequest request(FixtureRow(row));
    request.context.priority = priority;
    return predictor.Submit(std::move(request));
  };
  auto a = submit(0, 1);
  auto b = submit(1, 1);
  // Queue full; an equal-or-lower-priority newcomer is itself rejected...
  auto c = submit(2, 0);
  const auto c_result = c.get();
  ASSERT_FALSE(c_result.ok());
  EXPECT_EQ(c_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(c_result.status().message().find("queue full"),
            std::string::npos);
  // ... while a higher-priority newcomer preempts the oldest lowest.
  auto d = submit(3, 5);
  const auto a_result = a.get();
  ASSERT_FALSE(a_result.ok());
  EXPECT_EQ(a_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(a_result.status().message().find("preempted"),
            std::string::npos);
  EXPECT_EQ(predictor.counters().shed, 2u);

  predictor.Flush();
  const auto b_result = b.get();
  ASSERT_TRUE(b_result.ok());
  EXPECT_EQ(b_result.value().label, fixture.offline_predictions[1]);
  const auto d_result = d.get();
  ASSERT_TRUE(d_result.ok());
  EXPECT_EQ(d_result.value().label, fixture.offline_predictions[3]);
}

// --------------------------------------------------- Degradation chain --

TEST(BatchPredictorTest, RegistryStallFallsBackToPreviousGoodModel) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  FaultSpec spec;
  spec.swap_stall_p = 1.0;  // Every batch loses the registry...
  FaultInjector injector(spec);
  injector.set_enabled(false);  // ... once enabled.
  BatchPredictorOptions options;
  options.fault_injector = &injector;
  BatchPredictor predictor(&registry, options);

  // First batch serves clean and caches the snapshot.
  auto clean = predictor.Submit(PredictRequest(FixtureRow(0)));
  const auto clean_result = clean.get();
  ASSERT_TRUE(clean_result.ok());
  EXPECT_EQ(clean_result.value().degradation, DegradationLevel::kNone);

  injector.set_enabled(true);
  auto degraded = predictor.Submit(PredictRequest(FixtureRow(1)));
  const auto result = degraded.get();
  ASSERT_TRUE(result.ok());
  // Same model, same (bit-identical) answer — only the rung differs.
  EXPECT_EQ(result.value().degradation, DegradationLevel::kPreviousModel);
  EXPECT_EQ(result.value().model_version, "v1");
  EXPECT_EQ(result.value().label, fixture.offline_predictions[1]);
  EXPECT_GE(predictor.counters().degraded, 1u);
}

TEST(BatchPredictorTest, NoModelAnywhereFallsBackToLabelPrior) {
  ModelRegistry registry;  // Nothing registered: both model rungs miss.
  BatchPredictorOptions options;
  options.label_prior = {1.0, 6.0, 3.0};
  BatchPredictor predictor(&registry, options);
  auto future = predictor.Submit(PredictRequest(
      std::vector<double>(traj::kNumTrajectoryFeatures, 0.0)));
  const auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().label, 1);  // argmax of the prior.
  EXPECT_EQ(result.value().degradation, DegradationLevel::kMajorityClass);
  EXPECT_EQ(result.value().model_version, "label_prior");
  ASSERT_EQ(result.value().probabilities.size(), 3u);
  EXPECT_DOUBLE_EQ(result.value().probabilities[1], 0.6);
}

TEST(BatchPredictorTest, TransientFaultRespectsRetryBudget) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  FaultSpec spec;
  spec.predict_fail_p = 1.0;
  FaultInjector injector(spec);
  BatchPredictorOptions options;
  options.fault_injector = &injector;
  options.label_prior = {2.0, 1.0};
  BatchPredictor predictor(&registry, options);

  // Budget left: the caller gets the retryable error back.
  PredictRequest retryable(FixtureRow(0));
  retryable.context.retry_budget = 1;
  const auto retry_result = predictor.Submit(std::move(retryable)).get();
  ASSERT_FALSE(retry_result.ok());
  EXPECT_EQ(retry_result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryableStatus(retry_result.status()));
  EXPECT_EQ(predictor.counters().unavailable, 1u);

  // Budget spent: degrade to the label prior instead of failing.
  const auto spent_result =
      predictor.Submit(PredictRequest(FixtureRow(0))).get();
  ASSERT_TRUE(spent_result.ok());
  EXPECT_EQ(spent_result.value().degradation,
            DegradationLevel::kMajorityClass);
  EXPECT_EQ(spent_result.value().label, 0);
}

TEST(BatchPredictorTest, DisabledInjectorKeepsAnswersBitIdentical) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  // Every fault at p=1 — but the kill switch must make the wiring inert,
  // preserving the online==offline parity contract bit for bit.
  FaultSpec spec;
  spec.swap_stall_p = 1.0;
  spec.swap_stall_latency_ms = 5.0;
  spec.predict_fail_p = 1.0;
  spec.batch_delay_p = 1.0;
  spec.batch_delay_latency_ms = 5.0;
  FaultInjector injector(spec);
  injector.set_enabled(false);
  BatchPredictorOptions options;
  options.fault_injector = &injector;
  BatchPredictor predictor(&registry, options);
  std::vector<std::future<Result<Prediction>>> futures;
  for (size_t r = 0; r < fixture.dataset.num_samples(); ++r) {
    futures.push_back(predictor.Submit(PredictRequest(FixtureRow(r))));
  }
  for (size_t r = 0; r < futures.size(); ++r) {
    auto result = futures[r].get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().label, fixture.offline_predictions[r]);
    EXPECT_EQ(result.value().degradation, DegradationLevel::kNone);
  }
  EXPECT_EQ(predictor.counters().degraded, 0u);
  EXPECT_EQ(predictor.counters().unavailable, 0u);
}

// ------------------------------------------------------ Fault injector --

TEST(FaultSpecTest, ParsesClausesAndSeed) {
  const auto spec = FaultSpec::Parse(
      "swap_stall:p=0.01,latency_ms=50;predict_fail:p=0.02;"
      "batch_delay:p=0.1,latency_ms=5;seed=42");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->swap_stall_p, 0.01);
  EXPECT_DOUBLE_EQ(spec->swap_stall_latency_ms, 50.0);
  EXPECT_DOUBLE_EQ(spec->predict_fail_p, 0.02);
  EXPECT_DOUBLE_EQ(spec->batch_delay_p, 0.1);
  EXPECT_DOUBLE_EQ(spec->batch_delay_latency_ms, 5.0);
  EXPECT_EQ(spec->seed, 42u);

  // Empty spec = all faults off, default seed.
  const auto empty = FaultSpec::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_DOUBLE_EQ(empty->swap_stall_p, 0.0);
  EXPECT_DOUBLE_EQ(empty->predict_fail_p, 0.0);
  EXPECT_DOUBLE_EQ(empty->batch_delay_p, 0.0);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultSpec::Parse("quantum_flip:p=1").ok());
  EXPECT_FALSE(FaultSpec::Parse("predict_fail:p=1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("predict_fail:p=-0.1").ok());
  EXPECT_FALSE(FaultSpec::Parse("predict_fail:p=abc").ok());
  EXPECT_FALSE(FaultSpec::Parse("swap_stall:latency_ms=-3").ok());
  EXPECT_FALSE(FaultSpec::Parse("swap_stall:q=1").ok());
  EXPECT_FALSE(FaultSpec::Parse("predict_fail:latency_ms=5").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed").ok());
  EXPECT_FALSE(FaultSpec::Parse("predict_fail").ok());
}

TEST(FaultInjectorTest, DeterministicDrawSequence) {
  FaultSpec spec;
  spec.predict_fail_p = 0.5;
  spec.batch_delay_p = 0.5;
  spec.batch_delay_latency_ms = 2.0;
  spec.seed = 7;
  FaultInjector a(spec);
  FaultInjector b(spec);
  for (int i = 0; i < 64; ++i) {
    const auto fa = a.Next();
    const auto fb = b.Next();
    EXPECT_EQ(fa.stall_registry, fb.stall_registry);
    EXPECT_EQ(fa.fail_predict, fb.fail_predict);
    EXPECT_EQ(fa.delay_seconds, fb.delay_seconds);
  }
}

// ------------------------------------------------------- Chaos replay --

TEST(ReplayTest, ChaosReplayAccountsEveryRequest) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());

  FaultSpec spec;
  spec.swap_stall_p = 0.2;
  spec.swap_stall_latency_ms = 1.0;
  spec.predict_fail_p = 0.3;
  spec.batch_delay_p = 0.3;
  spec.batch_delay_latency_ms = 1.0;
  spec.seed = 11;
  FaultInjector injector(spec);

  BatchPredictorOptions batching;
  batching.fault_injector = &injector;
  batching.max_queue = 8;
  // Label prior from the training annotations backs the last rung.
  batching.label_prior.assign(fixture.labels.num_classes(), 0.0);
  for (const int label : fixture.dataset.labels()) {
    batching.label_prior[static_cast<size_t>(label)] += 1.0;
  }
  ServingPlaneOptions plane_options;
  plane_options.batching = batching;
  ServingPlane plane(&registry, plane_options);

  ReplayOptions options;
  options.deadline_seconds = 0.25;
  options.retry_budget = 2;
  options.retry.initial_backoff_seconds = 0.0005;
  options.retry.max_backoff_seconds = 0.002;
  const auto report =
      ReplayCorpus(fixture.corpus, fixture.labels, plane, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The lifecycle invariant: every submitted request resolves exactly one
  // way — evaluated (possibly degraded), shed, or deadline-exceeded.
  const size_t submitted =
      report->segments_closed - report->segments_outside_label_set;
  EXPECT_EQ(report->segments_evaluated + report->shed +
                report->deadline_exceeded,
            submitted);
  EXPECT_EQ(report->y_true.size(), report->segments_evaluated);
  EXPECT_EQ(report->y_pred.size(), report->segments_evaluated);
  // With these seeds the chaos actually bites somewhere.
  EXPECT_GT(report->degraded + report->retries + report->shed +
                report->deadline_exceeded,
            0u);
  // The per-rung split sums to the total (the CLI accounting line and
  // the CI chaos assertion read these fields).
  EXPECT_EQ(report->degraded_previous_model + report->degraded_majority_class,
            report->degraded);
}

// ------------------------------------------------- Request tracing --

/// Scoped enable/disable of the global flight recorder, so a failing
/// test can't leave tracing on for the rest of the binary.
class ScopedTracer {
 public:
  explicit ScopedTracer(uint64_t sample_every = 1,
                        size_t buffer_capacity = 1 << 16) {
    obs::RequestTracerOptions options;
    options.enabled = true;
    options.sample_every = sample_every;
    options.buffer_capacity = buffer_capacity;
    obs::RequestTracer::Global().Configure(options);
  }
  ~ScopedTracer() { obs::RequestTracer::Global().Reset(); }
};

TEST(RequestTracingTest, TraceIdFlowsSubmitToPredictToTerminal) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  ScopedTracer tracing;
  obs::RequestTracer& tracer = obs::RequestTracer::Global();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  {
    BatchPredictor predictor(&registry);
    PredictRequest request(FixtureRow(0));
    EXPECT_EQ(request.context.trace_id, 0u);  // Submit mints
    const auto result = predictor.Submit(std::move(request)).get();
    ASSERT_TRUE(result.ok());
  }  // join the worker so every event is recorded before the snapshot
  std::set<std::string> names;
  for (const obs::TraceEvent& event : tracer.SnapshotEvents()) {
    if (event.trace_id == 1) names.insert(event.name);
  }
  // The full lifecycle of trace 1, end to end.
  EXPECT_TRUE(names.count("submit"));
  EXPECT_TRUE(names.count("queue"));
  EXPECT_TRUE(names.count("batch"));
  EXPECT_TRUE(names.count("predict"));
  EXPECT_TRUE(names.count("done"));
  EXPECT_TRUE(tracer.Exported(1));
}

TEST(RequestTracingTest, BadOutcomesAreTailKeptEvenWhenNotSampled) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  // Head sampling set far above the request count: nothing is sampled,
  // so only the tail-keep override can export anything.
  ScopedTracer tracing(/*sample_every=*/1u << 20);
  obs::RequestTracer& tracer = obs::RequestTracer::Global();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  FaultSpec spec;
  spec.predict_fail_p = 1.0;  // every batch fails its predict
  FaultInjector injector(spec);
  BatchPredictorOptions options;
  options.fault_injector = &injector;
  options.label_prior = {2.0, 1.0};
  {
    BatchPredictor predictor(&registry, options);
    // No retry budget: the predictor degrades to the label prior.
    const auto result =
        predictor.Submit(PredictRequest(FixtureRow(0))).get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().degradation, DegradationLevel::kMajorityClass);
  }
  EXPECT_FALSE(tracer.Sampled(1));
  EXPECT_TRUE(tracer.Exported(1));  // tail-kept despite sampling
  const std::vector<obs::RetainedTraceInfo> retained =
      tracer.RetainedTraces();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].id, 1u);
  EXPECT_STREQ(retained[0].outcome, "done");
  EXPECT_TRUE(retained[0].fault);
  EXPECT_TRUE(retained[0].degraded);
  const std::string dump = tracer.ToTestFormat();
  EXPECT_NE(dump.find("trace 1 tail_kept 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("instant degraded/majority_class"),
            std::string::npos)
      << dump;
}

/// One fault-free replay of the shared fixture with tracing on; returns
/// the deterministic trace dump. The predictor is destroyed (worker
/// joined) before the dump so every event has been recorded.
std::string TracedReplayDump(int threads) {
  const ReplayFixture& fixture = ReplayFixture::Get();
  SetMaxThreads(threads);
  ScopedTracer tracing(/*sample_every=*/2);
  ModelRegistry registry;
  TRAJKIT_CHECK(registry.Publish(fixture.model).ok());
  {
    ServingPlane plane(&registry, {});
    const auto report =
        ReplayCorpus(fixture.corpus, fixture.labels, plane, {});
    TRAJKIT_CHECK(report.ok());
    TRAJKIT_CHECK(report->segments_evaluated > 0);
  }
  return obs::RequestTracer::Global().ToTestFormat();
}

TEST(RequestTracingTest, TestFormatDumpIsThreadCountInvariant) {
  const int prior_threads = MaxThreads();
  const std::string at_one_thread = TracedReplayDump(1);
  const std::string at_eight_threads = TracedReplayDump(8);
  SetMaxThreads(prior_threads);
  // Byte-identical: trace ids are minted on the single-threaded ingest
  // path and the dump replaces timestamps with lifecycle ranks, so
  // worker interleaving and batch composition cannot leak in.
  EXPECT_EQ(at_one_thread, at_eight_threads);
  // And it actually traced something, head-sampled at every 2nd id.
  EXPECT_NE(at_one_thread.find("sample_every 2"), std::string::npos);
  EXPECT_NE(at_one_thread.find("trace 2 tail_kept 0"), std::string::npos)
      << at_one_thread;
  EXPECT_EQ(at_one_thread.find("trace 1 "), std::string::npos);
  EXPECT_NE(at_one_thread.find("span predict"), std::string::npos);
}

TEST(StatuszTest, RendersEverySectionFromRegistryAndTracer) {
  obs::MetricsRegistry metrics;
  metrics.SetInfo("serve.registry.active_version", "test-v7");
  metrics.GetGauge("serve.registry.models").Set(2);
  metrics.GetCounter("serve.batch_predictor.requests").Increment(10);
  metrics.GetCounter("serve.degraded_total.previous_model").Increment(3);
  metrics.GetHistogram("serve.batch_predictor.latency_seconds")
      .Observe(0.001, /*exemplar_trace_id=*/9);

  ScopedTracer tracing;
  obs::RequestTracer& tracer = obs::RequestTracer::Global();
  const obs::TraceId id = tracer.Mint();
  tracer.RecordInstant(id, "submit", obs::TracePhase::kSubmit, 10);
  tracer.RecordInstant(id, "shed", obs::TracePhase::kTerminal, 20);
  tracer.Retain(id);

  const std::string page = RenderStatusPage(metrics, tracer);
  EXPECT_NE(page.find("==== trajkit statusz ===="), std::string::npos);
  EXPECT_NE(page.find("active_version: test-v7"), std::string::npos);
  EXPECT_NE(page.find("requests: 10"), std::string::npos);
  EXPECT_NE(page.find("previous_model=3"), std::string::npos);
  EXPECT_NE(page.find("exemplar trace 9"), std::string::npos) << page;
  EXPECT_NE(page.find("trace 1  events=2  outcome=shed"), std::string::npos)
      << page;
  // Missing metrics render as zeros, not crashes (lookups never create).
  EXPECT_NE(page.find("swap_stall: 0"), std::string::npos);
}

TEST(StatuszTest, GoldenEmptyPageRendersEverySectionWithPlaceholders) {
  // The full-page golden: an empty registry and a disabled tracer still
  // render EVERY section, with "(no data)" placeholders where a subsystem
  // has emitted nothing — a scraper parsing section headers never has to
  // handle an absent section.
  obs::MetricsRegistry metrics;
  obs::RequestTracer tracer;
  const std::string expected =
      "==== trajkit statusz ====\n"
      "model\n"
      "  active_version: (none)\n"
      "  registered: 0\n"
      "  swaps: 0  promotions: 0\n"
      "  flat_form: (not compiled)\n"
      "queue\n"
      "  depth: 0\n"
      "  requests: 0\n"
      "  batches: 0\n"
      "lifecycle\n"
      "  shed: 0 (queue_full=0, preempted=0)\n"
      "  degraded: 0 (previous_model=0, majority_class=0)\n"
      "  deadline_exceeded: 0\n"
      "  unavailable: 0\n"
      "faults injected\n"
      "  swap_stall: 0\n"
      "  predict_fail: 0\n"
      "  batch_delay: 0\n"
      "shadow\n"
      "  (no data)\n"
      "continuous training\n"
      "  (no data)\n"
      "registry audit (most recent last)\n"
      "  (no data)\n"
      "shards\n"
      "  (no data)\n"
      "latency (serve.batch_predictor.latency_seconds)\n"
      "  (no observations)\n"
      "slo\n"
      "  (no data)\n"
      "timeseries\n"
      "  (no data)\n"
      "store\n"
      "  (no data)\n"
      "retained traces: (tracing disabled)\n";
  EXPECT_EQ(RenderStatusPage(metrics, tracer), expected);
}

TEST(StatuszTest, RendersSloAndTimeseriesSectionsWhenWired) {
  obs::MetricsRegistry metrics;
  obs::Counter& shed = metrics.GetCounter("serve.shed_total.queue_full");
  obs::Counter& total = metrics.GetCounter("serve.batch_predictor.requests");
  obs::TimeSeriesStore store(metrics);
  std::vector<obs::SloSpec> specs;
  std::string error;
  ASSERT_TRUE(obs::ParseSloSpecs(
      "shed:type=ratio,bad=serve.shed_total.queue_full,"
      "total=serve.batch_predictor.requests,budget=0.5,fast=1,slow=1",
      &specs, &error))
      << error;
  obs::SloEngine engine(&store, &metrics, specs);
  total.Increment(10);
  store.Tick(0.0);
  engine.Evaluate(0);
  total.Increment(10);
  shed.Increment(10);
  store.Tick(1.0);
  engine.Evaluate(1);

  obs::RequestTracer tracer;
  StatusPageOptions options;
  options.timeseries = &store;
  options.slo = &engine;
  const std::string page = RenderStatusPage(metrics, tracer, options);
  // Bad fraction 1.0 against a 0.5 budget: burn rate 2 in both windows.
  EXPECT_NE(page.find("shed: BREACH  burn_fast=2 burn_slow=2 "
                      "budget_remaining=0 transitions=1"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("ticks: 2 (capacity 512)"), std::string::npos);
  EXPECT_NE(page.find("serve.batch_predictor.requests"), std::string::npos);
  // Counters plot per-tick increments, peaking at the full block.
  EXPECT_NE(page.find("█"), std::string::npos);
  EXPECT_NE(page.find("delta=10"), std::string::npos);
}

TEST(StatuszTest, SparklineNormalizesToMax) {
  EXPECT_EQ(Sparkline({}), "");
  // All-zero (and all-equal-at-zero) input stays on the lowest block.
  EXPECT_EQ(Sparkline({0.0, 0.0}), "▁▁");
  // Max maps to the full block, 0 to the lowest, midpoints interpolate.
  EXPECT_EQ(Sparkline({0.0, 4.0, 8.0}), "▁▅█");
  // Negative values clamp to the lowest block rather than indexing UB.
  EXPECT_EQ(Sparkline({-1.0, 1.0}), "▁█");
}

}  // namespace
}  // namespace trajkit::serve
