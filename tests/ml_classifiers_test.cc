// Unit and property tests for the six classifier families.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/factory.h"
#include "ml/gradient_boosting.h"
#include "ml/linear_svm.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace trajkit::ml {
namespace {

// Gaussian blobs: `per_class` points around distinct centers.
Dataset MakeBlobs(int num_classes, int per_class, double spread,
                  uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int c = 0; c < num_classes; ++c) {
    const double cx = 4.0 * c;
    const double cy = 2.5 * ((c % 2 == 0) ? c : -c);
    for (int i = 0; i < per_class; ++i) {
      rows.push_back({rng.Gaussian(cx, spread), rng.Gaussian(cy, spread)});
      labels.push_back(c);
    }
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < num_classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows), std::move(labels),
                                   {}, {"x", "y"}, std::move(class_names)))
      .value();
}

// XOR: not linearly separable; trees/MLP must get it, linear SVM cannot.
Dataset MakeXor(int per_quadrant, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int q = 0; q < 4; ++q) {
    const double sx = (q & 1) ? 1.0 : -1.0;
    const double sy = (q & 2) ? 1.0 : -1.0;
    for (int i = 0; i < per_quadrant; ++i) {
      rows.push_back(
          {sx * rng.Uniform(0.5, 2.0), sy * rng.Uniform(0.5, 2.0)});
      labels.push_back(sx * sy > 0 ? 1 : 0);
    }
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows), std::move(labels),
                                   {}, {"x", "y"}, {"neg", "pos"}))
      .value();
}

double TrainAccuracy(Classifier& model, const Dataset& ds) {
  EXPECT_TRUE(model.Fit(ds).ok());
  return Accuracy(ds.labels(), model.Predict(ds.features()));
}

// ---------------------------------------------------------- DecisionTree --

TEST(DecisionTreeTest, FitsSeparableBlobsPerfectly) {
  const Dataset ds = MakeBlobs(3, 40, 0.3, 1);
  DecisionTree tree;
  EXPECT_DOUBLE_EQ(TrainAccuracy(tree, ds), 1.0);
  EXPECT_TRUE(tree.fitted());
  EXPECT_GT(tree.NodeCount(), 1u);
}

TEST(DecisionTreeTest, SolvesXor) {
  const Dataset ds = MakeXor(50, 2);
  DecisionTree tree;
  EXPECT_DOUBLE_EQ(TrainAccuracy(tree, ds), 1.0);
}

TEST(DecisionTreeTest, SingleClassGivesSingleLeaf) {
  auto ds = Dataset::Create(Matrix::FromRows({{1.0}, {2.0}, {3.0}}),
                            {0, 0, 0}, {}, {}, {"only"});
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(ds.value()).ok());
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.Depth(), 0);
  const auto pred = tree.Predict(ds->features());
  EXPECT_EQ(pred, (std::vector<int>{0, 0, 0}));
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  const Dataset ds = MakeBlobs(4, 50, 1.5, 3);
  DecisionTreeParams params;
  params.max_depth = 2;
  DecisionTree tree(params);
  ASSERT_TRUE(tree.Fit(ds).ok());
  EXPECT_LE(tree.Depth(), 2);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  const Dataset ds = MakeBlobs(2, 50, 1.0, 4);
  DecisionTreeParams params;
  params.min_samples_leaf = 20;
  DecisionTree tree(params);
  ASSERT_TRUE(tree.Fit(ds).ok());
  // With 100 samples and leaves >= 20, at most 5 leaves; tree stays small.
  EXPECT_LE(tree.NodeCount(), 2 * 5 - 1 + 2u);
}

TEST(DecisionTreeTest, EntropyCriterionAlsoWorks) {
  const Dataset ds = MakeBlobs(3, 30, 0.4, 5);
  DecisionTreeParams params;
  params.criterion = SplitCriterion::kEntropy;
  DecisionTree tree(params);
  EXPECT_DOUBLE_EQ(TrainAccuracy(tree, ds), 1.0);
}

TEST(DecisionTreeTest, RejectsEmptyDataset) {
  Dataset empty;
  DecisionTree tree;
  EXPECT_FALSE(tree.Fit(empty).ok());
}

TEST(DecisionTreeTest, WeightsShiftTheDecision) {
  // Overlapping region where class 0 dominates by count; upweighting
  // class 1 samples flips the prediction there.
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({0.5});
    labels.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    rows.push_back({0.5});
    labels.push_back(1);
  }
  auto ds = Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                            {}, {"a", "b"});
  DecisionTree unweighted;
  ASSERT_TRUE(unweighted.Fit(ds.value()).ok());
  EXPECT_EQ(unweighted.Predict(ds->features())[0], 0);

  std::vector<double> weights(40, 1.0);
  for (size_t i = 30; i < 40; ++i) weights[i] = 10.0;
  DecisionTree weighted;
  ASSERT_TRUE(weighted.FitWeighted(ds.value(), weights).ok());
  EXPECT_EQ(weighted.Predict(ds->features())[0], 1);
}

TEST(DecisionTreeTest, RejectsBadWeights) {
  const Dataset ds = MakeBlobs(2, 10, 0.3, 6);
  DecisionTree tree;
  EXPECT_FALSE(tree.FitWeighted(ds, std::vector<double>{1.0}).ok());
  std::vector<double> negative(ds.num_samples(), 1.0);
  negative[0] = -1.0;
  EXPECT_FALSE(tree.FitWeighted(ds, negative).ok());
  const std::vector<double> zeros(ds.num_samples(), 0.0);
  EXPECT_FALSE(tree.FitWeighted(ds, zeros).ok());
}

TEST(DecisionTreeTest, ImportancesSumToOneAndFavorInformativeFeature) {
  // Feature 0 decides the label; feature 1 is noise.
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const int y = static_cast<int>(rng.NextBounded(2));
    rows.push_back({static_cast<double>(y) + rng.Gaussian(0.0, 0.1),
                    rng.Gaussian(0.0, 1.0)});
    labels.push_back(y);
  }
  auto ds = Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                            {"signal", "noise"}, {"a", "b"});
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(ds.value()).ok());
  const auto& imp = tree.FeatureImportances();
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.8);
}

TEST(DecisionTreeTest, DeterministicAcrossFits) {
  const Dataset ds = MakeBlobs(3, 60, 1.2, 8);
  DecisionTreeParams params;
  params.max_features = 1;  // Random subsetting active.
  params.seed = 99;
  DecisionTree t1(params);
  DecisionTree t2(params);
  ASSERT_TRUE(t1.Fit(ds).ok());
  ASSERT_TRUE(t2.Fit(ds).ok());
  EXPECT_EQ(t1.Predict(ds.features()), t2.Predict(ds.features()));
}

TEST(DecisionTreeTest, PredictProbaRowsSumToOne) {
  const Dataset ds = MakeBlobs(3, 30, 1.0, 9);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(ds).ok());
  const auto probs = tree.PredictProba(ds.features());
  ASSERT_TRUE(probs.ok());
  for (size_t r = 0; r < probs->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < probs->cols(); ++c) sum += probs->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DecisionTreeTest, CloneIsUnfittedWithSameParams) {
  const Dataset ds = MakeBlobs(2, 20, 0.3, 10);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(ds).ok());
  auto clone = tree.Clone();
  EXPECT_EQ(clone->name(), "decision_tree");
  ASSERT_TRUE(clone->Fit(ds).ok());
  EXPECT_EQ(clone->Predict(ds.features()), tree.Predict(ds.features()));
}

// ---------------------------------------------------------- RandomForest --

TEST(RandomForestTest, FitsBlobs) {
  const Dataset ds = MakeBlobs(3, 40, 0.5, 11);
  RandomForestParams params;
  params.n_estimators = 20;
  RandomForest forest(params);
  EXPECT_GE(TrainAccuracy(forest, ds), 0.99);
  EXPECT_EQ(forest.NumTrees(), 20u);
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  // Noisy overlapping blobs; compare held-out accuracy.
  const Dataset train = MakeBlobs(3, 80, 2.4, 12);
  const Dataset test = MakeBlobs(3, 80, 2.4, 13);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  RandomForestParams params;
  params.n_estimators = 40;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const double tree_acc =
      Accuracy(test.labels(), tree.Predict(test.features()));
  const double forest_acc =
      Accuracy(test.labels(), forest.Predict(test.features()));
  EXPECT_GE(forest_acc + 1e-9, tree_acc);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  const Dataset ds = MakeBlobs(3, 50, 1.5, 14);
  RandomForestParams params;
  params.n_estimators = 10;
  params.seed = 123;
  RandomForest f1(params);
  RandomForest f2(params);
  ASSERT_TRUE(f1.Fit(ds).ok());
  ASSERT_TRUE(f2.Fit(ds).ok());
  EXPECT_EQ(f1.Predict(ds.features()), f2.Predict(ds.features()));
}

TEST(RandomForestTest, ImportancesNormalizedAndRankInformative) {
  Rng rng(15);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int y = static_cast<int>(rng.NextBounded(2));
    rows.push_back({rng.Gaussian(0.0, 1.0),
                    static_cast<double>(y) + rng.Gaussian(0.0, 0.15),
                    rng.Gaussian(0.0, 1.0)});
    labels.push_back(y);
  }
  auto ds = Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                            {"n1", "signal", "n2"}, {"a", "b"});
  RandomForestParams params;
  params.n_estimators = 25;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(ds.value()).ok());
  const auto& imp = forest.FeatureImportances();
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
  const auto ranking = forest.ImportanceRanking();
  EXPECT_EQ(ranking[0], 1);  // "signal" first.
}

TEST(RandomForestTest, ProbaAveragesTrees) {
  const Dataset ds = MakeBlobs(2, 40, 0.8, 16);
  RandomForestParams params;
  params.n_estimators = 15;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(ds).ok());
  const auto probs = forest.PredictProba(ds.features());
  ASSERT_TRUE(probs.ok());
  for (size_t r = 0; r < probs->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < probs->cols(); ++c) {
      sum += probs->At(r, c);
      EXPECT_GE(probs->At(r, c), 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RandomForestTest, InvalidParamsRejected) {
  const Dataset ds = MakeBlobs(2, 10, 0.5, 17);
  RandomForestParams params;
  params.n_estimators = 0;
  RandomForest forest(params);
  EXPECT_FALSE(forest.Fit(ds).ok());
}

// -------------------------------------------------------------- AdaBoost --

TEST(AdaBoostTest, BoostsStumpsBeyondSingleStump) {
  const Dataset ds = MakeXor(60, 18);
  DecisionTreeParams stump_params;
  stump_params.max_depth = 1;
  DecisionTree stump(stump_params);
  ASSERT_TRUE(stump.Fit(ds).ok());
  const double stump_acc =
      Accuracy(ds.labels(), stump.Predict(ds.features()));

  AdaBoostParams params;
  params.n_estimators = 60;
  params.base_max_depth = 2;
  AdaBoost boost(params);
  const double boost_acc = TrainAccuracy(boost, ds);
  EXPECT_GT(boost_acc, stump_acc + 0.2);
}

TEST(AdaBoostTest, StopsEarlyOnPerfectLearner) {
  const Dataset ds = MakeBlobs(2, 30, 0.2, 19);
  AdaBoostParams params;
  params.n_estimators = 50;
  params.base_max_depth = 4;  // Deep enough to be perfect in one round.
  AdaBoost boost(params);
  ASSERT_TRUE(boost.Fit(ds).ok());
  EXPECT_EQ(boost.NumRounds(), 1u);
  EXPECT_DOUBLE_EQ(
      Accuracy(ds.labels(), boost.Predict(ds.features())), 1.0);
}

TEST(AdaBoostTest, MultiClassSamme) {
  const Dataset ds = MakeBlobs(4, 40, 0.8, 20);
  AdaBoostParams params;
  params.n_estimators = 40;
  params.base_max_depth = 2;
  AdaBoost boost(params);
  EXPECT_GE(TrainAccuracy(boost, ds), 0.9);
}

TEST(AdaBoostTest, Deterministic) {
  const Dataset ds = MakeBlobs(3, 40, 1.0, 21);
  AdaBoostParams params;
  params.seed = 5;
  AdaBoost b1(params);
  AdaBoost b2(params);
  ASSERT_TRUE(b1.Fit(ds).ok());
  ASSERT_TRUE(b2.Fit(ds).ok());
  EXPECT_EQ(b1.Predict(ds.features()), b2.Predict(ds.features()));
}

// ------------------------------------------------------ GradientBoosting --

TEST(GradientBoostingTest, FitsBlobs) {
  const Dataset ds = MakeBlobs(3, 40, 0.6, 22);
  GradientBoostingParams params;
  params.n_rounds = 25;
  GradientBoosting gbdt(params);
  EXPECT_GE(TrainAccuracy(gbdt, ds), 0.98);
  EXPECT_EQ(gbdt.NumTreesTotal(), 25 * 3);
}

TEST(GradientBoostingTest, SolvesXor) {
  const Dataset ds = MakeXor(50, 23);
  GradientBoostingParams params;
  params.n_rounds = 30;
  GradientBoosting gbdt(params);
  EXPECT_GE(TrainAccuracy(gbdt, ds), 0.98);
}

TEST(GradientBoostingTest, ProbaRowsSumToOne) {
  const Dataset ds = MakeBlobs(3, 30, 1.0, 24);
  GradientBoostingParams params;
  params.n_rounds = 10;
  GradientBoosting gbdt(params);
  ASSERT_TRUE(gbdt.Fit(ds).ok());
  const auto probs = gbdt.PredictProba(ds.features());
  ASSERT_TRUE(probs.ok());
  for (size_t r = 0; r < probs->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < probs->cols(); ++c) sum += probs->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GradientBoostingTest, MoreRoundsReduceTrainError) {
  const Dataset ds = MakeBlobs(3, 60, 2.2, 25);
  GradientBoostingParams small;
  small.n_rounds = 3;
  GradientBoostingParams large = small;
  large.n_rounds = 40;
  GradientBoosting g_small(small);
  GradientBoosting g_large(large);
  const double acc_small = TrainAccuracy(g_small, ds);
  const double acc_large = TrainAccuracy(g_large, ds);
  EXPECT_GE(acc_large + 1e-9, acc_small);
}

TEST(GradientBoostingTest, DeterministicGivenSeed) {
  const Dataset ds = MakeBlobs(3, 40, 1.4, 26);
  GradientBoostingParams params;
  params.seed = 77;
  GradientBoosting g1(params);
  GradientBoosting g2(params);
  ASSERT_TRUE(g1.Fit(ds).ok());
  ASSERT_TRUE(g2.Fit(ds).ok());
  EXPECT_EQ(g1.Predict(ds.features()), g2.Predict(ds.features()));
}

TEST(GradientBoostingTest, ImportancesNormalized) {
  const Dataset ds = MakeBlobs(2, 50, 0.8, 27);
  GradientBoostingParams params;
  params.n_rounds = 10;
  GradientBoosting gbdt(params);
  ASSERT_TRUE(gbdt.Fit(ds).ok());
  const auto& imp = gbdt.FeatureImportances();
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
}

TEST(GradientBoostingTest, InvalidParamsRejected) {
  const Dataset ds = MakeBlobs(2, 10, 0.5, 28);
  GradientBoostingParams params;
  params.subsample = 0.0;
  GradientBoosting gbdt(params);
  EXPECT_FALSE(gbdt.Fit(ds).ok());
}

// ------------------------------------------------------------- LinearSvm --

TEST(LinearSvmTest, SeparatesLinearBlobs) {
  const Dataset ds = MakeBlobs(2, 60, 0.4, 29);
  LinearSvmParams params;
  params.epochs = 40;
  LinearSvm svm(params);
  EXPECT_GE(TrainAccuracy(svm, ds), 0.97);
}

TEST(LinearSvmTest, MultiClassOneVsRest) {
  const Dataset ds = MakeBlobs(4, 50, 0.4, 30);
  LinearSvmParams params;
  params.epochs = 60;
  params.lambda = 1e-4;  // The default is tuned for the noisy mode task.
  LinearSvm svm(params);
  EXPECT_GE(TrainAccuracy(svm, ds), 0.9);
}

TEST(LinearSvmTest, CannotSolveXor) {
  const Dataset ds = MakeXor(80, 31);
  LinearSvm svm;
  const double acc = TrainAccuracy(svm, ds);
  EXPECT_LT(acc, 0.75);  // Linear model ~ chance on XOR.
}

TEST(LinearSvmTest, DecisionFunctionSizeMatchesClasses) {
  const Dataset ds = MakeBlobs(3, 20, 0.5, 32);
  LinearSvm svm;
  ASSERT_TRUE(svm.Fit(ds).ok());
  EXPECT_EQ(svm.DecisionFunction(ds.features().Row(0)).size(), 3u);
}

TEST(LinearSvmTest, Deterministic) {
  const Dataset ds = MakeBlobs(2, 40, 0.6, 33);
  LinearSvmParams params;
  params.seed = 3;
  LinearSvm s1(params);
  LinearSvm s2(params);
  ASSERT_TRUE(s1.Fit(ds).ok());
  ASSERT_TRUE(s2.Fit(ds).ok());
  EXPECT_EQ(s1.Predict(ds.features()), s2.Predict(ds.features()));
}

// ------------------------------------------------------------------- MLP --

TEST(MlpTest, SolvesXor) {
  const Dataset ds = MakeXor(60, 34);
  MlpParams params;
  params.hidden_sizes = {16};
  params.epochs = 200;
  Mlp mlp(params);
  EXPECT_GE(TrainAccuracy(mlp, ds), 0.95);
}

TEST(MlpTest, MultiClassBlobs) {
  const Dataset ds = MakeBlobs(3, 50, 0.5, 35);
  MlpParams params;
  params.hidden_sizes = {32};
  params.epochs = 120;
  Mlp mlp(params);
  EXPECT_GE(TrainAccuracy(mlp, ds), 0.95);
}

TEST(MlpTest, ProbaRowsSumToOne) {
  const Dataset ds = MakeBlobs(3, 20, 0.8, 36);
  MlpParams params;
  params.epochs = 20;
  Mlp mlp(params);
  ASSERT_TRUE(mlp.Fit(ds).ok());
  const auto probs = mlp.PredictProba(ds.features());
  ASSERT_TRUE(probs.ok());
  for (size_t r = 0; r < probs->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < probs->cols(); ++c) sum += probs->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MlpTest, Deterministic) {
  const Dataset ds = MakeBlobs(2, 30, 0.7, 37);
  MlpParams params;
  params.epochs = 30;
  params.seed = 11;
  Mlp m1(params);
  Mlp m2(params);
  ASSERT_TRUE(m1.Fit(ds).ok());
  ASSERT_TRUE(m2.Fit(ds).ok());
  EXPECT_EQ(m1.Predict(ds.features()), m2.Predict(ds.features()));
}

TEST(MlpTest, InvalidParamsRejected) {
  const Dataset ds = MakeBlobs(2, 10, 0.5, 38);
  MlpParams params;
  params.hidden_sizes = {0};
  Mlp mlp(params);
  EXPECT_FALSE(mlp.Fit(ds).ok());
}

// --------------------------------------------------------------- Factory --

TEST(FactoryTest, BuildsAllSixFamilies) {
  ASSERT_EQ(AllClassifierNames().size(), 6u);
  const Dataset ds = MakeBlobs(2, 25, 0.4, 39);
  for (const std::string& name : AllClassifierNames()) {
    FactoryOptions options;
    options.scale = 0.2;  // Fast variants for the test.
    auto model = MakeClassifier(name, options);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ(model.value()->name(), name);
    ASSERT_TRUE(model.value()->Fit(ds).ok()) << name;
    const double acc =
        Accuracy(ds.labels(), model.value()->Predict(ds.features()));
    EXPECT_GT(acc, 0.8) << name;
  }
}

TEST(FactoryTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeClassifier("quantum_annealer").ok());
}

// Property suite: every family clones deterministically.
class ClonePropertyTest : public testing::TestWithParam<std::string> {};

TEST_P(ClonePropertyTest, CloneRefitsIdentically) {
  const Dataset ds = MakeBlobs(3, 30, 1.0, 40);
  FactoryOptions options;
  options.scale = 0.2;
  options.seed = 17;
  auto model = MakeClassifier(GetParam(), options);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model.value()->Fit(ds).ok());
  auto clone = model.value()->Clone();
  ASSERT_TRUE(clone->Fit(ds).ok());
  EXPECT_EQ(clone->Predict(ds.features()),
            model.value()->Predict(ds.features()));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ClonePropertyTest,
                         testing::Values("decision_tree", "random_forest",
                                         "xgboost", "adaboost", "svm",
                                         "neural_network"));

}  // namespace
}  // namespace trajkit::ml
