// Tests for the request-scoped flight recorder (obs/request_trace.h):
// deterministic id minting and head sampling, span/instant round trips,
// tail-keep retention surviving ring overwrite, the deterministic test
// format, Chrome trace-event export, and the seqlock ring under
// concurrent writers + readers (run under TSan via the `concurrency`
// ctest label — a data race in the recorder is a hard failure).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/request_trace.h"

namespace trajkit::obs {
namespace {

RequestTracerOptions Enabled(uint64_t sample_every = 1,
                             size_t buffer_capacity = 1024,
                             size_t retained_capacity = 256) {
  RequestTracerOptions options;
  options.enabled = true;
  options.sample_every = sample_every;
  options.buffer_capacity = buffer_capacity;
  options.retained_capacity = retained_capacity;
  return options;
}

TEST(RequestTracerTest, DisabledByDefaultRecordsNothing) {
  RequestTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.Mint(), 0u);
  EXPECT_FALSE(tracer.Sampled(1));
  tracer.RecordInstant(1, "submit", TracePhase::kSubmit, 10);
  tracer.RecordSpan(1, "queue", TracePhase::kQueue, 10, 20);
  tracer.RecordGlobalInstant("registry_swap");
  tracer.Retain(1);
  EXPECT_TRUE(tracer.SnapshotEvents().empty());
  EXPECT_TRUE(tracer.RetainedTraces().empty());
}

TEST(RequestTracerTest, MintsSequentialIdsFromOne) {
  RequestTracer tracer;
  tracer.Configure(Enabled());
  EXPECT_EQ(tracer.Mint(), 1u);
  EXPECT_EQ(tracer.Mint(), 2u);
  EXPECT_EQ(tracer.Mint(), 3u);
  // Reconfiguring restarts the sequence — the sampled set for a given
  // corpus is reproducible run over run.
  tracer.Configure(Enabled());
  EXPECT_EQ(tracer.Mint(), 1u);
}

TEST(RequestTracerTest, HeadSamplingKeepsEveryNth) {
  RequestTracer tracer;
  tracer.Configure(Enabled(/*sample_every=*/3));
  EXPECT_FALSE(tracer.Sampled(0));  // 0 = untraced, never sampled
  EXPECT_FALSE(tracer.Sampled(1));
  EXPECT_FALSE(tracer.Sampled(2));
  EXPECT_TRUE(tracer.Sampled(3));
  EXPECT_TRUE(tracer.Sampled(6));
  tracer.Configure(Enabled(/*sample_every=*/1));
  EXPECT_TRUE(tracer.Sampled(1));
  EXPECT_TRUE(tracer.Sampled(2));
}

TEST(RequestTracerTest, EventsRoundTripThroughTheRing) {
  RequestTracer tracer;
  tracer.Configure(Enabled());
  const TraceId id = tracer.Mint();
  tracer.RecordInstant(id, "submit", TracePhase::kSubmit, 100, /*arg=*/2);
  tracer.RecordSpan(id, "queue", TracePhase::kQueue, 100, 250, /*arg=*/7);
  const std::vector<TraceEvent> events = tracer.SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (trace_id, phase): submit (kSubmit=1) before queue (kQueue=2).
  EXPECT_STREQ(events[0].name, "submit");
  EXPECT_EQ(events[0].kind, TraceEventKind::kInstant);
  EXPECT_EQ(events[0].phase, TracePhase::kSubmit);
  EXPECT_EQ(events[0].start_ns, 100u);
  EXPECT_EQ(events[0].end_ns, 100u);
  EXPECT_EQ(events[0].arg, 2u);
  EXPECT_STREQ(events[1].name, "queue");
  EXPECT_EQ(events[1].kind, TraceEventKind::kSpan);
  EXPECT_EQ(events[1].start_ns, 100u);
  EXPECT_EQ(events[1].end_ns, 250u);
  EXPECT_EQ(events[1].arg, 7u);
}

TEST(RequestTracerTest, RingOverwritesOldestAtCapacity) {
  RequestTracer tracer;
  tracer.Configure(Enabled(/*sample_every=*/1, /*buffer_capacity=*/4));
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.RecordInstant(1, "submit", TracePhase::kSubmit, 100 + i);
  }
  // Only the last 4 timestamps survive.
  const std::vector<TraceEvent> events = tracer.SnapshotEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().start_ns, 106u);
  EXPECT_EQ(events.back().start_ns, 109u);
}

TEST(RequestTracerTest, TailKeepSurvivesRingOverwrite) {
  RequestTracer tracer;
  tracer.Configure(Enabled(/*sample_every=*/1, /*buffer_capacity=*/8));
  tracer.RecordInstant(1, "submit", TracePhase::kSubmit, 10);
  tracer.RecordInstant(1, "deadline_exceeded", TracePhase::kTerminal, 20);
  tracer.Retain(1);
  // Flood the ring: trace 1's live entries are overwritten...
  for (uint64_t i = 0; i < 64; ++i) {
    tracer.RecordInstant(2 + i, "submit", TracePhase::kSubmit, 100 + i);
  }
  // ...but the retained copy still exports, flagged tail_kept.
  const std::string dump = tracer.ToTestFormat();
  EXPECT_NE(dump.find("trace 1 tail_kept 1\n"
                      "  0 instant submit\n"
                      "  1 instant deadline_exceeded\n"),
            std::string::npos)
      << dump;
}

TEST(RequestTracerTest, SamplingFiltersExportButTailKeepOverrides) {
  RequestTracer tracer;
  tracer.Configure(Enabled(/*sample_every=*/2));
  for (TraceId id = 1; id <= 4; ++id) {
    tracer.RecordInstant(id, "submit", TracePhase::kSubmit, id * 10);
    tracer.RecordInstant(id, "done", TracePhase::kTerminal, id * 10 + 5);
  }
  // Head sampling alone: ids 2 and 4.
  std::string dump = tracer.ToTestFormat();
  EXPECT_EQ(dump.find("trace 1 "), std::string::npos);
  EXPECT_NE(dump.find("trace 2 tail_kept 0"), std::string::npos);
  EXPECT_EQ(dump.find("trace 3 "), std::string::npos);
  EXPECT_NE(dump.find("trace 4 tail_kept 0"), std::string::npos);
  EXPECT_NE(dump.find("traces 2\n"), std::string::npos);
  EXPECT_FALSE(tracer.Exported(3));

  // Trace 3 ends badly: tail-keep forces it into the export set.
  tracer.Retain(3);
  EXPECT_TRUE(tracer.Exported(3));
  dump = tracer.ToTestFormat();
  EXPECT_NE(dump.find("trace 3 tail_kept 1"), std::string::npos);
  EXPECT_NE(dump.find("traces 3\n"), std::string::npos);
}

TEST(RequestTracerTest, TestFormatOrdersByPhaseAndIsByteStable) {
  RequestTracer tracer;
  tracer.Configure(Enabled());
  const TraceId id = tracer.Mint();
  // Recorded deliberately out of lifecycle order; the dump ranks by
  // phase, not by recording order or timestamp.
  tracer.RecordInstant(id, "done", TracePhase::kTerminal, 900);
  tracer.RecordSpan(id, "predict", TracePhase::kPredict, 500, 800);
  tracer.RecordInstant(id, "submit", TracePhase::kSubmit, 100);
  tracer.RecordSpan(id, "queue", TracePhase::kQueue, 100, 400);
  const std::string expected =
      "# trajkit request trace test format v1\n"
      "sample_every 1\n"
      "traces 1\n"
      "trace 1 tail_kept 0\n"
      "  0 instant submit\n"
      "  1 span queue\n"
      "  2 span predict\n"
      "  3 instant done\n"
      "# end\n";
  EXPECT_EQ(tracer.ToTestFormat(), expected);
  // Byte-stable: a second export of unchanged state is identical.
  EXPECT_EQ(tracer.ToTestFormat(), expected);
}

TEST(RequestTracerTest, ChromeJsonCarriesSpansInstantsAndRequestLog) {
  RequestTracer tracer;
  tracer.Configure(Enabled());
  const TraceId id = tracer.Mint();
  tracer.RecordInstant(id, "submit", TracePhase::kSubmit, 1000);
  tracer.RecordSpan(id, "queue", TracePhase::kQueue, 1000, 251000);
  tracer.RecordInstant(id, "fault/predict_fail", TracePhase::kFault, 2000);
  tracer.RecordInstant(id, "done", TracePhase::kTerminal, 260000);
  tracer.RecordGlobalInstant("registry_swap");
  const std::string json = tracer.ToChromeTraceJson();
  // Complete span with microsecond ts/dur.
  EXPECT_NE(json.find("{\"name\":\"queue\",\"cat\":\"serve\",\"ph\":\"X\","
                      "\"ts\":1.000,\"dur\":250.000"),
            std::string::npos)
      << json;
  // Thread-scoped instant.
  EXPECT_NE(json.find("{\"name\":\"submit\",\"cat\":\"serve\",\"ph\":\"i\","
                      "\"s\":\"t\""),
            std::string::npos);
  // Global landmark (trace id 0).
  EXPECT_NE(json.find("{\"name\":\"registry_swap\",\"cat\":\"global\","
                      "\"ph\":\"i\",\"s\":\"g\""),
            std::string::npos);
  // The request log: one summary event per trace, outcome + flags.
  EXPECT_NE(json.find("{\"name\":\"request\",\"cat\":\"request\","),
            std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"1\",\"outcome\":\"done\","
                      "\"tail_kept\":false,\"fault\":true,"
                      "\"degraded\":false,\"events\":4"),
            std::string::npos)
      << json;
}

TEST(RequestTracerTest, RetainedTraceSummariesFoldOutcomeAndFlags) {
  RequestTracer tracer;
  tracer.Configure(Enabled(/*sample_every=*/1, /*buffer_capacity=*/64,
                           /*retained_capacity=*/2));
  for (TraceId id = 1; id <= 3; ++id) {
    tracer.RecordInstant(id, "submit", TracePhase::kSubmit, id * 10);
    tracer.RecordInstant(id, "degraded/majority_class",
                         TracePhase::kDegraded, id * 10 + 1);
    tracer.RecordInstant(id, "shed", TracePhase::kTerminal, id * 10 + 2);
    tracer.Retain(id);
  }
  // retained_capacity=2: the oldest trace was evicted FIFO.
  const std::vector<RetainedTraceInfo> retained = tracer.RetainedTraces();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].id, 2u);
  EXPECT_EQ(retained[1].id, 3u);
  EXPECT_EQ(retained[1].num_events, 3u);
  EXPECT_STREQ(retained[1].outcome, "shed");
  EXPECT_FALSE(retained[1].fault);
  EXPECT_TRUE(retained[1].degraded);
}

TEST(RequestTracerTest, ConfigureClearsStateAndRetiresRings) {
  RequestTracer tracer;
  tracer.Configure(Enabled());
  tracer.RecordInstant(tracer.Mint(), "submit", TracePhase::kSubmit, 1);
  tracer.Retain(1);
  EXPECT_FALSE(tracer.SnapshotEvents().empty());
  tracer.Configure(Enabled());
  // Old rings are retired (not collected) and retention is cleared.
  EXPECT_TRUE(tracer.SnapshotEvents().empty());
  EXPECT_TRUE(tracer.RetainedTraces().empty());
  // The recorder still works after the swap — the thread-local ring
  // cache must re-acquire a current-generation ring, not the retired one.
  tracer.RecordInstant(tracer.Mint(), "submit", TracePhase::kSubmit, 2);
  EXPECT_EQ(tracer.SnapshotEvents().size(), 1u);
  tracer.Reset();
  EXPECT_FALSE(tracer.enabled());
  EXPECT_TRUE(tracer.SnapshotEvents().empty());
}

// The TSan target: writers hammer their per-thread rings (wrapping them
// many times over) while readers concurrently export and tail-keep. Any
// non-atomic slot access or unfenced seqlock read is a hard failure.
TEST(RequestTracerConcurrencyTest, WritersAndExportersRaceCleanly) {
  RequestTracer tracer;
  tracer.Configure(Enabled(/*sample_every=*/1, /*buffer_capacity=*/64));
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kEventsPerWriter; ++i) {
        const TraceId id = tracer.Mint();
        tracer.RecordInstant(id, "submit", TracePhase::kSubmit,
                             static_cast<uint64_t>(i));
        tracer.RecordSpan(id, "queue", TracePhase::kQueue,
                          static_cast<uint64_t>(i),
                          static_cast<uint64_t>(i) + 5);
        if (i % 1000 == 0) {
          tracer.RecordInstant(id, "deadline_exceeded",
                               TracePhase::kTerminal,
                               static_cast<uint64_t>(i) + 6);
          tracer.Retain(id);
        }
      }
    });
  }
  std::thread reader([&tracer, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<TraceEvent> events = tracer.SnapshotEvents();
      // Decoded events must never be torn: the name is always one of the
      // literals above and spans keep start <= end.
      for (const TraceEvent& event : events) {
        ASSERT_NE(event.name, nullptr);
        const std::string_view name(event.name);
        ASSERT_TRUE(name == "submit" || name == "queue" ||
                    name == "deadline_exceeded")
            << name;
        ASSERT_LE(event.start_ns, event.end_ns);
      }
      (void)tracer.ToChromeTraceJson();
      (void)tracer.ToTestFormat();
      (void)tracer.RetainedTraces();
    }
  });
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  // Every writer minted unique ids.
  EXPECT_EQ(tracer.Mint(),
            static_cast<uint64_t>(kWriters) * kEventsPerWriter + 1);
  // All tail-kept traces survived (4 writers x 20 retains, under the
  // retained capacity).
  EXPECT_EQ(tracer.RetainedTraces().size(),
            static_cast<size_t>(kWriters) * (kEventsPerWriter / 1000));
}

}  // namespace
}  // namespace trajkit::obs
