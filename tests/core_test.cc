// Tests for the core framework: label sets, the 8-step pipeline, and the
// experiment helpers.

#include <gtest/gtest.h>

#include <set>

#include "core/experiments.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "geo/geodesy.h"
#include "synthgeo/generator.h"
#include "traj/trajectory_features.h"

namespace trajkit::core {
namespace {

using traj::Mode;

// ------------------------------------------------------------- LabelSet --

TEST(LabelSetTest, DabiriMergesDrivingAndTrain) {
  const LabelSet labels = LabelSet::Dabiri();
  EXPECT_EQ(labels.num_classes(), 5);
  EXPECT_EQ(labels.ClassOf(Mode::kCar), labels.ClassOf(Mode::kTaxi));
  EXPECT_EQ(labels.ClassOf(Mode::kTrain), labels.ClassOf(Mode::kSubway));
  EXPECT_NE(labels.ClassOf(Mode::kWalk), labels.ClassOf(Mode::kBike));
  EXPECT_EQ(labels.ClassOf(Mode::kAirplane), -1);
  EXPECT_EQ(labels.ClassOf(Mode::kUnknown), -1);
  EXPECT_EQ(labels.class_names()[3], "driving");
}

TEST(LabelSetTest, EndoKeepsSevenDistinct) {
  const LabelSet labels = LabelSet::Endo();
  EXPECT_EQ(labels.num_classes(), 7);
  std::set<int> classes;
  for (Mode mode : {Mode::kWalk, Mode::kBike, Mode::kBus, Mode::kCar,
                    Mode::kTaxi, Mode::kSubway, Mode::kTrain}) {
    const int cls = labels.ClassOf(mode);
    EXPECT_GE(cls, 0);
    EXPECT_TRUE(classes.insert(cls).second) << "duplicate class";
  }
  EXPECT_EQ(labels.ClassOf(Mode::kBoat), -1);
}

TEST(LabelSetTest, AllModesCoversEleven) {
  const LabelSet labels = LabelSet::AllModes();
  EXPECT_EQ(labels.num_classes(), 11);
  for (Mode mode : traj::AllLabeledModes()) {
    EXPECT_GE(labels.ClassOf(mode), 0);
  }
  EXPECT_EQ(labels.ClassOf(Mode::kUnknown), -1);
}

// -------------------------------------------------------------- Pipeline --

std::vector<traj::Trajectory> SmallCorpus(uint64_t seed = 3) {
  synthgeo::GeneratorOptions options;
  options.num_users = 8;
  options.days_per_user = 2;
  options.seed = seed;
  synthgeo::GeoLifeLikeGenerator generator(options);
  return generator.Generate();
}

TEST(PipelineTest, BuildsSeventyFeatureDataset) {
  const Pipeline pipeline;
  const auto dataset =
      pipeline.BuildDataset(SmallCorpus(), LabelSet::Dabiri());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_features(), 70u);
  EXPECT_GT(dataset->num_samples(), 20u);
  EXPECT_EQ(dataset->num_classes(), 5);
  EXPECT_EQ(dataset->feature_names(),
            traj::TrajectoryFeatureExtractor::FeatureNames());
  // Group ids are user ids.
  const auto groups = dataset->DistinctGroups();
  EXPECT_GT(groups.size(), 1u);
  for (int g : groups) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 8);
  }
  const PipelineStats& stats = pipeline.stats();
  EXPECT_GE(stats.segments_total, stats.segments_in_label_set);
  EXPECT_EQ(stats.segments_in_label_set, dataset->num_samples());
}

TEST(PipelineTest, LabelSetFiltersClasses) {
  const Pipeline pipeline;
  const auto corpus = SmallCorpus(5);
  const auto dabiri = pipeline.BuildDataset(corpus, LabelSet::Dabiri());
  const auto endo = pipeline.BuildDataset(corpus, LabelSet::Endo());
  ASSERT_TRUE(dabiri.ok());
  ASSERT_TRUE(endo.ok());
  // Endo keeps the same underlying modes (no boat/airplane/run/motorcycle
  // in either), so sample counts match; class counts differ.
  EXPECT_EQ(dabiri->num_classes(), 5);
  EXPECT_EQ(endo->num_classes(), 7);
}

TEST(PipelineTest, NoiseRemovalOptionRuns) {
  PipelineOptions options;
  options.remove_noise = true;
  const Pipeline pipeline(options);
  const auto dataset =
      pipeline.BuildDataset(SmallCorpus(7), LabelSet::Dabiri());
  ASSERT_TRUE(dataset.ok());
  EXPECT_GT(dataset->num_samples(), 10u);
}

TEST(PipelineTest, MinPointsControlsSegmentCount) {
  PipelineOptions strict;
  strict.segmentation.min_points = 200;
  PipelineOptions lax;
  lax.segmentation.min_points = 10;
  const auto corpus = SmallCorpus(9);
  const Pipeline strict_pipeline(strict);
  const Pipeline lax_pipeline(lax);
  const auto strict_ds =
      strict_pipeline.BuildDataset(corpus, LabelSet::Dabiri());
  const auto lax_ds = lax_pipeline.BuildDataset(corpus, LabelSet::Dabiri());
  ASSERT_TRUE(lax_ds.ok());
  if (strict_ds.ok()) {
    EXPECT_LT(strict_ds->num_samples(), lax_ds->num_samples());
  }
}

TEST(PipelineTest, EmptyLabelMatchFails) {
  // A corpus with only unknown labels yields an error.
  traj::Trajectory trajectory;
  trajectory.user_id = 0;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 50; ++i) {
    trajectory.points.push_back({pos, i * 2.0, Mode::kUnknown});
    pos = geo::Destination(pos, 0.0, 3.0);
  }
  const Pipeline pipeline;
  EXPECT_FALSE(pipeline.BuildDataset({trajectory}, LabelSet::Dabiri()).ok());
}

// ----------------------------------------------------------- Experiments --

TEST(ExperimentsTest, CvSchemeParsing) {
  EXPECT_EQ(CvSchemeFromString("random").value(), CvScheme::kRandom);
  EXPECT_EQ(CvSchemeFromString("stratified").value(),
            CvScheme::kStratified);
  EXPECT_EQ(CvSchemeFromString("user").value(), CvScheme::kUserOriented);
  EXPECT_EQ(CvSchemeFromString("user_oriented").value(),
            CvScheme::kUserOriented);
  EXPECT_FALSE(CvSchemeFromString("chrono").ok());
  EXPECT_EQ(CvSchemeToString(CvScheme::kRandom), "random");
  EXPECT_EQ(CvSchemeToString(CvScheme::kUserOriented), "user_oriented");
}

TEST(ExperimentsTest, MakeFoldsAllSchemes) {
  const Pipeline pipeline;
  const auto dataset =
      pipeline.BuildDataset(SmallCorpus(11), LabelSet::Dabiri());
  ASSERT_TRUE(dataset.ok());
  for (CvScheme scheme : {CvScheme::kRandom, CvScheme::kStratified,
                          CvScheme::kUserOriented}) {
    const auto folds = MakeFolds(scheme, dataset.value(), 3, 42);
    ASSERT_EQ(folds.size(), 3u) << CvSchemeToString(scheme);
    size_t total_test = 0;
    for (const auto& fold : folds) {
      EXPECT_FALSE(fold.train_indices.empty());
      EXPECT_FALSE(fold.test_indices.empty());
      total_test += fold.test_indices.size();
    }
    EXPECT_EQ(total_test, dataset->num_samples());
  }
}

TEST(ExperimentsTest, UserOrientedFoldsSeparateUsers) {
  const Pipeline pipeline;
  const auto dataset =
      pipeline.BuildDataset(SmallCorpus(13), LabelSet::Dabiri());
  ASSERT_TRUE(dataset.ok());
  const auto folds =
      MakeFolds(CvScheme::kUserOriented, dataset.value(), 4, 42);
  for (const auto& fold : folds) {
    std::set<int> train_users;
    std::set<int> test_users;
    for (size_t i : fold.train_indices) {
      train_users.insert(dataset->groups()[i]);
    }
    for (size_t i : fold.test_indices) {
      test_users.insert(dataset->groups()[i]);
    }
    for (int u : test_users) {
      EXPECT_EQ(train_users.count(u), 0u);
    }
  }
}

TEST(ExperimentsTest, BuildSyntheticDatasetOneCall) {
  synthgeo::GeneratorOptions generator_options;
  generator_options.num_users = 6;
  generator_options.days_per_user = 2;
  generator_options.seed = 15;
  const auto result = BuildSyntheticDataset(generator_options,
                                            PipelineOptions{},
                                            LabelSet::Endo());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.num_features(), 70u);
  EXPECT_GT(result->corpus_summary.total_points, 0u);
  EXPECT_EQ(result->pipeline_stats.segments_in_label_set,
            result->dataset.num_samples());
}

}  // namespace
}  // namespace trajkit::core
