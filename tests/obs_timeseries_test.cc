// Tests of the live telemetry plane (src/obs/timeseries.h, src/obs/slo.h):
// ring-buffer sampling semantics, reset-aware windowed deltas/quantiles,
// byte-stable JSON, the --slo_spec grammar, and the multi-window burn-rate
// breach/recover state machine. Thread-count independence of tick-sampled
// series (the determinism contract serve-replay relies on) is exercised
// with a barrier-synchronized 1-vs-8-thread run.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace trajkit::obs {

/// Registry counters are monotone in-process, so the reset-handling code
/// (a cumulative sample that *decreases* means the source restarted) can
/// only be reached with synthetic samples; this peer injects them.
class TimeSeriesStoreTestPeer {
 public:
  static void SetCounterSamples(TimeSeriesStore& store, const std::string& name,
                                const std::vector<double>& samples) {
    store.ticks_.clear();
    for (size_t i = 0; i < samples.size(); ++i) {
      store.ticks_.push_back(static_cast<double>(i));
    }
    TimeSeriesStore::Series& series = store.series_.at(name);
    series.samples.assign(samples.begin(), samples.end());
  }

  static void SetHistogramSamples(
      TimeSeriesStore& store, const std::string& name,
      const std::vector<double>& bounds,
      const std::vector<std::vector<uint64_t>>& bucket_samples) {
    store.ticks_.clear();
    TimeSeriesStore::Series& series = store.series_.at(name);
    series.bounds = bounds;
    series.hist.clear();
    for (size_t i = 0; i < bucket_samples.size(); ++i) {
      store.ticks_.push_back(static_cast<double>(i));
      TimeSeriesStore::HistSample sample;
      sample.buckets = bucket_samples[i];
      for (const uint64_t b : sample.buckets) sample.count += b;
      series.hist.push_back(std::move(sample));
    }
  }
};

namespace {

HistogramOptions Bounds(std::vector<double> bounds) {
  HistogramOptions options;
  options.bucket_bounds = std::move(bounds);
  return options;
}

TEST(QuantileFromBucketDeltasTest, InterpolatesWithinBuckets) {
  const std::vector<double> bounds = {1.0, 2.0, 5.0};
  // 2 observations in (0,1], 1 in (1,2], 1 in (2,5], 1 overflow.
  const std::vector<uint64_t> deltas = {2, 1, 1, 1};
  // p50: rank 2.5 of 5 lands in the (1,2] bucket, halfway past its 2
  // predecessors: 1 + 0.5 * 1 = 1.5.
  EXPECT_DOUBLE_EQ(QuantileFromBucketDeltas(bounds, deltas, 0.5), 1.5);
  // p0 pins to the first non-empty bucket's lower edge (0 by convention).
  EXPECT_DOUBLE_EQ(QuantileFromBucketDeltas(bounds, deltas, 0.0), 0.0);
  // p100 lands in the overflow bucket, which clamps to the last bound.
  EXPECT_DOUBLE_EQ(QuantileFromBucketDeltas(bounds, deltas, 1.0), 5.0);
  // Out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(QuantileFromBucketDeltas(bounds, deltas, 2.0), 5.0);
}

TEST(QuantileFromBucketDeltasTest, EmptyAndOverflowOnly) {
  EXPECT_DOUBLE_EQ(QuantileFromBucketDeltas({1.0, 2.0}, {0, 0, 0}, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(QuantileFromBucketDeltas({}, {}, 0.5), 0.0);
  // All mass in the overflow bucket clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(QuantileFromBucketDeltas({1.0, 2.0}, {0, 0, 4}, 0.5), 2.0);
}

TEST(TimeSeriesStoreTest, EmptyWindowsAndUnknownSeriesReadAsZero) {
  MetricsRegistry registry;
  TimeSeriesStore store(registry);
  store.TrackCounter("c");
  store.TrackHistogram("h");
  // No ticks at all: a window has no endpoints.
  EXPECT_DOUBLE_EQ(store.Delta("c"), 0.0);
  EXPECT_DOUBLE_EQ(store.Rate("c"), 0.0);
  EXPECT_DOUBLE_EQ(store.WindowedQuantile("h", 0.99), 0.0);
  WindowedHistogram wh;
  EXPECT_FALSE(store.WindowedHistogramDeltas("h", 0, &wh));
  // One tick: still no interval.
  registry.GetCounter("c").Increment(7);
  store.Tick(0.0);
  EXPECT_EQ(store.tick_count(), 1u);
  EXPECT_DOUBLE_EQ(store.Delta("c"), 0.0);
  EXPECT_DOUBLE_EQ(store.WindowedQuantile("h", 0.99), 0.0);
  // Unknown series never create anything.
  EXPECT_DOUBLE_EQ(store.Delta("missing"), 0.0);
  EXPECT_DOUBLE_EQ(store.WindowedQuantile("missing", 0.5), 0.0);
  EXPECT_TRUE(store.RecentSamples("missing").empty());
  EXPECT_EQ(store.series_count(), 2u);
}

TEST(TimeSeriesStoreTest, CounterDeltaRateAndWindows) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  TimeSeriesStore store(registry);
  store.TrackCounter("c");
  counter.Increment(10);
  store.Tick(0.0);
  counter.Increment(4);
  store.Tick(2.0);
  counter.Increment(6);
  store.Tick(4.0);
  EXPECT_DOUBLE_EQ(store.Delta("c"), 10.0);      // whole ring: 10 -> 20
  EXPECT_DOUBLE_EQ(store.Delta("c", 1), 6.0);    // last interval only
  EXPECT_DOUBLE_EQ(store.Delta("c", 100), 10.0); // over-wide clamps
  EXPECT_DOUBLE_EQ(store.Rate("c"), 10.0 / 4.0);
  EXPECT_DOUBLE_EQ(store.Rate("c", 1), 6.0 / 2.0);
  const std::vector<double> samples = store.RecentSamples("c");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0], 10.0);
  EXPECT_DOUBLE_EQ(samples[2], 20.0);
  EXPECT_EQ(store.RecentSamples("c", 2).size(), 2u);
}

TEST(TimeSeriesStoreTest, GaugeDeltaIsNetChange) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("g");
  TimeSeriesStore store(registry);
  store.TrackGauge("g");
  gauge.Set(5.0);
  store.Tick(0.0);
  gauge.Set(9.0);
  store.Tick(1.0);
  gauge.Set(2.0);
  store.Tick(2.0);
  // Net change, NOT reset-aware: gauges may legitimately decrease.
  EXPECT_DOUBLE_EQ(store.Delta("g"), -3.0);
  EXPECT_DOUBLE_EQ(store.Delta("g", 1), -7.0);
}

TEST(TimeSeriesStoreTest, LateTrackedSeriesBackfillsAndStaysAligned) {
  MetricsRegistry registry;
  TimeSeriesStore store(registry);
  store.Tick(0.0);
  store.Tick(1.0);
  registry.GetCounter("late").Increment(5);
  store.TrackCounter("late");
  store.Tick(2.0);
  const std::vector<double> samples = store.RecentSamples("late");
  ASSERT_EQ(samples.size(), 3u);  // zero-backfilled to the tick ring
  EXPECT_DOUBLE_EQ(samples[0], 0.0);
  EXPECT_DOUBLE_EQ(samples[1], 0.0);
  EXPECT_DOUBLE_EQ(samples[2], 5.0);
  // Rate maps sample indices onto tick timestamps 1:1.
  EXPECT_DOUBLE_EQ(store.Rate("late", 1), 5.0);
}

TEST(TimeSeriesStoreTest, CapacityEvictsOldestTick) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  TimeSeriesOptions options;
  options.capacity = 1;  // clamped to 2
  TimeSeriesStore store(registry, options);
  EXPECT_EQ(store.capacity(), 2u);
  store.TrackCounter("c");
  for (int i = 0; i < 5; ++i) {
    counter.Increment(1);
    store.Tick(static_cast<double>(i));
  }
  EXPECT_EQ(store.tick_count(), 2u);
  const std::vector<double> samples = store.RecentSamples("c");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0], 4.0);
  EXPECT_DOUBLE_EQ(samples[1], 5.0);
  EXPECT_DOUBLE_EQ(store.Delta("c"), 1.0);
}

TEST(TimeSeriesStoreTest, CounterWindowSpanningResetCountsPostResetOnly) {
  MetricsRegistry registry;
  registry.GetCounter("c");
  TimeSeriesStore store(registry);
  store.TrackCounter("c");
  // Samples 10 -> 14, then the process "restarts" (3), then 3 -> 5: the
  // increase is 4 + 3 + 2 = 9 — the pre-reset portion of the third
  // interval is unobservable, exactly Prometheus increase() semantics.
  TimeSeriesStoreTestPeer::SetCounterSamples(store, "c", {10, 14, 3, 5});
  EXPECT_DOUBLE_EQ(store.Delta("c"), 9.0);
  EXPECT_DOUBLE_EQ(store.Delta("c", 2), 5.0);  // 14 -> 3 -> 5
  EXPECT_DOUBLE_EQ(store.Rate("c"), 3.0);      // 9 over ticks 0..3
}

TEST(TimeSeriesStoreTest, WindowedQuantileSingleBucketWindow) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h", Bounds({1.0}));
  TimeSeriesStore store(registry);
  store.TrackHistogram("h");
  store.Tick(0.0);
  for (int i = 0; i < 4; ++i) h.Observe(0.5);
  store.Tick(1.0);
  // All 4 observations in the only finite bucket [0, 1]: p99 rank 3.96
  // interpolates to 0.99, p50 to 0.5.
  EXPECT_DOUBLE_EQ(store.WindowedQuantile("h", 0.99, 1), 0.99);
  EXPECT_DOUBLE_EQ(store.WindowedQuantile("h", 0.50, 1), 0.5);
  // A window with no observations reads 0 (ticks exist, deltas are 0).
  store.Tick(2.0);
  EXPECT_DOUBLE_EQ(store.WindowedQuantile("h", 0.99, 1), 0.0);
  // Non-histogram series refuse bucket-delta queries.
  store.TrackCounter("c");
  WindowedHistogram wh;
  EXPECT_FALSE(store.WindowedHistogramDeltas("c", 0, &wh));
}

TEST(TimeSeriesStoreTest, WindowedQuantileSpanningHistogramReset) {
  MetricsRegistry registry;
  registry.GetHistogram("h", Bounds({1.0, 2.0}));
  TimeSeriesStore store(registry);
  store.TrackHistogram("h");
  // Cumulative buckets per tick: +2 in (0,1], then a restart that has
  // already seen 1 observation in (1,2]. The window delta keeps the
  // pre-reset increment and the post-reset absolute value: {2, 1, 0}.
  TimeSeriesStoreTestPeer::SetHistogramSamples(
      store, "h", {1.0, 2.0}, {{0, 0, 0}, {2, 0, 0}, {0, 1, 0}});
  WindowedHistogram wh;
  ASSERT_TRUE(store.WindowedHistogramDeltas("h", 0, &wh));
  EXPECT_EQ(wh.count, 3u);
  ASSERT_EQ(wh.deltas.size(), 3u);
  EXPECT_EQ(wh.deltas[0], 2u);
  EXPECT_EQ(wh.deltas[1], 1u);
  // p50 rank 1.5 of 3 sits in the first bucket: 0 + 1.5/2 * 1 = 0.75.
  EXPECT_DOUBLE_EQ(store.WindowedQuantile("h", 0.5), 0.75);
}

TEST(TimeSeriesStoreTest, ToJsonIsByteStable) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("b.counter");
  Gauge& gauge = registry.GetGauge("a.gauge");
  Histogram& h = registry.GetHistogram("c.hist", Bounds({1.0}));
  TimeSeriesOptions options;
  options.capacity = 4;
  TimeSeriesStore store(registry, options);
  store.TrackCounter("b.counter");
  store.TrackGauge("a.gauge");
  store.TrackHistogram("c.hist");
  counter.Increment(2);
  gauge.Set(1.5);
  store.Tick(0.0);
  counter.Increment(3);
  h.Observe(0.5);
  store.Tick(1.0);
  const std::string expected =
      "{\"capacity\": 4, \"ticks\": [0, 1], \"series\": {"
      "\"a.gauge\": {\"kind\": \"gauge\", \"samples\": [1.5, 1.5]}, "
      "\"b.counter\": {\"kind\": \"counter\", \"samples\": [2, 5]}, "
      "\"c.hist\": {\"kind\": \"histogram\", \"count\": [0, 1], "
      "\"sum\": [0, 0.5], \"p50\": [0, 0.5], \"p99\": [0, 0.99]}}}";
  EXPECT_EQ(store.ToJson(), expected);
  EXPECT_EQ(store.ToJson(), expected);  // repeat export: byte-identical
}

TEST(TimeSeriesStoreTest, TickSampledSeriesAreThreadCountIndependent) {
  // The serve-replay determinism contract in miniature: ticks fire at
  // barriers (all workers joined), so the sampled rings depend only on
  // how much work happened between barriers, never on thread count.
  const auto run = [](int threads) {
    MetricsRegistry registry;
    Counter& counter = registry.GetCounter("work.done");
    Histogram& h = registry.GetHistogram("work.latency", Bounds({1.0, 2.0}));
    TimeSeriesStore store(registry);
    store.TrackCounter("work.done");
    store.TrackHistogram("work.latency");
    for (int barrier = 0; barrier < 3; ++barrier) {
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&counter, &h, threads] {
          for (int i = 0; i < 2400 / threads; ++i) {
            counter.Increment();
            h.Observe(0.5);
          }
        });
      }
      for (std::thread& thread : pool) thread.join();
      store.Tick(static_cast<double>(barrier));
    }
    return store.ToJson();
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(SloSpecTest, ParsesFullGrammar) {
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(
      "p99:type=latency,metric=serve.latency,ceiling_ms=50,budget=0.05,"
      "fast=4,slow=16,burn=2;"
      "shed:type=ratio,bad=a+b,total=c",
      &specs, &error))
      << error;
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "p99");
  EXPECT_EQ(specs[0].kind, SloSpec::Kind::kLatency);
  EXPECT_EQ(specs[0].metric, "serve.latency");
  EXPECT_DOUBLE_EQ(specs[0].ceiling_seconds, 0.05);
  EXPECT_DOUBLE_EQ(specs[0].budget, 0.05);
  EXPECT_EQ(specs[0].fast_window, 4u);
  EXPECT_EQ(specs[0].slow_window, 16u);
  EXPECT_DOUBLE_EQ(specs[0].burn_threshold, 2.0);
  EXPECT_EQ(specs[1].kind, SloSpec::Kind::kRatio);
  EXPECT_EQ(specs[1].bad, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(specs[1].total, (std::vector<std::string>{"c"}));
  // Defaults when unspecified.
  EXPECT_DOUBLE_EQ(specs[1].budget, 0.01);
  EXPECT_EQ(specs[1].fast_window, 8u);
  EXPECT_EQ(specs[1].slow_window, 64u);
  // Empty spec text parses to zero SLOs.
  ASSERT_TRUE(ParseSloSpecs("", &specs, &error));
  EXPECT_TRUE(specs.empty());
}

TEST(SloSpecTest, RejectsMalformedSpecsWithNamedToken) {
  std::vector<SloSpec> specs;
  std::string error;
  EXPECT_FALSE(ParseSloSpecs("type=ratio,bad=a,total=b", &specs, &error));
  EXPECT_NE(error.find("missing the <name>: prefix"), std::string::npos);
  EXPECT_FALSE(ParseSloSpecs("x:type=ratio,bad=a,total=b,zap=1", &specs,
                             &error));
  EXPECT_NE(error.find("unknown key \"zap\""), std::string::npos);
  EXPECT_FALSE(ParseSloSpecs("x:type=latency,ceiling_ms=50", &specs, &error));
  EXPECT_NE(error.find("requires metric="), std::string::npos);
  EXPECT_FALSE(ParseSloSpecs("x:type=latency,metric=m", &specs, &error));
  EXPECT_NE(error.find("requires ceiling_ms="), std::string::npos);
  EXPECT_FALSE(ParseSloSpecs("x:type=ratio,bad=a", &specs, &error));
  EXPECT_NE(error.find("requires bad= and total="), std::string::npos);
  EXPECT_FALSE(ParseSloSpecs("x:bad=a,total=b", &specs, &error));
  EXPECT_NE(error.find("missing type"), std::string::npos);
  EXPECT_FALSE(
      ParseSloSpecs("x:type=ratio,bad=a,total=b,budget=nope", &specs, &error));
  EXPECT_NE(error.find("invalid value for \"budget\""), std::string::npos);
  EXPECT_FALSE(
      ParseSloSpecs("x:type=ratio,bad=a,total=b,budget=0", &specs, &error));
  EXPECT_FALSE(ParseSloSpecs("x:type=ratio,bad=a,total=b,fast=9,slow=4",
                             &specs, &error));
  EXPECT_NE(error.find("fast window exceeds slow window"), std::string::npos);
}

TEST(SloEngineTest, RatioBreachAndRecoverTransitions) {
  MetricsRegistry registry;
  Counter& bad = registry.GetCounter("bad");
  Counter& total = registry.GetCounter("total");
  TimeSeriesStore store(registry);
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(
      "shed:type=ratio,bad=bad,total=total,budget=0.5,fast=2,slow=4",
      &specs, &error))
      << error;
  SloEngine engine(&store, &registry, specs);
  // Construction tracked the referenced counters and materialized the
  // slo.* metrics at their zero state.
  EXPECT_EQ(store.series_count(), 2u);
  ASSERT_NE(registry.FindCounter("slo.shed.breaches"), nullptr);
  EXPECT_DOUBLE_EQ(registry.FindGauge("slo.shed.budget_remaining")->value(),
                   1.0);
  EXPECT_TRUE(engine.healthy());

  const auto step = [&](uint64_t tick, uint64_t good_requests,
                        uint64_t bad_requests) {
    total.Increment(good_requests + bad_requests);
    bad.Increment(bad_requests);
    store.Tick(static_cast<double>(tick));
    engine.Evaluate(tick);
  };
  step(0, 100, 0);
  step(1, 100, 0);
  EXPECT_TRUE(engine.healthy());
  // Bad fraction 0.5 over both windows: burn = 0.5/0.5 = 1.0 >= 1 in the
  // fast AND slow window -> breach.
  step(2, 0, 100);
  EXPECT_FALSE(engine.healthy());
  std::vector<SloState> states = engine.states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].breached);
  EXPECT_EQ(states[0].transitions, 1u);
  EXPECT_DOUBLE_EQ(states[0].burn_fast, 1.0);
  EXPECT_DOUBLE_EQ(states[0].burn_slow, 1.0);
  EXPECT_DOUBLE_EQ(states[0].budget_remaining, 0.0);
  EXPECT_EQ(registry.FindCounter("slo.shed.breaches")->value(), 1u);
  EXPECT_DOUBLE_EQ(registry.FindGauge("slo.shed.breached")->value(), 1.0);
  // Still breaching: no second transition, breaches counter unchanged.
  step(3, 0, 100);
  EXPECT_FALSE(engine.healthy());
  EXPECT_EQ(engine.states()[0].transitions, 1u);
  EXPECT_EQ(registry.FindCounter("slo.shed.breaches")->value(), 1u);
  // Good traffic: the fast window drains first; breach clears as soon as
  // one of the two windows drops below the threshold.
  step(4, 100, 0);
  step(5, 100, 0);
  EXPECT_TRUE(engine.healthy());
  states = engine.states();
  EXPECT_FALSE(states[0].breached);
  EXPECT_EQ(states[0].transitions, 2u);
  EXPECT_DOUBLE_EQ(registry.FindGauge("slo.shed.breached")->value(), 0.0);
  const std::vector<std::string> log = engine.transition_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0],
            "tick=2 slo=shed ok->breach burn_fast=1 burn_slow=1");
  EXPECT_EQ(log[1].find("tick=5 slo=shed breach->ok"), 0u) << log[1];
}

TEST(SloEngineTest, LatencyObjectiveUsesBucketResolutionCeiling) {
  MetricsRegistry registry;
  Histogram& latency =
      registry.GetHistogram("lat", Bounds({0.01, 0.05, 0.1}));
  TimeSeriesStore store(registry);
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(
      "p99:type=latency,metric=lat,ceiling_ms=50,budget=0.25,fast=1,slow=1",
      &specs, &error))
      << error;
  SloEngine engine(&store, &registry, specs);
  store.Tick(0.0);
  engine.Evaluate(0);
  EXPECT_TRUE(engine.healthy());
  // 3 good (<= 50ms ceiling), 1 bad: fraction 0.25 = budget -> burn 1.0.
  for (int i = 0; i < 3; ++i) latency.Observe(0.02);
  latency.Observe(0.2);
  store.Tick(1.0);
  engine.Evaluate(1);
  EXPECT_FALSE(engine.healthy());
  EXPECT_DOUBLE_EQ(engine.states()[0].burn_fast, 1.0);
  // A clean window recovers (fast=slow=1: only the last interval counts).
  for (int i = 0; i < 4; ++i) latency.Observe(0.02);
  store.Tick(2.0);
  engine.Evaluate(2);
  EXPECT_TRUE(engine.healthy());
  EXPECT_EQ(engine.states()[0].transitions, 2u);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(WriteMetricsArtifactsTest, WritesAllRequestedArtifacts) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(3);
  TimeSeriesStore store(registry);
  store.TrackCounter("c");
  store.Tick(0.0);
  const std::string dir = ::testing::TempDir();
  MetricsArtifactOptions options;
  options.metrics_json = dir + "/artifacts_test_metrics.json";
  options.metrics_prom = dir + "/artifacts_test_metrics.prom";
  options.timeseries_json = dir + "/artifacts_test_timeseries.json";
  options.timeseries = &store;
  ASSERT_TRUE(WriteMetricsArtifacts(options, registry));
  EXPECT_EQ(ReadFileOrDie(options.metrics_json), registry.ToJson());
  EXPECT_EQ(ReadFileOrDie(options.metrics_prom),
            registry.ToPrometheusText("trajkit_"));
  EXPECT_EQ(ReadFileOrDie(options.timeseries_json), store.ToJson());
  std::remove(options.metrics_json.c_str());
  std::remove(options.metrics_prom.c_str());
  std::remove(options.timeseries_json.c_str());
}

TEST(WriteMetricsArtifactsTest, TimeseriesPathWithoutStoreFailsLoudly) {
  MetricsRegistry registry;
  MetricsArtifactOptions options;
  options.timeseries_json =
      ::testing::TempDir() + "/artifacts_test_orphan.json";
  EXPECT_FALSE(WriteMetricsArtifacts(options, registry));
  // Empty options are a successful no-op.
  EXPECT_TRUE(WriteMetricsArtifacts({}, registry));
}

}  // namespace
}  // namespace trajkit::obs
