// Tests for correlation statistics, trajectory resampling, and GeoJSON
// export.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "geo/geodesy.h"
#include "stats/correlation.h"
#include "traj/geojson.h"
#include "traj/resample.h"
#include "traj/segmentation.h"
#include "traj/types.h"

namespace trajkit {
namespace {

// ----------------------------------------------------------- Correlation --

TEST(CorrelationTest, PerfectPositiveAndNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(stats::PearsonCorrelation(x, y).value(), 1.0, 1e-12);
  EXPECT_NEAR(stats::PearsonCorrelation(x, z).value(), -1.0, 1e-12);
}

TEST(CorrelationTest, KnownValue) {
  // np.corrcoef([1,2,3,4,5],[2,1,4,3,5])[0,1] = 0.8
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
  EXPECT_NEAR(stats::PearsonCorrelation(x, y).value(), 0.8, 1e-12);
}

TEST(CorrelationTest, IndependentSamplesNearZero) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.NextGaussian());
    y.push_back(rng.NextGaussian());
  }
  EXPECT_NEAR(stats::PearsonCorrelation(x, y).value(), 0.0, 0.03);
}

TEST(CorrelationTest, InvalidInputsRejected) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> short_y = {1.0};
  EXPECT_FALSE(stats::PearsonCorrelation(x, short_y).ok());
  EXPECT_FALSE(stats::PearsonCorrelation({}, {}).ok());
  const std::vector<double> constant = {3.0, 3.0};
  EXPECT_FALSE(stats::PearsonCorrelation(x, constant).ok());
}

TEST(CorrelationTest, SpearmanInvariantToMonotoneTransform) {
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> y_cubed;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Gaussian(0.0, 1.0);
    x.push_back(v);
    const double noise = v + rng.Gaussian(0.0, 0.3);
    y.push_back(noise);
    y_cubed.push_back(noise * noise * noise);  // Monotone transform.
  }
  const double rho1 = stats::SpearmanCorrelation(x, y).value();
  const double rho2 = stats::SpearmanCorrelation(x, y_cubed).value();
  EXPECT_NEAR(rho1, rho2, 1e-12);
  EXPECT_GT(rho1, 0.8);
}

TEST(CorrelationTest, SpearmanHandlesTies) {
  const std::vector<double> x = {1.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 3.0};
  const auto rho = stats::SpearmanCorrelation(x, y);
  ASSERT_TRUE(rho.ok());
  EXPECT_GT(rho.value(), 0.5);
  EXPECT_LE(rho.value(), 1.0);
}

TEST(CorrelationTest, MeanPairwise) {
  const std::vector<std::vector<double>> series = {
      {1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, {3.0, 2.0, 1.0}};
  // Pairs: (+1, -1, -1) → mean = -1/3.
  EXPECT_NEAR(stats::MeanPairwiseCorrelation(series).value(), -1.0 / 3.0,
              1e-12);
  const std::vector<std::vector<double>> single = {{1.0, 2.0}};
  EXPECT_FALSE(stats::MeanPairwiseCorrelation(single).ok());
}

// ------------------------------------------------------------- Resample --

std::vector<traj::TrajectoryPoint> IrregularRun(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<traj::TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    points.push_back({pos, t, traj::Mode::kWalk});
    pos = geo::Destination(pos, 0.0, 3.0);
    t += rng.Uniform(0.5, 5.0);
  }
  return points;
}

TEST(ResampleTest, UniformGridSpacing) {
  const auto points = IrregularRun(100, 3);
  traj::ResampleOptions options;
  options.interval_seconds = 2.0;
  options.max_gap_seconds = 0.0;  // Interpolate everything.
  const auto resampled = traj::ResampleUniform(points, options);
  ASSERT_TRUE(resampled.ok());
  ASSERT_GT(resampled->size(), 10u);
  for (size_t i = 1; i < resampled->size(); ++i) {
    EXPECT_NEAR((*resampled)[i].timestamp - (*resampled)[i - 1].timestamp,
                2.0, 1e-9);
  }
}

TEST(ResampleTest, InterpolatesPositionsLinearly) {
  // Two points 10 s apart; resample at 5 s → midpoint.
  std::vector<traj::TrajectoryPoint> points;
  points.push_back({geo::LatLon{0.0, 0.0}, 0.0, traj::Mode::kWalk});
  points.push_back({geo::LatLon{0.001, 0.002}, 10.0, traj::Mode::kWalk});
  traj::ResampleOptions options;
  options.interval_seconds = 5.0;
  const auto resampled = traj::ResampleUniform(points, options);
  ASSERT_TRUE(resampled.ok());
  ASSERT_GE(resampled->size(), 2u);
  EXPECT_NEAR((*resampled)[1].timestamp, 5.0, 1e-9);
  EXPECT_NEAR((*resampled)[1].pos.lat_deg, 0.0005, 1e-12);
  EXPECT_NEAR((*resampled)[1].pos.lon_deg, 0.001, 1e-12);
}

TEST(ResampleTest, DoesNotInterpolateAcrossLargeGaps) {
  std::vector<traj::TrajectoryPoint> points;
  geo::LatLon a{39.9, 116.4};
  points.push_back({a, 0.0, traj::Mode::kWalk});
  points.push_back({geo::Destination(a, 0.0, 5.0), 2.0, traj::Mode::kWalk});
  // 500 s signal loss.
  geo::LatLon far = geo::Destination(a, 0.0, 5000.0);
  points.push_back({far, 502.0, traj::Mode::kWalk});
  points.push_back(
      {geo::Destination(far, 0.0, 5.0), 504.0, traj::Mode::kWalk});
  traj::ResampleOptions options;
  options.interval_seconds = 2.0;
  options.max_gap_seconds = 60.0;
  const auto resampled = traj::ResampleUniform(points, options);
  ASSERT_TRUE(resampled.ok());
  // No synthetic points inside (2, 502).
  for (const auto& p : resampled.value()) {
    EXPECT_FALSE(p.timestamp > 2.5 && p.timestamp < 501.5)
        << "interpolated across the gap at t=" << p.timestamp;
  }
}

TEST(ResampleTest, PreservesModeOfSourceInterval) {
  std::vector<traj::TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 10; ++i) {
    points.push_back({pos, i * 3.0,
                      i < 5 ? traj::Mode::kWalk : traj::Mode::kBus});
    pos = geo::Destination(pos, 0.0, 5.0);
  }
  traj::ResampleOptions options;
  options.interval_seconds = 1.0;
  const auto resampled = traj::ResampleUniform(points, options);
  ASSERT_TRUE(resampled.ok());
  for (const auto& p : resampled.value()) {
    if (p.timestamp < 12.0) {
      EXPECT_EQ(p.mode, traj::Mode::kWalk) << "t=" << p.timestamp;
    }
    if (p.timestamp >= 15.0) {
      EXPECT_EQ(p.mode, traj::Mode::kBus) << "t=" << p.timestamp;
    }
  }
}

TEST(ResampleTest, RejectsBadInput) {
  const auto one_point = IrregularRun(1, 5);
  EXPECT_FALSE(traj::ResampleUniform(one_point).ok());
  const auto points = IrregularRun(10, 6);
  traj::ResampleOptions options;
  options.interval_seconds = 0.0;
  EXPECT_FALSE(traj::ResampleUniform(points, options).ok());
}

// -------------------------------------------------------------- GeoJSON --

traj::Segment SimpleSegment(int n = 20) {
  traj::Segment segment;
  segment.user_id = 3;
  segment.mode = traj::Mode::kBike;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < n; ++i) {
    segment.points.push_back({pos, 100.0 + i * 2.0, traj::Mode::kBike});
    pos = geo::Destination(pos, 45.0, 10.0);
  }
  return segment;
}

TEST(GeoJsonTest, EmitsFeatureCollection) {
  const std::string json = traj::SegmentsToGeoJson({SimpleSegment()});
  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"bike\""), std::string::npos);
  EXPECT_NE(json.find("\"user\":3"), std::string::npos);
  // Coordinates are [lon, lat].
  EXPECT_NE(json.find("[116.4"), std::string::npos);
}

TEST(GeoJsonTest, DecimationKeepsEndpoints) {
  const traj::Segment segment = SimpleSegment(21);
  traj::GeoJsonOptions options;
  options.decimation = 10;
  const std::string json = traj::SegmentsToGeoJson({segment}, options);
  // Count coordinate pairs.
  size_t count = 0;
  for (size_t pos = json.find("[11"); pos != std::string::npos;
       pos = json.find("[11", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);  // Indices 0, 10, 20.
  // Final point present.
  const std::string last = StrPrintf(
      "%.6f", segment.points.back().pos.lat_deg);
  EXPECT_NE(json.find(last), std::string::npos);
}

TEST(GeoJsonTest, EmptySegmentsSkipped) {
  traj::Segment empty;
  const std::string json = traj::SegmentsToGeoJson({empty});
  EXPECT_EQ(json, R"({"type":"FeatureCollection","features":[]})");
}

TEST(GeoJsonTest, TrajectoryWrapper) {
  traj::Trajectory trajectory;
  trajectory.user_id = 9;
  trajectory.points = SimpleSegment(5).points;
  const std::string json = traj::TrajectoryToGeoJson(trajectory);
  EXPECT_NE(json.find("\"user\":9"), std::string::npos);
}

TEST(GeoJsonTest, FileWriteWorks) {
  const std::string path =
      testing::TempDir() + "/trajkit_geojson/out.geojson";
  ASSERT_TRUE(
      traj::WriteSegmentsGeoJson({SimpleSegment()}, path).ok());
}

}  // namespace
}  // namespace trajkit
