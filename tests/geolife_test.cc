// Tests for the real-GeoLife directory reader (PLT + labels.txt parsing).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/csv.h"
#include "geolife/geolife_reader.h"
#include "traj/types.h"

namespace trajkit::geolife {
namespace {

constexpr char kPltSample[] =
    "Geolife trajectory\n"
    "WGS 84\n"
    "Altitude is in Feet\n"
    "Reserved 3\n"
    "0,2,255,My Track,0,0,2,8421376\n"
    "0\n"
    "39.984702,116.318417,0,492,39744.1201851852,2008-10-23,02:53:04\n"
    "39.984683,116.31845,0,492,39744.1202546296,2008-10-23,02:53:10\n"
    "39.984686,116.318417,0,492,39744.1203240741,2008-10-23,02:53:15\n";

constexpr char kLabelsSample[] =
    "Start Time\tEnd Time\tTransportation Mode\n"
    "2008/10/23 02:53:00\t2008/10/23 02:53:12\twalk\n"
    "2008/10/23 02:53:13\t2008/10/23 03:10:00\tbus\n";

TEST(GeoLifeDateTimeTest, ParsesSlashAndDashFormats) {
  const auto a = ParseGeoLifeDateTime("2008/10/23", "02:53:04");
  const auto b = ParseGeoLifeDateTime("2008-10-23", "02:53:04");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value(), b.value());
  // 2008-10-23 00:00 UTC = 1224720000; 02:53:04 = +10384 s.
  EXPECT_DOUBLE_EQ(a.value(), 1224720000.0 + 10384.0);
}

TEST(GeoLifeDateTimeTest, EpochReference) {
  const auto epoch = ParseGeoLifeDateTime("1970/01/01", "00:00:00");
  ASSERT_TRUE(epoch.ok());
  EXPECT_DOUBLE_EQ(epoch.value(), 0.0);
}

TEST(GeoLifeDateTimeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseGeoLifeDateTime("2008/10", "02:53:04").ok());
  EXPECT_FALSE(ParseGeoLifeDateTime("2008/10/23", "0253").ok());
  EXPECT_FALSE(ParseGeoLifeDateTime("2008/13/23", "02:53:04").ok());
  EXPECT_FALSE(ParseGeoLifeDateTime("2008/10/23", "25:00:00").ok());
}

TEST(PltParserTest, ParsesSampleWithPreamble) {
  const auto points = ParsePltText(kPltSample);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_NEAR((*points)[0].pos.lat_deg, 39.984702, 1e-9);
  EXPECT_NEAR((*points)[0].pos.lon_deg, 116.318417, 1e-9);
  EXPECT_EQ((*points)[0].mode, traj::Mode::kUnknown);
  EXPECT_LT((*points)[0].timestamp, (*points)[1].timestamp);
}

TEST(PltParserTest, SkipsInvalidRows) {
  std::string text(kPltSample);
  text += "not,a,valid,row,x,y,z\n";
  text += "999.0,116.3,0,492,39744.13,2008-10-23,02:54:00\n";  // Bad lat.
  const auto points = ParsePltText(text);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 3u);
}

TEST(PltParserTest, SortsOutOfOrderFixes) {
  std::string text =
      "h1\nh2\nh3\nh4\nh5\nh6\n"
      "39.98,116.31,0,0,0,2008-10-23,02:55:00\n"
      "39.99,116.32,0,0,0,2008-10-23,02:53:00\n";
  const auto points = ParsePltText(text);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 2u);
  EXPECT_LT((*points)[0].timestamp, (*points)[1].timestamp);
  EXPECT_NEAR((*points)[0].pos.lat_deg, 39.99, 1e-9);
}

TEST(LabelsParserTest, ParsesIntervals) {
  const auto intervals = ParseLabelsText(kLabelsSample);
  ASSERT_TRUE(intervals.ok());
  ASSERT_EQ(intervals->size(), 2u);
  EXPECT_EQ((*intervals)[0].mode, traj::Mode::kWalk);
  EXPECT_EQ((*intervals)[1].mode, traj::Mode::kBus);
  EXPECT_LT((*intervals)[0].start_time, (*intervals)[0].end_time);
}

TEST(LabelsParserTest, SkipsUnknownModes) {
  const std::string text =
      "Start Time\tEnd Time\tTransportation Mode\n"
      "2008/10/23 02:53:00\t2008/10/23 02:53:12\thovercraft\n"
      "2008/10/23 02:54:00\t2008/10/23 02:55:00\twalk\n";
  const auto intervals = ParseLabelsText(text);
  ASSERT_TRUE(intervals.ok());
  ASSERT_EQ(intervals->size(), 1u);
  EXPECT_EQ((*intervals)[0].mode, traj::Mode::kWalk);
}

TEST(ApplyLabelsTest, AssignsByInterval) {
  auto points = ParsePltText(kPltSample);
  ASSERT_TRUE(points.ok());
  auto intervals = ParseLabelsText(kLabelsSample);
  ASSERT_TRUE(intervals.ok());
  ApplyLabels(std::move(intervals).value(), points.value());
  // 02:53:04 and 02:53:10 fall in the walk interval; 02:53:15 in bus.
  EXPECT_EQ((*points)[0].mode, traj::Mode::kWalk);
  EXPECT_EQ((*points)[1].mode, traj::Mode::kWalk);
  EXPECT_EQ((*points)[2].mode, traj::Mode::kBus);
}

TEST(ApplyLabelsTest, PointsOutsideIntervalsStayUnknown) {
  auto points = ParsePltText(kPltSample);
  ASSERT_TRUE(points.ok());
  std::vector<LabelInterval> intervals = {
      {0.0, 1.0, traj::Mode::kWalk}};  // Far in the past.
  ApplyLabels(intervals, points.value());
  for (const auto& p : points.value()) {
    EXPECT_EQ(p.mode, traj::Mode::kUnknown);
  }
}

TEST(ApplyLabelsTest, UnsortedIntervalsHandled) {
  auto points = ParsePltText(kPltSample);
  ASSERT_TRUE(points.ok());
  auto intervals = ParseLabelsText(kLabelsSample).value();
  std::swap(intervals[0], intervals[1]);  // Unsort.
  ApplyLabels(std::move(intervals), points.value());
  EXPECT_EQ((*points)[0].mode, traj::Mode::kWalk);
  EXPECT_EQ((*points)[2].mode, traj::Mode::kBus);
}

TEST(WritePltTest, RoundTripsThroughParser) {
  auto original = ParsePltText(kPltSample).value();
  const std::string text = WritePltText(original);
  const auto reparsed = ParsePltText(text);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR((*reparsed)[i].pos.lat_deg, original[i].pos.lat_deg, 1e-6);
    EXPECT_NEAR((*reparsed)[i].pos.lon_deg, original[i].pos.lon_deg, 1e-6);
    EXPECT_NEAR((*reparsed)[i].timestamp, original[i].timestamp, 1.0);
  }
}

class GeoLifeDirectoryTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(testing::TempDir()) /
            "trajkit_geolife_test";
    std::filesystem::remove_all(root_);
    const auto user_dir = root_ / "000";
    std::filesystem::create_directories(user_dir / "Trajectory");
    ASSERT_TRUE(WriteStringToFile(
                    (user_dir / "Trajectory" / "20081023025304.plt")
                        .string(),
                    kPltSample)
                    .ok());
    ASSERT_TRUE(WriteStringToFile((user_dir / "labels.txt").string(),
                                  kLabelsSample)
                    .ok());
    // A second, unlabelled user.
    const auto user_dir2 = root_ / "001";
    std::filesystem::create_directories(user_dir2 / "Trajectory");
    ASSERT_TRUE(WriteStringToFile(
                    (user_dir2 / "Trajectory" / "a.plt").string(),
                    kPltSample)
                    .ok());
    // A non-user directory that must be skipped.
    std::filesystem::create_directories(root_ / "README_dir");
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
};

TEST_F(GeoLifeDirectoryTest, LoadsLabelledUser) {
  const auto user = LoadGeoLifeUser((root_ / "000").string(), 0);
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(user->user_id, 0);
  ASSERT_EQ(user->points.size(), 3u);
  EXPECT_EQ(user->points[0].mode, traj::Mode::kWalk);
  EXPECT_EQ(user->points[2].mode, traj::Mode::kBus);
}

TEST_F(GeoLifeDirectoryTest, LoadsUnlabelledUser) {
  const auto user = LoadGeoLifeUser((root_ / "001").string(), 1);
  ASSERT_TRUE(user.ok());
  for (const auto& p : user->points) {
    EXPECT_EQ(p.mode, traj::Mode::kUnknown);
  }
}

TEST_F(GeoLifeDirectoryTest, LoadsWholeCorpusSkippingNonUsers) {
  const auto corpus = LoadGeoLifeCorpus(root_.string());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 2u);
  EXPECT_EQ((*corpus)[0].user_id, 0);
  EXPECT_EQ((*corpus)[1].user_id, 1);
}

TEST_F(GeoLifeDirectoryTest, MissingDirectoryIsNotFound) {
  EXPECT_FALSE(LoadGeoLifeCorpus((root_ / "missing").string()).ok());
  EXPECT_FALSE(LoadGeoLifeUser((root_ / "missing").string(), 9).ok());
}

}  // namespace
}  // namespace trajkit::geolife
