// Tests of the embedded HTTP scrape endpoint (src/obs/http_export.h):
// endpoint routing, the /metrics byte-identity contract, /healthz wired
// to SLO state, /quitquitquit, clean joinable shutdown, and concurrent
// scrapes racing a metric-writing ingest thread (run under TSan via the
// `concurrency` ctest label).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/http_export.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace trajkit::obs {
namespace {

struct HttpReply {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Minimal HTTP/1.0 client: one request, read to EOF (the server closes
/// after every response — that is the protocol).
HttpReply Fetch(int port, const std::string& path,
                const std::string& method = "GET") {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  const std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 200 OK\r\nheaders\r\n\r\nbody"
  if (raw.size() > 12) reply.status = std::atoi(raw.c_str() + 9);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  const size_t ct = raw.find("Content-Type: ");
  if (ct != std::string::npos && ct < header_end) {
    const size_t eol = raw.find("\r\n", ct);
    reply.content_type = raw.substr(ct + 14, eol - ct - 14);
  }
  reply.body = raw.substr(header_end + 4);
  return reply;
}

TEST(HttpExportServerTest, StartsOnEphemeralPortAndStopsCleanly) {
  MetricsRegistry registry;
  HttpExportOptions options;
  options.registry = &registry;
  HttpExportServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  // A second Start on a running server fails loudly.
  EXPECT_FALSE(server.Start(options, &error));
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
  // And the server is restartable after a clean stop.
  ASSERT_TRUE(server.Start(options, &error)) << error;
  EXPECT_EQ(Fetch(server.port(), "/healthz").status, 200);
  server.Stop();
}

TEST(HttpExportServerTest, MetricsScrapeMatchesFileDumpBytes) {
  MetricsRegistry registry;
  registry.GetCounter("serve.requests").Increment(42);
  registry.GetGauge("serve.depth").Set(1.5);
  registry.GetHistogram("serve.latency").Observe(0.01);
  HttpExportOptions options;
  options.registry = &registry;
  HttpExportServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  const HttpReply reply = Fetch(server.port(), "/metrics");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.content_type, "text/plain; version=0.0.4; charset=utf-8");
  // The byte-identity contract with --metrics_prom: same registry state,
  // same bytes — and the scrape itself must not have mutated anything.
  EXPECT_EQ(reply.body, registry.ToPrometheusText("trajkit_"));
  const HttpReply json = Fetch(server.port(), "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.body, registry.ToJson());
  EXPECT_EQ(reply.body, registry.ToPrometheusText("trajkit_"));
  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
}

TEST(HttpExportServerTest, RoutesUnwiredEndpointsTo404) {
  MetricsRegistry registry;
  HttpExportOptions options;
  options.registry = &registry;
  HttpExportServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  EXPECT_EQ(Fetch(server.port(), "/timeseries.json").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/statusz").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/tracez").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/quitquitquit").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/nonsense").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/metrics", "POST").status, 405);
  // /healthz with no SLO engine is vacuously healthy.
  const HttpReply healthz = Fetch(server.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "ok\n");
  server.Stop();
}

TEST(HttpExportServerTest, WiredEndpointsServeTimeseriesStatuszAndQuit) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(5);
  TimeSeriesStore store(registry);
  store.TrackCounter("c");
  store.Tick(0.0);
  std::atomic<int> quits{0};
  HttpExportOptions options;
  options.registry = &registry;
  options.timeseries = &store;
  options.statusz = [] { return std::string("status page body\n"); };
  options.on_quit = [&quits] { ++quits; };
  HttpExportServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  const HttpReply ts = Fetch(server.port(), "/timeseries.json");
  EXPECT_EQ(ts.status, 200);
  EXPECT_EQ(ts.body, store.ToJson());
  const HttpReply statusz = Fetch(server.port(), "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.body, "status page body\n");
  const HttpReply quit = Fetch(server.port(), "/quitquitquit");
  EXPECT_EQ(quit.status, 200);
  EXPECT_EQ(quit.body, "bye\n");
  server.Stop();  // the owner stops the server; on_quit only signals
  EXPECT_EQ(quits.load(), 1);
}

TEST(HttpExportServerTest, HealthzReflectsSloBreach) {
  MetricsRegistry registry;
  Counter& bad = registry.GetCounter("bad");
  Counter& total = registry.GetCounter("total");
  TimeSeriesStore store(registry);
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(
      "shed:type=ratio,bad=bad,total=total,budget=0.5,fast=1,slow=1",
      &specs, &error))
      << error;
  SloEngine engine(&store, &registry, specs);
  HttpExportOptions options;
  options.registry = &registry;
  options.slo = &engine;
  HttpExportServer server;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  EXPECT_EQ(Fetch(server.port(), "/healthz").status, 200);
  // Drive the SLO into breach: 100% bad over both windows.
  store.Tick(0.0);
  engine.Evaluate(0);
  total.Increment(10);
  bad.Increment(10);
  store.Tick(1.0);
  engine.Evaluate(1);
  const HttpReply breaching = Fetch(server.port(), "/healthz");
  EXPECT_EQ(breaching.status, 503);
  EXPECT_EQ(breaching.body, "breaching: shed\n");
  // Recovery flips it back.
  total.Increment(10);
  store.Tick(2.0);
  engine.Evaluate(2);
  EXPECT_EQ(Fetch(server.port(), "/healthz").status, 200);
  server.Stop();
}

TEST(HttpExportServerTest, ConcurrentScrapesDuringIngestAreClean) {
  // The TSan contract: scrape threads hammer every read endpoint while an
  // ingest thread writes metrics and ticks the store, racing the whole
  // registry -> timeseries -> SLO -> HTTP read path.
  MetricsRegistry registry;
  Counter& requests = registry.GetCounter("serve.requests");
  Histogram& latency = registry.GetHistogram("serve.latency");
  TimeSeriesStore store(registry);
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(
      "lat:type=latency,metric=serve.latency,ceiling_ms=100,fast=2,slow=4",
      &specs, &error))
      << error;
  SloEngine engine(&store, &registry, specs);
  store.TrackCounter("serve.requests");
  HttpExportOptions options;
  options.registry = &registry;
  options.timeseries = &store;
  options.slo = &engine;
  HttpExportServer server;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::thread ingest([&] {
    for (uint64_t tick = 0; !stop.load(std::memory_order_relaxed); ++tick) {
      requests.Increment(3);
      latency.Observe(0.005);
      store.Tick(static_cast<double>(tick));
      engine.Evaluate(tick);
    }
  });
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([port, t] {
      static constexpr const char* kPaths[] = {
          "/metrics", "/metrics.json", "/timeseries.json", "/healthz"};
      for (int i = 0; i < 8; ++i) {
        const HttpReply reply = Fetch(port, kPaths[(t + i) % 4]);
        EXPECT_EQ(reply.status, 200) << kPaths[(t + i) % 4];
        EXPECT_FALSE(reply.body.empty());
      }
    });
  }
  for (std::thread& scraper : scrapers) scraper.join();
  stop.store(true, std::memory_order_relaxed);
  ingest.join();
  EXPECT_GE(server.requests_served(), 32u);
  // Stop with no in-flight work left: the accept loop must join.
  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace trajkit::obs
