// Tests for the temporal evaluation machinery: Dataset timestamps,
// TemporalHoldout / TemporalKFold, the core scheme plumbing, and time
// round-tripping through the dataset CSV format.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/experiments.h"
#include "core/label_sets.h"
#include "ml/dataset_io.h"
#include "ml/splits.h"
#include "synthgeo/generator.h"

namespace trajkit::ml {
namespace {

// ------------------------------------------------------- Dataset::times --

Dataset TimedDataset(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<double> times;
  for (int i = 0; i < n; ++i) {
    rows.push_back({rng.NextDouble(), rng.NextDouble()});
    labels.push_back(static_cast<int>(rng.NextBounded(2)));
    times.push_back(1000.0 * i + rng.Uniform(0.0, 500.0));
  }
  Dataset ds = std::move(Dataset::Create(Matrix::FromRows(rows),
                                         std::move(labels), {}, {},
                                         {"a", "b"}))
                   .value();
  EXPECT_TRUE(ds.SetTimes(std::move(times)).ok());
  return ds;
}

TEST(DatasetTimesTest, SetAndPropagateThroughSelection) {
  const Dataset ds = TimedDataset(20, 1);
  EXPECT_TRUE(ds.has_times());
  const std::vector<size_t> rows = {5, 2, 9};
  const Dataset sub = ds.SelectSamples(rows);
  ASSERT_TRUE(sub.has_times());
  EXPECT_DOUBLE_EQ(sub.times()[0], ds.times()[5]);
  EXPECT_DOUBLE_EQ(sub.times()[1], ds.times()[2]);
  const std::vector<int> cols = {1};
  EXPECT_TRUE(ds.SelectFeatures(cols).has_times());
}

TEST(DatasetTimesTest, LengthMismatchRejected) {
  Dataset ds = TimedDataset(5, 2);
  EXPECT_FALSE(ds.SetTimes({1.0, 2.0}).ok());
}

// ------------------------------------------------------ TemporalHoldout --

TEST(TemporalHoldoutTest, TrainPrecedesTest) {
  const Dataset ds = TimedDataset(50, 3);
  const FoldSplit split = TemporalHoldout(ds.times(), 0.2);
  EXPECT_EQ(split.test_indices.size(), 10u);
  EXPECT_EQ(split.train_indices.size(), 40u);
  double max_train = -1e300;
  double min_test = 1e300;
  for (size_t i : split.train_indices) {
    max_train = std::max(max_train, ds.times()[i]);
  }
  for (size_t i : split.test_indices) {
    min_test = std::min(min_test, ds.times()[i]);
  }
  EXPECT_LE(max_train, min_test);
}

TEST(TemporalHoldoutTest, UnsortedInputHandled) {
  // Times in shuffled order: the split is still chronological.
  std::vector<double> times = {50.0, 10.0, 40.0, 20.0, 30.0};
  const FoldSplit split = TemporalHoldout(times, 0.4);
  // Latest 2 samples (times 40, 50) are indices 2 and 0.
  const std::set<size_t> test(split.test_indices.begin(),
                              split.test_indices.end());
  EXPECT_EQ(test, (std::set<size_t>{0u, 2u}));
}

TEST(TemporalHoldoutTest, AtLeastOneSampleEachSide) {
  const std::vector<double> times = {1.0, 2.0};
  const FoldSplit tiny = TemporalHoldout(times, 0.01);
  EXPECT_EQ(tiny.test_indices.size(), 1u);
  EXPECT_EQ(tiny.train_indices.size(), 1u);
}

// -------------------------------------------------------- TemporalKFold --

TEST(TemporalKFoldTest, ForwardChainingProperties) {
  const Dataset ds = TimedDataset(60, 4);
  const auto folds = TemporalKFold(ds.times(), 4);
  ASSERT_EQ(folds.size(), 4u);
  size_t previous_train_size = 0;
  for (const FoldSplit& fold : folds) {
    EXPECT_FALSE(fold.train_indices.empty());
    EXPECT_FALSE(fold.test_indices.empty());
    // Training set grows monotonically (forward chaining).
    EXPECT_GE(fold.train_indices.size(), previous_train_size);
    previous_train_size = fold.train_indices.size();
    // Train strictly precedes test in time.
    double max_train = -1e300;
    double min_test = 1e300;
    for (size_t i : fold.train_indices) {
      max_train = std::max(max_train, ds.times()[i]);
    }
    for (size_t i : fold.test_indices) {
      min_test = std::min(min_test, ds.times()[i]);
    }
    EXPECT_LE(max_train, min_test);
  }
  // Later folds' test sets are disjoint and ordered.
  std::set<size_t> seen;
  for (const FoldSplit& fold : folds) {
    for (size_t i : fold.test_indices) {
      EXPECT_TRUE(seen.insert(i).second) << "index tested twice: " << i;
    }
  }
}

TEST(TemporalKFoldTest, SingleFoldIsHoldout) {
  const Dataset ds = TimedDataset(10, 5);
  const auto folds = TemporalKFold(ds.times(), 1);
  ASSERT_EQ(folds.size(), 1u);
  EXPECT_EQ(folds[0].train_indices.size() + folds[0].test_indices.size(),
            10u);
}

}  // namespace
}  // namespace trajkit::ml

namespace trajkit::core {
namespace {

TEST(TemporalSchemeTest, ParseAndName) {
  EXPECT_EQ(CvSchemeFromString("temporal").value(), CvScheme::kTemporal);
  EXPECT_EQ(CvSchemeToString(CvScheme::kTemporal), "temporal");
}

TEST(TemporalSchemeTest, PipelineDatasetCarriesTimesAndSplitsTemporally) {
  synthgeo::GeneratorOptions options;
  options.num_users = 8;
  options.days_per_user = 3;
  options.seed = 6;
  const auto built = BuildSyntheticDataset(options, PipelineOptions{},
                                           LabelSet::Dabiri());
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->dataset.has_times());
  const auto folds =
      MakeFolds(CvScheme::kTemporal, built->dataset, 3, 42);
  ASSERT_EQ(folds.size(), 3u);
  for (const auto& fold : folds) {
    double max_train = -1e300;
    double min_test = 1e300;
    for (size_t i : fold.train_indices) {
      max_train = std::max(max_train, built->dataset.times()[i]);
    }
    for (size_t i : fold.test_indices) {
      min_test = std::min(min_test, built->dataset.times()[i]);
    }
    EXPECT_LE(max_train, min_test);
  }
}

TEST(TemporalSchemeTest, CsvRoundTripKeepsTimes) {
  synthgeo::GeneratorOptions options;
  options.num_users = 4;
  options.days_per_user = 1;
  options.seed = 7;
  const auto built = BuildSyntheticDataset(options, PipelineOptions{},
                                           LabelSet::Dabiri());
  ASSERT_TRUE(built.ok());
  const std::string csv = ml::DatasetToCsv(built->dataset);
  const auto restored = ml::DatasetFromCsv(csv);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored->has_times());
  for (size_t i = 0; i < built->dataset.num_samples(); ++i) {
    EXPECT_DOUBLE_EQ(restored->times()[i], built->dataset.times()[i]);
  }
  // Feature columns exclude the __time column.
  EXPECT_EQ(restored->num_features(), built->dataset.num_features());
}

}  // namespace
}  // namespace trajkit::core
