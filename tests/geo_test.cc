// Unit and property tests for src/geo geodesy primitives.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/geodesy.h"

namespace trajkit::geo {
namespace {

TEST(GeodesyTest, HaversineZeroForIdenticalPoints) {
  const LatLon p{39.9, 116.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(GeodesyTest, HaversineKnownDistanceParisToLondon) {
  // Paris (48.8566, 2.3522) to London (51.5074, -0.1278): ~343.5 km.
  const LatLon paris{48.8566, 2.3522};
  const LatLon london{51.5074, -0.1278};
  EXPECT_NEAR(HaversineMeters(paris, london), 343.5e3, 1.5e3);
}

TEST(GeodesyTest, HaversineOneDegreeLatitudeIsabout111km) {
  const LatLon a{0.0, 0.0};
  const LatLon b{1.0, 0.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111.19e3, 0.2e3);
}

TEST(GeodesyTest, HaversineIsSymmetric) {
  const LatLon a{39.9, 116.4};
  const LatLon b{40.1, 116.2};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeodesyTest, HaversineAntipodalIsHalfCircumference) {
  const LatLon a{0.0, 0.0};
  const LatLon b{0.0, 180.0};
  EXPECT_NEAR(HaversineMeters(a, b), M_PI * kEarthRadiusMeters, 1.0);
}

TEST(GeodesyTest, BearingCardinalDirections) {
  const LatLon origin{39.9, 116.4};
  EXPECT_NEAR(InitialBearingDeg(origin, LatLon{40.0, 116.4}), 0.0, 1e-6);
  EXPECT_NEAR(InitialBearingDeg(origin, LatLon{39.8, 116.4}), 180.0, 1e-6);
  EXPECT_NEAR(InitialBearingDeg(origin, LatLon{39.9, 116.5}), 90.0, 0.1);
  EXPECT_NEAR(InitialBearingDeg(origin, LatLon{39.9, 116.3}), 270.0, 0.1);
}

TEST(GeodesyTest, BearingOfSamePointIsZero) {
  const LatLon p{10.0, 20.0};
  EXPECT_DOUBLE_EQ(InitialBearingDeg(p, p), 0.0);
}

TEST(GeodesyTest, NormalizeBearing) {
  EXPECT_DOUBLE_EQ(NormalizeBearingDeg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeBearingDeg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeBearingDeg(-90.0), 270.0);
  EXPECT_DOUBLE_EQ(NormalizeBearingDeg(725.0), 5.0);
}

TEST(GeodesyTest, BearingDifferenceWrapsToSignedHalfCircle) {
  EXPECT_DOUBLE_EQ(BearingDifferenceDeg(350.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(BearingDifferenceDeg(10.0, 350.0), -20.0);
  EXPECT_DOUBLE_EQ(BearingDifferenceDeg(0.0, 180.0), 180.0);
  EXPECT_DOUBLE_EQ(BearingDifferenceDeg(90.0, 90.0), 0.0);
}

TEST(GeodesyTest, IsValidChecksRanges) {
  EXPECT_TRUE(IsValid(LatLon{0.0, 0.0}));
  EXPECT_TRUE(IsValid(LatLon{-90.0, 180.0}));
  EXPECT_FALSE(IsValid(LatLon{91.0, 0.0}));
  EXPECT_FALSE(IsValid(LatLon{0.0, -181.0}));
  EXPECT_FALSE(IsValid(LatLon{std::nan(""), 0.0}));
}

TEST(GeodesyTest, DestinationNorthIncreasesLatitude) {
  const LatLon origin{39.9, 116.4};
  const LatLon dest = Destination(origin, 0.0, 10000.0);
  EXPECT_GT(dest.lat_deg, origin.lat_deg);
  EXPECT_NEAR(dest.lon_deg, origin.lon_deg, 1e-9);
}

TEST(GeodesyTest, BoundingBoxExtendAndContains) {
  BoundingBox box;
  EXPECT_FALSE(box.IsInitialized());
  box.Extend(LatLon{1.0, 2.0});
  box.Extend(LatLon{-1.0, 5.0});
  EXPECT_TRUE(box.IsInitialized());
  EXPECT_TRUE(box.Contains(LatLon{0.0, 3.0}));
  EXPECT_FALSE(box.Contains(LatLon{2.0, 3.0}));
  EXPECT_TRUE(box.Contains(LatLon{1.0, 2.0}));  // Inclusive edge.
}

TEST(GeodesyTest, EnuRoundTripAtReference) {
  const EnuProjector projector(LatLon{39.9, 116.4});
  double e = 0.0;
  double n = 0.0;
  projector.Forward(LatLon{39.9, 116.4}, &e, &n);
  EXPECT_NEAR(e, 0.0, 1e-9);
  EXPECT_NEAR(n, 0.0, 1e-9);
}

// Property suite: pseudo-random city-scale points.
class GeodesyPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(GeodesyPropertyTest, DestinationInvertsDistanceAndBearing) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const LatLon origin{rng.Uniform(-60.0, 60.0), rng.Uniform(-179.0, 179.0)};
    const double bearing = rng.Uniform(0.0, 360.0);
    const double distance = rng.Uniform(1.0, 50000.0);
    const LatLon dest = Destination(origin, bearing, distance);
    EXPECT_NEAR(HaversineMeters(origin, dest), distance,
                std::max(0.01, distance * 1e-9));
    // The spherical forward azimuth matches the requested bearing.
    EXPECT_NEAR(std::fabs(BearingDifferenceDeg(
                    InitialBearingDeg(origin, dest), bearing)),
                0.0, 0.2);
  }
}

TEST_P(GeodesyPropertyTest, TriangleInequalityHolds) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 50; ++i) {
    const LatLon a{rng.Uniform(-80.0, 80.0), rng.Uniform(-180.0, 180.0)};
    const LatLon b{rng.Uniform(-80.0, 80.0), rng.Uniform(-180.0, 180.0)};
    const LatLon c{rng.Uniform(-80.0, 80.0), rng.Uniform(-180.0, 180.0)};
    EXPECT_LE(HaversineMeters(a, c),
              HaversineMeters(a, b) + HaversineMeters(b, c) + 1e-6);
  }
}

TEST_P(GeodesyPropertyTest, EnuRoundTripCityScale) {
  Rng rng(GetParam() + 2000);
  const LatLon ref{rng.Uniform(-60.0, 60.0), rng.Uniform(-179.0, 179.0)};
  const EnuProjector projector(ref);
  for (int i = 0; i < 50; ++i) {
    const double east = rng.Uniform(-20000.0, 20000.0);
    const double north = rng.Uniform(-20000.0, 20000.0);
    const LatLon p = projector.Backward(east, north);
    double e2 = 0.0;
    double n2 = 0.0;
    projector.Forward(p, &e2, &n2);
    EXPECT_NEAR(e2, east, 1e-6);
    EXPECT_NEAR(n2, north, 1e-6);
  }
}

TEST_P(GeodesyPropertyTest, EnuDistanceMatchesHaversineLocally) {
  Rng rng(GetParam() + 3000);
  const LatLon ref{rng.Uniform(-55.0, 55.0), rng.Uniform(-170.0, 170.0)};
  const EnuProjector projector(ref);
  for (int i = 0; i < 30; ++i) {
    const double east = rng.Uniform(-3000.0, 3000.0);
    const double north = rng.Uniform(-3000.0, 3000.0);
    const LatLon p = projector.Backward(east, north);
    const double planar = std::hypot(east, north);
    const double spherical = HaversineMeters(ref, p);
    // Within 0.5% at city scale.
    EXPECT_NEAR(spherical, planar, std::max(0.5, planar * 5e-3));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeodesyPropertyTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace trajkit::geo
