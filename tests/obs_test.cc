// Tests of the observability layer (src/obs/): histogram bucket and
// quantile correctness, concurrent counter/histogram updates (run under
// TSan via the `concurrency` ctest label), golden-file JSON and Prometheus
// exports (deterministic ordering is part of the contract), and trace-span
// nesting.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trajkit::obs {
namespace {

HistogramOptions Bounds(std::vector<double> bounds) {
  HistogramOptions options;
  options.bucket_bounds = std::move(bounds);
  return options;
}

TEST(CounterTest, IncrementsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(2.0);
  gauge.Add(0.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(HistogramTest, BucketAssignmentUsesInclusiveUpperBounds) {
  Histogram histogram(Bounds({1.0, 2.0, 5.0}));
  histogram.Observe(0.5);   // le=1
  histogram.Observe(1.0);   // le=1 (boundary is inclusive)
  histogram.Observe(1.5);   // le=2
  histogram.Observe(5.0);   // le=5
  histogram.Observe(100.0); // +Inf
  const HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.sum, 108.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  Histogram histogram(Bounds({10.0, 20.0, 30.0}));
  histogram.Observe(5.0);
  histogram.Observe(15.0);
  histogram.Observe(15.0);
  histogram.Observe(25.0);
  const HistogramSnapshot snap = histogram.snapshot();
  // p50: rank 2 of 4 falls in the (10, 20] bucket holding observations
  // 2..3 — halfway through it, interpolated to 15.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 15.0);
  // p99: rank 3.96 in the (20, 30] bucket, whose upper edge clamps to the
  // observed max 25: 20 + (25-20) * 0.96.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 24.8);
  // p0 pins to the observed minimum's bucket start.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 5.0);
  // p100 is the observed maximum.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 25.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty(Bounds({1.0}));
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram single(Bounds({10.0}));
  single.Observe(7.0);
  // One observation: every quantile is that value (edges clamp to it).
  EXPECT_DOUBLE_EQ(single.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.99), 7.0);

  Histogram overflow_only(Bounds({1.0}));
  overflow_only.Observe(50.0);
  overflow_only.Observe(60.0);
  // All mass in +Inf: quantiles stay inside the observed range.
  EXPECT_GE(overflow_only.Quantile(0.5), 50.0);
  EXPECT_LE(overflow_only.Quantile(0.99), 60.0);
}

TEST(HistogramTest, ConcurrentObservesKeepTotalMass) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram histogram(HistogramOptions::LatencySeconds());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(1e-6 * static_cast<double>((t * 31 + i) % 1000));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t mass = 0;
  for (const uint64_t bucket : snap.buckets) mass += bucket;
  EXPECT_EQ(mass, snap.count);
}

TEST(HistogramTest, ExemplarsTrackLastTraceIdPerBucket) {
  Histogram histogram(Bounds({1.0, 2.0}));
  histogram.Observe(0.5);        // plain Observe: no exemplar
  histogram.Observe(0.7, 11);    // bucket le=1
  histogram.Observe(1.5, 12);    // bucket le=2
  histogram.Observe(1.6, 13);    // bucket le=2: last exemplar wins
  histogram.Observe(5.0, 14);    // +Inf bucket
  const HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.exemplar_ids.size(), 3u);
  EXPECT_EQ(snap.exemplar_ids[0], 11u);
  EXPECT_DOUBLE_EQ(snap.exemplar_values[0], 0.7);
  EXPECT_EQ(snap.exemplar_ids[1], 13u);
  EXPECT_DOUBLE_EQ(snap.exemplar_values[1], 1.6);
  EXPECT_EQ(snap.exemplar_ids[2], 14u);
  // An untraced observation (id 0) never clobbers a bucket's exemplar —
  // exemplars must always point at a resolvable trace.
  histogram.Observe(0.9, 0);
  EXPECT_EQ(histogram.snapshot().exemplar_ids[0], 11u);
}

TEST(HistogramTest, QuantileBucketIndexLocatesTheQuantileMass) {
  Histogram histogram(Bounds({10.0, 20.0, 30.0}));
  histogram.Observe(5.0, 1);
  histogram.Observe(15.0, 2);
  histogram.Observe(15.0, 3);
  histogram.Observe(25.0, 4);
  const HistogramSnapshot snap = histogram.snapshot();
  // Same bucket walk as Quantile(): p50 rank 2 of 4 lands in the (10, 20]
  // bucket; p99 rank 3.96 in (20, 30]; p0 pins to the first non-empty.
  EXPECT_EQ(snap.QuantileBucketIndex(0.50), 1u);
  EXPECT_EQ(snap.QuantileBucketIndex(0.99), 2u);
  EXPECT_EQ(snap.QuantileBucketIndex(0.0), 0u);
  // The exemplar the index selects is the p99 witness: trace 4.
  EXPECT_EQ(snap.exemplar_ids[snap.QuantileBucketIndex(0.99)], 4u);
  // Empty snapshot: index 0 (callers check exemplar_ids[0] == 0).
  EXPECT_EQ(HistogramSnapshot{}.QuantileBucketIndex(0.99), 0u);
}

TEST(MetricsRegistryTest, ExemplarsAppearInExportsOnlyWhenRecorded) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h", Bounds({1.0}));
  histogram.Observe(0.5);
  // Exemplar-free: byte-identical to the pre-exemplar export shape.
  EXPECT_EQ(registry.ToJson().find("exemplar"), std::string::npos);
  EXPECT_EQ(registry.ToPrometheusText().find("trace_id"),
            std::string::npos);
  histogram.Observe(0.25, 42);
  EXPECT_NE(registry.ToJson().find(
                "\"exemplar_trace_id\": \"42\", \"exemplar_value\": 0.25"),
            std::string::npos)
      << registry.ToJson();
  // OpenMetrics-style bucket exemplar.
  EXPECT_NE(registry.ToPrometheusText().find("# {trace_id=\"42\"} 0.25"),
            std::string::npos)
      << registry.ToPrometheusText();
}

TEST(MetricsRegistryTest, HandlesAreStable) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("h", Bounds({1.0}));
  // Options only apply on creation; the same histogram comes back.
  Histogram& h2 = registry.GetHistogram("h", Bounds({1.0, 2.0, 3.0}));
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Every thread resolves the handle itself: lookup and increment must
    // both be thread-safe.
    threads.emplace_back([&registry] {
      Counter& counter = registry.GetCounter("shared");
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, FindLookupsNeverCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("missing"), nullptr);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
  EXPECT_EQ(registry.InfoValue("missing"), "");
  // The lookups did not materialize anything: the export stays empty.
  EXPECT_EQ(registry.ToPrometheusText(), "");

  registry.GetCounter("c").Increment(5);
  registry.GetGauge("g").Set(1.5);
  registry.GetHistogram("h").Observe(0.1);
  registry.SetInfo("k", "v");
  ASSERT_NE(registry.FindCounter("c"), nullptr);
  EXPECT_EQ(registry.FindCounter("c")->value(), 5u);
  ASSERT_NE(registry.FindGauge("g"), nullptr);
  EXPECT_DOUBLE_EQ(registry.FindGauge("g")->value(), 1.5);
  ASSERT_NE(registry.FindHistogram("h"), nullptr);
  EXPECT_EQ(registry.FindHistogram("h")->count(), 1u);
  EXPECT_EQ(registry.InfoValue("k"), "v");
}

/// A registry with one metric of each kind and hand-computable values —
/// shared by the two golden-export tests.
void FillGoldenRegistry(MetricsRegistry& registry) {
  registry.GetCounter("a").Increment(3);
  registry.GetGauge("g").Set(2.5);
  Histogram& h = registry.GetHistogram("h", Bounds({1.0, 2.0}));
  h.Observe(0.5);
  h.Observe(1.5);
  registry.SetInfo("k", "v");
}

TEST(MetricsRegistryTest, GoldenJsonExport) {
  MetricsRegistry registry;
  FillGoldenRegistry(registry);
  // p50: rank 1 of 2 — the first bucket, edges [min=0.5, 1]: exactly 1.
  // p90: rank 1.8 — second bucket, edges [1, max=1.5]: 1 + 0.5*0.8 = 1.4.
  // p99: 1 + 0.5*0.98 = 1.49.
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"a\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h\": {\"count\": 2, \"sum\": 2, \"min\": 0.5, \"max\": 1.5, "
      "\"mean\": 1, \"p50\": 1, \"p90\": 1.4, \"p99\": 1.49, \"buckets\": "
      "[{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}, "
      "{\"le\": \"+Inf\", \"count\": 0}]}\n"
      "  },\n"
      "  \"info\": {\n"
      "    \"k\": \"v\"\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.ToJson(), expected);
  // Determinism: a second export of unchanged state is byte-identical.
  EXPECT_EQ(registry.ToJson(), expected);
}

TEST(MetricsRegistryTest, GoldenPrometheusExport) {
  MetricsRegistry registry;
  FillGoldenRegistry(registry);
  const std::string expected =
      "# HELP test_a trajkit metric a\n"
      "# TYPE test_a counter\n"
      "test_a 3\n"
      "# HELP test_g trajkit metric g\n"
      "# TYPE test_g gauge\n"
      "test_g 2.5\n"
      "# HELP test_h trajkit metric h\n"
      "# TYPE test_h histogram\n"
      "test_h_bucket{le=\"1\"} 1\n"
      "test_h_bucket{le=\"2\"} 2\n"
      "test_h_bucket{le=\"+Inf\"} 2\n"
      "test_h_sum 2\n"
      "test_h_count 2\n"
      "# HELP test_k trajkit metric k\n"
      "# TYPE test_k gauge\n"
      "test_k{value=\"v\"} 1\n";
  EXPECT_EQ(registry.ToPrometheusText("test_"), expected);
}

TEST(MetricsRegistryTest, PrometheusNamesAreSanitized) {
  MetricsRegistry registry;
  registry.GetCounter("serve.sessions.closed.mode-change").Increment();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("trajkit_serve_sessions_closed_mode_change 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EmptyRegistryExportsValidSkeleton) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {},\n  \"info\": {}\n}\n");
  EXPECT_EQ(registry.ToPrometheusText(), "");
}

TEST(ScopedTimerTest, RecordsOnceIntoHistogram) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.GetHistogram("t", HistogramOptions::DurationSeconds());
  {
    ScopedTimer timer(histogram);
    const double recorded = timer.Stop();
    EXPECT_GE(recorded, 0.0);
    EXPECT_DOUBLE_EQ(timer.Stop(), 0.0);  // Second Stop is a no-op.
  }  // Destructor must not double-record.
  EXPECT_EQ(histogram.count(), 1u);

  {
    ScopedTimer named("t2", registry);
  }
  EXPECT_EQ(registry.GetHistogram("t2").count(), 1u);
}

TEST(TraceSpanTest, NestingBuildsPathsAndUnwinds) {
  MetricsRegistry registry;
  EXPECT_EQ(TraceSpan::CurrentPath(), "");
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  {
    TraceSpan outer("outer", registry);
    EXPECT_EQ(TraceSpan::CurrentPath(), "outer");
    EXPECT_EQ(TraceSpan::CurrentDepth(), 1);
    {
      TraceSpan inner("inner", registry);
      EXPECT_EQ(inner.path(), "outer/inner");
      EXPECT_EQ(TraceSpan::CurrentPath(), "outer/inner");
      EXPECT_EQ(TraceSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(TraceSpan::CurrentPath(), "outer");
    {
      TraceSpan sibling("sibling", registry);
      EXPECT_EQ(TraceSpan::CurrentPath(), "outer/sibling");
    }
  }
  EXPECT_EQ(TraceSpan::CurrentPath(), "");
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  EXPECT_EQ(registry.GetHistogram("span/outer").count(), 1u);
  EXPECT_EQ(registry.GetHistogram("span/outer/inner").count(), 1u);
  EXPECT_EQ(registry.GetHistogram("span/outer/sibling").count(), 1u);
  EXPECT_EQ(registry.GetCounter("span_calls/outer").value(), 1u);
  EXPECT_EQ(registry.GetCounter("span_calls/outer/inner").value(), 1u);
}

TEST(TraceSpanTest, SpansAreThreadLocal) {
  MetricsRegistry registry;
  TraceSpan outer("main-span", registry);
  std::thread worker([&registry] {
    // A fresh thread starts outside any span, whatever the spawner holds.
    EXPECT_EQ(TraceSpan::CurrentPath(), "");
    TraceSpan span("worker-span", registry);
    EXPECT_EQ(TraceSpan::CurrentPath(), "worker-span");
  });
  worker.join();
  EXPECT_EQ(TraceSpan::CurrentPath(), "main-span");
  EXPECT_EQ(registry.GetHistogram("span/worker-span").count(), 1u);
}

}  // namespace
}  // namespace trajkit::obs
