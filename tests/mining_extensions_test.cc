// Tests for stay-point detection and permutation importance.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geodesy.h"
#include "ml/permutation_importance.h"
#include "ml/random_forest.h"
#include "traj/stay_points.h"

namespace trajkit {
namespace {

using traj::Mode;
using traj::StayPoint;
using traj::StayPointOptions;
using traj::TrajectoryPoint;

// Builds: walk 10 min → dwell at a spot 30 min → walk 10 min.
std::vector<TrajectoryPoint> WalkStayWalk() {
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  double t = 0.0;
  for (int i = 0; i < 120; ++i) {  // 10 min at 5 s, moving 7 m per fix.
    points.push_back({pos, t, Mode::kWalk});
    pos = geo::Destination(pos, 0.0, 7.0);
    t += 5.0;
  }
  Rng rng(3);
  const geo::LatLon dwell = pos;
  for (int i = 0; i < 360; ++i) {  // 30 min dwell with 15 m jitter.
    const geo::LatLon jittered = geo::Destination(
        dwell, rng.Uniform(0.0, 360.0), rng.Uniform(0.0, 15.0));
    points.push_back({jittered, t, Mode::kWalk});
    t += 5.0;
  }
  for (int i = 0; i < 120; ++i) {
    points.push_back({pos, t, Mode::kWalk});
    pos = geo::Destination(pos, 90.0, 7.0);
    t += 5.0;
  }
  return points;
}

TEST(StayPointsTest, DetectsTheDwell) {
  const auto points = WalkStayWalk();
  const auto stays = traj::DetectStayPoints(points);
  ASSERT_EQ(stays.size(), 1u);
  const StayPoint& stay = stays[0];
  EXPECT_GE(stay.DurationSeconds(), 20.0 * 60.0);
  // The centroid sits near the dwell location (fix 120).
  EXPECT_LT(geo::HaversineMeters(stay.centroid, points[150].pos), 60.0);
  EXPECT_GE(stay.first_index, 80u);  // Anchor may start <200 m early.
  EXPECT_LE(stay.last_index, 500u);
}

TEST(StayPointsTest, NoStayInContinuousMovement) {
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 600; ++i) {
    points.push_back({pos, i * 5.0, Mode::kBike});
    pos = geo::Destination(pos, 0.0, 20.0);
  }
  EXPECT_TRUE(traj::DetectStayPoints(points).empty());
}

TEST(StayPointsTest, ShortDwellBelowTimeThresholdIgnored) {
  StayPointOptions options;
  options.time_threshold_s = 45.0 * 60.0;  // Dwell is only 30 min.
  EXPECT_TRUE(traj::DetectStayPoints(WalkStayWalk(), options).empty());
}

TEST(StayPointsTest, ThresholdsControlSensitivity) {
  StayPointOptions loose;
  loose.time_threshold_s = 5.0 * 60.0;
  loose.distance_threshold_m = 100.0;
  const auto stays = traj::DetectStayPoints(WalkStayWalk(), loose);
  EXPECT_GE(stays.size(), 1u);
}

TEST(StayPointsTest, EmptyInput) {
  EXPECT_TRUE(traj::DetectStayPoints({}).empty());
}

TEST(StayPointsTest, SplitByStayPointsYieldsTwoEpisodes) {
  traj::Trajectory trajectory;
  trajectory.user_id = 5;
  trajectory.points = WalkStayWalk();
  const auto episodes = traj::SplitByStayPoints(trajectory);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].user_id, 5);
  EXPECT_EQ(episodes[0].mode, Mode::kWalk);
  // First episode ends before the dwell, second starts after it.
  EXPECT_LT(episodes[0].points.back().timestamp, 700.0);
  EXPECT_GT(episodes[1].points.front().timestamp, 2300.0);
}

TEST(StayPointsTest, SplitHonorsMinPoints) {
  traj::Trajectory trajectory;
  trajectory.user_id = 1;
  trajectory.points = WalkStayWalk();
  const auto episodes =
      traj::SplitByStayPoints(trajectory, StayPointOptions{}, 500);
  EXPECT_TRUE(episodes.empty());  // Both episodes have only 120 points.
}

// ------------------------------------------------ Permutation importance --

ml::Dataset SignalNoiseProblem(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int y = static_cast<int>(rng.NextBounded(2));
    rows.push_back({static_cast<double>(y) + rng.Gaussian(0.0, 0.3),
                    rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)});
    labels.push_back(y);
  }
  return std::move(ml::Dataset::Create(ml::Matrix::FromRows(rows),
                                       std::move(labels), {},
                                       {"signal", "n1", "n2"},
                                       {"a", "b"}))
      .value();
}

TEST(PermutationImportanceTest, SignalFeatureDominates) {
  const ml::Dataset train = SignalNoiseProblem(400, 7);
  const ml::Dataset holdout = SignalNoiseProblem(200, 8);
  ml::RandomForestParams params;
  params.n_estimators = 15;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const auto scores = ml::PermutationImportance(forest, holdout);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 3u);
  EXPECT_EQ((*scores)[0].feature_index, 0);
  EXPECT_GT((*scores)[0].score, 0.2);  // Shuffling the signal hurts a lot.
  // Noise features barely matter either way.
  EXPECT_LT(std::fabs((*scores)[1].score), 0.1);
  EXPECT_LT(std::fabs((*scores)[2].score), 0.1);
}

TEST(PermutationImportanceTest, DeterministicGivenSeed) {
  const ml::Dataset train = SignalNoiseProblem(200, 9);
  const ml::Dataset holdout = SignalNoiseProblem(100, 10);
  ml::RandomForestParams params;
  params.n_estimators = 8;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const auto s1 = ml::PermutationImportance(forest, holdout);
  const auto s2 = ml::PermutationImportance(forest, holdout);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_EQ((*s1)[i].feature_index, (*s2)[i].feature_index);
    EXPECT_DOUBLE_EQ((*s1)[i].score, (*s2)[i].score);
  }
}

TEST(PermutationImportanceTest, HoldoutUnchangedAfterRun) {
  const ml::Dataset train = SignalNoiseProblem(150, 11);
  const ml::Dataset holdout = SignalNoiseProblem(80, 12);
  ml::RandomForestParams params;
  params.n_estimators = 5;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const ml::Matrix before = holdout.features();
  ASSERT_TRUE(ml::PermutationImportance(forest, holdout).ok());
  for (size_t r = 0; r < before.rows(); ++r) {
    for (size_t c = 0; c < before.cols(); ++c) {
      EXPECT_DOUBLE_EQ(holdout.features()(r, c), before(r, c));
    }
  }
}

TEST(PermutationImportanceTest, InvalidInputsRejected) {
  const ml::Dataset train = SignalNoiseProblem(100, 13);
  ml::RandomForestParams params;
  params.n_estimators = 5;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  ml::Dataset tiny = SignalNoiseProblem(100, 14)
                         .SelectSamples(std::vector<size_t>{0});
  EXPECT_FALSE(ml::PermutationImportance(forest, tiny).ok());
  ml::PermutationImportanceOptions bad;
  bad.repeats = 0;
  EXPECT_FALSE(ml::PermutationImportance(forest, train, bad).ok());
}

}  // namespace
}  // namespace trajkit
