// Tests for Douglas–Peucker trajectory simplification.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/geodesy.h"
#include "traj/simplify.h"
#include "traj/types.h"

namespace trajkit::traj {
namespace {

std::vector<TrajectoryPoint> Line(int n, double step_m,
                                  double bearing = 0.0) {
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < n; ++i) {
    points.push_back({pos, i * 2.0, Mode::kWalk});
    pos = geo::Destination(pos, bearing, step_m);
  }
  return points;
}

TEST(SimplifyTest, CollinearPointsCollapseToEndpoints) {
  const auto points = Line(100, 10.0);
  const auto simplified = SimplifyDouglasPeucker(points, 5.0);
  ASSERT_EQ(simplified.size(), 2u);
  EXPECT_DOUBLE_EQ(simplified.front().timestamp,
                   points.front().timestamp);
  EXPECT_DOUBLE_EQ(simplified.back().timestamp, points.back().timestamp);
}

TEST(SimplifyTest, CornerIsKept) {
  // L-shape: north 500 m, then east 500 m.
  auto points = Line(50, 10.0, 0.0);
  geo::LatLon corner = points.back().pos;
  for (int i = 1; i <= 50; ++i) {
    points.push_back({geo::Destination(corner, 90.0, i * 10.0),
                      100.0 + i * 2.0, Mode::kWalk});
  }
  const auto simplified = SimplifyDouglasPeucker(points, 5.0);
  ASSERT_EQ(simplified.size(), 3u);
  // The middle kept point is the corner.
  EXPECT_LT(geo::HaversineMeters(simplified[1].pos, corner), 15.0);
}

TEST(SimplifyTest, ErrorBoundRespected) {
  // A noisy path: the simplified polyline must stay within epsilon of
  // every original point.
  Rng rng(3);
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 200; ++i) {
    points.push_back(
        {geo::Destination(pos, rng.Uniform(0.0, 360.0),
                          rng.Uniform(0.0, 8.0)),
         i * 2.0, Mode::kBike});
    pos = geo::Destination(pos, 30.0, 12.0);
  }
  const double epsilon = 20.0;
  const auto simplified = SimplifyDouglasPeucker(points, epsilon);
  EXPECT_LT(simplified.size(), points.size());

  // Check each original point against the nearest simplified chord using
  // the planar frame of the simplifier.
  const geo::EnuProjector projector(points.front().pos);
  auto planar = [&](const geo::LatLon& p) {
    double e;
    double n;
    projector.Forward(p, &e, &n);
    return std::pair<double, double>(e, n);
  };
  for (const TrajectoryPoint& p : points) {
    const auto [px, py] = planar(p.pos);
    double best = 1e300;
    for (size_t s = 0; s + 1 < simplified.size(); ++s) {
      const auto [ax, ay] = planar(simplified[s].pos);
      const auto [bx, by] = planar(simplified[s + 1].pos);
      // Distance to segment (clamped projection).
      const double dx = bx - ax;
      const double dy = by - ay;
      const double len_sq = dx * dx + dy * dy;
      double t = len_sq > 0.0
                     ? ((px - ax) * dx + (py - ay) * dy) / len_sq
                     : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      best = std::min(best, std::hypot(px - (ax + t * dx),
                                       py - (ay + t * dy)));
    }
    // Infinite-line DP guarantees epsilon to lines; segment distance adds
    // a small slack at sharp turns.
    EXPECT_LT(best, epsilon * 1.6);
  }
}

TEST(SimplifyTest, SmallInputsReturnedVerbatim) {
  const auto two = Line(2, 10.0);
  EXPECT_EQ(SimplifyDouglasPeucker(two, 5.0).size(), 2u);
  const auto one = Line(1, 10.0);
  EXPECT_EQ(SimplifyDouglasPeucker(one, 5.0).size(), 1u);
  EXPECT_TRUE(SimplifyDouglasPeucker({}, 5.0).empty());
}

TEST(SimplifyTest, NonPositiveEpsilonKeepsEverything) {
  const auto points = Line(30, 10.0);
  EXPECT_EQ(SimplifyDouglasPeucker(points, 0.0).size(), 30u);
  EXPECT_EQ(SimplifyDouglasPeucker(points, -1.0).size(), 30u);
}

TEST(SimplifyTest, SmallerEpsilonKeepsMorePoints) {
  Rng rng(5);
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 150; ++i) {
    points.push_back({pos, i * 2.0, Mode::kCar});
    pos = geo::Destination(pos, rng.Gaussian(45.0, 25.0), 15.0);
  }
  const auto coarse = SimplifyDouglasPeucker(points, 100.0);
  const auto fine = SimplifyDouglasPeucker(points, 5.0);
  EXPECT_LT(coarse.size(), fine.size());
  EXPECT_LE(fine.size(), points.size());
}

TEST(SimplifyTest, SegmentWrapperPreservesMetadata) {
  Segment segment;
  segment.user_id = 8;
  segment.mode = Mode::kBus;
  segment.points = Line(50, 10.0);
  SimplifySegment(segment, 5.0);
  EXPECT_EQ(segment.points.size(), 2u);
  EXPECT_EQ(segment.user_id, 8);
  EXPECT_EQ(segment.mode, Mode::kBus);
}

}  // namespace
}  // namespace trajkit::traj
