// Tests for the synthetic GeoLife-like corpus generator — these pin down
// the statistical properties the paper's experiments rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "geo/geodesy.h"
#include "stats/descriptive.h"
#include "synthgeo/generator.h"
#include "synthgeo/mode_profiles.h"
#include "synthgeo/trip_simulator.h"
#include "synthgeo/user_profile.h"
#include "traj/point_features.h"
#include "traj/types.h"

namespace trajkit::synthgeo {
namespace {

using traj::Mode;

constexpr geo::LatLon kCenter{39.9042, 116.4074};

// ----------------------------------------------------------- ModeProfile --

TEST(ModeProfilesTest, AllLabeledModesHaveProfiles) {
  for (Mode mode : traj::AllLabeledModes()) {
    const ModeProfile& p = GetModeProfile(mode);
    EXPECT_EQ(p.mode, mode);
    EXPECT_GT(p.cruise_mean_mps, 0.0);
    EXPECT_GT(p.trip_median_s, 0.0);
    EXPECT_GT(p.sampling_interval_s, 0.0);
    EXPECT_GT(p.gps_sigma_m, 0.0);
  }
}

TEST(ModeProfilesTest, SpeedOrderingMatchesReality) {
  const auto cruise = [](Mode mode) {
    return GetModeProfile(mode).cruise_mean_mps;
  };
  EXPECT_LT(cruise(Mode::kWalk), cruise(Mode::kRun));
  EXPECT_LT(cruise(Mode::kRun), cruise(Mode::kBike));
  EXPECT_LT(cruise(Mode::kBike), cruise(Mode::kBus));
  EXPECT_LT(cruise(Mode::kBus), cruise(Mode::kCar));
  EXPECT_LT(cruise(Mode::kCar), cruise(Mode::kTrain));
  EXPECT_LT(cruise(Mode::kTrain), cruise(Mode::kAirplane));
}

TEST(ModeProfilesTest, CarAndTaxiNearlyIdentical) {
  const ModeProfile& car = GetModeProfile(Mode::kCar);
  const ModeProfile& taxi = GetModeProfile(Mode::kTaxi);
  EXPECT_NEAR(car.cruise_mean_mps, taxi.cruise_mean_mps,
              0.15 * car.cruise_mean_mps);
}

TEST(ModeProfilesTest, SharesSumToRoughlyOne) {
  double total = 0.0;
  for (Mode mode : traj::AllLabeledModes()) {
    total += GeoLifePointShare(mode);
  }
  EXPECT_NEAR(total, 1.0, 0.01);
  EXPECT_DOUBLE_EQ(GeoLifePointShare(Mode::kUnknown), 0.0);
}

TEST(ModeProfilesTest, WalkIsLargestShare) {
  for (Mode mode : traj::AllLabeledModes()) {
    EXPECT_LE(GeoLifePointShare(mode), GeoLifePointShare(Mode::kWalk));
  }
}

// ----------------------------------------------------------- UserProfile --

TEST(UserProfileTest, TraitsWithinDocumentedRanges) {
  Rng rng(1);
  for (int uid = 0; uid < 50; ++uid) {
    const UserProfile user = SampleUserProfile(uid, kCenter, rng);
    EXPECT_EQ(user.user_id, uid);
    EXPECT_GE(user.speed_multiplier, 0.60);
    EXPECT_LE(user.speed_multiplier, 1.50);
    EXPECT_GE(user.traffic_factor, 0.55);
    EXPECT_LE(user.traffic_factor, 1.45);
    EXPECT_GE(user.device_noise_factor, 0.3);
    EXPECT_LE(user.device_noise_factor, 4.5);
    EXPECT_LE(geo::HaversineMeters(user.home, kCenter), 12500.0);
  }
}

TEST(UserProfileTest, CommonModesAlwaysAvailable) {
  Rng rng(2);
  for (int uid = 0; uid < 30; ++uid) {
    const UserProfile user = SampleUserProfile(uid, kCenter, rng);
    EXPECT_GT(user.mode_weights[static_cast<int>(Mode::kWalk)], 0.0);
    EXPECT_GT(user.mode_weights[static_cast<int>(Mode::kBus)], 0.0);
  }
}

TEST(UserProfileTest, RareModesConcentrateInFewUsers) {
  Rng rng(3);
  int users_with_airplane = 0;
  const int n = 200;
  for (int uid = 0; uid < n; ++uid) {
    const UserProfile user = SampleUserProfile(uid, kCenter, rng);
    if (user.mode_weights[static_cast<int>(Mode::kAirplane)] > 0.0) {
      ++users_with_airplane;
    }
  }
  EXPECT_GT(users_with_airplane, 5);
  EXPECT_LT(users_with_airplane, n / 2);
}

// --------------------------------------------------------- TripSimulator --

UserProfile NeutralUser(uint64_t seed = 4) {
  Rng rng(seed);
  UserProfile user = SampleUserProfile(0, kCenter, rng);
  user.speed_multiplier = 1.0;
  user.traffic_factor = 1.0;
  user.device_noise_factor = 1.0;
  user.sampling_factor = 1.0;
  return user;
}

TEST(TripSimulatorTest, ProducesTimeOrderedLabelledFixes) {
  Rng rng(5);
  TripRequest request;
  request.mode = Mode::kBus;
  request.start = kCenter;
  request.start_time = 1000.0;
  request.duration_s = 600.0;
  const SimulatedTrip trip = SimulateTrip(request, NeutralUser(), rng).value();
  ASSERT_GT(trip.points.size(), 50u);
  for (size_t i = 0; i < trip.points.size(); ++i) {
    EXPECT_EQ(trip.points[i].mode, Mode::kBus);
    EXPECT_TRUE(geo::IsValid(trip.points[i].pos));
    if (i > 0) {
      EXPECT_GT(trip.points[i].timestamp, trip.points[i - 1].timestamp);
    }
  }
  EXPECT_GE(trip.points.front().timestamp, request.start_time);
  EXPECT_EQ(trip.end_time, request.start_time + 600.0);
}

TEST(TripSimulatorTest, UnknownModeIsInvalidArgument) {
  Rng rng(5);
  TripRequest request;
  request.mode = Mode::kUnknown;
  request.start = kCenter;
  const auto result = SimulateTrip(request, NeutralUser(), rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TripSimulatorTest, MeanSpeedTracksModeProfile) {
  // Averaged over trips, observed mean speeds should order like profiles.
  const auto mean_speed = [](Mode mode, uint64_t seed) {
    Rng rng(seed);
    const UserProfile user = NeutralUser(seed + 100);
    double total = 0.0;
    const int trips = 8;
    for (int i = 0; i < trips; ++i) {
      TripRequest request;
      request.mode = mode;
      request.start = kCenter;
      request.start_time = 0.0;
      request.duration_s = 900.0;
      request.clean_gps = true;
      total += SimulateTrip(request, user, rng).value().mean_true_speed_mps;
    }
    return total / trips;
  };
  const double walk = mean_speed(Mode::kWalk, 6);
  const double bike = mean_speed(Mode::kBike, 7);
  const double car = mean_speed(Mode::kCar, 8);
  const double train = mean_speed(Mode::kTrain, 9);
  EXPECT_LT(walk, bike);
  EXPECT_LT(bike, car);
  EXPECT_LT(car, train);
  EXPECT_NEAR(walk, GetModeProfile(Mode::kWalk).cruise_mean_mps, 0.7);
}

TEST(TripSimulatorTest, CleanGpsIsSmootherThanNoisy) {
  // Compare observed speed standard deviation for a walk with and without
  // GPS error: noise inflates it substantially at walking speed.
  const auto speed_std = [](bool clean, uint64_t seed) {
    Rng rng(seed);
    TripRequest request;
    request.mode = Mode::kWalk;
    request.start = kCenter;
    request.start_time = 0.0;
    request.duration_s = 900.0;
    request.clean_gps = clean;
    UserProfile user = NeutralUser(seed + 50);
    user.device_noise_factor = 2.0;
    const SimulatedTrip trip = SimulateTrip(request, user, rng).value();
    const traj::PointFeatures f =
        traj::ComputePointFeatures(trip.points);
    return stats::StdDev(f.speed);
  };
  EXPECT_LT(speed_std(true, 10), speed_std(false, 10));
}

TEST(TripSimulatorTest, SubwayHasSignalLossGaps) {
  Rng rng(11);
  TripRequest request;
  request.mode = Mode::kSubway;
  request.start = kCenter;
  request.start_time = 0.0;
  request.duration_s = 1800.0;
  const SimulatedTrip trip =
      SimulateTrip(request, NeutralUser(12), rng).value();
  double max_gap = 0.0;
  for (size_t i = 1; i < trip.points.size(); ++i) {
    max_gap = std::max(
        max_gap, trip.points[i].timestamp - trip.points[i - 1].timestamp);
  }
  // Nominal sampling is 3 s; dropouts create gaps ≥ 20 s.
  EXPECT_GT(max_gap, 15.0);
}

TEST(TripSimulatorTest, DeterministicGivenRng) {
  TripRequest request;
  request.mode = Mode::kBike;
  request.start = kCenter;
  request.start_time = 0.0;
  request.duration_s = 300.0;
  const UserProfile user = NeutralUser(13);
  Rng rng1(14);
  Rng rng2(14);
  const SimulatedTrip t1 = SimulateTrip(request, user, rng1).value();
  const SimulatedTrip t2 = SimulateTrip(request, user, rng2).value();
  ASSERT_EQ(t1.points.size(), t2.points.size());
  for (size_t i = 0; i < t1.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.points[i].pos.lat_deg, t2.points[i].pos.lat_deg);
    EXPECT_DOUBLE_EQ(t1.points[i].timestamp, t2.points[i].timestamp);
  }
}

TEST(TripSimulatorTest, StopsProduceLowSpeedFixes) {
  Rng rng(15);
  TripRequest request;
  request.mode = Mode::kBus;
  request.start = kCenter;
  request.start_time = 0.0;
  request.duration_s = 1500.0;
  request.clean_gps = true;
  const SimulatedTrip trip =
      SimulateTrip(request, NeutralUser(16), rng).value();
  const traj::PointFeatures f = traj::ComputePointFeatures(trip.points);
  // The bus stop process leaves a visible share of near-zero speeds.
  int slow = 0;
  for (double v : f.speed) {
    if (v < 0.5) ++slow;
  }
  EXPECT_GT(static_cast<double>(slow) / static_cast<double>(f.size()),
            0.05);
}

// ------------------------------------------------------------- Generator --

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.num_users = 4;
  options.days_per_user = 2;
  options.seed = 99;
  GeoLifeLikeGenerator g1(options);
  GeoLifeLikeGenerator g2(options);
  const auto c1 = g1.Generate();
  const auto c2 = g2.Generate();
  ASSERT_EQ(c1.size(), c2.size());
  ASSERT_EQ(g1.summary().total_points, g2.summary().total_points);
  for (size_t u = 0; u < c1.size(); ++u) {
    ASSERT_EQ(c1[u].points.size(), c2[u].points.size());
    for (size_t i = 0; i < c1[u].points.size(); i += 97) {
      EXPECT_DOUBLE_EQ(c1[u].points[i].pos.lat_deg,
                       c2[u].points[i].pos.lat_deg);
    }
  }
}

TEST(GeneratorTest, OneTrajectoryPerUserTimeOrdered) {
  GeneratorOptions options;
  options.num_users = 5;
  options.days_per_user = 2;
  options.seed = 17;
  GeoLifeLikeGenerator generator(options);
  const auto corpus = generator.Generate();
  ASSERT_EQ(corpus.size(), 5u);
  for (const traj::Trajectory& trajectory : corpus) {
    ASSERT_GT(trajectory.points.size(), 100u);
    for (size_t i = 1; i < trajectory.points.size(); ++i) {
      EXPECT_GE(trajectory.points[i].timestamp,
                trajectory.points[i - 1].timestamp);
    }
  }
}

TEST(GeneratorTest, SharesApproximateGeoLife) {
  GeneratorOptions options;
  options.num_users = 40;
  options.days_per_user = 4;
  options.seed = 23;
  GeoLifeLikeGenerator generator(options);
  generator.Generate();
  const CorpusSummary& summary = generator.summary();
  EXPECT_GT(summary.total_points, 100000u);
  // The four dominant modes land within a few points of the target share.
  EXPECT_NEAR(summary.PointShare(Mode::kWalk), 0.2935, 0.10);
  EXPECT_NEAR(summary.PointShare(Mode::kBus), 0.2333, 0.10);
  EXPECT_NEAR(summary.PointShare(Mode::kBike), 0.1734, 0.09);
  // Rare modes stay rare.
  EXPECT_LT(summary.PointShare(Mode::kAirplane), 0.05);
  EXPECT_LT(summary.PointShare(Mode::kBoat), 0.02);
}

TEST(GeneratorTest, LabelNoiseCreatesBoundaryMislabels) {
  GeneratorOptions noisy;
  noisy.num_users = 10;
  noisy.days_per_user = 3;
  noisy.seed = 31;
  noisy.label_noise_prob = 1.0;  // Every boundary shifted.
  GeneratorOptions clean = noisy;
  clean.label_noise_prob = 0.0;
  GeoLifeLikeGenerator g_noisy(noisy);
  GeoLifeLikeGenerator g_clean(clean);
  const auto corpus_noisy = g_noisy.Generate();
  const auto corpus_clean = g_clean.Generate();
  // Same seed → same trips; labels differ at boundaries.
  size_t diff = 0;
  size_t total = 0;
  for (size_t u = 0; u < corpus_noisy.size(); ++u) {
    ASSERT_EQ(corpus_noisy[u].points.size(), corpus_clean[u].points.size());
    for (size_t i = 0; i < corpus_noisy[u].points.size(); ++i) {
      total += 1;
      if (corpus_noisy[u].points[i].mode != corpus_clean[u].points[i].mode) {
        ++diff;
      }
    }
  }
  EXPECT_GT(diff, 0u);
  EXPECT_LT(static_cast<double>(diff) / static_cast<double>(total), 0.25);
}

TEST(GeneratorTest, SummaryToStringRenders) {
  GeneratorOptions options;
  options.num_users = 3;
  options.days_per_user = 1;
  GeoLifeLikeGenerator generator(options);
  generator.Generate();
  const std::string text = generator.summary().ToString();
  EXPECT_NE(text.find("walk"), std::string::npos);
  EXPECT_NE(text.find("total trips"), std::string::npos);
}

TEST(GeneratorTest, UserProfilesExposed) {
  GeneratorOptions options;
  options.num_users = 6;
  options.days_per_user = 1;
  GeoLifeLikeGenerator generator(options);
  generator.Generate();
  EXPECT_EQ(generator.user_profiles().size(), 6u);
}

TEST(GeneratorTest, PointsStayWithinPlausibleRegion) {
  GeneratorOptions options;
  options.num_users = 6;
  options.days_per_user = 2;
  options.seed = 37;
  GeoLifeLikeGenerator generator(options);
  const auto corpus = generator.Generate();
  for (const traj::Trajectory& trajectory : corpus) {
    for (size_t i = 0; i < trajectory.points.size(); i += 53) {
      // Everything within ~400 km of Beijing (airplane trips roam the
      // farthest).
      EXPECT_LT(geo::HaversineMeters(trajectory.points[i].pos, kCenter),
                1.5e6);
    }
  }
}

}  // namespace
}  // namespace trajkit::synthgeo
