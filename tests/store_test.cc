// Tests for the historical trajectory store (src/store): Hilbert-curve
// properties, bulk-load packing under both strategies, all three query
// paths against the brute-force oracle (seeded randomized property test,
// thread-count invariance), concurrent ingest-while-query (TSan leg), and
// the segment-log round trip with its error cases.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "store/hilbert.h"
#include "store/trajectory_store.h"

namespace trajkit::store {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------- Hilbert curve --

TEST(HilbertTest, VisitsEveryCellOfTheGridExactlyOnce) {
  // Order 4: a 16x16 grid — small enough to enumerate the whole curve.
  const int order = 4;
  const uint32_t side = 1u << order;
  std::set<uint64_t> seen;
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      const uint64_t d = HilbertDistance(x, y, order);
      EXPECT_LT(d, static_cast<uint64_t>(side) * side);
      EXPECT_TRUE(seen.insert(d).second)
          << "cells (" << x << ", " << y << ") collide at distance " << d;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(side) * side);
}

TEST(HilbertTest, DistanceAndCellAreInverses) {
  const int order = 6;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const uint32_t x =
        static_cast<uint32_t>(rng.NextBounded(1u << order));
    const uint32_t y =
        static_cast<uint32_t>(rng.NextBounded(1u << order));
    uint32_t rx = 0, ry = 0;
    HilbertCell(HilbertDistance(x, y, order), order, &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(HilbertTest, ConsecutiveDistancesAreGridNeighbours) {
  // The locality property bulk loading relies on: walking the curve moves
  // one grid step at a time, so nearby distances mean nearby cells.
  const int order = 5;
  uint32_t px = 0, py = 0;
  HilbertCell(0, order, &px, &py);
  const uint64_t cells = 1ull << (2 * order);
  for (uint64_t d = 1; d < cells; ++d) {
    uint32_t x = 0, y = 0;
    HilbertCell(d, order, &x, &y);
    const uint32_t manhattan = (x > px ? x - px : px - x) +
                               (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "jump at distance " << d;
    px = x;
    py = y;
  }
}

// ------------------------------------------------------------- fixtures --

/// Builds `count` random segments clustered around a city-sized extent.
std::vector<StoredSegment> RandomSegments(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<StoredSegment> segments;
  segments.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    StoredSegment segment;
    segment.session_id = static_cast<int64_t>(i);
    segment.user_id = static_cast<int32_t>(rng.NextBounded(20));
    segment.day = static_cast<int64_t>(rng.NextBounded(30));
    segment.predicted_mode =
        static_cast<traj::Mode>(rng.NextBounded(traj::kNumModes));
    segment.true_mode =
        static_cast<traj::Mode>(rng.NextBounded(traj::kNumModes));
    segment.start_time = rng.Uniform(0.0, 1e6);
    segment.end_time = segment.start_time + rng.Uniform(30.0, 3600.0);
    segment.num_points = static_cast<uint32_t>(rng.NextBounded(500) + 2);
    const double lat = rng.Uniform(39.5, 40.5);
    const double lon = rng.Uniform(116.0, 117.0);
    segment.bbox.Extend(geo::LatLon{lat, lon});
    segment.bbox.Extend(geo::LatLon{lat + rng.Uniform(0.0, 0.05),
                                    lon + rng.Uniform(0.0, 0.05)});
    segment.features = {static_cast<double>(i), 1.0, 2.0};
    segments.push_back(segment);
  }
  return segments;
}

geo::BoundingBox RandomBox(Rng& rng) {
  geo::BoundingBox box;
  const double lat = rng.Uniform(39.4, 40.6);
  const double lon = rng.Uniform(115.9, 117.1);
  box.Extend(geo::LatLon{lat, lon});
  box.Extend(geo::LatLon{lat + rng.Uniform(0.01, 0.4),
                         lon + rng.Uniform(0.01, 0.4)});
  return box;
}

// ----------------------------------------------------------- query paths --

class StoreStrategyTest : public ::testing::TestWithParam<BulkLoadStrategy> {
};

TEST_P(StoreStrategyTest, IndexedQueriesMatchTheOracle) {
  TrajectoryStoreOptions options;
  options.strategy = GetParam();
  options.leaf_fanout = 8;  // Small fanouts force a multi-level tree.
  options.fanout = 4;
  TrajectoryStore store(options);
  for (StoredSegment& segment : RandomSegments(700, 42)) {
    store.Ingest(std::move(segment));
  }

  Rng rng(7);
  for (int q = 0; q < 200; ++q) {
    const geo::BoundingBox box = RandomBox(rng);
    TimeRange time;
    if (rng.NextBounded(2) == 0) {
      time.begin = rng.Uniform(0.0, 1e6);
      time.end = time.begin + rng.Uniform(1e3, 5e5);
    }
    ModeMask mask = kAllModesMask;
    if (rng.NextBounded(2) == 0) {
      mask = MaskOf(static_cast<traj::Mode>(
                 rng.NextBounded(traj::kNumModes))) |
             MaskOf(static_cast<traj::Mode>(
                 rng.NextBounded(traj::kNumModes)));
    }
    EXPECT_EQ(store.QueryBBox(box, time, mask),
              store.QueryBBoxBruteForce(box, time, mask))
        << "bbox query " << q << " diverged";
  }

  for (int32_t user = -1; user < 21; ++user) {
    TimeRange time;
    time.begin = 2e5;
    time.end = 8e5;
    EXPECT_EQ(store.QueryUser(user, time),
              store.QueryUserBruteForce(user, time));
  }

  for (const double cell_deg : {0.005, 0.05, 0.25}) {
    EXPECT_EQ(store.TopKHotspots(cell_deg, 10),
              store.TopKHotspotsBruteForce(cell_deg, 10));
    const ModeMask walk = MaskOf(traj::Mode::kWalk);
    EXPECT_EQ(store.TopKHotspots(cell_deg, 5, walk),
              store.TopKHotspotsBruteForce(cell_deg, 5, walk));
  }

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.segments, 700u);
  EXPECT_GE(stats.index_height, 2u);
  EXPECT_GT(stats.nodes_visited, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, StoreStrategyTest,
                         ::testing::Values(BulkLoadStrategy::kHilbert,
                                           BulkLoadStrategy::kStr));

TEST(TrajectoryStoreTest, ResultsAreIdenticalAtAnyThreadCount) {
  // The store never fans work out to the pool, but the guarantee callers
  // get is thread-count invariance — pin it with an explicit 1-vs-8 run.
  const auto run = [] {
    TrajectoryStore store;
    for (StoredSegment& segment : RandomSegments(300, 99)) {
      store.Ingest(std::move(segment));
    }
    Rng rng(3);
    std::vector<std::vector<uint32_t>> results;
    for (int q = 0; q < 50; ++q) {
      results.push_back(store.QueryBBox(RandomBox(rng)));
    }
    results.push_back(store.QueryUser(4));
    std::vector<HotspotCell> cells = store.TopKHotspots(0.01, 8);
    std::vector<uint32_t> flattened;
    for (const HotspotCell& cell : cells) {
      flattened.push_back(static_cast<uint32_t>(cell.count));
    }
    results.push_back(flattened);
    return results;
  };
  const int before = MaxThreads();
  SetMaxThreads(1);
  const auto single = run();
  SetMaxThreads(8);
  const auto eight = run();
  SetMaxThreads(before);
  EXPECT_EQ(single, eight);
}

TEST(TrajectoryStoreTest, PostingsFastPathSkipsAndAgrees) {
  TrajectoryStoreOptions options;
  options.postings_selectivity = 4;
  TrajectoryStore store(options);
  // 990 walk segments, 10 bus: a bus-only query is highly selective.
  for (StoredSegment& segment : RandomSegments(1000, 5)) {
    segment.predicted_mode =
        segment.session_id % 100 == 0 ? traj::Mode::kBus : traj::Mode::kWalk;
    store.Ingest(std::move(segment));
  }
  geo::BoundingBox everywhere;
  everywhere.Extend(geo::LatLon{-90.0, -180.0});
  everywhere.Extend(geo::LatLon{90.0, 180.0});
  const ModeMask bus = MaskOf(traj::Mode::kBus);
  const auto indexed = store.QueryBBox(everywhere, TimeRange::All(), bus);
  EXPECT_EQ(indexed,
            store.QueryBBoxBruteForce(everywhere, TimeRange::All(), bus));
  EXPECT_EQ(indexed.size(), 10u);
  // The fast path never examined the walk postings.
  EXPECT_GE(store.stats().postings_skipped, 990u);

  // Disabling the fast path must not change any answer.
  TrajectoryStoreOptions no_fast_path;
  no_fast_path.postings_selectivity = 0;
  TrajectoryStore slow(no_fast_path);
  for (StoredSegment& segment : RandomSegments(1000, 5)) {
    segment.predicted_mode =
        segment.session_id % 100 == 0 ? traj::Mode::kBus : traj::Mode::kWalk;
    slow.Ingest(std::move(segment));
  }
  EXPECT_EQ(slow.QueryBBox(everywhere, TimeRange::All(), bus), indexed);
  EXPECT_EQ(slow.stats().postings_skipped, 0u);
}

TEST(TrajectoryStoreTest, EmptyAndSingleSegmentStoresAnswerQueries) {
  TrajectoryStore store;
  geo::BoundingBox box;
  box.Extend(geo::LatLon{0.0, 0.0});
  box.Extend(geo::LatLon{1.0, 1.0});
  EXPECT_TRUE(store.QueryBBox(box).empty());
  EXPECT_TRUE(store.QueryUser(1).empty());
  EXPECT_TRUE(store.TopKHotspots(0.1, 3).empty());

  StoredSegment only = RandomSegments(1, 1)[0];
  const int32_t user = only.user_id;
  store.Ingest(std::move(only));
  geo::BoundingBox everywhere;
  everywhere.Extend(geo::LatLon{-90.0, -180.0});
  everywhere.Extend(geo::LatLon{90.0, 180.0});
  EXPECT_EQ(store.QueryBBox(everywhere).size(), 1u);
  EXPECT_EQ(store.QueryUser(user).size(), 1u);
  EXPECT_EQ(store.TopKHotspots(0.1, 3).size(), 1u);
}

TEST(TrajectoryStoreTest, IngestAfterQueryTriggersRebuildWithBothAnswers) {
  TrajectoryStore store;
  geo::BoundingBox everywhere;
  everywhere.Extend(geo::LatLon{-90.0, -180.0});
  everywhere.Extend(geo::LatLon{90.0, 180.0});
  std::vector<StoredSegment> segments = RandomSegments(64, 17);
  for (size_t i = 0; i < 32; ++i) store.Ingest(segments[i]);
  EXPECT_EQ(store.QueryBBox(everywhere).size(), 32u);
  EXPECT_EQ(store.stats().bulk_loads, 1u);
  for (size_t i = 32; i < 64; ++i) store.Ingest(segments[i]);
  EXPECT_EQ(store.QueryBBox(everywhere).size(), 64u);
  EXPECT_EQ(store.stats().bulk_loads, 2u);
  // No new segments: querying again must not rebuild.
  (void)store.QueryBBox(everywhere);
  EXPECT_EQ(store.stats().bulk_loads, 2u);
}

// ------------------------------------------------------------ mode masks --

TEST(ParseModeMaskTest, ParsesListsAndRejectsJunk) {
  EXPECT_EQ(ParseModeMask("").value(), kAllModesMask);
  EXPECT_EQ(ParseModeMask("walk").value(), MaskOf(traj::Mode::kWalk));
  EXPECT_EQ(ParseModeMask("walk, bus").value(),
            MaskOf(traj::Mode::kWalk) | MaskOf(traj::Mode::kBus));
  EXPECT_FALSE(ParseModeMask("hovercraft").ok());
}

// ---------------------------------------------------------- session sink --

TEST(TrajectoryStoreTest, SessionSinkIngestsClosedSegmentsWithBbox) {
  serve::SessionOptions session_options;
  session_options.min_points = 2;
  serve::SessionManager sessions(session_options);
  TrajectoryStore store;
  sessions.set_closed_sink(store.MakeSessionSink());

  std::vector<serve::ClosedSegment> closed;
  traj::TrajectoryPoint point;
  point.mode = traj::Mode::kWalk;
  for (int i = 0; i < 5; ++i) {
    point.pos = geo::LatLon{39.9 + 1e-4 * i, 116.3 + 1e-4 * i};
    point.timestamp = 1000.0 + 10.0 * i;
    sessions.Ingest(7, point, &closed);
  }
  sessions.FlushAll(&closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_TRUE(closed[0].bbox.IsInitialized());
  EXPECT_DOUBLE_EQ(closed[0].bbox.min_lat, 39.9);
  EXPECT_DOUBLE_EQ(closed[0].bbox.max_lon, 116.3 + 4e-4);

  ASSERT_EQ(store.size(), 1u);
  const StoredSegment segment = store.Segment(0);
  EXPECT_EQ(segment.predicted_mode, traj::Mode::kWalk);
  EXPECT_EQ(segment.true_mode, traj::Mode::kWalk);
  EXPECT_EQ(segment.user_id, 7);
  EXPECT_EQ(segment.num_points, 5u);
  EXPECT_DOUBLE_EQ(segment.bbox.min_lat, closed[0].bbox.min_lat);
  EXPECT_EQ(store.QueryUser(7).size(), 1u);
}

// ------------------------------------------------------------ segment log --

TEST(SegmentLogTest, RoundTripPreservesEverySegmentExactly) {
  const std::string path = TempPath("trajkit_store_roundtrip.log");
  TrajectoryStore store;
  std::vector<StoredSegment> original = RandomSegments(50, 23);
  // Give one segment points and an uninitialized bbox to cover both
  // optional shapes.
  traj::TrajectoryPoint point;
  point.pos = geo::LatLon{39.99, 116.31};
  point.timestamp = 123.5;
  point.mode = traj::Mode::kBike;
  original[3].points = {point, point};
  original[9].bbox = geo::BoundingBox();
  for (const StoredSegment& segment : original) store.Ingest(segment);
  ASSERT_TRUE(store.SaveTo(path).ok());

  TrajectoryStore loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  ASSERT_EQ(loaded.size(), original.size());
  for (uint32_t i = 0; i < original.size(); ++i) {
    const StoredSegment a = loaded.Segment(i);
    const StoredSegment& b = original[i];
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.predicted_mode, b.predicted_mode);
    EXPECT_EQ(a.true_mode, b.true_mode);
    EXPECT_EQ(a.start_time, b.start_time);  // Bit-exact, not approximate.
    EXPECT_EQ(a.end_time, b.end_time);
    EXPECT_EQ(a.num_points, b.num_points);
    EXPECT_EQ(a.bbox.min_lat, b.bbox.min_lat);
    EXPECT_EQ(a.bbox.max_lat, b.bbox.max_lat);
    EXPECT_EQ(a.bbox.min_lon, b.bbox.min_lon);
    EXPECT_EQ(a.bbox.max_lon, b.bbox.max_lon);
    EXPECT_EQ(a.features, b.features);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t p = 0; p < a.points.size(); ++p) {
      EXPECT_EQ(a.points[p].pos.lat_deg, b.points[p].pos.lat_deg);
      EXPECT_EQ(a.points[p].timestamp, b.points[p].timestamp);
      EXPECT_EQ(a.points[p].mode, b.points[p].mode);
    }
  }
  std::remove(path.c_str());
}

TEST(SegmentLogTest, LoadingTwoLogsEqualsLoadingTheirConcatenation) {
  const std::string path_a = TempPath("trajkit_store_a.log");
  const std::string path_b = TempPath("trajkit_store_b.log");
  const std::string path_cat = TempPath("trajkit_store_cat.log");
  TrajectoryStore first, second;
  for (const StoredSegment& s : RandomSegments(7, 1)) first.Ingest(s);
  for (const StoredSegment& s : RandomSegments(5, 2)) second.Ingest(s);
  ASSERT_TRUE(first.SaveTo(path_a).ok());
  ASSERT_TRUE(second.SaveTo(path_b).ok());

  // Byte-level concatenation, as `cat a b > c` would produce.
  const std::string merged = ReadFileToString(path_a).value() +
                             ReadFileToString(path_b).value();
  ASSERT_TRUE(WriteStringToFile(path_cat, merged).ok());

  TrajectoryStore via_two_loads, via_cat;
  ASSERT_TRUE(via_two_loads.Load(path_a).ok());
  ASSERT_TRUE(via_two_loads.Load(path_b).ok());
  ASSERT_TRUE(via_cat.Load(path_cat).ok());
  ASSERT_EQ(via_cat.size(), 12u);
  ASSERT_EQ(via_two_loads.size(), via_cat.size());
  for (uint32_t i = 0; i < via_cat.size(); ++i) {
    EXPECT_EQ(via_two_loads.Segment(i).session_id,
              via_cat.Segment(i).session_id);
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(path_cat.c_str());
}

TEST(SegmentLogTest, RejectsMissingTruncatedAndForeignFiles) {
  TrajectoryStore store;
  EXPECT_FALSE(store.Load(TempPath("trajkit_store_nonexistent.log")).ok());

  const std::string bad_magic = TempPath("trajkit_store_bad_magic.log");
  ASSERT_TRUE(WriteStringToFile(bad_magic, "definitely not a log").ok());
  EXPECT_FALSE(store.Load(bad_magic).ok());
  std::remove(bad_magic.c_str());

  // A valid log cut mid-record must fail, not silently drop data.
  const std::string full = TempPath("trajkit_store_full.log");
  TrajectoryStore source;
  for (const StoredSegment& s : RandomSegments(3, 9)) source.Ingest(s);
  ASSERT_TRUE(source.SaveTo(full).ok());
  const std::string bytes = ReadFileToString(full).value();
  const std::string truncated_path = TempPath("trajkit_store_truncated.log");
  ASSERT_TRUE(
      WriteStringToFile(truncated_path,
                        std::string_view(bytes).substr(0, bytes.size() - 11))
          .ok());
  EXPECT_FALSE(store.Load(truncated_path).ok());
  std::remove(full.c_str());
  std::remove(truncated_path.c_str());
  EXPECT_EQ(store.size(), 0u)
      << "failed loads must not leave partial segments behind";
}

// ------------------------------------------------------------ concurrency --

TEST(TrajectoryStoreConcurrencyTest, IngestWhileQueryingIsSafe) {
  // Writers append while readers run every query shape; under TSan this
  // pins the single-mutex protocol (lazy rebuild included) as race-free.
  TrajectoryStore store;
  for (const StoredSegment& s : RandomSegments(200, 31)) store.Ingest(s);

  std::vector<StoredSegment> extra = RandomSegments(400, 32);
  std::thread writer([&store, &extra] {
    for (StoredSegment& segment : extra) store.Ingest(std::move(segment));
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&store, t] {
      Rng rng(100 + t);
      for (int q = 0; q < 60; ++q) {
        const geo::BoundingBox box = RandomBox(rng);
        const auto ids = store.QueryBBox(box);
        // Whatever snapshot the query saw, it must agree with itself:
        // ascending ids, all below the size at some consistent instant.
        for (size_t i = 1; i < ids.size(); ++i) {
          ASSERT_LT(ids[i - 1], ids[i]);
        }
        (void)store.QueryUser(static_cast<int32_t>(rng.NextBounded(20)));
        (void)store.TopKHotspots(0.02, 5);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  ASSERT_EQ(store.size(), 600u);
  geo::BoundingBox everywhere;
  everywhere.Extend(geo::LatLon{-90.0, -180.0});
  everywhere.Extend(geo::LatLon{90.0, 180.0});
  EXPECT_EQ(store.QueryBBox(everywhere).size(), 600u);
}

}  // namespace
}  // namespace trajkit::store
