// Golden parity and lifecycle tests for the compiled flat inference form
// (ml/flat_forest.h): bit-identity against the pointer walk at 1 and 8
// threads, the quantization exactness contract (accept and reject), the
// raw binary dump round trip (bit-identical, quantized mirror included),
// and serialize -> compile-on-register -> hot-swap parity through the
// serving registry.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "serve/model_registry.h"

namespace trajkit::ml {
namespace {

/// Pins the worker-pool size for a scope; 0 restores the default.
struct ScopedThreads {
  explicit ScopedThreads(int n) { SetMaxThreads(n); }
  ~ScopedThreads() { SetMaxThreads(0); }
};

/// Gaussian blobs with overlap so trees grow real depth (not all pure
/// root-level splits) and some leaves share distributions.
Dataset MakeBlobs(int num_classes, int per_class, int num_features,
                  double spread, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<std::string> feature_names;
  for (int f = 0; f < num_features; ++f) {
    feature_names.push_back("f" + std::to_string(f));
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < num_classes; ++c) {
    class_names.push_back("c" + std::to_string(c));
    for (int i = 0; i < per_class; ++i) {
      std::vector<double> row(static_cast<size_t>(num_features));
      for (int f = 0; f < num_features; ++f) {
        row[static_cast<size_t>(f)] =
            rng.Gaussian(1.5 * c * ((f % 3) - 1), spread);
      }
      rows.push_back(std::move(row));
      labels.push_back(c);
    }
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows), std::move(labels),
                                   {}, std::move(feature_names),
                                   std::move(class_names)))
      .value();
}

Matrix RandomQueries(size_t rows, int num_features, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<double> row(static_cast<size_t>(num_features));
    for (int f = 0; f < num_features; ++f) {
      row[static_cast<size_t>(f)] = rng.Gaussian(0.0, 3.0);
    }
    out.push_back(std::move(row));
  }
  return Matrix::FromRows(out);
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      // EXPECT_EQ (not NEAR): the contract is the same bits, not closeness.
      EXPECT_EQ(a(r, c), b(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(FlatForestTest, CompileRequiresFittedForest) {
  RandomForest forest;
  EXPECT_FALSE(FlatForest::Compile(forest).ok());
  EXPECT_FALSE(forest.CompileFlat().ok());
}

TEST(FlatForestTest, PredictAndProbaBitIdenticalToPointerWalkAcrossThreads) {
  const Dataset train = MakeBlobs(4, 60, 6, 1.4, 7);
  RandomForestParams params;
  params.n_estimators = 16;
  RandomForest pointer(params);
  ASSERT_TRUE(pointer.Fit(train).ok());

  RandomForest flat = pointer;  // Same fitted trees; this copy compiles.
  ASSERT_TRUE(flat.CompileFlat().ok());
  ASSERT_NE(flat.flat(), nullptr);
  EXPECT_EQ(pointer.flat(), nullptr);  // The baseline stays a pointer walk.

  // 200 rows spans multiple 64-row blocks plus a ragged tail.
  const Matrix queries = RandomQueries(200, 6, 99);
  for (const int threads : {1, 8}) {
    ScopedThreads scoped(threads);
    EXPECT_EQ(pointer.Predict(queries), flat.Predict(queries))
        << "threads=" << threads;
    ExpectBitIdentical(std::move(pointer.PredictProba(queries)).value(),
                       std::move(flat.PredictProba(queries)).value());
  }
}

TEST(FlatForestTest, NanAndInfinityRowsAgreeWithPointerWalk) {
  const Dataset train = MakeBlobs(3, 50, 4, 1.2, 11);
  RandomForest pointer;
  ASSERT_TRUE(pointer.Fit(train).ok());
  RandomForest flat = pointer;
  ASSERT_TRUE(flat.CompileFlat().ok());

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Matrix weird = Matrix::FromRows({{nan, 0.5, -0.5, 1.0},
                                         {nan, nan, nan, nan},
                                         {inf, -inf, 0.0, nan},
                                         {-inf, inf, nan, 2.0}});
  EXPECT_EQ(pointer.Predict(weird), flat.Predict(weird));
  ExpectBitIdentical(std::move(pointer.PredictProba(weird)).value(),
                     std::move(flat.PredictProba(weird)).value());
}

TEST(FlatForestTest, StatsCountNodesAndDedupedDistributions) {
  const Dataset train = MakeBlobs(3, 40, 5, 1.0, 21);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  ASSERT_TRUE(forest.CompileFlat().ok());

  size_t expected_nodes = 0;
  for (const DecisionTree& tree : forest.trees()) {
    expected_nodes += tree.NodeCount();
  }
  const FlatForestStats stats = forest.flat()->Stats();
  EXPECT_EQ(stats.num_trees, forest.NumTrees());
  EXPECT_EQ(stats.num_nodes, expected_nodes);
  EXPECT_GT(stats.num_leaves, stats.num_trees);
  // Pure leaves dominate a fitted forest, so folding identical
  // distributions into the shared table must actually deduplicate.
  EXPECT_LT(stats.shared_distributions, stats.num_leaves);
  EXPECT_FALSE(stats.quantized);
}

TEST(FlatForestTest, RefitDropsCompiledForm) {
  const Dataset train = MakeBlobs(3, 30, 4, 1.0, 31);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  ASSERT_TRUE(forest.CompileFlat().ok());
  ASSERT_NE(forest.flat(), nullptr);
  ASSERT_TRUE(forest.Fit(train).ok());
  EXPECT_EQ(forest.flat(), nullptr);
}

TEST(FlatForestTest, QuantizationAcceptedIsExactOnReferenceAndQueries) {
  // Features on a 0.1 grid: every value sits >= 0.05 from every split
  // threshold (midpoints of distinct values) while int16 grid cells are
  // ~range/32000 < 0.002 wide — acceptance is guaranteed, and any 0.1-grid
  // query descends identically in both forms.
  Rng rng(41);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 50; ++i) {
      std::vector<double> row(5);
      for (size_t f = 0; f < row.size(); ++f) {
        row[f] = std::round(rng.Gaussian(4.0 * c, 3.0) * 10.0) / 10.0;
      }
      rows.push_back(std::move(row));
      labels.push_back(c);
    }
  }
  const Dataset train =
      std::move(Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                                {"a", "b", "c", "d", "e"},
                                {"c0", "c1", "c2"}))
          .value();
  RandomForest pointer;
  ASSERT_TRUE(pointer.Fit(train).ok());

  RandomForest quantized = pointer;
  FlatForestOptions options;
  options.quantize = true;
  options.exactness_reference = &train.features();
  ASSERT_TRUE(quantized.CompileFlat(options).ok());
  const FlatForest& flat = *quantized.flat();
  ASSERT_TRUE(flat.quantized()) << flat.quantization_rejection();
  EXPECT_TRUE(flat.quantization_rejection().empty());
  EXPECT_TRUE(flat.Stats().quantized);

  EXPECT_EQ(pointer.Predict(train.features()),
            quantized.Predict(train.features()));
  ExpectBitIdentical(
      std::move(pointer.PredictProba(train.features())).value(),
      std::move(quantized.PredictProba(train.features())).value());

  // Off-reference queries carry no exactness guarantee (that is precisely
  // why the check replays reference rows), but the quantized batched
  // cohort kernel must agree with the quantized single-row kernel.
  const Matrix queries = RandomQueries(100, 5, 42);
  const Matrix batch = quantized.PredictProba(queries).value();
  const double inv = 1.0 / static_cast<double>(flat.num_trees());
  for (size_t r = 0; r < queries.rows(); ++r) {
    std::vector<double> acc(3, 0.0);
    flat.AccumulateVotes(queries.Row(r), inv, acc);
    for (size_t c = 0; c < acc.size(); ++c) {
      EXPECT_EQ(batch(r, c), acc[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(FlatForestTest, QuantizationRejectsNearThresholdReferenceSample) {
  // One feature, two well-separated clusters: the single stump threshold
  // sits mid-gap, and a crafted reference sample epsilon above it shares
  // its int16 grid cell — the exactness replay must catch the flip and
  // keep the exact form.
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    rows.push_back({static_cast<double>(i)});
    labels.push_back(0);
    rows.push_back({1.0e6 + static_cast<double>(i)});
    labels.push_back(1);
  }
  Dataset train = std::move(Dataset::Create(Matrix::FromRows(rows),
                                            std::move(labels), {}, {"x"},
                                            {"lo", "hi"}))
                      .value();
  RandomForestParams params;
  params.n_estimators = 1;
  params.bootstrap = false;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());

  // Recover the stump threshold so the crafted sample is provably inside
  // the same quantization cell (cell width ~ gap/32000 >> 1e-3).
  double threshold = 0.0;
  bool found = false;
  for (const DecisionTree::Node& node : forest.trees()[0].nodes()) {
    if (node.feature >= 0) {
      threshold = node.threshold;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  const Matrix reference = Matrix::FromRows({{threshold + 1.0e-3}});
  FlatForestOptions options;
  options.quantize = true;
  options.exactness_reference = &reference;
  ASSERT_TRUE(forest.CompileFlat(options).ok());
  EXPECT_FALSE(forest.flat()->quantized());
  EXPECT_NE(forest.flat()->quantization_rejection().find("diverged"),
            std::string::npos)
      << forest.flat()->quantization_rejection();
  // The rejected compile still serves, exactly, from the exact arrays.
  EXPECT_EQ(forest.Predict(reference), std::vector<int>{1});
}

TEST(FlatForestTest, QuantizeOptionsValidated) {
  const Dataset train = MakeBlobs(2, 20, 3, 1.0, 51);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());

  FlatForestOptions options;
  options.quantize = true;
  EXPECT_FALSE(forest.CompileFlat(options).ok());  // No reference.

  const Matrix wrong_width = Matrix::FromRows({{1.0, 2.0}});
  options.exactness_reference = &wrong_width;
  EXPECT_FALSE(forest.CompileFlat(options).ok());
}

TEST(FlatForestTest, AccumulateVotesMatchesManualTreeSum) {
  const Dataset train = MakeBlobs(3, 40, 5, 1.2, 61);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  ASSERT_TRUE(forest.CompileFlat().ok());

  const Matrix queries = RandomQueries(5, 5, 62);
  for (size_t r = 0; r < queries.rows(); ++r) {
    std::vector<double> expected(3, 0.0);
    for (const DecisionTree& tree : forest.trees()) {
      const std::span<const double> dist =
          tree.LeafDistribution(queries.Row(r));
      for (size_t c = 0; c < expected.size(); ++c) {
        expected[c] += dist[c] * 0.25;
      }
    }
    std::vector<double> acc(3, 0.0);
    forest.flat()->AccumulateVotes(queries.Row(r), 0.25, acc);
    for (size_t c = 0; c < expected.size(); ++c) {
      EXPECT_EQ(acc[c], expected[c]);
    }
  }
}

TEST(FlatForestTest, DumpRoundTripIsBitIdentical) {
  const Dataset train = MakeBlobs(4, 60, 6, 1.4, 77);
  RandomForestParams params;
  params.n_estimators = 12;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const auto compiled = FlatForest::Compile(forest);
  ASSERT_TRUE(compiled.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "trajkit_flat_forest.bin")
          .string();
  ASSERT_TRUE(compiled->SaveTo(path).ok());
  const auto loaded = FlatForest::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_classes(), compiled->num_classes());
  EXPECT_EQ(loaded->num_features(), compiled->num_features());
  EXPECT_EQ(loaded->num_trees(), compiled->num_trees());
  EXPECT_EQ(loaded->num_nodes(), compiled->num_nodes());
  EXPECT_EQ(loaded->quantized(), compiled->quantized());

  const Matrix queries = RandomQueries(150, 6, 78);
  EXPECT_EQ(loaded->Predict(queries), compiled->Predict(queries));
  ExpectBitIdentical(loaded->PredictProba(queries),
                     compiled->PredictProba(queries));
  std::remove(path.c_str());
}

TEST(FlatForestTest, DumpRoundTripPreservesTheQuantizedMirror) {
  // Wide blobs quantize cleanly (same construction the acceptance test
  // uses); the loaded mirror must route every query to the same leaf.
  const Dataset train = MakeBlobs(3, 80, 5, 0.4, 81);
  RandomForestParams params;
  params.n_estimators = 10;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  FlatForestOptions options;
  options.quantize = true;
  options.exactness_reference = &train.features();
  const auto compiled = FlatForest::Compile(forest, options);
  ASSERT_TRUE(compiled.ok());
  if (!compiled->quantized()) {
    GTEST_SKIP() << "quantization rejected on this fixture: "
                 << compiled->quantization_rejection();
  }

  const std::string path =
      (std::filesystem::temp_directory_path() / "trajkit_flat_forest_q.bin")
          .string();
  ASSERT_TRUE(compiled->SaveTo(path).ok());
  const auto loaded = FlatForest::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->quantized());

  const Matrix queries = RandomQueries(100, 5, 82);
  for (size_t r = 0; r < queries.rows(); ++r) {
    for (size_t t = 0; t < compiled->num_trees(); ++t) {
      EXPECT_EQ(loaded->LeafIndexForTest(t, queries.Row(r), true),
                compiled->LeafIndexForTest(t, queries.Row(r), true));
    }
  }
  std::remove(path.c_str());
}

TEST(FlatForestTest, LoadRejectsMissingCorruptAndTruncatedDumps) {
  EXPECT_FALSE(FlatForest::LoadFrom("/nonexistent/flat_forest.bin").ok());

  const std::string garbage =
      (std::filesystem::temp_directory_path() / "trajkit_ff_garbage.bin")
          .string();
  ASSERT_TRUE(WriteStringToFile(garbage, "not a forest dump").ok());
  EXPECT_FALSE(FlatForest::LoadFrom(garbage).ok());
  std::remove(garbage.c_str());

  const Dataset train = MakeBlobs(3, 40, 4, 1.2, 83);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  const auto compiled = FlatForest::Compile(forest);
  ASSERT_TRUE(compiled.ok());
  const std::string full =
      (std::filesystem::temp_directory_path() / "trajkit_ff_full.bin")
          .string();
  ASSERT_TRUE(compiled->SaveTo(full).ok());
  const std::string bytes = ReadFileToString(full).value();
  const std::string truncated =
      (std::filesystem::temp_directory_path() / "trajkit_ff_trunc.bin")
          .string();
  ASSERT_TRUE(
      WriteStringToFile(truncated,
                        std::string_view(bytes).substr(0, bytes.size() / 2))
          .ok());
  EXPECT_FALSE(FlatForest::LoadFrom(truncated).ok());
  std::remove(full.c_str());
  std::remove(truncated.c_str());
}

TEST(FlatForestTest, SerializeCompileOnRegisterSwapParity) {
  const int kFeatures = 5;
  const Dataset train = MakeBlobs(3, 50, kFeatures, 1.3, 71);
  RandomForest offline;
  ASSERT_TRUE(offline.Fit(train).ok());

  // Round-trip through the wire format: the restored forest arrives
  // uncompiled and the registry must lower it on Register.
  RandomForest restored =
      std::move(RandomForest::Deserialize(offline.Serialize())).value();
  ASSERT_EQ(restored.flat(), nullptr);

  serve::ModelRegistry registry;
  serve::ServingModel model =
      std::move(serve::MakeServingModel("v1", std::move(restored), kFeatures))
          .value();
  ASSERT_TRUE(registry.Publish(std::move(model)).ok());

  const std::shared_ptr<const serve::ServingModel> active =
      registry.Acquire().active;
  ASSERT_NE(active, nullptr);
  ASSERT_NE(active->forest.flat(), nullptr);  // Compiled on Register.

  const Matrix queries = RandomQueries(96, kFeatures, 72);
  std::vector<std::vector<double>> rows;
  for (size_t r = 0; r < queries.rows(); ++r) {
    const std::span<const double> row = queries.Row(r);
    rows.emplace_back(row.begin(), row.end());
  }
  const std::vector<serve::Prediction> served =
      std::move(active->PredictBatch(rows)).value();
  const std::vector<int> expected = offline.Predict(queries);
  const Matrix expected_proba =
      std::move(offline.PredictProba(queries)).value();
  ASSERT_EQ(served.size(), expected.size());
  for (size_t r = 0; r < served.size(); ++r) {
    EXPECT_EQ(served[r].label, expected[r]);
    ASSERT_EQ(served[r].probabilities.size(), expected_proba.cols());
    for (size_t c = 0; c < expected_proba.cols(); ++c) {
      EXPECT_EQ(served[r].probabilities[c], expected_proba(r, c));
    }
  }
}

// Hot-swapping compiled models while readers predict: snapshots must stay
// immutable and answers bit-identical throughout. Runs under TSan in CI
// (concurrency label).
TEST(FlatForestTest, HotSwapUnderPredictStaysBitIdentical) {
  const int kFeatures = 4;
  const Dataset train = MakeBlobs(3, 40, kFeatures, 1.2, 81);
  RandomForestParams params;
  params.n_estimators = 8;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const Matrix queries = RandomQueries(32, kFeatures, 82);
  const std::vector<int> expected = forest.Predict(queries);
  std::vector<std::vector<double>> rows;
  for (size_t r = 0; r < queries.rows(); ++r) {
    const std::span<const double> row = queries.Row(r);
    rows.emplace_back(row.begin(), row.end());
  }

  serve::ModelRegistry registry;
  // Two versions of the same fit: swapping between them must be invisible
  // in the answers.
  ASSERT_TRUE(
      registry
          .Publish(std::move(serve::MakeServingModel(
                                             "v1", forest, kFeatures))
                                   .value())
          .ok());
  ASSERT_TRUE(registry
                  .Register(std::move(serve::MakeServingModel(
                                          "v2", forest, kFeatures))
                                .value())
                  .ok());

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(registry.Publish(i % 2 == 0 ? "v2" : "v1", serve::ModelRole::kActive).ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const std::shared_ptr<const serve::ServingModel> snapshot =
            registry.Acquire().active;
        ASSERT_NE(snapshot, nullptr);
        const std::vector<serve::Prediction> out =
            std::move(snapshot->PredictBatch(rows)).value();
        for (size_t r = 0; r < out.size(); ++r) {
          ASSERT_EQ(out[r].label, expected[r]);
        }
      }
    });
  }
  swapper.join();
  for (std::thread& reader : readers) reader.join();
}

}  // namespace
}  // namespace trajkit::ml
