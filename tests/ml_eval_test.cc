// Tests for cross-validation, feature selection, and the Wilcoxon tests.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/crossval.h"
#include "ml/decision_tree.h"
#include "ml/factory.h"
#include "ml/feature_selection.h"
#include "ml/random_forest.h"
#include "ml/stats_tests.h"

namespace trajkit::ml {
namespace {

// Three informative features (0, 2, 5) among 8; the rest pure noise.
Dataset MakeFeatureSelectionProblem(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<int> groups;
  for (int i = 0; i < n; ++i) {
    const int y = static_cast<int>(rng.NextBounded(3));
    std::vector<double> row(8);
    for (auto& v : row) v = rng.Gaussian(0.0, 1.0);
    row[0] += 2.0 * y;          // Strong signal.
    row[2] += 1.2 * (y == 1);   // Medium signal.
    row[5] += 0.9 * (y == 2);   // Weak signal.
    rows.push_back(std::move(row));
    labels.push_back(y);
    groups.push_back(i % 6);
  }
  return std::move(Dataset::Create(
             Matrix::FromRows(rows), std::move(labels), std::move(groups),
             {"s0", "n1", "s2", "n3", "n4", "s5", "n6", "n7"},
             {"a", "b", "c"}))
      .value();
}

// ------------------------------------------------------------- CrossVal --

TEST(CrossValidateTest, ProducesOneScorePerFold) {
  const Dataset ds = MakeFeatureSelectionProblem(120, 1);
  Rng rng(2);
  const auto folds = KFold(ds.num_samples(), 4, rng);
  DecisionTree tree;
  const auto result = CrossValidate(tree, ds, folds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fold_accuracy.size(), 4u);
  EXPECT_EQ(result->pooled_true.size(), ds.num_samples());
  EXPECT_EQ(result->pooled_pred.size(), ds.num_samples());
  EXPECT_GT(result->MeanAccuracy(), 0.5);
  EXPECT_GE(result->StdAccuracy(), 0.0);
  EXPECT_GT(result->MeanWeightedF1(), 0.4);
  EXPECT_GT(result->MeanMacroF1(), 0.4);
}

TEST(CrossValidateTest, RejectsEmptyFolds) {
  const Dataset ds = MakeFeatureSelectionProblem(30, 3);
  DecisionTree tree;
  EXPECT_FALSE(CrossValidate(tree, ds, {}).ok());
}

TEST(CrossValidateTest, DeterministicGivenSeeds) {
  const Dataset ds = MakeFeatureSelectionProblem(100, 4);
  Rng rng1(5);
  Rng rng2(5);
  const auto folds1 = KFold(ds.num_samples(), 3, rng1);
  const auto folds2 = KFold(ds.num_samples(), 3, rng2);
  RandomForestParams params;
  params.n_estimators = 8;
  RandomForest forest(params);
  const auto r1 = CrossValidate(forest, ds, folds1);
  const auto r2 = CrossValidate(forest, ds, folds2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->fold_accuracy, r2->fold_accuracy);
}

TEST(EvaluateHoldoutTest, BasicSplit) {
  const Dataset ds = MakeFeatureSelectionProblem(100, 6);
  Rng rng(7);
  const FoldSplit split = TrainTestSplit(ds.num_samples(), 0.3, rng);
  DecisionTree tree;
  const auto result = EvaluateHoldout(tree, ds, split);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->y_true.size(), split.test_indices.size());
  EXPECT_GT(result->accuracy, 0.4);
}

TEST(EvaluateHoldoutTest, RejectsEmptySides) {
  const Dataset ds = MakeFeatureSelectionProblem(10, 8);
  DecisionTree tree;
  FoldSplit split;
  split.train_indices = {0, 1, 2};
  EXPECT_FALSE(EvaluateHoldout(tree, ds, split).ok());
}

TEST(CrossValidateTest, NormalizationOptionTogglesScaling) {
  // With a feature on a huge scale, the scale-sensitive SVM needs the
  // normalization path; this test just checks both paths run.
  const Dataset ds = MakeFeatureSelectionProblem(80, 9);
  Rng rng(10);
  const auto folds = KFold(ds.num_samples(), 3, rng);
  auto svm = MakeClassifier("svm", {.seed = 1, .scale = 0.3});
  ASSERT_TRUE(svm.ok());
  CrossValidationOptions with;
  with.minmax_normalize = true;
  CrossValidationOptions without;
  without.minmax_normalize = false;
  EXPECT_TRUE(CrossValidate(*svm.value(), ds, folds, with).ok());
  EXPECT_TRUE(CrossValidate(*svm.value(), ds, folds, without).ok());
}

// ---------------------------------------------------- Feature selection --

SubsetEvaluator FastTreeEvaluator(uint64_t seed) {
  return [seed](const Dataset& subset) {
    Rng rng(seed);
    const auto folds = KFold(subset.num_samples(), 3, rng);
    DecisionTreeParams params;
    params.max_depth = 6;
    DecisionTree tree(params);
    const auto result = CrossValidate(tree, subset, folds);
    return result.ok() ? result->MeanAccuracy() : 0.0;
  };
}

TEST(ForwardWrapperTest, FindsInformativeFeaturesFirst) {
  const Dataset ds = MakeFeatureSelectionProblem(240, 11);
  const auto steps =
      ForwardWrapperSelection(ds, FastTreeEvaluator(12), 4);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 4u);
  // The strongest feature (0) is chosen first.
  EXPECT_EQ((*steps)[0].feature_index, 0);
  // The informative trio appears within the first four picks.
  std::set<int> picked;
  for (const auto& step : *steps) picked.insert(step.feature_index);
  EXPECT_TRUE(picked.count(0) == 1);
  EXPECT_TRUE(picked.count(2) == 1 || picked.count(5) == 1);
}

TEST(ForwardWrapperTest, NoDuplicateFeatures) {
  const Dataset ds = MakeFeatureSelectionProblem(120, 13);
  const auto steps = ForwardWrapperSelection(ds, FastTreeEvaluator(14), 6);
  ASSERT_TRUE(steps.ok());
  std::set<int> seen;
  for (const auto& step : *steps) {
    EXPECT_TRUE(seen.insert(step.feature_index).second);
  }
}

TEST(ForwardWrapperTest, BudgetZeroMeansAllFeatures) {
  const Dataset ds = MakeFeatureSelectionProblem(90, 15);
  const auto steps = ForwardWrapperSelection(ds, FastTreeEvaluator(16), 0);
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(steps->size(), ds.num_features());
}

TEST(IncrementalRankingTest, EvaluatesPrefixes) {
  const Dataset ds = MakeFeatureSelectionProblem(150, 17);
  const std::vector<int> ranking = {0, 2, 5, 1, 3, 4, 6, 7};
  const auto steps =
      IncrementalRankingSelection(ds, FastTreeEvaluator(18), ranking, 5);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 5u);
  for (size_t i = 0; i < steps->size(); ++i) {
    EXPECT_EQ((*steps)[i].feature_index, ranking[i]);
    EXPECT_GT((*steps)[i].score, 0.0);
  }
}

TEST(IncrementalRankingTest, RejectsBadRanking) {
  const Dataset ds = MakeFeatureSelectionProblem(50, 19);
  EXPECT_FALSE(
      IncrementalRankingSelection(ds, FastTreeEvaluator(20), {}, 2).ok());
  const std::vector<int> bad = {99};
  EXPECT_FALSE(
      IncrementalRankingSelection(ds, FastTreeEvaluator(21), bad, 1).ok());
}

TEST(SelectionPrefixTest, BestPrefixAndPrefixOfSize) {
  const std::vector<SelectionStep> steps = {
      {3, 0.6}, {1, 0.8}, {4, 0.75}, {2, 0.79}};
  EXPECT_EQ(BestPrefix(steps), (std::vector<int>{3, 1}));
  EXPECT_EQ(PrefixOfSize(steps, 3), (std::vector<int>{3, 1, 4}));
  EXPECT_TRUE(PrefixOfSize(steps, 0).empty());
}

TEST(RankingSelectionTest, RfImportanceRankingFeedsSelection) {
  const Dataset ds = MakeFeatureSelectionProblem(300, 22);
  RandomForestParams params;
  params.n_estimators = 25;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(ds).ok());
  const std::vector<int> ranking = forest.ImportanceRanking();
  EXPECT_EQ(ranking.size(), 8u);
  EXPECT_EQ(ranking[0], 0);  // Strongest feature ranked first.
  const auto steps = IncrementalRankingSelection(
      ds, FastTreeEvaluator(23), ranking, 8);
  ASSERT_TRUE(steps.ok());
  // Accuracy with all informative features beats the 1-feature prefix...
  EXPECT_GE((*steps)[3].score + 0.05, (*steps)[0].score);
}

// -------------------------------------------------------------- Wilcoxon --

TEST(WilcoxonTest, RejectsBadInput) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_FALSE(WilcoxonSignedRank(x, y).ok());
  EXPECT_FALSE(WilcoxonSignedRank({}, {}).ok());
  // All-zero differences.
  EXPECT_FALSE(WilcoxonSignedRank(x, x).ok());
}

TEST(WilcoxonTest, ExactMatchesScipySmallSample) {
  // scipy.stats.wilcoxon(x, y, alternative='two-sided', mode='exact') on
  // d = [1, 2, 3, 4, 5] (all positive): W- = 0 → p = 2/2^5 = 0.0625.
  const std::vector<double> x = {2.0, 4.0, 6.0, 8.0, 10.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto result = WilcoxonSignedRank(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_DOUBLE_EQ(result->statistic, 15.0);  // W+ = 1+2+3+4+5.
  EXPECT_NEAR(result->p_value, 0.0625, 1e-12);
}

TEST(WilcoxonTest, ExactMixedSigns) {
  // d = [1, -2, 3, -4, 5, 6]: |d| ranks are 1..6;
  // W+ = ranks of {1,3,5,6} = 1+3+5+6 = 15.
  // scipy.stats.wilcoxon gives p = 0.4375 (two-sided, exact).
  const std::vector<double> d = {1.0, -2.0, 3.0, -4.0, 5.0, 6.0};
  std::vector<double> x(d.size(), 0.0);
  for (size_t i = 0; i < d.size(); ++i) x[i] = d[i];
  const std::vector<double> zeros(d.size(), 0.0);
  const auto result = WilcoxonSignedRank(x, zeros);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_DOUBLE_EQ(result->statistic, 15.0);
  EXPECT_NEAR(result->p_value, 0.4375, 1e-9);
}

TEST(WilcoxonTest, ZerosDropped) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {1.0, 1.0, 2.0, 3.0};  // One zero diff.
  const auto result = WilcoxonSignedRank(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->n_used, 3);
}

TEST(WilcoxonTest, OneSidedGreaterSmallerThanTwoSidedWhenPositive) {
  const std::vector<double> x = {2.0, 3.5, 4.0, 5.0, 7.0, 8.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.5, 5.0, 6.0};
  const auto two = WilcoxonSignedRank(x, y, Alternative::kTwoSided);
  const auto greater = WilcoxonSignedRank(x, y, Alternative::kGreater);
  const auto less = WilcoxonSignedRank(x, y, Alternative::kLess);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(greater.ok());
  ASSERT_TRUE(less.ok());
  EXPECT_LT(greater->p_value, two->p_value + 1e-12);
  EXPECT_GT(less->p_value, 0.5);
}

TEST(WilcoxonTest, OneSampleAgainstReference) {
  // Five accuracies all above 0.679 → smallest possible one-sided p for
  // n=5: 1/32.
  const std::vector<double> acc = {0.69, 0.70, 0.71, 0.695, 0.72};
  const auto result =
      WilcoxonSignedRankOneSample(acc, 0.679, Alternative::kGreater);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_NEAR(result->p_value, 1.0 / 32.0, 1e-12);
}

TEST(WilcoxonTest, NormalApproximationForLargeN) {
  Rng rng(42);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    const double base = rng.Gaussian(0.0, 1.0);
    x.push_back(base + 0.5);
    y.push_back(base);
  }
  const auto result = WilcoxonSignedRank(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  EXPECT_LT(result->p_value, 1e-6);  // Clear shift.
}

TEST(WilcoxonTest, TiesForceNormalApproximation) {
  const std::vector<double> x = {2.0, 2.0, 2.0, 2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 1.0, 1.0, 1.0, 1.0, 3.0};
  const auto result = WilcoxonSignedRank(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  EXPECT_GT(result->p_value, 0.0);
  EXPECT_LE(result->p_value, 1.0);
}

TEST(WilcoxonTest, SymmetricDataGivesLargePValue) {
  const std::vector<double> x = {1.0, -1.0, 2.0, -2.0, 3.0, -3.0};
  const std::vector<double> zeros(x.size(), 0.0);
  const auto result = WilcoxonSignedRank(x, zeros);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.9);
}

TEST(StandardNormalCdfTest, KnownValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(StandardNormalCdf(-1.959963985), 0.025, 1e-6);
}

}  // namespace
}  // namespace trajkit::ml
