// Tests for the library extensions in ml/: filter-based feature selection,
// k-NN, logistic regression, and dataset CSV persistence.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "ml/dataset_io.h"
#include "ml/factory.h"
#include "ml/filter_selection.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

namespace trajkit::ml {
namespace {

// Feature 0 is strongly informative, 2 moderately, the rest noise.
Dataset MakeProblem(int n, uint64_t seed, int classes = 3) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int y = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(classes)));
    std::vector<double> row(6);
    for (auto& v : row) v = rng.Gaussian(0.0, 1.0);
    row[0] += 2.5 * y;
    row[2] += 1.0 * (y == 1);
    rows.push_back(std::move(row));
    labels.push_back(y);
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows),
                                   std::move(labels), {}, {},
                                   std::move(class_names)))
      .value();
}

// -------------------------------------------------------------- Filters --

TEST(FilterSelectionTest, MutualInformationRanksSignalFirst) {
  const Dataset ds = MakeProblem(600, 1);
  const auto scores = MutualInformationScores(ds, 8);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 6u);
  EXPECT_EQ((*scores)[0].feature_index, 0);
  EXPECT_GT((*scores)[0].score, (*scores)[5].score);
  // Scores are sorted descending.
  for (size_t i = 1; i < scores->size(); ++i) {
    EXPECT_GE((*scores)[i - 1].score, (*scores)[i].score);
  }
}

TEST(FilterSelectionTest, ChiSquareRanksSignalFirst) {
  const Dataset ds = MakeProblem(600, 2);
  const auto scores = ChiSquareScores(ds, 8);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ((*scores)[0].feature_index, 0);
}

TEST(FilterSelectionTest, AnovaFRanksSignalFirst) {
  const Dataset ds = MakeProblem(600, 3);
  const auto scores = AnovaFScores(ds);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ((*scores)[0].feature_index, 0);
  EXPECT_GT((*scores)[0].score, 10.0);  // Strong class separation.
}

TEST(FilterSelectionTest, ConstantFeatureScoresZeroMi) {
  Rng rng(4);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const int y = static_cast<int>(rng.NextBounded(2));
    rows.push_back({7.0, static_cast<double>(y)});
    labels.push_back(y);
  }
  auto ds = Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                            {}, {"a", "b"});
  const auto scores = MutualInformationScores(ds.value(), 4);
  ASSERT_TRUE(scores.ok());
  // The constant feature (index 0) must rank last with ~zero MI.
  EXPECT_EQ((*scores)[1].feature_index, 0);
  EXPECT_NEAR((*scores)[1].score, 0.0, 1e-9);
  // The label-copy feature carries ~H(Y) = log 2 nats.
  EXPECT_NEAR((*scores)[0].score, std::log(2.0), 0.05);
}

TEST(FilterSelectionTest, InvalidInputsRejected) {
  Dataset empty;
  EXPECT_FALSE(MutualInformationScores(empty, 8).ok());
  const Dataset ds = MakeProblem(50, 5);
  EXPECT_FALSE(MutualInformationScores(ds, 1).ok());
  EXPECT_FALSE(ChiSquareScores(ds, 0).ok());
}

TEST(FilterSelectionTest, AnovaNeedsTwoClasses) {
  Rng rng(6);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({rng.NextDouble()});
    labels.push_back(0);
  }
  auto ds = Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                            {}, {"only", "ghost"});
  EXPECT_FALSE(AnovaFScores(ds.value()).ok());
}

TEST(FilterSelectionTest, RankingFromScoresPreservesOrder) {
  const std::vector<FeatureScore> scores = {{3, 0.9}, {1, 0.5}, {0, 0.1}};
  EXPECT_EQ(RankingFromScores(scores), (std::vector<int>{3, 1, 0}));
}

TEST(FilterSelectionTest, FiltersAgreeOnStrongSignal) {
  const Dataset ds = MakeProblem(800, 7);
  const int mi = MutualInformationScores(ds, 8)->front().feature_index;
  const int chi2 = ChiSquareScores(ds, 8)->front().feature_index;
  const int anova = AnovaFScores(ds)->front().feature_index;
  EXPECT_EQ(mi, 0);
  EXPECT_EQ(chi2, 0);
  EXPECT_EQ(anova, 0);
}

// ------------------------------------------------------------------ KNN --

TEST(KnnTest, ClassifiesBlobs) {
  const Dataset train = MakeProblem(300, 8);
  const Dataset test = MakeProblem(100, 9);
  Knn knn;
  ASSERT_TRUE(knn.Fit(train).ok());
  const double acc = Accuracy(test.labels(), knn.Predict(test.features()));
  EXPECT_GT(acc, 0.8);
}

TEST(KnnTest, KOneMemorizesTraining) {
  const Dataset ds = MakeProblem(150, 10);
  KnnParams params;
  params.k = 1;
  Knn knn(params);
  ASSERT_TRUE(knn.Fit(ds).ok());
  EXPECT_DOUBLE_EQ(Accuracy(ds.labels(), knn.Predict(ds.features())), 1.0);
}

TEST(KnnTest, DistanceWeightingWorks) {
  const Dataset ds = MakeProblem(200, 11);
  KnnParams params;
  params.k = 15;
  params.distance_weighted = true;
  Knn knn(params);
  ASSERT_TRUE(knn.Fit(ds).ok());
  EXPECT_GT(Accuracy(ds.labels(), knn.Predict(ds.features())), 0.85);
}

TEST(KnnTest, ProbaSumsToOne) {
  const Dataset ds = MakeProblem(120, 12);
  Knn knn;
  ASSERT_TRUE(knn.Fit(ds).ok());
  const auto probs = knn.PredictProba(ds.features());
  ASSERT_TRUE(probs.ok());
  for (size_t r = 0; r < probs->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < probs->cols(); ++c) sum += probs->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(KnnTest, InvalidParamsRejected) {
  const Dataset ds = MakeProblem(20, 13);
  KnnParams params;
  params.k = 0;
  Knn knn(params);
  EXPECT_FALSE(knn.Fit(ds).ok());
  Dataset empty;
  Knn knn2;
  EXPECT_FALSE(knn2.Fit(empty).ok());
}

// ---------------------------------------------------- LogisticRegression --

TEST(LogisticRegressionTest, SeparatesLinearProblem) {
  const Dataset train = MakeProblem(400, 14);
  const Dataset test = MakeProblem(150, 15);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Accuracy(test.labels(), model.Predict(test.features())), 0.8);
}

TEST(LogisticRegressionTest, ProbaCalibratedOnSeparableData) {
  const Dataset ds = MakeProblem(300, 16);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(ds).ok());
  const auto probs = model.PredictProba(ds.features());
  ASSERT_TRUE(probs.ok());
  double mean_true_prob = 0.0;
  for (size_t r = 0; r < probs->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < probs->cols(); ++c) sum += probs->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    mean_true_prob +=
        probs->At(r, static_cast<size_t>(ds.labels()[r])) /
        static_cast<double>(probs->rows());
  }
  EXPECT_GT(mean_true_prob, 0.6);
}

TEST(LogisticRegressionTest, Deterministic) {
  const Dataset ds = MakeProblem(150, 17);
  LogisticRegression a;
  LogisticRegression b;
  ASSERT_TRUE(a.Fit(ds).ok());
  ASSERT_TRUE(b.Fit(ds).ok());
  EXPECT_EQ(a.Predict(ds.features()), b.Predict(ds.features()));
}

TEST(LogisticRegressionTest, InvalidParamsRejected) {
  const Dataset ds = MakeProblem(20, 18);
  LogisticRegressionParams params;
  params.epochs = 0;
  LogisticRegression model(params);
  EXPECT_FALSE(model.Fit(ds).ok());
}

// -------------------------------------------------------------- Factory --

TEST(ExtendedFactoryTest, BuildsEightFamilies) {
  EXPECT_EQ(ExtendedClassifierNames().size(), 8u);
  const Dataset ds = MakeProblem(80, 19, 2);
  for (const std::string& name : ExtendedClassifierNames()) {
    auto model = MakeClassifier(name, {.seed = 1, .scale = 0.2});
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_TRUE(model.value()->Fit(ds).ok()) << name;
  }
}

// ------------------------------------------------------------ DatasetIo --

TEST(DatasetIoTest, CsvRoundTripPreservesEverything) {
  Rng rng(20);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<int> groups;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({rng.Gaussian(0.0, 3.0), rng.NextDouble(), -1.5e-7});
    labels.push_back(static_cast<int>(rng.NextBounded(3)));
    groups.push_back(static_cast<int>(rng.NextBounded(5)));
  }
  const Dataset original =
      std::move(Dataset::Create(Matrix::FromRows(rows), labels, groups,
                                {"alpha", "beta", "gamma"},
                                {"x", "y", "z"}))
          .value();
  const std::string csv = DatasetToCsv(original);
  const auto restored = DatasetFromCsv(csv, {"x", "y", "z"});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_samples(), original.num_samples());
  EXPECT_EQ(restored->feature_names(), original.feature_names());
  EXPECT_EQ(restored->labels(), original.labels());
  EXPECT_EQ(restored->groups(), original.groups());
  EXPECT_EQ(restored->class_names(), original.class_names());
  for (size_t r = 0; r < original.num_samples(); ++r) {
    for (size_t c = 0; c < original.num_features(); ++c) {
      EXPECT_DOUBLE_EQ(restored->features()(r, c),
                       original.features()(r, c));
    }
  }
}

TEST(DatasetIoTest, SynthesizesClassNamesWhenOmitted) {
  auto ds = Dataset::Create(Matrix::FromRows({{1.0}, {2.0}}), {0, 2}, {},
                            {"f"}, {"a", "b", "c"});
  const auto restored = DatasetFromCsv(DatasetToCsv(ds.value()));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_classes(), 3);
  EXPECT_EQ(restored->class_names()[2], "class2");
}

TEST(DatasetIoTest, FileRoundTrip) {
  const std::string path =
      testing::TempDir() + "/trajkit_dataset_io/ds.csv";
  auto ds = Dataset::Create(Matrix::FromRows({{1.5, 2.5}}), {0}, {7},
                            {"a", "b"}, {"only"});
  ASSERT_TRUE(SaveDatasetCsv(ds.value(), path).ok());
  const auto restored = LoadDatasetCsv(path, {"only"});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->groups()[0], 7);
  EXPECT_DOUBLE_EQ(restored->features()(0, 1), 2.5);
}

TEST(DatasetIoTest, RejectsMissingColumns) {
  EXPECT_FALSE(DatasetFromCsv("a,b\n1,2\n").ok());
  EXPECT_FALSE(DatasetFromCsv("a,__label,__group\n").ok());  // No rows.
  EXPECT_FALSE(
      DatasetFromCsv("a,__label,__group\nnot_a_number,0,0\n").ok());
}

}  // namespace
}  // namespace trajkit::ml
