// Tests for model persistence (model_io) and balanced class weights.

#include <gtest/gtest.h>

#include <cmath>

#include "common/csv.h"
#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "ml/random_forest.h"

namespace trajkit::ml {
namespace {

Dataset MakeBlobs(int num_classes, int per_class, double spread,
                  uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int c = 0; c < num_classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      rows.push_back({rng.Gaussian(3.0 * c, spread),
                      rng.Gaussian(c % 2 ? 2.0 : -2.0, spread)});
      labels.push_back(c);
    }
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < num_classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows),
                                   std::move(labels), {}, {},
                                   std::move(class_names)))
      .value();
}

// --------------------------------------------------------- Serialization --

TEST(ModelIoTest, ForestRoundTripPredictsIdentically) {
  const Dataset train = MakeBlobs(3, 60, 1.2, 1);
  const Dataset test = MakeBlobs(3, 40, 1.2, 2);
  RandomForestParams params;
  params.n_estimators = 12;
  params.seed = 7;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());

  const std::string blob = forest.Serialize();
  const auto restored = RandomForest::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumTrees(), forest.NumTrees());
  EXPECT_EQ(restored->Predict(test.features()),
            forest.Predict(test.features()));

  // Probabilities too.
  const auto p1 = forest.PredictProba(test.features());
  const auto p2 = restored->PredictProba(test.features());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  for (size_t r = 0; r < p1->rows(); ++r) {
    for (size_t c = 0; c < p1->cols(); ++c) {
      EXPECT_DOUBLE_EQ(p1->At(r, c), p2->At(r, c));
    }
  }
}

TEST(ModelIoTest, ImportancesSurviveRoundTrip) {
  const Dataset train = MakeBlobs(2, 80, 0.8, 3);
  RandomForestParams params;
  params.n_estimators = 10;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const auto restored = RandomForest::Deserialize(forest.Serialize());
  ASSERT_TRUE(restored.ok());
  const auto& a = forest.FeatureImportances();
  const auto& b = restored->FeatureImportances();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
  EXPECT_EQ(restored->ImportanceRanking(), forest.ImportanceRanking());
}

TEST(ModelIoTest, FileRoundTrip) {
  const Dataset train = MakeBlobs(2, 40, 0.5, 4);
  RandomForestParams params;
  params.n_estimators = 5;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const std::string path =
      testing::TempDir() + "/trajkit_model_io/forest.txt";
  ASSERT_TRUE(SaveRandomForest(forest, path).ok());
  const auto loaded = LoadRandomForest(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Predict(train.features()),
            forest.Predict(train.features()));
}

TEST(ModelIoTest, UnfittedForestCannotBeSaved) {
  RandomForest forest;
  EXPECT_FALSE(SaveRandomForest(forest, "/tmp/never.txt").ok());
}

TEST(ModelIoTest, GarbageRejected) {
  EXPECT_FALSE(RandomForest::Deserialize("").ok());
  EXPECT_FALSE(RandomForest::Deserialize("hello world").ok());
  EXPECT_FALSE(
      RandomForest::Deserialize("trajkit_random_forest v1\n").ok());
  EXPECT_FALSE(RandomForest::Deserialize(
                   "trajkit_random_forest v1\n"
                   "params 1 0 0 2 1 0 1 0 42\nclasses 2\ntrees 1\n"
                   "tree 2 0\nnodes 1\n0 0.5 99 99 0\n"
                   "distributions 1 2\n0.5 0.5\nimportances 2\n0 0\n")
                   .ok());  // Child index out of range.
  EXPECT_FALSE(LoadRandomForest("/nonexistent/forest.txt").ok());
}

TEST(ModelIoTest, FutureFormatVersionRejectedCleanly) {
  // A model written by a future trajkit must fail with a clean Status that
  // names the version — not a CHECK-abort or a confusing structural error.
  const Dataset train = MakeBlobs(2, 20, 0.5, 11);
  RandomForestParams params;
  params.n_estimators = 3;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  std::string blob = forest.Serialize();
  const std::string magic = "trajkit_random_forest v1";
  ASSERT_EQ(blob.compare(0, magic.size(), magic), 0);
  blob.replace(0, magic.size(), "trajkit_random_forest v7");

  const auto result = RandomForest::Deserialize(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("v7"), std::string::npos)
      << result.status().ToString();

  // Same via the file path: a clean error, and v1 still loads.
  const std::string dir = testing::TempDir() + "/trajkit_model_io";
  ASSERT_TRUE(WriteStringToFile(dir + "/future.txt", blob).ok());
  EXPECT_FALSE(LoadRandomForest(dir + "/future.txt").ok());
  ASSERT_TRUE(SaveRandomForest(forest, dir + "/current.txt").ok());
  EXPECT_TRUE(LoadRandomForest(dir + "/current.txt").ok());
}

TEST(ModelIoTest, MalformedVersionTagRejected) {
  EXPECT_FALSE(RandomForest::Deserialize("trajkit_random_forest\n").ok());
  EXPECT_FALSE(
      RandomForest::Deserialize("trajkit_random_forest vX\n").ok());
  EXPECT_FALSE(
      RandomForest::Deserialize("trajkit_random_forest 1\n").ok());
}

TEST(ModelIoTest, TruncatedFileRejected) {
  const Dataset train = MakeBlobs(2, 20, 0.5, 5);
  RandomForestParams params;
  params.n_estimators = 3;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  std::string blob = forest.Serialize();
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(RandomForest::Deserialize(blob).ok());
}

TEST(ModelIoTest, CloneOfRestoredForestRetrains) {
  const Dataset train = MakeBlobs(2, 30, 0.5, 6);
  RandomForestParams params;
  params.n_estimators = 4;
  params.seed = 99;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const auto restored = RandomForest::Deserialize(forest.Serialize());
  ASSERT_TRUE(restored.ok());
  auto clone = restored->Clone();  // Same hyper-parameters, unfitted.
  ASSERT_TRUE(clone->Fit(train).ok());
  EXPECT_EQ(clone->Predict(train.features()),
            forest.Predict(train.features()));
}

// ------------------------------------------------ Balanced class weights --

TEST(BalancedWeightsTest, ImprovesMinorityRecallOnImbalancedData) {
  // 95:5 imbalance with heavy overlap: unweighted trees ignore the
  // minority; balanced weights recover recall.
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 950; ++i) {
    rows.push_back({rng.Gaussian(0.0, 1.0)});
    labels.push_back(0);
  }
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.Gaussian(1.0, 1.0)});
    labels.push_back(1);
  }
  auto ds = Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                            {}, {"majority", "minority"});

  DecisionTreeParams plain_params;
  plain_params.max_depth = 3;
  DecisionTree plain(plain_params);
  ASSERT_TRUE(plain.Fit(ds.value()).ok());
  DecisionTreeParams balanced_params = plain_params;
  balanced_params.balanced_class_weights = true;
  DecisionTree balanced(balanced_params);
  ASSERT_TRUE(balanced.Fit(ds.value()).ok());

  const auto plain_report = Evaluate(
      ds->labels(), plain.Predict(ds->features()), 2);
  const auto balanced_report = Evaluate(
      ds->labels(), balanced.Predict(ds->features()), 2);
  EXPECT_GT(balanced_report.recall[1], plain_report.recall[1] + 0.2);
}

TEST(BalancedWeightsTest, NoEffectOnBalancedData) {
  const Dataset ds = MakeBlobs(2, 50, 0.4, 8);
  DecisionTree plain;
  DecisionTreeParams params;
  params.balanced_class_weights = true;
  DecisionTree balanced(params);
  ASSERT_TRUE(plain.Fit(ds).ok());
  ASSERT_TRUE(balanced.Fit(ds).ok());
  EXPECT_EQ(plain.Predict(ds.features()), balanced.Predict(ds.features()));
}

TEST(BalancedWeightsTest, ForestForwardsTheOption) {
  Rng rng(9);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 570; ++i) {
    rows.push_back({rng.Gaussian(0.0, 1.0)});
    labels.push_back(0);
  }
  for (int i = 0; i < 30; ++i) {
    rows.push_back({rng.Gaussian(1.2, 1.0)});
    labels.push_back(1);
  }
  auto ds = Dataset::Create(Matrix::FromRows(rows), std::move(labels), {},
                            {}, {"a", "b"});
  RandomForestParams params;
  params.n_estimators = 15;
  params.max_depth = 3;
  RandomForest plain(params);
  params.balanced_class_weights = true;
  RandomForest balanced(params);
  ASSERT_TRUE(plain.Fit(ds.value()).ok());
  ASSERT_TRUE(balanced.Fit(ds.value()).ok());
  const auto plain_report =
      Evaluate(ds->labels(), plain.Predict(ds->features()), 2);
  const auto balanced_report =
      Evaluate(ds->labels(), balanced.Predict(ds->features()), 2);
  EXPECT_GE(balanced_report.recall[1], plain_report.recall[1]);
}

}  // namespace
}  // namespace trajkit::ml
