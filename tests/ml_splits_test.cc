// Unit and property tests for cross-validation splitters.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "ml/splits.h"

namespace trajkit::ml {
namespace {

// Checks the fold laws: test sets partition [0, n); train = complement.
void ExpectValidFolds(const std::vector<FoldSplit>& folds, size_t n) {
  std::vector<int> seen(n, 0);
  for (const FoldSplit& fold : folds) {
    std::set<size_t> train(fold.train_indices.begin(),
                           fold.train_indices.end());
    std::set<size_t> test(fold.test_indices.begin(),
                          fold.test_indices.end());
    EXPECT_EQ(train.size(), fold.train_indices.size()) << "dup train idx";
    EXPECT_EQ(test.size(), fold.test_indices.size()) << "dup test idx";
    EXPECT_EQ(train.size() + test.size(), n);
    for (size_t i : fold.test_indices) {
      ASSERT_LT(i, n);
      EXPECT_EQ(train.count(i), 0u) << "index in both train and test";
      ++seen[i];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], 1) << "index " << i << " not in exactly one test set";
  }
}

class KFoldPropertyTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KFoldPropertyTest, PartitionLawsHold) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 100 + k));
  const auto folds = KFold(static_cast<size_t>(n), k, rng);
  ASSERT_EQ(folds.size(), static_cast<size_t>(k));
  ExpectValidFolds(folds, static_cast<size_t>(n));
  // Balanced: fold sizes differ by at most 1.
  size_t lo = folds[0].test_indices.size();
  size_t hi = lo;
  for (const auto& f : folds) {
    lo = std::min(lo, f.test_indices.size());
    hi = std::max(hi, f.test_indices.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KFoldPropertyTest,
    testing::Combine(testing::Values(10, 23, 100, 501),
                     testing::Values(2, 3, 5, 10)));

TEST(KFoldTest, DeterministicGivenRngState) {
  Rng rng1(42);
  Rng rng2(42);
  const auto folds1 = KFold(50, 5, rng1);
  const auto folds2 = KFold(50, 5, rng2);
  for (size_t f = 0; f < folds1.size(); ++f) {
    EXPECT_EQ(folds1[f].test_indices, folds2[f].test_indices);
  }
}

TEST(StratifiedKFoldTest, PreservesClassMix) {
  // 80 of class 0, 20 of class 1.
  std::vector<int> labels(100, 0);
  for (int i = 80; i < 100; ++i) labels[static_cast<size_t>(i)] = 1;
  Rng rng(7);
  const auto folds = StratifiedKFold(labels, 5, rng);
  ExpectValidFolds(folds, labels.size());
  for (const FoldSplit& fold : folds) {
    int minority = 0;
    for (size_t i : fold.test_indices) {
      if (labels[i] == 1) ++minority;
    }
    EXPECT_EQ(minority, 4);  // Exactly 20% in each of 5 folds.
  }
}

TEST(StratifiedKFoldTest, WorksWithManySmallClasses) {
  std::vector<int> labels;
  for (int c = 0; c < 10; ++c) {
    for (int i = 0; i < 7; ++i) labels.push_back(c);
  }
  Rng rng(9);
  const auto folds = StratifiedKFold(labels, 3, rng);
  ExpectValidFolds(folds, labels.size());
}

TEST(GroupKFoldTest, UsersNeverStraddleTrainAndTest) {
  // 12 groups of varying sizes.
  std::vector<int> groups;
  Rng data_rng(3);
  for (int g = 0; g < 12; ++g) {
    const int size = 5 + static_cast<int>(data_rng.NextBounded(20));
    for (int i = 0; i < size; ++i) groups.push_back(g * 11);
  }
  Rng rng(5);
  const auto folds = GroupKFold(groups, 4, rng);
  ASSERT_EQ(folds.size(), 4u);
  ExpectValidFolds(folds, groups.size());
  for (const FoldSplit& fold : folds) {
    std::set<int> train_groups;
    std::set<int> test_groups;
    for (size_t i : fold.train_indices) train_groups.insert(groups[i]);
    for (size_t i : fold.test_indices) test_groups.insert(groups[i]);
    for (int g : test_groups) {
      EXPECT_EQ(train_groups.count(g), 0u)
          << "group " << g << " appears in train and test";
    }
  }
}

TEST(GroupKFoldTest, EachGroupTestedExactlyOnce) {
  std::vector<int> groups;
  for (int g = 0; g < 9; ++g) {
    for (int i = 0; i < 4; ++i) groups.push_back(g);
  }
  Rng rng(11);
  const auto folds = GroupKFold(groups, 3, rng);
  std::map<int, int> tested;
  for (const FoldSplit& fold : folds) {
    std::set<int> test_groups;
    for (size_t i : fold.test_indices) test_groups.insert(groups[i]);
    for (int g : test_groups) ++tested[g];
  }
  EXPECT_EQ(tested.size(), 9u);
  for (const auto& [g, count] : tested) {
    EXPECT_EQ(count, 1) << "group " << g;
  }
}

TEST(GroupKFoldTest, BalancesFoldSizes) {
  // One huge group and several small ones.
  std::vector<int> groups(100, 0);
  for (int g = 1; g <= 6; ++g) {
    for (int i = 0; i < 10; ++i) groups.push_back(g);
  }
  Rng rng(13);
  const auto folds = GroupKFold(groups, 2, rng);
  // The huge group should sit alone-ish; the small ones together.
  ExpectValidFolds(folds, groups.size());
  const size_t size0 = folds[0].test_indices.size();
  const size_t size1 = folds[1].test_indices.size();
  EXPECT_EQ(size0 + size1, groups.size());
  EXPECT_LE(std::max(size0, size1), 100u);
}

TEST(TrainTestSplitTest, FractionRespected) {
  Rng rng(17);
  const FoldSplit split = TrainTestSplit(100, 0.2, rng);
  EXPECT_EQ(split.test_indices.size(), 20u);
  EXPECT_EQ(split.train_indices.size(), 80u);
  // Train and test are disjoint and together cover [0, 100).
  std::set<size_t> all(split.train_indices.begin(),
                       split.train_indices.end());
  for (size_t i : split.test_indices) {
    EXPECT_TRUE(all.insert(i).second) << "index in both sides: " << i;
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, AtLeastOneTestSample) {
  Rng rng(19);
  const FoldSplit split = TrainTestSplit(3, 0.01, rng);
  EXPECT_GE(split.test_indices.size(), 1u);
}

TEST(GroupShuffleSplitTest, DisjointUsersAndApproximateFraction) {
  std::vector<int> groups;
  Rng data_rng(23);
  for (int g = 0; g < 20; ++g) {
    const int size = 10 + static_cast<int>(data_rng.NextBounded(30));
    for (int i = 0; i < size; ++i) groups.push_back(g);
  }
  Rng rng(29);
  const FoldSplit split = GroupShuffleSplit(groups, 0.2, rng);
  std::set<int> train_groups;
  std::set<int> test_groups;
  for (size_t i : split.train_indices) train_groups.insert(groups[i]);
  for (size_t i : split.test_indices) test_groups.insert(groups[i]);
  for (int g : test_groups) EXPECT_EQ(train_groups.count(g), 0u);
  EXPECT_EQ(split.train_indices.size() + split.test_indices.size(),
            groups.size());
  const double fraction = static_cast<double>(split.test_indices.size()) /
                          static_cast<double>(groups.size());
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.45);
}

TEST(GroupShuffleSplitTest, TwoGroupsMinimum) {
  const std::vector<int> groups = {1, 1, 1, 2, 2};
  Rng rng(31);
  const FoldSplit split = GroupShuffleSplit(groups, 0.4, rng);
  EXPECT_FALSE(split.train_indices.empty());
  EXPECT_FALSE(split.test_indices.empty());
}

}  // namespace
}  // namespace trajkit::ml
