// Unit tests for src/common: status, result, strings, rng, csv, table,
// retry/backoff.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/csv.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace trajkit {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, ServingFactoriesCarryTheirCodes) {
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("full").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("down").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsThenPropagates() {
  TRAJKIT_RETURN_IF_ERROR(Status::IoError("disk on fire"));
  return Status::Ok();  // Unreachable.
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TRAJKIT_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, SplitBasic) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = SplitString("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyInput) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\r\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("trajkit", "traj"));
  EXPECT_FALSE(StartsWith("traj", "trajkit"));
  EXPECT_TRUE(EndsWith("file.plt", ".plt"));
  EXPECT_FALSE(EndsWith(".plt", "file.plt"));
}

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("WaLk"), "walk");
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(StringsTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("123").value(), 123);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
}

TEST(StringsTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrPrintf("%.2f", 3.14159), "3.14");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All residues hit.
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  // Child's next outputs differ from the parent's (overwhelmingly likely).
  EXPECT_NE(child.NextUint64(), a.NextUint64());
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(43);
  const uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Reseed(43);
  EXPECT_EQ(rng.NextUint64(), first);
}

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, ParsesHeaderAndRows) {
  const auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvTest, ColumnIndexLookup) {
  const auto table = ParseCsv("x,y\n1,2\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("y"), 1);
  EXPECT_EQ(table->ColumnIndex("z"), -1);
}

TEST(CsvTest, SkipLinesSkipsPreamble) {
  CsvOptions options;
  options.has_header = false;
  options.skip_lines = 2;
  const auto table = ParseCsv("junk\nmore junk\n1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0][0], "1");
}

TEST(CsvTest, RejectsRaggedRows) {
  CsvOptions options;
  options.has_header = false;
  const auto table = ParseCsv("1,2\n3\n", options);
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, SkipMalformedRowsWhenAsked) {
  CsvOptions options;
  options.has_header = false;
  options.skip_malformed_rows = true;
  const auto table = ParseCsv("1,2\n3\n4,5\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvTest, HandlesCrLfAndBlankLines) {
  const auto table = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
}

TEST(CsvTest, StripsFieldWhitespace) {
  const auto table = ParseCsv("a , b\n 1 , 2 \n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header[1], "b");
  EXPECT_EQ(table->rows[0][0], "1");
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = '\t';
  const auto table = ParseCsv("a\tb\n1\t2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, WriteRoundTrips) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  const std::string text = WriteCsv(table);
  const auto parsed = ParseCsv(text, CsvOptions{});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      testing::TempDir() + "/trajkit_csv_test/sub/data.csv";
  CsvTable table;
  table.header = {"x"};
  table.rows = {{"42"}};
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  const auto read = ReadCsvFile(path, CsvOptions{});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows[0][0], "42");
}

TEST(CsvTest, MissingFileIsIoError) {
  const auto result = ReadCsvFile("/nonexistent/path.csv", CsvOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------- TablePrinter --

TEST(TablePrinterTest, AlignsAndRules) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1.5"});
  table.AddRow({"b", "22.25"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, DoubleRowFormatsPrecision) {
  TablePrinter table({"k", "v1", "v2"});
  table.AddRow("row", {1.23456, 2.0}, 3);
  EXPECT_NE(table.ToString().find("1.235"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_FATAL_FAILURE(table.ToString());
}

// ------------------------------------------------------------- Stopwatch --

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

// ----------------------------------------------------------------- Retry --

TEST(RetryTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryableStatus(Status::Unavailable("backend hiccup")));
  EXPECT_FALSE(IsRetryableStatus(Status::Ok()));
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsRetryableStatus(Status::ResourceExhausted("full")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad")));
}

TEST(RetryTest, BackoffGrowsClampsAndJittersDeterministically) {
  RetryOptions options;
  options.initial_backoff_seconds = 0.001;
  options.multiplier = 2.0;
  options.max_backoff_seconds = 0.004;
  options.jitter = 0.5;
  Backoff a(options, /*seed=*/99);
  Backoff b(options, /*seed=*/99);
  double base = options.initial_backoff_seconds;
  for (int i = 0; i < 8; ++i) {
    const double delay = a.NextDelaySeconds();
    // Same options + seed => same sequence (chaos runs are reproducible).
    EXPECT_EQ(delay, b.NextDelaySeconds());
    // Jitter only shrinks the delay, never past (1 - jitter) * base.
    EXPECT_LE(delay, base);
    EXPECT_GE(delay, (1.0 - options.jitter) * base);
    base = std::min(base * options.multiplier, options.max_backoff_seconds);
  }
  EXPECT_EQ(a.attempts(), 8);

  // jitter = 0: the exact exponential sequence, clamped at the max.
  options.jitter = 0.0;
  Backoff exact(options, 1);
  EXPECT_DOUBLE_EQ(exact.NextDelaySeconds(), 0.001);
  EXPECT_DOUBLE_EQ(exact.NextDelaySeconds(), 0.002);
  EXPECT_DOUBLE_EQ(exact.NextDelaySeconds(), 0.004);
  EXPECT_DOUBLE_EQ(exact.NextDelaySeconds(), 0.004);
  exact.Reset();
  EXPECT_DOUBLE_EQ(exact.NextDelaySeconds(), 0.001);
}

TEST(RetryTest, RetriesTransientFailuresThenSucceeds) {
  RetryOptions options;
  options.max_attempts = 5;
  options.jitter = 0.0;
  int calls = 0;
  std::vector<double> slept;
  const auto result = RetryWithBackoff<int>(
      options, /*seed=*/1,
      [&]() -> Result<int> {
        if (++calls < 3) return Status::Unavailable("transient");
        return 7;
      },
      [&](double seconds) { slept.push_back(seconds); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], options.initial_backoff_seconds);
  EXPECT_DOUBLE_EQ(slept[1],
                   options.initial_backoff_seconds * options.multiplier);
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  RetryOptions options;
  options.max_attempts = 5;
  int calls = 0;
  const auto result = RetryWithBackoff<int>(
      options, 1,
      [&]() -> Result<int> {
        ++calls;
        return Status::InvalidArgument("deterministic");
      },
      [](double) { FAIL() << "must not sleep on a non-retryable error"; });
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BudgetExhaustionReturnsLastError) {
  RetryOptions options;
  options.max_attempts = 3;
  options.jitter = 0.0;
  int calls = 0;
  const auto result = RetryWithBackoff<int>(
      options, 1,
      [&]() -> Result<int> {
        ++calls;
        return Status::Unavailable("still down");
      },
      [](double) {});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace trajkit
