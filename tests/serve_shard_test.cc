// Tests for the sharded serving plane (src/serve/serving_plane.h): routing
// stability, byte-identical replay output across shard counts, per-shard
// LRU caps, the globally ascending cross-shard close order, per-shard
// metric mirroring, and the two races CI reruns under TSan — parallel
// ingest across shards and model hot swaps under sharded predict.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/batch_predictor.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "serve/serving_plane.h"
#include "serve/session_manager.h"
#include "serve/statusz.h"
#include "synthgeo/generator.h"
#include "traj/types.h"

namespace trajkit::serve {
namespace {

// Same corpus/forest recipe as serve_test's ReplayFixture; built once per
// binary (forest training dominates runtime).
struct ShardFixture {
  std::vector<traj::Trajectory> corpus;
  core::LabelSet labels = core::LabelSet::Dabiri();
  ml::Dataset dataset;
  std::vector<int> offline_predictions;
  size_t offline_correct = 0;
  ServingModel model;

  static const ShardFixture& Get() {
    static const ShardFixture* fixture = new ShardFixture();
    return *fixture;
  }

 private:
  ShardFixture() {
    synthgeo::GeneratorOptions generator_options;
    generator_options.num_users = 4;
    generator_options.days_per_user = 2;
    generator_options.seed = 19;
    synthgeo::GeoLifeLikeGenerator generator(generator_options);
    corpus = generator.Generate();
    const core::Pipeline pipeline;
    dataset = std::move(pipeline.BuildDataset(corpus, labels)).value();
    ml::RandomForestParams params;
    params.n_estimators = 15;
    ml::RandomForest forest(params);
    TRAJKIT_CHECK(forest.Fit(dataset).ok());
    offline_predictions = forest.Predict(dataset.features());
    for (size_t i = 0; i < offline_predictions.size(); ++i) {
      if (offline_predictions[i] == dataset.labels()[i]) ++offline_correct;
    }
    model = std::move(MakeServingModel("v1", std::move(forest),
                                       traj::kNumTrajectoryFeatures))
                .value();
  }
};

// A plausible labelled walk for `user_id`: monotone timestamps, small
// steps, kWalk throughout (never split by mode/day inside the stream).
std::vector<traj::TrajectoryPoint> WalkPoints(int64_t user_id, size_t n,
                                              double start = 1.2e9) {
  Rng rng(static_cast<uint64_t>(user_id) * 7919u + 1);
  std::vector<traj::TrajectoryPoint> points;
  points.reserve(n);
  double t = start;
  double lat = 39.9 + 0.001 * static_cast<double>(user_id % 97);
  double lon = 116.3;
  for (size_t i = 0; i < n; ++i) {
    traj::TrajectoryPoint point;
    point.pos = {lat, lon};
    point.timestamp = t;
    point.mode = traj::Mode::kWalk;
    points.push_back(point);
    t += rng.Uniform(1.0, 20.0);
    lat += rng.Gaussian(0.0, 1e-4);
    lon += rng.Gaussian(0.0, 1e-4);
  }
  return points;
}

uint64_t CounterVal(std::string_view name) {
  const obs::Counter* counter =
      obs::MetricsRegistry::Global().FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

// --------------------------------------------------------------- Routing --

TEST(ShardRouterTest, SameUserAlwaysSameShardAndAllShardsReachable) {
  ModelRegistry registry;
  ServingPlaneOptions options;
  options.shards = 8;
  ServingPlane plane(&registry, options);
  ASSERT_EQ(plane.num_shards(), 8u);

  std::set<size_t> hit;
  for (int64_t user = 0; user < 4096; ++user) {
    const size_t shard = plane.ShardOf(user);
    ASSERT_LT(shard, 8u);
    // A resubmit / retry re-resolves the route; it must never move.
    EXPECT_EQ(plane.ShardOf(user), shard);
    EXPECT_EQ(plane.ShardOf(user), shard);
    hit.insert(shard);
  }
  // splitmix64 over 4096 consecutive ids must reach every shard.
  EXPECT_EQ(hit.size(), 8u);
}

TEST(ShardRouterTest, SingleShardRoutesEverythingToShardZero) {
  ModelRegistry registry;
  ServingPlane plane(&registry, ServingPlaneOptions{});
  ASSERT_EQ(plane.num_shards(), 1u);
  for (int64_t user = -5; user < 100; ++user) {
    EXPECT_EQ(plane.ShardOf(user), 0u);
  }
}

// ---------------------------------------------------- Replay determinism --

TEST(ShardReplayTest, OneShardMatchesOfflinePipeline) {
  const ShardFixture& fixture = ShardFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ServingPlane plane(&registry, ServingPlaneOptions{});
  const auto report = ReplayCorpus(fixture.corpus, fixture.labels, plane);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->segments_evaluated, fixture.dataset.num_samples());
  EXPECT_EQ(report->correct, fixture.offline_correct);
}

TEST(ShardReplayTest, ReplayIsByteIdenticalAcrossShardCounts) {
  const ShardFixture& fixture = ShardFixture::Get();

  struct Run {
    ReplayReport report;
    // Sink-observed close order: (session_id, start_time, reason).
    std::vector<std::tuple<int64_t, double, CloseReason>> closes;
  };
  const auto run = [&](size_t shards) {
    ModelRegistry registry;
    EXPECT_TRUE(registry.Publish(fixture.model).ok());
    ServingPlaneOptions options;
    options.shards = shards;
    // Exercise the cross-shard evict merge too, not just FlushAll.
    options.session.idle_after_seconds = 6.0 * 3600.0;
    ServingPlane plane(&registry, options);
    Run result;
    plane.set_closed_sink([&result](const ClosedSegment& segment) {
      result.closes.emplace_back(segment.session_id, segment.start_time,
                                 segment.reason);
    });
    ReplayOptions replay_options;
    replay_options.evict_every_points = 500;
    auto report =
        ReplayCorpus(fixture.corpus, fixture.labels, plane, replay_options);
    EXPECT_TRUE(report.ok());
    result.report = std::move(report).value();
    return result;
  };

  const Run one = run(1);
  ASSERT_GT(one.report.segments_evaluated, 0u);
  for (const size_t shards : {size_t{2}, size_t{8}}) {
    const Run sharded = run(shards);
    // The full scored stream, element for element, in close order.
    EXPECT_EQ(sharded.report.y_true, one.report.y_true) << shards;
    EXPECT_EQ(sharded.report.y_pred, one.report.y_pred) << shards;
    EXPECT_EQ(sharded.report.points, one.report.points) << shards;
    EXPECT_EQ(sharded.report.segments_closed, one.report.segments_closed);
    EXPECT_EQ(sharded.report.segments_evaluated,
              one.report.segments_evaluated);
    EXPECT_EQ(sharded.report.correct, one.report.correct) << shards;
    // Session-layer counters summed across shards match one manager.
    EXPECT_EQ(sharded.report.session_stats.points_ingested,
              one.report.session_stats.points_ingested);
    EXPECT_EQ(sharded.report.session_stats.segments_emitted,
              one.report.session_stats.segments_emitted);
    EXPECT_EQ(sharded.report.session_stats.segments_discarded_short,
              one.report.session_stats.segments_discarded_short);
    EXPECT_EQ(sharded.report.session_stats.sessions_evicted_idle,
              one.report.session_stats.sessions_evicted_idle);
    // The sink saw the exact same segments in the exact same order.
    EXPECT_EQ(sharded.closes, one.closes) << shards;
  }
}

// ------------------------------------------------- Cross-shard close order --

TEST(ShardCloseOrderTest, FlushAllClosesInGloballyAscendingSessionIdOrder) {
  ModelRegistry registry;
  ServingPlaneOptions options;
  options.shards = 4;
  options.session.min_points = 2;
  ServingPlane plane(&registry, options);

  std::vector<ClosedSegment> closed;
  // Ingest users in a scrambled order; shard assignment scatters them
  // further. FlushAll must still close 0, 1, 2, ... like one manager.
  for (const int64_t user : {11, 3, 7, 0, 14, 5, 9, 1, 12, 8}) {
    for (const auto& point : WalkPoints(user, 6)) {
      plane.Ingest(user, point, &closed);
    }
  }
  ASSERT_TRUE(closed.empty());
  EXPECT_EQ(plane.num_open_sessions(), 10u);

  plane.FlushAll(&closed);
  ASSERT_EQ(closed.size(), 10u);
  for (size_t i = 1; i < closed.size(); ++i) {
    EXPECT_LT(closed[i - 1].session_id, closed[i].session_id) << i;
  }
  EXPECT_EQ(plane.num_open_sessions(), 0u);
}

TEST(ShardCloseOrderTest, EvictIdleMergesAscendingAcrossShards) {
  ModelRegistry registry;
  ServingPlaneOptions options;
  options.shards = 4;
  options.session.min_points = 2;
  options.session.idle_after_seconds = 60.0;
  ServingPlane plane(&registry, options);

  std::vector<ClosedSegment> closed;
  for (int64_t user = 0; user < 12; ++user) {
    for (const auto& point : WalkPoints(user, 5)) {
      plane.Ingest(user, point, &closed);
    }
  }
  ASSERT_TRUE(closed.empty());

  plane.EvictIdle(1.2e9 + 1e6, &closed);  // Everything is long idle.
  ASSERT_EQ(closed.size(), 12u);
  for (size_t i = 0; i < closed.size(); ++i) {
    EXPECT_EQ(closed[i].session_id, static_cast<int64_t>(i));
    EXPECT_EQ(closed[i].reason, CloseReason::kIdle);
  }
  EXPECT_EQ(plane.session_stats().sessions_evicted_idle, 12u);
}

// --------------------------------------------------------- Per-shard caps --

TEST(ShardSessionTest, LruSessionCapIsEnforcedPerShard) {
  ModelRegistry registry;
  ServingPlaneOptions options;
  options.shards = 4;
  options.session.min_points = 2;
  options.session.max_sessions = 2;  // Per shard: plane-wide ceiling 8.
  ServingPlane plane(&registry, options);

  std::vector<ClosedSegment> closed;
  for (int64_t user = 0; user < 64; ++user) {
    for (const auto& point : WalkPoints(user, 4)) {
      plane.Ingest(user, point, &closed);
    }
    for (size_t s = 0; s < plane.num_shards(); ++s) {
      ASSERT_LE(plane.sessions(s).num_open_sessions(), 2u) << "user " << user;
    }
  }
  EXPECT_LE(plane.num_open_sessions(), 8u);
  EXPECT_GT(plane.session_stats().sessions_evicted_cap, 0u);
  // Cap evictions flushed full segments on the way out.
  EXPECT_GT(closed.size(), 0u);
  for (const ClosedSegment& segment : closed) {
    EXPECT_EQ(segment.reason, CloseReason::kSessionCap);
  }
}

// -------------------------------------------------------- Metric mirrors --

TEST(ShardMetricsTest, PerShardCountersSumToAggregateDeltas) {
  const ShardFixture& fixture = ShardFixture::Get();
  constexpr size_t kShards = 4;
  // Other tests in this binary (and earlier planes with more shards) have
  // already bumped these process-wide counters: compare deltas, summing
  // the shard mirrors over a range wider than this plane.
  constexpr size_t kProbe = 16;
  const uint64_t points_before = CounterVal("serve.sessions.points_ingested");
  const uint64_t emitted_before =
      CounterVal("serve.sessions.segments_emitted");
  const uint64_t requests_before =
      CounterVal("serve.batch_predictor.requests");
  std::vector<uint64_t> shard_points_before(kProbe), shard_emitted_before(
                                                        kProbe),
      shard_requests_before(kProbe);
  for (size_t s = 0; s < kProbe; ++s) {
    const std::string prefix = "serve.shard" + std::to_string(s) + ".";
    shard_points_before[s] = CounterVal(prefix + "sessions.points_ingested");
    shard_emitted_before[s] =
        CounterVal(prefix + "sessions.segments_emitted");
    shard_requests_before[s] =
        CounterVal(prefix + "batch_predictor.requests");
  }

  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ServingPlaneOptions options;
  options.shards = kShards;
  ServingPlane plane(&registry, options);
  const auto report = ReplayCorpus(fixture.corpus, fixture.labels, plane);
  ASSERT_TRUE(report.ok());

  uint64_t shard_points = 0, shard_emitted = 0, shard_requests = 0;
  size_t shards_with_points = 0;
  for (size_t s = 0; s < kProbe; ++s) {
    const std::string prefix = "serve.shard" + std::to_string(s) + ".";
    const uint64_t delta = CounterVal(prefix + "sessions.points_ingested") -
                           shard_points_before[s];
    if (delta > 0) ++shards_with_points;
    if (s >= kShards) {
      EXPECT_EQ(delta, 0u) << "phantom shard " << s;
    }
    shard_points += delta;
    shard_emitted += CounterVal(prefix + "sessions.segments_emitted") -
                     shard_emitted_before[s];
    shard_requests += CounterVal(prefix + "batch_predictor.requests") -
                      shard_requests_before[s];
  }
  // The shard mirrors partition the aggregates exactly.
  EXPECT_EQ(shard_points,
            CounterVal("serve.sessions.points_ingested") - points_before);
  EXPECT_EQ(shard_emitted,
            CounterVal("serve.sessions.segments_emitted") - emitted_before);
  EXPECT_EQ(shard_requests,
            CounterVal("serve.batch_predictor.requests") - requests_before);
  EXPECT_EQ(shard_points, report->points);
  // 4 users over 4 shards: the fixture spreads across at least 2.
  EXPECT_GE(shards_with_points, 2u);
}

TEST(ShardMetricsTest, StatusPageRendersPerShardSection) {
  const ShardFixture& fixture = ShardFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ServingPlaneOptions options;
  options.shards = 2;
  ServingPlane plane(&registry, options);
  ASSERT_TRUE(
      ReplayCorpus(fixture.corpus, fixture.labels, plane).ok());
  const std::string page = RenderStatusPage(obs::MetricsRegistry::Global(),
                                            obs::RequestTracer::Global());
  EXPECT_NE(page.find("shards\n"), std::string::npos);
  EXPECT_NE(page.find("  shard 0: points="), std::string::npos);
  EXPECT_NE(page.find("  shard 1: points="), std::string::npos);
}

// ------------------------------------------------------------ Races (TSan) --

// One writer thread per shard ingests that shard's users concurrently —
// the shard-per-core contract says they never contend. Run under
// -DTRAJKIT_SANITIZE=thread via `ctest -L concurrency`; the assertions
// also pin that the parallel run produces exactly the serial segments.
TEST(ShardConcurrencyTest, ParallelIngestAcrossShardsMatchesSerial) {
  constexpr size_t kShards = 4;
  constexpr int64_t kUsers = 16;
  constexpr size_t kPointsPerUser = 40;

  ModelRegistry registry;
  ServingPlaneOptions options;
  options.shards = kShards;
  options.session.min_points = 2;

  std::vector<std::vector<traj::TrajectoryPoint>> streams;
  for (int64_t user = 0; user < kUsers; ++user) {
    streams.push_back(WalkPoints(user, kPointsPerUser));
  }

  // Key of one closed segment for cross-run comparison (features are
  // bit-identical when the per-user stream is identical).
  using Key = std::tuple<int64_t, double, size_t, std::vector<double>>;
  const auto keys = [](std::vector<ClosedSegment>& closed) {
    std::vector<Key> out;
    out.reserve(closed.size());
    for (ClosedSegment& segment : closed) {
      out.emplace_back(segment.session_id, segment.start_time,
                       segment.num_points, std::move(segment.features));
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  // Serial reference.
  std::vector<ClosedSegment> serial_closed;
  {
    ServingPlane plane(&registry, options);
    for (int64_t user = 0; user < kUsers; ++user) {
      for (const auto& point : streams[user]) {
        plane.Ingest(user, point, &serial_closed);
      }
    }
    plane.FlushAll(&serial_closed);
  }

  // Parallel: one writer per shard, each driving only its own users.
  ServingPlane plane(&registry, options);
  std::vector<std::vector<ClosedSegment>> per_thread(kShards);
  std::vector<std::thread> writers;
  for (size_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&, s] {
      for (int64_t user = 0; user < kUsers; ++user) {
        if (plane.ShardOf(user) != s) continue;
        for (const auto& point : streams[user]) {
          plane.sessions(s).Ingest(user, point, &per_thread[s]);
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  std::vector<ClosedSegment> parallel_closed;
  for (auto& thread_closed : per_thread) {
    for (ClosedSegment& segment : thread_closed) {
      parallel_closed.push_back(std::move(segment));
    }
  }
  plane.FlushAll(&parallel_closed);

  EXPECT_EQ(keys(parallel_closed), keys(serial_closed));
}

// Hot swap under sharded predict: one writer flips the active model while
// readers submit across every shard. TSan-clean is the main assertion;
// labels must stay correct because v1 and v2 wrap the same forest.
TEST(ShardConcurrencyTest, HotSwapUnderShardedPredictStaysConsistent) {
  const ShardFixture& fixture = ShardFixture::Get();
  ModelRegistry registry;
  auto v2 = fixture.model;
  v2.version = "v2";
  ASSERT_TRUE(registry.Publish(fixture.model).ok());
  ASSERT_TRUE(registry.Register(std::move(v2)).ok());

  ServingPlaneOptions options;
  options.shards = 4;
  options.batching.max_batch_size = 1;  // Dispatch immediately.
  options.batching.max_delay_seconds = 0.05;
  ServingPlane plane(&registry, options);

  constexpr int kReaders = 3;
  constexpr int kIterationsPerReader = 50;
  std::atomic<int> readers_done{0};
  std::thread writer([&] {
    int i = 0;
    while (readers_done.load() < kReaders) {
      ASSERT_TRUE(registry.Publish(++i % 2 == 0 ? "v2" : "v1", serve::ModelRole::kActive).ok());
    }
  });

  const size_t num_rows = fixture.dataset.num_samples();
  std::vector<std::thread> readers;
  for (int reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      for (int i = 0; i < kIterationsPerReader; ++i) {
        const size_t r =
            (static_cast<size_t>(reader) * kIterationsPerReader +
             static_cast<size_t>(i)) %
            num_rows;
        const auto row = fixture.dataset.features().Row(r);
        // Spray across users (and therefore shards).
        auto future = plane.Submit(static_cast<int64_t>(i),
                                   PredictRequest({row.begin(), row.end()}));
        const auto result = future.get();
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().label, fixture.offline_predictions[r]);
        EXPECT_TRUE(result.value().model_version == "v1" ||
                    result.value().model_version == "v2");
      }
      readers_done.fetch_add(1);
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();
}

}  // namespace
}  // namespace trajkit::serve
