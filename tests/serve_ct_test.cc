// Tests for the continuous-training loop and the redesigned registry API
// (src/serve/model_registry.h, continuous_training.h, shadow_evaluator.h,
// serve_config.h): the publish/promote/retire lifecycle with its audit
// trail, lease coherence under concurrent promotions, shadow promotion
// under concurrent sharded predict (both rerun under TSan by CI),
// failed-candidate rejection, drift-forced refits, byte-identical CT
// replay across thread/shard counts, ParseServeFlags validation, and
// FlatForestScratch reuse.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "ml/dataset.h"
#include "ml/flat_forest.h"
#include "ml/matrix.h"
#include "ml/random_forest.h"
#include "serve/batch_predictor.h"
#include "serve/continuous_training.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "serve/serve_config.h"
#include "serve/serving_plane.h"
#include "serve/session_manager.h"
#include "serve/shadow_evaluator.h"
#include "synthgeo/generator.h"
#include "traj/trajectory_features.h"
#include "traj/types.h"

namespace trajkit::serve {
namespace {

// Same recipe as the serve-replay CT smoke in CI (6 users x 2 days,
// seed 42): big enough that a refit_every=16 trainer installs and
// promotes a candidate mid-replay. Built once per binary.
struct CtFixture {
  std::vector<traj::Trajectory> corpus;
  core::LabelSet labels = core::LabelSet::Dabiri();
  ml::Dataset dataset;
  std::vector<int> offline_predictions;
  ServingModel model;

  static const CtFixture& Get() {
    static const CtFixture* fixture = new CtFixture();
    return *fixture;
  }

 private:
  CtFixture() {
    synthgeo::GeneratorOptions generator_options;
    generator_options.num_users = 6;
    generator_options.days_per_user = 2;
    generator_options.seed = 42;
    synthgeo::GeoLifeLikeGenerator generator(generator_options);
    corpus = generator.Generate();
    const core::Pipeline pipeline;
    dataset = std::move(pipeline.BuildDataset(corpus, labels)).value();
    ml::RandomForestParams params;
    params.n_estimators = 15;
    ml::RandomForest forest(params);
    TRAJKIT_CHECK(forest.Fit(dataset).ok());
    offline_predictions = forest.Predict(dataset.features());
    model = std::move(MakeServingModel("v1", std::move(forest),
                                       traj::kNumTrajectoryFeatures))
                .value();
  }
};

// A copy of the fixture model republished under another version — the
// forest is shared, so every candidate answers identically to v1.
ServingModel CloneAs(const std::string& version) {
  ServingModel clone = CtFixture::Get().model;
  clone.version = version;
  return clone;
}

// A forest over `width`-dim synthetic features — used to provoke the
// shadow input-width check and to exercise scratch reuse cheaply.
ServingModel TinyModel(const std::string& version, int width,
                       uint64_t seed = 5) {
  Rng rng(seed);
  const size_t n = 32;
  ml::Matrix features(n, static_cast<size_t>(width));
  std::vector<int> labels(n);
  std::vector<std::string> feature_names;
  for (int f = 0; f < width; ++f) {
    feature_names.push_back(StrPrintf("f%d", f));
  }
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    for (int f = 0; f < width; ++f) {
      features.MutableRow(i)[static_cast<size_t>(f)] =
          rng.Uniform(0.0, 1.0) + static_cast<double>(labels[i]);
    }
  }
  ml::Dataset dataset =
      std::move(ml::Dataset::Create(std::move(features), std::move(labels),
                                    {}, std::move(feature_names),
                                    {"even", "odd"}))
          .value();
  ml::RandomForestParams params;
  params.n_estimators = 5;
  ml::RandomForest forest(params);
  TRAJKIT_CHECK(forest.Fit(dataset).ok());
  return std::move(MakeServingModel(version, std::move(forest), width))
      .value();
}

ClosedSegment SegmentWithFeatures(std::vector<double> features) {
  ClosedSegment segment;
  segment.features = std::move(features);
  return segment;
}

// Builds a Flags view over literal argv tokens ("--key=value").
class FlagSet {
 public:
  explicit FlagSet(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {
    argv_.push_back(const_cast<char*>("test"));
    for (std::string& token : tokens_) {
      argv_.push_back(token.data());
    }
    flags_ = std::make_unique<Flags>(static_cast<int>(argv_.size()),
                                     argv_.data());
  }
  const Flags& operator*() const { return *flags_; }

 private:
  std::vector<std::string> tokens_;
  std::vector<char*> argv_;
  std::unique_ptr<Flags> flags_;
};

// ---------------------------------------------------- Registry lifecycle --

TEST(ModelRegistryTest, PublishPromoteRetireKeepsCoherentTriple) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());

  ModelLease lease = registry.Acquire();
  ASSERT_NE(lease.active, nullptr);
  EXPECT_EQ(lease.active->version, "v1");
  EXPECT_EQ(lease.last_good, nullptr);
  EXPECT_EQ(lease.shadow, nullptr);
  const uint64_t seq_after_publish = lease.seq;

  // Installing a shadow changes what readers see in the shadow slot only.
  ASSERT_TRUE(registry.Publish(CloneAs("v2"), ModelRole::kShadow).ok());
  lease = registry.Acquire();
  EXPECT_EQ(lease.active->version, "v1");
  ASSERT_NE(lease.shadow, nullptr);
  EXPECT_EQ(lease.shadow->version, "v2");
  EXPECT_GT(lease.seq, seq_after_publish);

  // Promotion: shadow -> active, active -> last_good, shadow empties.
  ASSERT_TRUE(registry.PromoteShadow("accuracy_delta=+0.02").ok());
  lease = registry.Acquire();
  EXPECT_EQ(lease.active->version, "v2");
  ASSERT_NE(lease.last_good, nullptr);
  EXPECT_EQ(lease.last_good->version, "v1");
  EXPECT_EQ(lease.shadow, nullptr);

  // Retiring a rejected candidate also drops its registration.
  ASSERT_TRUE(registry.Publish(CloneAs("v3"), ModelRole::kShadow).ok());
  ASSERT_TRUE(registry.RetireShadow("accuracy_delta below epsilon").ok());
  lease = registry.Acquire();
  EXPECT_EQ(lease.active->version, "v2");
  EXPECT_EQ(lease.shadow, nullptr);
  EXPECT_EQ(registry.Get("v3"), nullptr);
  EXPECT_NE(registry.Get("v1"), nullptr);  // Still last_good.
}

TEST(ModelRegistryTest, AuditTrailRecordsLifecycleInOrder) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());
  ASSERT_TRUE(registry.Publish(CloneAs("v2"), ModelRole::kShadow).ok());
  ASSERT_TRUE(registry.PromoteShadow("delta=+0.01 over 64 labeled").ok());
  ASSERT_TRUE(registry.Publish(CloneAs("v3"), ModelRole::kShadow).ok());
  ASSERT_TRUE(registry.RetireShadow("cost_ratio=5.1 > budget 4.0").ok());

  const std::vector<RegistryAuditEvent> trail = registry.AuditTrail();
  ASSERT_EQ(trail.size(), 5u);
  EXPECT_EQ(trail[0].event, "publish_active");
  EXPECT_EQ(trail[0].version, "v1");
  EXPECT_EQ(trail[1].event, "publish_shadow");
  EXPECT_EQ(trail[1].version, "v2");
  EXPECT_EQ(trail[2].event, "promote");
  EXPECT_EQ(trail[2].version, "v2");
  EXPECT_EQ(trail[2].detail, "delta=+0.01 over 64 labeled");
  EXPECT_EQ(trail[3].event, "publish_shadow");
  EXPECT_EQ(trail[4].event, "retire_shadow");
  EXPECT_EQ(trail[4].version, "v3");
  // Sequence numbers strictly increase down the trail.
  for (size_t i = 1; i < trail.size(); ++i) {
    EXPECT_GT(trail[i].seq, trail[i - 1].seq);
  }
}

TEST(ModelRegistryTest, ShadowPublishRejectsInputWidthMismatch) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());
  const Status status =
      registry.Publish(TinyModel("narrow", 3), ModelRole::kShadow);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("consumes"), std::string::npos)
      << status.message();
  // The rejected candidate never became visible.
  EXPECT_EQ(registry.Acquire().shadow, nullptr);
}

TEST(ModelRegistryTest, PromoteOrRetireWithoutShadowFailsPrecondition) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());
  EXPECT_FALSE(registry.PromoteShadow("no candidate").ok());
  EXPECT_FALSE(registry.RetireShadow("no candidate").ok());
  EXPECT_EQ(registry.Acquire().active->version, "v1");
}

// ------------------------------------------------------- Lease coherence --

// Readers must never observe a promotion half-applied: within one lease
// the (active, last_good, shadow) triple is consistent and seq only moves
// forward. CI reruns this under TSan.
TEST(CtConcurrencyTest, LeaseStaysCoherentUnderConcurrentPromotes) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());

  constexpr int kPromotions = 100;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kPromotions; ++i) {
      ASSERT_TRUE(registry
                      .Publish(CloneAs("cand-" + std::to_string(i)),
                               ModelRole::kShadow)
                      .ok());
      ASSERT_TRUE(registry.PromoteShadow("race test").ok());
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int reader = 0; reader < 3; ++reader) {
    readers.emplace_back([&] {
      uint64_t last_seq = 0;
      while (!done.load()) {
        const ModelLease lease = registry.Acquire();
        ASSERT_NE(lease.active, nullptr);
        EXPECT_GE(lease.seq, last_seq);
        last_seq = lease.seq;
        if (lease.last_good != nullptr) {
          // Promotion swaps atomically: active and last-good can never
          // be the same snapshot.
          EXPECT_NE(lease.active->version, lease.last_good->version);
        }
        if (lease.shadow != nullptr) {
          EXPECT_EQ(lease.shadow->num_input_features,
                    lease.active->num_input_features);
        }
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  const ModelLease lease = registry.Acquire();
  EXPECT_EQ(lease.active->version, "cand-" + std::to_string(kPromotions - 1));
  EXPECT_EQ(lease.shadow, nullptr);
}

// Shadow install + promotion while readers submit across a sharded plane
// with shadow scoring wired in. Labels must stay correct throughout (all
// candidates wrap the same forest); TSan-clean is the main assertion.
TEST(CtConcurrencyTest, ShadowPromotionUnderConcurrentShardedPredict) {
  const CtFixture& fixture = CtFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());

  ShadowEvaluator evaluator;
  evaluator.StartWindow("cand-0", 1.0);
  ServingPlaneOptions options;
  options.shards = 4;
  options.batching.max_batch_size = 1;  // Dispatch immediately.
  options.batching.max_delay_seconds = 0.05;
  options.batching.shadow_evaluator = &evaluator;
  ServingPlane plane(&registry, options);

  constexpr int kReaders = 3;
  constexpr int kIterationsPerReader = 50;
  std::atomic<int> readers_done{0};
  std::thread writer([&] {
    int i = 0;
    while (readers_done.load() < kReaders) {
      const std::string version = "cand-" + std::to_string(i++);
      ASSERT_TRUE(registry.Publish(CloneAs(version), ModelRole::kShadow).ok());
      ASSERT_TRUE(registry.PromoteShadow("concurrency test").ok());
    }
  });

  const size_t num_rows = fixture.dataset.num_samples();
  std::vector<std::thread> readers;
  for (int reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&, reader] {
      for (int i = 0; i < kIterationsPerReader; ++i) {
        const size_t r =
            (static_cast<size_t>(reader) * kIterationsPerReader +
             static_cast<size_t>(i)) %
            num_rows;
        const auto row = fixture.dataset.features().Row(r);
        auto future = plane.Submit(static_cast<int64_t>(i),
                                   PredictRequest({row.begin(), row.end()}));
        const auto result = future.get();
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().label, fixture.offline_predictions[r]);
        // Whoever served it, a shadow answer (when scored) must agree —
        // every version wraps the same forest.
        if (result.value().shadow_label >= 0) {
          EXPECT_EQ(result.value().shadow_label,
                    fixture.offline_predictions[r]);
        }
      }
      readers_done.fetch_add(1);
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();
}

// ------------------------------------------------- Trainer verdict paths --

// A candidate that cannot clear the promotion epsilon is retired at the
// verdict barrier: the active model keeps serving, the rejected version
// is unregistered, and the rejection is audited.
TEST(ContinuousTrainerTest, FailedCandidateRejectionKeepsActiveServing) {
  const CtFixture& fixture = CtFixture::Get();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());

  ContinuousTrainingOptions options;
  options.step_every = 4;
  options.refit_every = 4;
  options.min_fit_samples = 4;
  options.forest.n_estimators = 5;
  options.promotion.min_samples = 4;
  options.promotion.min_accuracy_delta = 1.5;  // Unreachable: always reject.
  options.drift.enabled = false;
  ContinuousTrainer trainer(&registry, fixture.labels, options);

  const auto feed_segments = [&](size_t count, size_t offset) {
    for (size_t i = 0; i < count; ++i) {
      const auto row = fixture.dataset.features().Row(
          (offset + i) % fixture.dataset.num_samples());
      trainer.ObserveSegment(SegmentWithFeatures({row.begin(), row.end()}),
                             static_cast<int>(i % 2));
    }
  };

  // Barrier 1: refit launches. Barrier 2: candidate lands in the shadow
  // slot and its evaluation window opens.
  feed_segments(4, 0);
  ASSERT_TRUE(trainer.StepDue());
  ASSERT_TRUE(trainer.Step().ok());
  EXPECT_EQ(trainer.stats().refits_launched, 1u);
  feed_segments(4, 4);
  ASSERT_TRUE(trainer.Step().ok());
  ASSERT_EQ(trainer.stats().shadows_installed, 1u);
  const ModelLease shadowed = registry.Acquire();
  ASSERT_NE(shadowed.shadow, nullptr);
  const std::string candidate = shadowed.shadow->version;

  // Label outcomes where the shadow is always wrong, then hit the next
  // barrier: the window has matured and the verdict is a rejection.
  for (int i = 0; i < 4; ++i) {
    Prediction prediction;
    prediction.label = 0;  // Active correct.
    prediction.shadow_label = 1;
    prediction.shadow_version = candidate;
    trainer.OnResult(/*true_class=*/0, prediction);
  }
  feed_segments(4, 8);
  ASSERT_TRUE(trainer.Step().ok());

  EXPECT_EQ(trainer.stats().rejections, 1u);
  EXPECT_EQ(trainer.stats().promotions, 0u);
  const ModelLease lease = registry.Acquire();
  ASSERT_NE(lease.active, nullptr);
  EXPECT_EQ(lease.active->version, "v1");
  EXPECT_EQ(lease.shadow, nullptr);
  EXPECT_EQ(registry.Get(candidate), nullptr);
  const std::vector<RegistryAuditEvent> trail = registry.AuditTrail();
  ASSERT_FALSE(trail.empty());
  EXPECT_EQ(trail.back().event, "retire_shadow");
  EXPECT_EQ(trail.back().version, candidate);
}

// A sustained feature-distribution shift fires the drift sketch and
// forces a refit long before refit_every would.
TEST(ContinuousTrainerTest, DriftTriggerForcesEarlyRefit) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(CloneAs("v1")).ok());

  ContinuousTrainingOptions options;
  options.step_every = 4;
  options.refit_every = 1000;  // Never due by counting alone.
  options.min_fit_samples = 4;
  options.forest.n_estimators = 3;
  options.drift.enabled = true;
  options.drift.window = 4;
  options.drift.threshold = 1.0;
  ContinuousTrainer trainer(&registry, core::LabelSet::Dabiri(), options);

  const auto feed = [&](double value, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      trainer.ObserveSegment(
          SegmentWithFeatures(std::vector<double>(8, value)),
          static_cast<int>(i % 2));
    }
  };

  // Baseline window: no drift, no refit due.
  feed(1.0, 4);
  ASSERT_TRUE(trainer.Step().ok());
  EXPECT_EQ(trainer.stats().drift_triggers, 0u);
  EXPECT_EQ(trainer.stats().refits_launched, 0u);

  // Shifted window: the sketch trips and the same barrier kicks a refit.
  feed(101.0, 4);
  ASSERT_TRUE(trainer.Step().ok());
  EXPECT_EQ(trainer.stats().drift_triggers, 1u);
  EXPECT_EQ(trainer.stats().refits_launched, 1u);
}

// ----------------------------------------------- CT replay determinism --

struct CtReplayOutcome {
  ReplayReport report;
  ContinuousTrainer::Stats stats;
  std::string final_version;
};

CtReplayOutcome RunCtReplay(int threads, size_t shards) {
  const CtFixture& fixture = CtFixture::Get();
  const int prior_threads = MaxThreads();
  SetMaxThreads(threads);

  ModelRegistry registry;
  TRAJKIT_CHECK(registry.Publish(CloneAs("v1")).ok());

  ContinuousTrainingOptions ct;
  ct.step_every = 8;
  ct.refit_every = 16;
  ct.min_fit_samples = 16;
  ct.forest.n_estimators = 10;
  ct.promotion.min_samples = 8;
  ct.promotion.min_accuracy_delta = -1.0;  // Promote once the window fills.
  ContinuousTrainer trainer(&registry, fixture.labels, ct);

  ServingPlaneOptions plane_options;
  plane_options.shards = shards;
  plane_options.batching.max_batch_size = 16;
  plane_options.batching.max_delay_seconds = 0.001;
  plane_options.batching.shadow_evaluator = &trainer.evaluator();
  ServingPlane plane(&registry, plane_options);

  ReplayOptions replay_options;
  replay_options.trainer = &trainer;
  CtReplayOutcome outcome;
  outcome.report =
      std::move(ReplayCorpus(fixture.corpus, fixture.labels, plane,
                             replay_options))
          .value();
  outcome.stats = trainer.stats();
  outcome.final_version = registry.Acquire().active->version;
  SetMaxThreads(prior_threads);
  return outcome;
}

// The whole point of barrier-driven trainer steps: which model answers
// which segment is a pure function of the corpus, so the scored stream —
// and the promotion history — is identical at any thread/shard count.
TEST(ContinuousTrainerTest, CtReplayIsByteIdenticalAcrossThreadsAndShards) {
  const CtReplayOutcome base = RunCtReplay(/*threads=*/1, /*shards=*/1);
  EXPECT_GE(base.stats.promotions, 1u)
      << "corpus too small for the promotion window";
  EXPECT_EQ(base.final_version.rfind("ct-v", 0), 0u) << base.final_version;

  for (const auto& [threads, shards] :
       std::vector<std::pair<int, size_t>>{{4, 1}, {4, 2}}) {
    const CtReplayOutcome other = RunCtReplay(threads, shards);
    EXPECT_EQ(other.report.y_pred, base.report.y_pred)
        << "threads=" << threads << " shards=" << shards;
    EXPECT_EQ(other.report.y_true, base.report.y_true);
    EXPECT_EQ(other.report.segments_evaluated,
              base.report.segments_evaluated);
    EXPECT_EQ(other.report.correct, base.report.correct);
    EXPECT_EQ(other.stats.promotions, base.stats.promotions);
    EXPECT_EQ(other.stats.rejections, base.stats.rejections);
    EXPECT_EQ(other.stats.shadows_installed, base.stats.shadows_installed);
    EXPECT_EQ(other.final_version, base.final_version);
  }
}

// ---------------------------------------------------------- ServeConfig --

TEST(ServeConfigTest, ValidationNamesTheOffendingFlag) {
  const auto parse = [](std::vector<std::string> tokens) {
    FlagSet flags(std::move(tokens));
    return ParseServeFlags(*flags, ServeReplayDefaults());
  };

  const auto expect_error_naming = [&](std::vector<std::string> tokens,
                                       const std::string& flag) {
    const auto result = parse(std::move(tokens));
    ASSERT_FALSE(result.ok()) << flag;
    EXPECT_NE(result.status().message().find(flag), std::string::npos)
        << result.status().message();
  };

  expect_error_naming({"--shards=0"}, "--shards");
  expect_error_naming({"--batch=0"}, "--batch");
  expect_error_naming({"--users=0"}, "--users");
  expect_error_naming({"--max_delay_ms=-1"}, "--max_delay_ms");
  expect_error_naming({"--retries=-1"}, "--retries");
  expect_error_naming({"--fault_spec=bogus"}, "--fault_spec");
  expect_error_naming(
      {"--continuous_training", "--step_every=16", "--refit_every=8"},
      "--refit_every");
  expect_error_naming(
      {"--continuous_training", "--min_fit=64", "--ct_buffer=8"},
      "--ct_buffer");
  expect_error_naming({"--continuous_training", "--cost_budget=0"},
                      "--cost_budget");
  expect_error_naming({"--continuous_training", "--drift_degraded_rate=1.5"},
                      "--drift_degraded_rate");
}

TEST(ServeConfigTest, CtFlagsRequireTheMainSwitch) {
  for (const std::string flag :
       {"--step_every=8", "--min_shadow=4", "--promote_epsilon=0.1",
        "--drift_window=64"}) {
    FlagSet flags({flag});
    const auto result = ParseServeFlags(*flags, ServeReplayDefaults());
    ASSERT_FALSE(result.ok()) << flag;
    EXPECT_NE(result.status().message().find("requires --continuous_training"),
              std::string::npos)
        << result.status().message();
  }
}

TEST(ServeConfigTest, DefaultsAndOverridesRoundTrip) {
  {
    // Flagless serve-replay: historic defaults, CT off.
    FlagSet flags({});
    const auto config = ParseServeFlags(*flags, ServeReplayDefaults());
    ASSERT_TRUE(config.ok());
    EXPECT_EQ(config->users, 20);
    EXPECT_EQ(config->shards, 1u);
    EXPECT_FALSE(config->ct.enabled);
    EXPECT_FALSE(config->fault_spec.has_value());
  }
  {
    // statusz carries default chaos; --fault_spec= (empty) disables it.
    FlagSet flags({"--fault_spec="});
    const auto config = ParseServeFlags(*flags, StatuszDefaults());
    ASSERT_TRUE(config.ok());
    EXPECT_EQ(config->shards, 2u);
    EXPECT_FALSE(config->fault_spec.has_value());
    const auto chaotic = ParseServeFlags(*FlagSet({}), StatuszDefaults());
    ASSERT_TRUE(chaotic.ok());
    EXPECT_TRUE(chaotic->fault_spec.has_value());
  }
  {
    FlagSet flags({"--continuous_training", "--step_every=8",
                   "--refit_every=24", "--min_fit=24", "--min_shadow=12",
                   "--promote_epsilon=-0.5", "--ct_trees=7"});
    const auto config = ParseServeFlags(*flags, ServeReplayDefaults());
    ASSERT_TRUE(config.ok());
    ASSERT_TRUE(config->ct.enabled);
    const ContinuousTrainingOptions options = config->ct.MakeOptions();
    EXPECT_EQ(options.step_every, 8u);
    EXPECT_EQ(options.refit_every, 24u);
    EXPECT_EQ(options.min_fit_samples, 24u);
    EXPECT_EQ(options.promotion.min_samples, 12u);
    EXPECT_DOUBLE_EQ(options.promotion.min_accuracy_delta, -0.5);
    EXPECT_EQ(options.forest.n_estimators, 7);
  }
}

// ------------------------------------------------- FlatForestScratch -----

// Compiling through a reused scratch must be invisible in the output:
// the flat form answers bit-identically to the tree walk, across refits
// sharing one workspace (the continuous trainer's usage pattern).
TEST(FlatForestScratchTest, ReuseAcrossRefitsIsBitIdentical) {
  ml::FlatForestScratch scratch;
  for (uint64_t seed = 5; seed < 8; ++seed) {
    ServingModel model = TinyModel("scratch-" + std::to_string(seed),
                                   /*width=*/6, seed);
    Rng rng(seed * 31 + 7);
    ml::Matrix probe(64, 6);
    for (size_t i = 0; i < probe.rows(); ++i) {
      for (size_t f = 0; f < 6; ++f) {
        probe.MutableRow(i)[f] = rng.Uniform(-1.0, 2.0);
      }
    }
    const std::vector<int> tree_walk = model.forest.Predict(probe);
    ASSERT_TRUE(
        model.forest.CompileFlat(ml::FlatForestOptions{}, &scratch).ok());
    ASSERT_NE(model.forest.flat(), nullptr);
    EXPECT_EQ(model.forest.Predict(probe), tree_walk) << "seed " << seed;
  }
}

}  // namespace
}  // namespace trajkit::serve
