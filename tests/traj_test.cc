// Unit tests for src/traj: types, segmentation, point features, trajectory
// features, noise removal.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "geo/geodesy.h"
#include "stats/descriptive.h"
#include "traj/noise.h"
#include "traj/point_features.h"
#include "traj/segmentation.h"
#include "traj/trajectory_features.h"
#include "traj/types.h"

namespace trajkit::traj {
namespace {

// Builds a straight-line northbound run: `n` points, `dt` seconds apart,
// moving `step_m` meters per interval.
std::vector<TrajectoryPoint> StraightRun(int n, double dt, double step_m,
                                         Mode mode = Mode::kWalk,
                                         double t0 = 1000.0) {
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < n; ++i) {
    points.push_back({pos, t0 + i * dt, mode});
    pos = geo::Destination(pos, 0.0, step_m);
  }
  return points;
}

// ----------------------------------------------------------------- Types --

TEST(TypesTest, ModeStringRoundTrip) {
  for (Mode mode : AllLabeledModes()) {
    const Result<Mode> parsed = ModeFromString(ModeToString(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mode);
  }
}

TEST(TypesTest, ModeFromStringVariants) {
  EXPECT_EQ(ModeFromString("WALK").value(), Mode::kWalk);
  EXPECT_EQ(ModeFromString(" bike ").value(), Mode::kBike);
  EXPECT_EQ(ModeFromString("motorbike").value(), Mode::kMotorcycle);
  EXPECT_EQ(ModeFromString("running").value(), Mode::kRun);
  EXPECT_EQ(ModeFromString("plane").value(), Mode::kAirplane);
  EXPECT_FALSE(ModeFromString("teleport").ok());
  EXPECT_FALSE(ModeFromString("").ok());
}

TEST(TypesTest, AllLabeledModesExcludesUnknown) {
  EXPECT_EQ(AllLabeledModes().size(), 11u);
  for (Mode mode : AllLabeledModes()) EXPECT_NE(mode, Mode::kUnknown);
}

TEST(TypesTest, DayIndex) {
  EXPECT_EQ(DayIndex(0.0), 0);
  EXPECT_EQ(DayIndex(86399.0), 0);
  EXPECT_EQ(DayIndex(86400.0), 1);
  EXPECT_EQ(DayIndex(-1.0), -1);
}

// ---------------------------------------------------------- Segmentation --

TEST(SegmentationTest, SplitsOnModeChange) {
  Trajectory trajectory;
  trajectory.user_id = 3;
  auto walk = StraightRun(12, 2.0, 3.0, Mode::kWalk, 1000.0);
  auto bus = StraightRun(15, 2.0, 15.0, Mode::kBus, 1100.0);
  trajectory.points = walk;
  trajectory.points.insert(trajectory.points.end(), bus.begin(), bus.end());

  const auto segments = SegmentTrajectory(trajectory, SegmentationOptions{});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].mode, Mode::kWalk);
  EXPECT_EQ(segments[0].points.size(), 12u);
  EXPECT_EQ(segments[1].mode, Mode::kBus);
  EXPECT_EQ(segments[1].user_id, 3);
}

TEST(SegmentationTest, SplitsOnDayChange) {
  Trajectory trajectory;
  auto day0 = StraightRun(12, 2.0, 3.0, Mode::kWalk, 86400.0 - 12.0);
  // Crosses midnight: points span two days.
  trajectory.points = day0;
  const auto segments = SegmentTrajectory(trajectory, SegmentationOptions{});
  // Each side of midnight has < 10 points → both dropped with default
  // min_points.
  EXPECT_TRUE(segments.empty());

  SegmentationOptions options;
  options.min_points = 2;
  const auto segments2 = SegmentTrajectory(trajectory, options);
  ASSERT_EQ(segments2.size(), 2u);
  EXPECT_EQ(segments2[0].day + 1, segments2[1].day);
}

TEST(SegmentationTest, DaySplitCanBeDisabled) {
  Trajectory trajectory;
  trajectory.points = StraightRun(12, 2.0, 3.0, Mode::kWalk, 86400.0 - 12.0);
  SegmentationOptions options;
  options.split_on_day = false;
  options.min_points = 2;
  EXPECT_EQ(SegmentTrajectory(trajectory, options).size(), 1u);
}

TEST(SegmentationTest, DiscardsShortSegments) {
  Trajectory trajectory;
  trajectory.points = StraightRun(9, 2.0, 3.0);  // 9 < 10.
  EXPECT_TRUE(
      SegmentTrajectory(trajectory, SegmentationOptions{}).empty());
  trajectory.points = StraightRun(10, 2.0, 3.0);
  EXPECT_EQ(SegmentTrajectory(trajectory, SegmentationOptions{}).size(), 1u);
}

TEST(SegmentationTest, DropsUnlabeledByDefault) {
  Trajectory trajectory;
  trajectory.points = StraightRun(20, 2.0, 3.0, Mode::kUnknown);
  EXPECT_TRUE(
      SegmentTrajectory(trajectory, SegmentationOptions{}).empty());
  SegmentationOptions keep;
  keep.drop_unlabeled = false;
  EXPECT_EQ(SegmentTrajectory(trajectory, keep).size(), 1u);
}

TEST(SegmentationTest, GapSplitting) {
  Trajectory trajectory;
  auto part1 = StraightRun(12, 2.0, 3.0, Mode::kWalk, 0.0);
  auto part2 = StraightRun(12, 2.0, 3.0, Mode::kWalk, 1000.0);
  trajectory.points = part1;
  trajectory.points.insert(trajectory.points.end(), part2.begin(),
                           part2.end());
  SegmentationOptions no_gap;
  EXPECT_EQ(SegmentTrajectory(trajectory, no_gap).size(), 1u);
  SegmentationOptions with_gap;
  with_gap.max_gap_seconds = 120.0;
  EXPECT_EQ(SegmentTrajectory(trajectory, with_gap).size(), 2u);
}

TEST(SegmentationTest, DropsOutOfOrderPoints) {
  Trajectory trajectory;
  trajectory.points = StraightRun(15, 2.0, 3.0);
  // Inject a time-travelling fix.
  TrajectoryPoint bad = trajectory.points[5];
  bad.timestamp = 500.0;
  trajectory.points.insert(trajectory.points.begin() + 6, bad);
  const auto segments =
      SegmentTrajectory(trajectory, SegmentationOptions{});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].points.size(), 15u);
}

TEST(SegmentationTest, CorpusAggregatesUsers) {
  Trajectory a;
  a.user_id = 1;
  a.points = StraightRun(12, 2.0, 3.0);
  Trajectory b;
  b.user_id = 2;
  b.points = StraightRun(12, 2.0, 3.0);
  const auto segments = SegmentCorpus({a, b}, SegmentationOptions{});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].user_id, 1);
  EXPECT_EQ(segments[1].user_id, 2);
}

TEST(SegmentationTest, NonConsecutiveSameModeRunsStaySeparate) {
  Trajectory trajectory;
  auto walk1 = StraightRun(12, 2.0, 3.0, Mode::kWalk, 0.0);
  auto bus = StraightRun(12, 2.0, 15.0, Mode::kBus, 100.0);
  auto walk2 = StraightRun(12, 2.0, 3.0, Mode::kWalk, 200.0);
  trajectory.points = walk1;
  trajectory.points.insert(trajectory.points.end(), bus.begin(), bus.end());
  trajectory.points.insert(trajectory.points.end(), walk2.begin(),
                           walk2.end());
  const auto segments =
      SegmentTrajectory(trajectory, SegmentationOptions{});
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].mode, Mode::kWalk);
  EXPECT_EQ(segments[1].mode, Mode::kBus);
  EXPECT_EQ(segments[2].mode, Mode::kWalk);
}

// -------------------------------------------------------- Point features --

TEST(PointFeaturesTest, ConstantSpeedStraightLine) {
  // 3 m every 2 s → 1.5 m/s, bearing 0 (north), zero accel/jerk.
  const auto points = StraightRun(20, 2.0, 3.0);
  const PointFeatures f = ComputePointFeatures(points);
  ASSERT_EQ(f.size(), 20u);
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f.duration[i], 2.0, 1e-9);
    EXPECT_NEAR(f.distance[i], 3.0, 1e-6);
    EXPECT_NEAR(f.speed[i], 1.5, 1e-6);
    EXPECT_NEAR(f.acceleration[i], 0.0, 1e-6);
    EXPECT_NEAR(f.jerk[i], 0.0, 1e-6);
    EXPECT_NEAR(f.bearing[i], 0.0, 1e-6);
    EXPECT_NEAR(f.bearing_rate[i], 0.0, 1e-6);
    EXPECT_NEAR(f.bearing_rate_rate[i], 0.0, 1e-6);
  }
}

TEST(PointFeaturesTest, FirstPointCopiesSecond) {
  // Accelerating run: speed differs between intervals; index 0 must equal
  // index 1 for every channel (§3.2's boundary convention).
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    points.push_back({pos, t, Mode::kCar});
    pos = geo::Destination(pos, 0.0, 5.0 + 2.0 * i);
    t += 2.0;
  }
  const PointFeatures f = ComputePointFeatures(points);
  EXPECT_DOUBLE_EQ(f.speed[0], f.speed[1]);
  EXPECT_DOUBLE_EQ(f.acceleration[0], f.acceleration[1]);
  EXPECT_DOUBLE_EQ(f.jerk[0], f.jerk[1]);
  EXPECT_DOUBLE_EQ(f.bearing[0], f.bearing[1]);
  EXPECT_DOUBLE_EQ(f.bearing_rate[0], f.bearing_rate[1]);
  EXPECT_DOUBLE_EQ(f.bearing_rate_rate[0], f.bearing_rate_rate[1]);
}

TEST(PointFeaturesTest, AccelerationOfLinearSpeedRamp) {
  // Speed increases by 1 m/s every 1 s interval → acceleration ≈ 1 m/s²,
  // jerk ≈ 0 (after the first interval).
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 12; ++i) {
    points.push_back({pos, static_cast<double>(i), Mode::kCar});
    pos = geo::Destination(pos, 0.0, 1.0 + i);  // Distance grows linearly.
  }
  const PointFeatures f = ComputePointFeatures(points);
  // accel[1] is 0 by the boundary convention (speed[0] copies speed[1]),
  // so acceleration is steady from index 2 and jerk from index 3.
  for (size_t i = 2; i < f.size(); ++i) {
    EXPECT_NEAR(f.acceleration[i], 1.0, 1e-4);
  }
  for (size_t i = 3; i < f.size(); ++i) {
    EXPECT_NEAR(f.jerk[i], 0.0, 1e-4);
  }
}

TEST(PointFeaturesTest, ZeroDurationClamped) {
  std::vector<TrajectoryPoint> points = StraightRun(5, 2.0, 3.0);
  points[2].timestamp = points[1].timestamp;  // Duplicate timestamp.
  const PointFeatures f = ComputePointFeatures(points);
  for (double v : f.speed) {
    EXPECT_TRUE(std::isfinite(v));
  }
  // Clamped Δt = 0.1 s → speed = 3 m / 0.1 s.
  EXPECT_NEAR(f.speed[2], 30.0, 1e-3);
}

TEST(PointFeaturesTest, BearingRateWrapsAcrossNorth) {
  // Heading goes 350° → 10°: wrapped difference is +20°, not -340°.
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  points.push_back({pos, 0.0, Mode::kWalk});
  pos = geo::Destination(pos, 350.0, 10.0);
  points.push_back({pos, 1.0, Mode::kWalk});
  pos = geo::Destination(pos, 10.0, 10.0);
  points.push_back({pos, 2.0, Mode::kWalk});
  const PointFeatures f = ComputePointFeatures(points);
  EXPECT_NEAR(f.bearing_rate[2], 20.0, 0.5);

  PointFeatureOptions raw;
  raw.wrap_bearing_difference = false;
  const PointFeatures g = ComputePointFeatures(points, raw);
  EXPECT_NEAR(g.bearing_rate[2], -340.0, 0.5);
}

TEST(PointFeaturesTest, ChannelAccessorsCoverAllSeven) {
  const auto points = StraightRun(10, 2.0, 3.0);
  const PointFeatures f = ComputePointFeatures(points);
  ASSERT_EQ(ChannelNames().size(),
            static_cast<size_t>(kNumFeatureChannels));
  for (int c = 0; c < kNumFeatureChannels; ++c) {
    EXPECT_EQ(ChannelValues(f, c).size(), f.size());
  }
  EXPECT_EQ(ChannelNames()[1], "speed");
}

// --------------------------------------------------- Trajectory features --

TEST(TrajectoryFeaturesTest, Exactly70NamesAllDistinct) {
  const auto& names = TrajectoryFeatureExtractor::FeatureNames();
  ASSERT_EQ(names.size(), 70u);
  std::set<std::string> distinct(names.begin(), names.end());
  EXPECT_EQ(distinct.size(), 70u);
  EXPECT_EQ(kNumTrajectoryFeatures, 70);
}

TEST(TrajectoryFeaturesTest, FeatureIndexLookup) {
  const auto idx = TrajectoryFeatureExtractor::FeatureIndex("speed_p90");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(TrajectoryFeatureExtractor::FeatureNames()
                [static_cast<size_t>(idx.value())],
            "speed_p90");
  EXPECT_EQ(idx.value(),
            TrajectoryFeatureExtractor::IndexOf(1, Statistic::kP90));
  EXPECT_FALSE(
      TrajectoryFeatureExtractor::FeatureIndex("warp_factor").ok());
}

TEST(TrajectoryFeaturesTest, StatisticNames) {
  EXPECT_EQ(StatisticToString(Statistic::kMin), "min");
  EXPECT_EQ(StatisticToString(Statistic::kStdDev), "std");
  EXPECT_EQ(StatisticToString(Statistic::kP90), "p90");
}

TEST(TrajectoryFeaturesTest, ConstantSpeedSegmentValues) {
  Segment segment;
  segment.mode = Mode::kWalk;
  segment.points = StraightRun(30, 2.0, 3.0);
  const TrajectoryFeatureExtractor extractor;
  const auto features = extractor.Extract(segment);
  ASSERT_TRUE(features.ok());
  ASSERT_EQ(features->size(), 70u);

  const auto at = [&](std::string_view name) {
    return (*features)[static_cast<size_t>(
        TrajectoryFeatureExtractor::FeatureIndex(name).value())];
  };
  EXPECT_NEAR(at("speed_min"), 1.5, 1e-6);
  EXPECT_NEAR(at("speed_max"), 1.5, 1e-6);
  EXPECT_NEAR(at("speed_mean"), 1.5, 1e-6);
  EXPECT_NEAR(at("speed_median"), 1.5, 1e-6);
  EXPECT_NEAR(at("speed_std"), 0.0, 1e-6);
  EXPECT_NEAR(at("speed_p90"), 1.5, 1e-6);
  EXPECT_NEAR(at("acceleration_mean"), 0.0, 1e-6);
  EXPECT_NEAR(at("bearing_mean"), 0.0, 1e-6);
  EXPECT_NEAR(at("distance_mean"), 3.0, 1e-6);
}

TEST(TrajectoryFeaturesTest, MedianEqualsP50Feature) {
  Segment segment;
  segment.mode = Mode::kBike;
  Rng rng(5);
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 40; ++i) {
    segment.points.push_back({pos, i * 2.0, Mode::kBike});
    pos = geo::Destination(pos, rng.Uniform(0.0, 360.0),
                           rng.Uniform(1.0, 12.0));
  }
  const TrajectoryFeatureExtractor extractor;
  const auto features = extractor.Extract(segment);
  ASSERT_TRUE(features.ok());
  for (int channel = 0; channel < kNumFeatureChannels; ++channel) {
    const double median = (*features)[static_cast<size_t>(
        TrajectoryFeatureExtractor::IndexOf(channel, Statistic::kMedian))];
    const double p50 = (*features)[static_cast<size_t>(
        TrajectoryFeatureExtractor::IndexOf(channel, Statistic::kP50))];
    EXPECT_DOUBLE_EQ(median, p50);
  }
}

TEST(TrajectoryFeaturesTest, RejectsTooShortSegment) {
  Segment segment;
  segment.points = StraightRun(1, 2.0, 3.0);
  const TrajectoryFeatureExtractor extractor;
  EXPECT_FALSE(extractor.Extract(segment).ok());
}

TEST(TrajectoryFeaturesTest, PercentilesOrderedWithinChannel) {
  Segment segment;
  segment.mode = Mode::kBus;
  Rng rng(6);
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 60; ++i) {
    segment.points.push_back({pos, i * 2.0, Mode::kBus});
    pos = geo::Destination(pos, 10.0, rng.Uniform(0.0, 40.0));
  }
  const TrajectoryFeatureExtractor extractor;
  const auto features = extractor.Extract(segment);
  ASSERT_TRUE(features.ok());
  for (int channel = 0; channel < kNumFeatureChannels; ++channel) {
    const auto value = [&](Statistic s) {
      return (*features)[static_cast<size_t>(
          TrajectoryFeatureExtractor::IndexOf(channel, s))];
    };
    EXPECT_LE(value(Statistic::kMin), value(Statistic::kP10));
    EXPECT_LE(value(Statistic::kP10), value(Statistic::kP25));
    EXPECT_LE(value(Statistic::kP25), value(Statistic::kP50));
    EXPECT_LE(value(Statistic::kP50), value(Statistic::kP75));
    EXPECT_LE(value(Statistic::kP75), value(Statistic::kP90));
    EXPECT_LE(value(Statistic::kP90), value(Statistic::kMax));
  }
}

// ----------------------------------------------------------------- Noise --

TEST(NoiseTest, RemovesSpeedOutlier) {
  Segment segment;
  segment.mode = Mode::kWalk;
  segment.points = StraightRun(20, 2.0, 3.0);
  // Teleport one fix 5 km east.
  segment.points[10].pos =
      geo::Destination(segment.points[10].pos, 90.0, 5000.0);
  NoiseRemovalOptions options;
  options.median_window = 1;  // Isolate the outlier pass.
  const NoiseRemovalStats stats = RemoveNoise(segment, options);
  EXPECT_EQ(stats.outliers_removed, 1u);
  EXPECT_EQ(segment.points.size(), 19u);
}

TEST(NoiseTest, AirplaneExemptFromSpeedFilter) {
  Segment segment;
  segment.mode = Mode::kAirplane;
  segment.points = StraightRun(20, 2.0, 400.0, Mode::kAirplane);  // 200 m/s.
  NoiseRemovalOptions options;
  options.median_window = 1;
  const NoiseRemovalStats stats = RemoveNoise(segment, options);
  EXPECT_EQ(stats.outliers_removed, 0u);
  EXPECT_EQ(segment.points.size(), 20u);
}

TEST(NoiseTest, MedianFilterSmoothsSpike) {
  Segment segment;
  segment.mode = Mode::kWalk;
  segment.points = StraightRun(20, 2.0, 3.0);
  const geo::LatLon original = segment.points[10].pos;
  // Small lateral spike (not large enough for the speed filter).
  segment.points[10].pos = geo::Destination(original, 90.0, 30.0);
  NoiseRemovalOptions options;
  options.max_speed_mps = 1e9;  // Isolate the median pass.
  options.median_window = 3;
  RemoveNoise(segment, options);
  // The spike collapses back towards the line.
  EXPECT_LT(geo::HaversineMeters(segment.points[10].pos, original), 5.0);
}

TEST(NoiseTest, RejectsPassRemovingTooMuch) {
  Segment segment;
  segment.mode = Mode::kWalk;
  // Alternating teleports: the filter would drop > half the points.
  geo::LatLon a{39.9, 116.4};
  geo::LatLon far = geo::Destination(a, 90.0, 10000.0);
  for (int i = 0; i < 20; ++i) {
    segment.points.push_back({i % 2 == 0 ? a : far, i * 2.0, Mode::kWalk});
  }
  NoiseRemovalOptions options;
  options.median_window = 1;
  options.max_outlier_fraction = 0.2;
  const NoiseRemovalStats stats = RemoveNoise(segment, options);
  EXPECT_EQ(stats.outliers_removed, 0u);  // Pass rejected.
  EXPECT_EQ(segment.points.size(), 20u);
}

TEST(NoiseTest, CorpusDropsSegmentsBelowMinPoints) {
  Segment good;
  good.mode = Mode::kWalk;
  good.points = StraightRun(20, 2.0, 3.0);
  Segment borderline;
  borderline.mode = Mode::kWalk;
  borderline.points = StraightRun(11, 2.0, 3.0);
  // Two outliers knock it below 10 points.
  borderline.points[4].pos =
      geo::Destination(borderline.points[4].pos, 90.0, 5000.0);
  borderline.points[7].pos =
      geo::Destination(borderline.points[7].pos, 90.0, 5000.0);
  std::vector<Segment> segments = {good, borderline};
  NoiseRemovalOptions options;
  options.median_window = 1;
  RemoveNoiseFromCorpus(segments, options, 10);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].points.size(), 20u);
}

TEST(NoiseTest, TinySegmentsReturnedUnchanged) {
  Segment segment;
  segment.mode = Mode::kWalk;
  segment.points = StraightRun(2, 2.0, 3.0);
  const NoiseRemovalStats stats = RemoveNoise(segment);
  EXPECT_EQ(stats.points_in, 2u);
  EXPECT_EQ(stats.points_out, 2u);
}

}  // namespace
}  // namespace trajkit::traj
