// Unit and property tests for src/stats descriptive statistics.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "stats/descriptive.h"

namespace trajkit::stats {
namespace {

TEST(DescriptiveTest, MinMaxMean) {
  const std::vector<double> v = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
  EXPECT_DOUBLE_EQ(Mean(v), 2.75);
}

TEST(DescriptiveTest, SingleElement) {
  const std::vector<double> v = {5.0};
  EXPECT_DOUBLE_EQ(Min(v), 5.0);
  EXPECT_DOUBLE_EQ(Max(v), 5.0);
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 0.0);
  EXPECT_DOUBLE_EQ(Median(v), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 90.0), 5.0);
}

TEST(DescriptiveTest, VarianceAndStdDevPopulation) {
  // numpy: np.var([1,2,3,4]) = 1.25, np.std = 1.1180...
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_NEAR(StdDev(v), 1.118033988749895, 1e-12);
}

TEST(DescriptiveTest, SampleStdDev) {
  // np.std([1,2,3,4], ddof=1) = 1.2909944...
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(SampleStdDev(v), 1.2909944487358056, 1e-12);
}

TEST(DescriptiveTest, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(DescriptiveTest, PercentileMatchesNumpyLinearInterpolation) {
  // np.percentile([1,2,3,4], [10,25,50,75,90])
  //   = [1.3, 1.75, 2.5, 3.25, 3.7]
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(Percentile(v, 10.0), 1.3, 1e-12);
  EXPECT_NEAR(Percentile(v, 25.0), 1.75, 1e-12);
  EXPECT_NEAR(Percentile(v, 50.0), 2.5, 1e-12);
  EXPECT_NEAR(Percentile(v, 75.0), 3.25, 1e-12);
  EXPECT_NEAR(Percentile(v, 90.0), 3.7, 1e-12);
}

TEST(DescriptiveTest, PercentileEdges) {
  const std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 9.0);
}

TEST(DescriptiveTest, PercentileUnsortedInput) {
  const std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 5.0);
}

TEST(DescriptiveTest, PercentilesBatchMatchesSingle) {
  const std::vector<double> v = {2.0, 8.0, 4.0, 6.0, 0.0};
  const std::vector<double> ps = {10.0, 50.0, 90.0};
  const std::vector<double> batch = Percentiles(v, ps);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], Percentile(v, ps[i]));
  }
}

TEST(RunningStatsTest, MatchesBatchOnKnownData) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  RunningStats rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.PopulationVariance(), 2.0);
}

TEST(RunningStatsTest, MergeEqualsSinglePass) {
  Rng rng(77);
  std::vector<double> all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    all.push_back(x);
    (i < 200 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.size());
  EXPECT_NEAR(left.mean(), Mean(all), 1e-9);
  EXPECT_NEAR(left.PopulationVariance(), Variance(all), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), Min(all));
  EXPECT_DOUBLE_EQ(left.max(), Max(all));
}

TEST(RunningStatsTest, MergeWithEmptySide) {
  RunningStats a;
  RunningStats b;
  b.Add(2.0);
  b.Add(4.0);
  a.Merge(b);  // Empty ← non-empty.
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats c;
  a.Merge(c);  // Non-empty ← empty.
  EXPECT_EQ(a.count(), 2u);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // Bin 0.
  h.Add(9.5);   // Bin 4.
  h.Add(-3.0);  // Clamped to bin 0.
  h.Add(50.0);  // Clamped to bin 4.
  h.Add(10.0);  // Exactly hi → last bin.
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 3u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_DOUBLE_EQ(h.BinLowerEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLowerEdge(4), 8.0);
}

// Property suite: streaming equals batch on random data.
class StatsPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertyTest, RunningMatchesBatch) {
  Rng rng(GetParam());
  std::vector<double> v;
  const int n = 1 + static_cast<int>(rng.NextBounded(500));
  RunningStats rs;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(-100.0, 100.0);
    v.push_back(x);
    rs.Add(x);
  }
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-9);
  EXPECT_NEAR(rs.PopulationVariance(), Variance(v), 1e-7);
  EXPECT_DOUBLE_EQ(rs.min(), Min(v));
  EXPECT_DOUBLE_EQ(rs.max(), Max(v));
}

TEST_P(StatsPropertyTest, PercentileIsMonotoneInP) {
  Rng rng(GetParam() + 99);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.Gaussian(0.0, 5.0));
  double prev = Percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = Percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_P(StatsPropertyTest, PercentileBracketedByMinMax) {
  Rng rng(GetParam() + 199);
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) v.push_back(rng.Uniform(-10.0, 10.0));
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0}) {
    const double value = Percentile(v, p);
    EXPECT_GE(value, Min(v));
    EXPECT_LE(value, Max(v));
  }
}

TEST_P(StatsPropertyTest, MedianEqualsP50) {
  Rng rng(GetParam() + 299);
  std::vector<double> v;
  for (int i = 0; i < 31; ++i) v.push_back(rng.Gaussian(1.0, 3.0));
  EXPECT_DOUBLE_EQ(Median(v), Percentile(v, 50.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         testing::Values(10u, 20u, 30u, 40u, 50u));

}  // namespace
}  // namespace trajkit::stats
