// Cross-cutting property suite: invariants that must hold across seeds,
// classifier families, and pipeline configurations. These are the
// behavioural contracts the experiment harnesses rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/experiments.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/decision_tree.h"
#include "ml/factory.h"
#include "ml/metrics.h"
#include "ml/normalize.h"
#include "synthgeo/generator.h"

namespace trajkit {
namespace {

ml::Dataset RandomProblem(uint64_t seed, int n = 150, int features = 5,
                          int classes = 3) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<int> groups;
  for (int i = 0; i < n; ++i) {
    const int y = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(classes)));
    std::vector<double> row(static_cast<size_t>(features));
    for (auto& v : row) v = rng.Gaussian(0.0, 1.0);
    row[0] += 1.8 * y;
    rows.push_back(std::move(row));
    labels.push_back(y);
    groups.push_back(i % 7);
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(ml::Dataset::Create(ml::Matrix::FromRows(rows),
                                       std::move(labels), std::move(groups),
                                       {}, std::move(class_names)))
      .value();
}

// ---- Per-family properties, swept over (family × seed) -----------------

class FamilyPropertyTest
    : public testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(FamilyPropertyTest, PredictionsInRangeAndDeterministic) {
  const auto [family, seed] = GetParam();
  const ml::Dataset ds = RandomProblem(seed);
  auto m1 = ml::MakeClassifier(family, {.seed = seed, .scale = 0.2});
  auto m2 = ml::MakeClassifier(family, {.seed = seed, .scale = 0.2});
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m1.value()->Fit(ds).ok());
  ASSERT_TRUE(m2.value()->Fit(ds).ok());
  const auto p1 = m1.value()->Predict(ds.features());
  const auto p2 = m2.value()->Predict(ds.features());
  EXPECT_EQ(p1, p2);
  for (int label : p1) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, ds.num_classes());
  }
}

TEST_P(FamilyPropertyTest, BeatsChanceOnSeparableData) {
  const auto [family, seed] = GetParam();
  const ml::Dataset ds = RandomProblem(seed + 50);
  auto model = ml::MakeClassifier(family, {.seed = 1, .scale = 0.25});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model.value()->Fit(ds).ok());
  const double accuracy =
      ml::Accuracy(ds.labels(), model.value()->Predict(ds.features()));
  EXPECT_GT(accuracy, 1.2 / static_cast<double>(ds.num_classes()))
      << family;
}

TEST_P(FamilyPropertyTest, ProbaIsValidDistributionWhenAvailable) {
  const auto [family, seed] = GetParam();
  const ml::Dataset ds = RandomProblem(seed + 100);
  auto model = ml::MakeClassifier(family, {.seed = 2, .scale = 0.2});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model.value()->Fit(ds).ok());
  const auto proba = model.value()->PredictProba(ds.features());
  if (!proba.ok()) return;  // SVM has no probability output.
  for (size_t r = 0; r < proba->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < proba->cols(); ++c) {
      EXPECT_GE(proba->At(r, c), -1e-12);
      EXPECT_LE(proba->At(r, c), 1.0 + 1e-12);
      sum += proba->At(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, FamilyPropertyTest,
    testing::Combine(testing::Values("decision_tree", "random_forest",
                                     "xgboost", "adaboost", "svm",
                                     "neural_network", "knn",
                                     "logistic_regression"),
                     testing::Values(11u, 22u)));

// ---- Tree scale invariance ---------------------------------------------

class TreeInvarianceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TreeInvarianceTest, PredictionsInvariantToPositiveAffineScaling) {
  // CART splits on order statistics; scaling any feature by a positive
  // affine map must not change predictions (when the transform is applied
  // to train and test alike).
  const ml::Dataset ds = RandomProblem(GetParam(), 120, 4);
  ml::DecisionTree original;
  ASSERT_TRUE(original.Fit(ds).ok());
  const auto baseline = original.Predict(ds.features());

  ml::Matrix scaled = ds.features();
  Rng rng(GetParam() + 7);
  std::vector<double> a(ds.num_features());
  std::vector<double> b(ds.num_features());
  for (size_t c = 0; c < ds.num_features(); ++c) {
    a[c] = rng.Uniform(0.1, 10.0);
    b[c] = rng.Uniform(-5.0, 5.0);
    for (size_t r = 0; r < scaled.rows(); ++r) {
      scaled(r, c) = a[c] * scaled(r, c) + b[c];
    }
  }
  auto scaled_ds = ml::Dataset::Create(
      scaled, ds.labels(), ds.groups(), ds.feature_names(),
      ds.class_names());
  ASSERT_TRUE(scaled_ds.ok());
  ml::DecisionTree transformed;
  ASSERT_TRUE(transformed.Fit(scaled_ds.value()).ok());
  EXPECT_EQ(transformed.Predict(scaled_ds->features()), baseline);
}

TEST_P(TreeInvarianceTest, MinMaxScalingDoesNotChangeTreePredictions) {
  const ml::Dataset ds = RandomProblem(GetParam() + 30, 100, 4);
  ml::DecisionTree raw_tree;
  ASSERT_TRUE(raw_tree.Fit(ds).ok());
  const auto baseline = raw_tree.Predict(ds.features());

  ml::Dataset scaled = ds;
  ml::MinMaxScaler scaler;
  scaler.FitTransform(scaled.mutable_features());
  ml::DecisionTree scaled_tree;
  ASSERT_TRUE(scaled_tree.Fit(scaled).ok());
  EXPECT_EQ(scaled_tree.Predict(scaled.features()), baseline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeInvarianceTest,
                         testing::Values(1u, 2u, 3u, 4u));

// ---- Pipeline invariants -------------------------------------------------

class PipelinePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePropertyTest, EmittedFeaturesAreFiniteAndAligned) {
  synthgeo::GeneratorOptions options;
  options.num_users = 5;
  options.days_per_user = 1;
  options.seed = GetParam();
  const auto built = core::BuildSyntheticDataset(
      options, core::PipelineOptions{}, core::LabelSet::AllModes());
  ASSERT_TRUE(built.ok());
  const ml::Dataset& ds = built->dataset;
  EXPECT_EQ(ds.num_features(), 70u);
  EXPECT_EQ(ds.labels().size(), ds.num_samples());
  EXPECT_EQ(ds.groups().size(), ds.num_samples());
  EXPECT_EQ(ds.times().size(), ds.num_samples());
  for (size_t r = 0; r < ds.num_samples(); ++r) {
    for (size_t c = 0; c < ds.num_features(); ++c) {
      EXPECT_TRUE(std::isfinite(ds.features()(r, c)))
          << "non-finite feature " << ds.feature_names()[c] << " at row "
          << r;
    }
  }
  // Times are within the generated corpus window.
  for (double t : ds.times()) {
    EXPECT_GE(t, options.base_time);
    EXPECT_LE(t, options.base_time + 86400.0 * options.days_per_user);
  }
}

TEST_P(PipelinePropertyTest, DatasetBuildIsDeterministic) {
  synthgeo::GeneratorOptions options;
  options.num_users = 4;
  options.days_per_user = 1;
  options.seed = GetParam() + 500;
  const auto a = core::BuildSyntheticDataset(options, core::PipelineOptions{},
                                             core::LabelSet::Dabiri());
  const auto b = core::BuildSyntheticDataset(options, core::PipelineOptions{},
                                             core::LabelSet::Dabiri());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->dataset.num_samples(), b->dataset.num_samples());
  EXPECT_EQ(a->dataset.labels(), b->dataset.labels());
  for (size_t r = 0; r < a->dataset.num_samples(); ++r) {
    for (size_t c = 0; c < a->dataset.num_features(); ++c) {
      EXPECT_DOUBLE_EQ(a->dataset.features()(r, c),
                       b->dataset.features()(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         testing::Values(100u, 200u, 300u));

// ---- Cross-validation laws ----------------------------------------------

class CrossValLawTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CrossValLawTest, PooledPredictionsCoverDatasetOnce) {
  const ml::Dataset ds = RandomProblem(GetParam() + 900, 90);
  const auto folds =
      core::MakeFolds(core::CvScheme::kStratified, ds, 3, GetParam());
  ml::DecisionTreeParams params;
  params.max_depth = 4;
  const ml::DecisionTree tree(params);
  const auto cv = ml::CrossValidate(tree, ds, folds);
  ASSERT_TRUE(cv.ok());
  EXPECT_EQ(cv->pooled_true.size(), ds.num_samples());
  // Pooled true labels are a permutation of the dataset labels.
  std::vector<int> sorted_pooled = cv->pooled_true;
  std::vector<int> sorted_labels = ds.labels();
  std::sort(sorted_pooled.begin(), sorted_pooled.end());
  std::sort(sorted_labels.begin(), sorted_labels.end());
  EXPECT_EQ(sorted_pooled, sorted_labels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValLawTest,
                         testing::Values(41u, 42u, 43u));

}  // namespace
}  // namespace trajkit
