// Tests for the traj/core extensions: Zheng-style extended features,
// fixed-window segmentation, and the pipeline options that enable them.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "geo/geodesy.h"
#include "synthgeo/generator.h"
#include "traj/extended_features.h"
#include "traj/segmentation.h"

namespace trajkit::traj {
namespace {

std::vector<TrajectoryPoint> StraightRun(int n, double dt, double step_m,
                                         Mode mode = Mode::kWalk,
                                         double t0 = 1000.0,
                                         double bearing = 0.0) {
  std::vector<TrajectoryPoint> points;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < n; ++i) {
    points.push_back({pos, t0 + i * dt, mode});
    pos = geo::Destination(pos, bearing, step_m);
  }
  return points;
}

double ExtendedValue(const std::vector<double>& features,
                     std::string_view name) {
  const auto& names = ExtendedFeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return features[i];
  }
  ADD_FAILURE() << "unknown extended feature " << name;
  return 0.0;
}

// ---------------------------------------------------- Extended features --

TEST(ExtendedFeaturesTest, EightDistinctNames) {
  const auto& names = ExtendedFeatureNames();
  ASSERT_EQ(names.size(), static_cast<size_t>(kNumExtendedFeatures));
  std::set<std::string> distinct(names.begin(), names.end());
  EXPECT_EQ(distinct.size(), names.size());
}

TEST(ExtendedFeaturesTest, StraightConstantRun) {
  Segment segment;
  segment.mode = Mode::kWalk;
  segment.points = StraightRun(40, 2.0, 3.0);
  const ExtendedFeatureExtractor extractor;
  const auto features = extractor.Extract(segment);
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ(ExtendedValue(*features, "heading_change_rate"), 0.0);
  EXPECT_DOUBLE_EQ(ExtendedValue(*features, "stop_rate"), 0.0);
  EXPECT_DOUBLE_EQ(ExtendedValue(*features, "velocity_change_rate"), 0.0);
  EXPECT_NEAR(ExtendedValue(*features, "trip_length_m"), 39 * 3.0, 0.1);
  EXPECT_NEAR(ExtendedValue(*features, "trip_duration_s"), 39 * 2.0, 1e-9);
  EXPECT_NEAR(ExtendedValue(*features, "moving_speed_mean"), 1.5, 1e-6);
  EXPECT_DOUBLE_EQ(ExtendedValue(*features, "stop_fraction"), 0.0);
  EXPECT_NEAR(ExtendedValue(*features, "straightness"), 1.0, 1e-6);
}

TEST(ExtendedFeaturesTest, ZigzagRaisesHeadingChangeRate) {
  // Alternate bearings 0 and 90 every point.
  Segment segment;
  segment.mode = Mode::kBike;
  geo::LatLon pos{39.9, 116.4};
  for (int i = 0; i < 40; ++i) {
    segment.points.push_back({pos, i * 2.0, Mode::kBike});
    pos = geo::Destination(pos, (i % 2 == 0) ? 0.0 : 90.0, 5.0);
  }
  const ExtendedFeatureExtractor extractor;
  const auto features = extractor.Extract(segment);
  ASSERT_TRUE(features.ok());
  EXPECT_GT(ExtendedValue(*features, "heading_change_rate"), 50.0);
  EXPECT_LT(ExtendedValue(*features, "straightness"), 0.9);
}

TEST(ExtendedFeaturesTest, StopsRaiseStopRateAndFraction) {
  // Moving run with a stationary stretch in the middle.
  Segment segment;
  segment.mode = Mode::kBus;
  geo::LatLon pos{39.9, 116.4};
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    segment.points.push_back({pos, t, Mode::kBus});
    pos = geo::Destination(pos, 0.0, 20.0);
    t += 2.0;
  }
  for (int i = 0; i < 10; ++i) {  // Stopped.
    segment.points.push_back({pos, t, Mode::kBus});
    t += 2.0;
  }
  const ExtendedFeatureExtractor extractor;
  const auto features = extractor.Extract(segment);
  ASSERT_TRUE(features.ok());
  EXPECT_GT(ExtendedValue(*features, "stop_rate"), 0.0);
  EXPECT_NEAR(ExtendedValue(*features, "stop_fraction"), 10.0 / 29.0,
              0.05);
  // Moving mean ignores the stop: ~10 m/s.
  EXPECT_NEAR(ExtendedValue(*features, "moving_speed_mean"), 10.0, 0.5);
}

TEST(ExtendedFeaturesTest, RejectsTinySegments) {
  Segment segment;
  segment.points = StraightRun(1, 2.0, 3.0);
  const ExtendedFeatureExtractor extractor;
  EXPECT_FALSE(extractor.Extract(segment).ok());
}

// ------------------------------------------------- Window segmentation --

TEST(WindowSegmentationTest, CutsFixedWindows) {
  Trajectory trajectory;
  trajectory.user_id = 4;
  trajectory.points = StraightRun(300, 2.0, 3.0);  // 600 s total.
  WindowSegmentationOptions options;
  options.window_seconds = 120.0;
  const auto segments = SegmentTrajectoryByWindows(trajectory, options);
  ASSERT_EQ(segments.size(), 5u);
  for (const Segment& s : segments) {
    EXPECT_EQ(s.user_id, 4);
    EXPECT_EQ(s.mode, Mode::kWalk);
    EXPECT_LE(s.points.back().timestamp - s.points.front().timestamp,
              120.0 + 1e-9);
  }
}

TEST(WindowSegmentationTest, MajorityLabelWins) {
  Trajectory trajectory;
  auto walk = StraightRun(50, 2.0, 3.0, Mode::kWalk, 0.0);
  auto bus = StraightRun(10, 2.0, 15.0, Mode::kBus, 100.0);
  trajectory.points = walk;
  trajectory.points.insert(trajectory.points.end(), bus.begin(), bus.end());
  WindowSegmentationOptions options;
  options.window_seconds = 200.0;
  options.max_minority_fraction = 0.3;
  const auto segments = SegmentTrajectoryByWindows(trajectory, options);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].mode, Mode::kWalk);  // 50 walk vs 10 bus.
}

TEST(WindowSegmentationTest, MixedWindowsDropped) {
  Trajectory trajectory;
  auto walk = StraightRun(30, 2.0, 3.0, Mode::kWalk, 0.0);
  auto bus = StraightRun(30, 2.0, 15.0, Mode::kBus, 60.0);
  trajectory.points = walk;
  trajectory.points.insert(trajectory.points.end(), bus.begin(), bus.end());
  WindowSegmentationOptions options;
  options.window_seconds = 500.0;  // Everything in one window.
  options.max_minority_fraction = 0.2;  // 50/50 split exceeds it.
  EXPECT_TRUE(SegmentTrajectoryByWindows(trajectory, options).empty());
}

TEST(WindowSegmentationTest, MinPointsRespected) {
  Trajectory trajectory;
  trajectory.points = StraightRun(30, 10.0, 3.0);  // Sparse: 3 pts/30 s.
  WindowSegmentationOptions options;
  options.window_seconds = 60.0;
  options.min_points = 10;  // 60 s window holds only 6 points.
  EXPECT_TRUE(SegmentTrajectoryByWindows(trajectory, options).empty());
  options.min_points = 5;
  EXPECT_FALSE(SegmentTrajectoryByWindows(trajectory, options).empty());
}

TEST(WindowSegmentationTest, UnlabeledWindowsDroppedByDefault) {
  Trajectory trajectory;
  trajectory.points = StraightRun(100, 2.0, 3.0, Mode::kUnknown);
  WindowSegmentationOptions options;
  EXPECT_TRUE(SegmentTrajectoryByWindows(trajectory, options).empty());
  options.drop_unlabeled = false;
  EXPECT_FALSE(SegmentTrajectoryByWindows(trajectory, options).empty());
}

TEST(WindowSegmentationTest, CorpusAggregation) {
  Trajectory a;
  a.user_id = 1;
  a.points = StraightRun(100, 2.0, 3.0);
  Trajectory b;
  b.user_id = 2;
  b.points = StraightRun(100, 2.0, 3.0);
  WindowSegmentationOptions options;
  options.window_seconds = 100.0;
  const auto segments = SegmentCorpusByWindows({a, b}, options);
  EXPECT_EQ(segments.size(), 4u);
}

}  // namespace
}  // namespace trajkit::traj

namespace trajkit::core {
namespace {

std::vector<traj::Trajectory> SmallCorpus(uint64_t seed = 21) {
  synthgeo::GeneratorOptions options;
  options.num_users = 6;
  options.days_per_user = 2;
  options.seed = seed;
  synthgeo::GeoLifeLikeGenerator generator(options);
  return generator.Generate();
}

TEST(PipelineExtensionsTest, ExtendedFeaturesAppendEightColumns) {
  PipelineOptions options;
  options.include_extended_features = true;
  const Pipeline pipeline(options);
  const auto dataset =
      pipeline.BuildDataset(SmallCorpus(), LabelSet::Dabiri());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_features(), 78u);
  EXPECT_EQ(dataset->feature_names().back(), "straightness");
  EXPECT_EQ(dataset->feature_names()[69], "bearing_rate_rate_p90");
}

TEST(PipelineExtensionsTest, WindowStrategyProducesMoreSegments) {
  const auto corpus = SmallCorpus(23);
  PipelineOptions day_mode;
  PipelineOptions windows;
  windows.strategy = SegmentationStrategy::kFixedWindows;
  windows.windows.window_seconds = 120.0;
  const Pipeline day_pipeline(day_mode);
  const Pipeline window_pipeline(windows);
  const auto day_ds = day_pipeline.BuildDataset(corpus, LabelSet::Dabiri());
  const auto win_ds =
      window_pipeline.BuildDataset(corpus, LabelSet::Dabiri());
  ASSERT_TRUE(day_ds.ok());
  ASSERT_TRUE(win_ds.ok());
  EXPECT_GT(win_ds->num_samples(), day_ds->num_samples());
  EXPECT_EQ(win_ds->num_features(), 70u);
}

TEST(PipelineExtensionsTest, FeatureNamesMatchEmittedColumns) {
  PipelineOptions options;
  options.include_extended_features = true;
  const Pipeline pipeline(options);
  EXPECT_EQ(pipeline.FeatureNames().size(), 78u);
  const auto dataset =
      pipeline.BuildDataset(SmallCorpus(27), LabelSet::Dabiri());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->feature_names(), pipeline.FeatureNames());
}

}  // namespace
}  // namespace trajkit::core
