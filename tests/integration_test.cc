// End-to-end integration tests: synthetic corpus → pipeline → classifiers.
// These pin the qualitative claims the experiment harnesses reproduce.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiments.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/factory.h"
#include "ml/random_forest.h"
#include "ml/stats_tests.h"
#include "traj/trajectory_features.h"

namespace trajkit {
namespace {

// Shared medium corpus (built once; fitting classifiers is the slow part).
const core::SyntheticDatasetResult& SharedDabiri() {
  static const core::SyntheticDatasetResult* const kResult = [] {
    synthgeo::GeneratorOptions generator_options;
    generator_options.num_users = 28;
    generator_options.days_per_user = 4;
    generator_options.seed = 1234;
    auto result = core::BuildSyntheticDataset(
        generator_options, core::PipelineOptions{},
        core::LabelSet::Dabiri());
    return new core::SyntheticDatasetResult(std::move(result).value());
  }();
  return *kResult;
}

TEST(IntegrationTest, RandomForestAccuracyInPaperNeighborhood) {
  // Fig. 2 reports µ = 90.4% on the real corpus; on the (smaller) shared
  // test corpus we require the random-CV accuracy to land in the same
  // neighborhood rather than at the exact value.
  const auto& data = SharedDabiri();
  auto rf = ml::MakeClassifier("random_forest", {.seed = 1, .scale = 0.5});
  ASSERT_TRUE(rf.ok());
  const auto folds =
      core::MakeFolds(core::CvScheme::kRandom, data.dataset, 5, 7);
  const auto cv = ml::CrossValidate(*rf.value(), data.dataset, folds);
  ASSERT_TRUE(cv.ok());
  EXPECT_GT(cv->MeanAccuracy(), 0.76);
  EXPECT_LT(cv->MeanAccuracy(), 1.0);
}

TEST(IntegrationTest, AllSixFamiliesBeatChance) {
  const auto& data = SharedDabiri();
  // Majority-class baseline.
  const auto counts = data.dataset.ClassCounts();
  const double chance =
      static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
      static_cast<double>(data.dataset.num_samples());
  const auto folds =
      core::MakeFolds(core::CvScheme::kRandom, data.dataset, 3, 11);
  for (const std::string& name : ml::AllClassifierNames()) {
    auto model = ml::MakeClassifier(name, {.seed = 2, .scale = 0.25});
    ASSERT_TRUE(model.ok()) << name;
    const auto cv = ml::CrossValidate(*model.value(), data.dataset, folds);
    ASSERT_TRUE(cv.ok()) << name;
    EXPECT_GT(cv->MeanAccuracy(), chance + 0.05) << name;
  }
}

TEST(IntegrationTest, RandomCvOptimisticVersusUserCv) {
  // The paper's §4.4 headline: random CV overestimates. On a corpus with
  // per-user idiosyncrasies the gap shows up for the random forest.
  const auto& data = SharedDabiri();
  auto rf = ml::MakeClassifier("random_forest", {.seed = 3, .scale = 0.4});
  ASSERT_TRUE(rf.ok());
  const auto random_folds =
      core::MakeFolds(core::CvScheme::kRandom, data.dataset, 5, 21);
  const auto user_folds =
      core::MakeFolds(core::CvScheme::kUserOriented, data.dataset, 5, 21);
  const auto random_cv =
      ml::CrossValidate(*rf.value(), data.dataset, random_folds);
  const auto user_cv =
      ml::CrossValidate(*rf.value(), data.dataset, user_folds);
  ASSERT_TRUE(random_cv.ok());
  ASSERT_TRUE(user_cv.ok());
  EXPECT_GT(random_cv->MeanAccuracy(), user_cv->MeanAccuracy());
}

TEST(IntegrationTest, SpeedPercentilesRankHighInForestImportance) {
  // §5: F^speed_p90 is the most essential feature under both rankings.
  // On the synthetic corpus we require a speed percentile/statistic in the
  // top 5 and speed_p90 specifically in the top 15.
  const auto& data = SharedDabiri();
  ml::RandomForestParams params;
  params.n_estimators = 30;
  params.seed = 4;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(data.dataset).ok());
  const std::vector<int> ranking = forest.ImportanceRanking();
  const auto& names = traj::TrajectoryFeatureExtractor::FeatureNames();

  bool speed_in_top5 = false;
  for (int i = 0; i < 5; ++i) {
    if (names[static_cast<size_t>(ranking[static_cast<size_t>(i)])]
            .find("speed_") == 0) {
      speed_in_top5 = true;
    }
  }
  EXPECT_TRUE(speed_in_top5);

  const int p90_index = static_cast<int>(
      traj::TrajectoryFeatureExtractor::FeatureIndex("speed_p90").value());
  const auto pos = std::find(ranking.begin(), ranking.end(), p90_index);
  ASSERT_NE(pos, ranking.end());
  EXPECT_LT(pos - ranking.begin(), 15);
}

TEST(IntegrationTest, TopFeaturesSubsetRetainsAccuracy) {
  // Selecting the top-20 features by forest importance should not cost
  // much accuracy versus all 70 (the Fig. 3 plateau).
  const auto& data = SharedDabiri();
  ml::RandomForestParams params;
  params.n_estimators = 20;
  params.seed = 5;
  ml::RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(data.dataset).ok());
  std::vector<int> ranking = forest.ImportanceRanking();
  ranking.resize(20);

  const ml::Dataset top20 = data.dataset.SelectFeatures(ranking);
  auto rf = ml::MakeClassifier("random_forest", {.seed = 6, .scale = 0.4});
  ASSERT_TRUE(rf.ok());
  const auto folds =
      core::MakeFolds(core::CvScheme::kRandom, data.dataset, 3, 31);
  const auto cv_all = ml::CrossValidate(*rf.value(), data.dataset, folds);
  const auto cv_top = ml::CrossValidate(*rf.value(), top20, folds);
  ASSERT_TRUE(cv_all.ok());
  ASSERT_TRUE(cv_top.ok());
  EXPECT_GT(cv_top->MeanAccuracy(), cv_all->MeanAccuracy() - 0.05);
}

TEST(IntegrationTest, WilcoxonOnFoldAccuracies) {
  // The paper's significance machinery runs end-to-end: compare RF vs SVM
  // fold accuracies with the paired Wilcoxon test.
  const auto& data = SharedDabiri();
  const auto folds =
      core::MakeFolds(core::CvScheme::kRandom, data.dataset, 5, 41);
  auto rf = ml::MakeClassifier("random_forest", {.seed = 7, .scale = 0.3});
  auto svm = ml::MakeClassifier("svm", {.seed = 7, .scale = 0.3});
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(svm.ok());
  const auto rf_cv = ml::CrossValidate(*rf.value(), data.dataset, folds);
  const auto svm_cv = ml::CrossValidate(*svm.value(), data.dataset, folds);
  ASSERT_TRUE(rf_cv.ok());
  ASSERT_TRUE(svm_cv.ok());
  const auto test = ml::WilcoxonSignedRank(rf_cv->fold_accuracy,
                                           svm_cv->fold_accuracy,
                                           ml::Alternative::kGreater);
  ASSERT_TRUE(test.ok());
  // RF should dominate the linear SVM decisively on every fold.
  EXPECT_LT(test->p_value, 0.05);
}

TEST(IntegrationTest, HoldoutWithDisjointUsersRuns) {
  // §4.3 Endo-style evaluation end-to-end.
  synthgeo::GeneratorOptions generator_options;
  generator_options.num_users = 15;
  generator_options.days_per_user = 2;
  generator_options.seed = 77;
  const auto built = core::BuildSyntheticDataset(
      generator_options, core::PipelineOptions{}, core::LabelSet::Endo());
  ASSERT_TRUE(built.ok());
  Rng rng(5);
  const ml::FoldSplit split =
      ml::GroupShuffleSplit(built->dataset.groups(), 0.2, rng);
  auto rf = ml::MakeClassifier("random_forest", {.seed = 9, .scale = 0.5});
  ASSERT_TRUE(rf.ok());
  const auto holdout = ml::EvaluateHoldout(*rf.value(), built->dataset,
                                           split);
  ASSERT_TRUE(holdout.ok());
  EXPECT_GT(holdout->accuracy, 0.4);  // 7-class, unseen users.
}

}  // namespace
}  // namespace trajkit
