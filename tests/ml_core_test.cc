// Unit tests for the ml data plumbing: Matrix, Dataset, scalers, metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/normalize.h"

namespace trajkit::ml {
namespace {

// ---------------------------------------------------------------- Matrix --

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 0.0);
  }
}

TEST(MatrixTest, FromRowsAndAccess) {
  const Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  const auto row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(MatrixTest, EmptyFromRows) {
  const Matrix m = Matrix::FromRows({});
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ColumnExtraction) {
  const Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const std::vector<double> col = m.Column(1);
  EXPECT_EQ(col, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(MatrixTest, SelectRows) {
  const Matrix m = Matrix::FromRows({{1.0}, {2.0}, {3.0}});
  const std::vector<size_t> idx = {2, 0};
  const Matrix s = m.SelectRows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 1.0);
}

TEST(MatrixTest, SelectColumns) {
  const Matrix m = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const std::vector<int> cols = {2, 0};
  const Matrix s = m.SelectColumns(cols);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.At(1, 1), 4.0);
}

// --------------------------------------------------------------- Dataset --

Dataset SmallDataset() {
  auto ds = Dataset::Create(
      Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}, {2.0, 2.0}, {3.0, 1.0}}),
      {0, 1, 1, 0}, {10, 10, 20, 20}, {"fa", "fb"}, {"neg", "pos"});
  return std::move(ds).value();
}

TEST(DatasetTest, CreateValidates) {
  EXPECT_FALSE(Dataset::Create(Matrix::FromRows({{1.0}}), {0, 1}, {},
                               {}, {"a", "b"})
                   .ok());
  EXPECT_FALSE(Dataset::Create(Matrix::FromRows({{1.0}}), {5}, {},
                               {}, {"a", "b"})
                   .ok());
  EXPECT_FALSE(Dataset::Create(Matrix::FromRows({{1.0}}), {0}, {1, 2},
                               {}, {"a"})
                   .ok());
  EXPECT_FALSE(Dataset::Create(Matrix::FromRows({{1.0}}), {0}, {},
                               {"x", "y"}, {"a"})
                   .ok());
}

TEST(DatasetTest, AccessorsAndCounts) {
  const Dataset ds = SmallDataset();
  EXPECT_EQ(ds.num_samples(), 4u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.ClassCounts(), (std::vector<size_t>{2, 2}));
  EXPECT_EQ(ds.DistinctGroups(), (std::vector<int>{10, 20}));
}

TEST(DatasetTest, DefaultGroupsAndNames) {
  auto ds = Dataset::Create(Matrix::FromRows({{1.0, 2.0}}), {0}, {}, {},
                            {"only"});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->groups(), (std::vector<int>{0}));
  EXPECT_EQ(ds->feature_names()[1], "f1");
}

TEST(DatasetTest, SelectSamplesKeepsAlignment) {
  const Dataset ds = SmallDataset();
  const std::vector<size_t> idx = {3, 1};
  const Dataset sub = ds.SelectSamples(idx);
  EXPECT_EQ(sub.num_samples(), 2u);
  EXPECT_EQ(sub.labels(), (std::vector<int>{0, 1}));
  EXPECT_EQ(sub.groups(), (std::vector<int>{20, 10}));
  EXPECT_DOUBLE_EQ(sub.features().At(0, 0), 3.0);
}

TEST(DatasetTest, SelectFeaturesKeepsNames) {
  const Dataset ds = SmallDataset();
  const std::vector<int> cols = {1};
  const Dataset sub = ds.SelectFeatures(cols);
  EXPECT_EQ(sub.num_features(), 1u);
  EXPECT_EQ(sub.feature_names(), (std::vector<std::string>{"fb"}));
  EXPECT_EQ(sub.labels(), ds.labels());
}

// --------------------------------------------------------------- Scalers --

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  Matrix m = Matrix::FromRows({{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}});
  MinMaxScaler scaler;
  scaler.FitTransform(m);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 1.0);
}

TEST(MinMaxScalerTest, ConstantColumnMapsToZero) {
  Matrix m = Matrix::FromRows({{7.0}, {7.0}});
  MinMaxScaler scaler;
  scaler.FitTransform(m);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(MinMaxScalerTest, TestDataUsesTrainRange) {
  Matrix train = Matrix::FromRows({{0.0}, {10.0}});
  Matrix test = Matrix::FromRows({{20.0}, {-10.0}});
  MinMaxScaler scaler;
  scaler.Fit(train);
  scaler.Transform(test);
  EXPECT_DOUBLE_EQ(test.At(0, 0), 2.0);   // Outside [0,1], not clamped.
  EXPECT_DOUBLE_EQ(test.At(1, 0), -1.0);
}

TEST(MinMaxScalerTest, PreservesOrderRelationship) {
  Matrix m = Matrix::FromRows({{3.0}, {1.0}, {2.0}});
  MinMaxScaler scaler;
  scaler.FitTransform(m);
  EXPECT_GT(m.At(0, 0), m.At(2, 0));
  EXPECT_GT(m.At(2, 0), m.At(1, 0));
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  Matrix m = Matrix::FromRows({{1.0}, {2.0}, {3.0}, {4.0}});
  StandardScaler scaler;
  scaler.FitTransform(m);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t r = 0; r < 4; ++r) {
    sum += m.At(r, 0);
    sum_sq += m.At(r, 0) * m.At(r, 0);
  }
  EXPECT_NEAR(sum / 4.0, 0.0, 1e-12);
  EXPECT_NEAR(sum_sq / 4.0, 1.0, 1e-12);
}

TEST(StandardScalerTest, ConstantColumnMapsToZero) {
  Matrix m = Matrix::FromRows({{5.0}, {5.0}});
  StandardScaler scaler;
  scaler.FitTransform(m);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

// --------------------------------------------------------------- Metrics --

TEST(MetricsTest, AccuracyBasic) {
  const std::vector<int> y_true = {0, 1, 2, 1};
  const std::vector<int> y_pred = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(y_true, y_pred), 0.75);
}

TEST(MetricsTest, ConfusionMatrixCounts) {
  const std::vector<int> y_true = {0, 0, 1, 1, 1};
  const std::vector<int> y_pred = {0, 1, 1, 1, 0};
  const ConfusionMatrix cm(y_true, y_pred, 2);
  EXPECT_EQ(cm.Count(0, 0), 1u);
  EXPECT_EQ(cm.Count(0, 1), 1u);
  EXPECT_EQ(cm.Count(1, 1), 2u);
  EXPECT_EQ(cm.Count(1, 0), 1u);
  EXPECT_EQ(cm.TotalSamples(), 5u);
  EXPECT_EQ(cm.TruePositives(1), 2u);
  EXPECT_EQ(cm.FalsePositives(1), 1u);
  EXPECT_EQ(cm.FalseNegatives(1), 1u);
  EXPECT_EQ(cm.Support(1), 3u);
}

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<int> y = {0, 1, 2, 0, 1, 2};
  const ClassificationReport rep = Evaluate(y, y, 3);
  EXPECT_DOUBLE_EQ(rep.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(rep.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(rep.weighted_f1, 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(rep.precision[static_cast<size_t>(c)], 1.0);
    EXPECT_DOUBLE_EQ(rep.recall[static_cast<size_t>(c)], 1.0);
  }
}

TEST(MetricsTest, KnownPrecisionRecallF1) {
  // Class 1: TP=2, FP=1, FN=1 → P=2/3, R=2/3, F1=2/3.
  const std::vector<int> y_true = {0, 0, 1, 1, 1};
  const std::vector<int> y_pred = {0, 1, 1, 1, 0};
  const ClassificationReport rep = Evaluate(y_true, y_pred, 2);
  EXPECT_NEAR(rep.precision[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.recall[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.f1[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.accuracy, 0.6, 1e-12);
}

TEST(MetricsTest, ZeroSupportClassContributesZero) {
  // Class 2 never appears in y_true nor y_pred.
  const std::vector<int> y_true = {0, 1, 0, 1};
  const std::vector<int> y_pred = {0, 1, 0, 1};
  const ClassificationReport rep = Evaluate(y_true, y_pred, 3);
  EXPECT_DOUBLE_EQ(rep.precision[2], 0.0);
  EXPECT_DOUBLE_EQ(rep.recall[2], 0.0);
  EXPECT_EQ(rep.support[2], 0u);
  EXPECT_NEAR(rep.macro_f1, 2.0 / 3.0, 1e-12);  // (1+1+0)/3.
  EXPECT_DOUBLE_EQ(rep.weighted_f1, 1.0);       // Weighted by support.
}

TEST(MetricsTest, WeightedAveragesWeightBySupport) {
  // 3 samples of class 0 predicted right, 1 of class 1 predicted wrong.
  const std::vector<int> y_true = {0, 0, 0, 1};
  const std::vector<int> y_pred = {0, 0, 0, 0};
  const ClassificationReport rep = Evaluate(y_true, y_pred, 2);
  // Class 0: P=3/4, R=1, F1=6/7. Class 1: all 0.
  EXPECT_NEAR(rep.weighted_f1, 0.75 * (6.0 / 7.0), 1e-12);
  EXPECT_NEAR(rep.macro_f1, 0.5 * (6.0 / 7.0), 1e-12);
}

TEST(MetricsTest, ReportToStringContainsClassNames) {
  const std::vector<int> y = {0, 1};
  const ClassificationReport rep = Evaluate(y, y, 2);
  const std::string text = rep.ToString({"walk", "bus"});
  EXPECT_NE(text.find("walk"), std::string::npos);
  EXPECT_NE(text.find("bus"), std::string::npos);
  EXPECT_NE(text.find("accuracy"), std::string::npos);
}

TEST(MetricsTest, ConfusionToStringRenders) {
  const std::vector<int> y = {0, 1, 1};
  const ConfusionMatrix cm(y, y, 2);
  EXPECT_NE(cm.ToString({"a", "b"}).find("a"), std::string::npos);
}

}  // namespace
}  // namespace trajkit::ml
