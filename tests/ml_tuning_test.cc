// Tests for grid search and the chance-corrected metrics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/grid_search.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace trajkit::ml {
namespace {

Dataset NoisyBlobs(int per_class, double spread, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      rows.push_back({rng.Gaussian(2.0 * c, spread),
                      rng.Gaussian(c == 1 ? 2.0 : 0.0, spread)});
      labels.push_back(c);
    }
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows),
                                   std::move(labels), {}, {},
                                   {"a", "b", "c"}))
      .value();
}

// ------------------------------------------------------------ ExpandGrid --

TEST(ExpandGridTest, CartesianProduct) {
  const ParamGrid grid = {{"a", {1.0, 2.0}}, {"b", {10.0, 20.0, 30.0}}};
  const auto points = ExpandGrid(grid);
  ASSERT_EQ(points.size(), 6u);
  for (const ParamPoint& p : points) {
    ASSERT_EQ(p.size(), 2u);
    EXPECT_TRUE(p.count("a") && p.count("b"));
  }
  // All combinations distinct.
  std::set<std::pair<double, double>> seen;
  for (const ParamPoint& p : points) {
    EXPECT_TRUE(seen.insert({p.at("a"), p.at("b")}).second);
  }
}

TEST(ExpandGridTest, SingleAxis) {
  const auto points = ExpandGrid({{"k", {1.0, 3.0, 5.0}}});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[1].at("k"), 3.0);
}

// ------------------------------------------------------------ GridSearch --

ModelBuilder TreeBuilder() {
  return [](const ParamPoint& point) -> std::unique_ptr<Classifier> {
    DecisionTreeParams params;
    params.max_depth = static_cast<int>(point.at("max_depth"));
    if (point.count("min_samples_leaf")) {
      params.min_samples_leaf =
          static_cast<int>(point.at("min_samples_leaf"));
    }
    return std::make_unique<DecisionTree>(params);
  };
}

TEST(GridSearchTest, FindsBetterDepthOnNoisyData) {
  // Very noisy blobs: depth-1 underfits, unbounded depth overfits; an
  // intermediate depth should win under CV.
  const Dataset ds = NoisyBlobs(120, 1.8, 1);
  Rng rng(2);
  const auto folds = KFold(ds.num_samples(), 4, rng);
  const ParamGrid grid = {{"max_depth", {1.0, 4.0, 64.0}}};
  const auto result = GridSearch(TreeBuilder(), grid, ds, folds);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 3u);
  // Sorted descending.
  EXPECT_GE(result->entries[0].mean_accuracy,
            result->entries[2].mean_accuracy);
  // Depth 1 cannot separate three classes on two features: never best.
  EXPECT_NE(result->best().params.at("max_depth"), 1.0);
}

TEST(GridSearchTest, TwoAxesAllEvaluated) {
  const Dataset ds = NoisyBlobs(40, 0.8, 3);
  Rng rng(4);
  const auto folds = KFold(ds.num_samples(), 3, rng);
  const ParamGrid grid = {{"max_depth", {2.0, 6.0}},
                          {"min_samples_leaf", {1.0, 8.0}}};
  const auto result = GridSearch(TreeBuilder(), grid, ds, folds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries.size(), 4u);
  for (const auto& entry : result->entries) {
    EXPECT_GT(entry.mean_accuracy, 0.3);
    EXPECT_GE(entry.std_accuracy, 0.0);
  }
}

TEST(GridSearchTest, InvalidInputsRejected) {
  const Dataset ds = NoisyBlobs(20, 0.5, 5);
  Rng rng(6);
  const auto folds = KFold(ds.num_samples(), 3, rng);
  EXPECT_FALSE(GridSearch(TreeBuilder(), {}, ds, folds).ok());
  EXPECT_FALSE(
      GridSearch(TreeBuilder(), {{"max_depth", {}}}, ds, folds).ok());
  EXPECT_FALSE(GridSearch(TreeBuilder(), {{"max_depth", {2.0}}}, ds, {})
                   .ok());
  const ModelBuilder null_builder = [](const ParamPoint&) {
    return std::unique_ptr<Classifier>();
  };
  EXPECT_FALSE(
      GridSearch(null_builder, {{"max_depth", {2.0}}}, ds, folds).ok());
}

TEST(GridSearchTest, DeterministicGivenFolds) {
  const Dataset ds = NoisyBlobs(60, 1.0, 7);
  Rng rng1(8);
  Rng rng2(8);
  const auto folds1 = KFold(ds.num_samples(), 3, rng1);
  const auto folds2 = KFold(ds.num_samples(), 3, rng2);
  const ParamGrid grid = {{"max_depth", {2.0, 5.0}}};
  const auto r1 = GridSearch(TreeBuilder(), grid, ds, folds1);
  const auto r2 = GridSearch(TreeBuilder(), grid, ds, folds2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t i = 0; i < r1->entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1->entries[i].mean_accuracy,
                     r2->entries[i].mean_accuracy);
  }
}

// --------------------------------------------------------------- Metrics --

TEST(KappaTest, PerfectAgreementIsOne) {
  const std::vector<int> y = {0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(CohensKappa(y, y, 3), 1.0);
}

TEST(KappaTest, MajorityGuessingScoresZero) {
  // Always predicting the majority class: kappa = 0 regardless of the
  // class share.
  std::vector<int> y_true;
  for (int i = 0; i < 90; ++i) y_true.push_back(0);
  for (int i = 0; i < 10; ++i) y_true.push_back(1);
  const std::vector<int> y_pred(100, 0);
  EXPECT_NEAR(CohensKappa(y_true, y_pred, 2), 0.0, 1e-12);
  // Plain accuracy is fooled (0.9), balanced accuracy is not (0.5).
  EXPECT_NEAR(Accuracy(y_true, y_pred), 0.9, 1e-12);
  EXPECT_NEAR(BalancedAccuracy(y_true, y_pred, 2), 0.5, 1e-12);
}

TEST(KappaTest, KnownValue) {
  // sklearn.metrics.cohen_kappa_score([0,0,1,1],[0,0,1,0]) = 0.5
  const std::vector<int> y_true = {0, 0, 1, 1};
  const std::vector<int> y_pred = {0, 0, 1, 0};
  EXPECT_NEAR(CohensKappa(y_true, y_pred, 2), 0.5, 1e-12);
}

TEST(KappaTest, WorseThanChanceIsNegative) {
  const std::vector<int> y_true = {0, 1, 0, 1};
  const std::vector<int> y_pred = {1, 0, 1, 0};
  EXPECT_LT(CohensKappa(y_true, y_pred, 2), 0.0);
}

TEST(BalancedAccuracyTest, MeanOfPerClassRecall) {
  // Class 0: recall 1.0 (2/2); class 1: recall 0.5 (1/2).
  const std::vector<int> y_true = {0, 0, 1, 1};
  const std::vector<int> y_pred = {0, 0, 1, 0};
  EXPECT_NEAR(BalancedAccuracy(y_true, y_pred, 2), 0.75, 1e-12);
}

TEST(BalancedAccuracyTest, IgnoresEmptyClasses) {
  const std::vector<int> y_true = {0, 0, 1, 1};
  const std::vector<int> y_pred = {0, 0, 1, 1};
  // Class 2 never appears: balanced accuracy over populated classes = 1.
  EXPECT_DOUBLE_EQ(BalancedAccuracy(y_true, y_pred, 3), 1.0);
}

}  // namespace
}  // namespace trajkit::ml
