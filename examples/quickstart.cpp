// Quickstart: generate a small GeoLife-like corpus, run the paper's
// pipeline (segment → point features → 70 trajectory features), train a
// random forest, and evaluate it under random 5-fold cross-validation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/stopwatch.h"
#include "core/experiments.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/factory.h"
#include "ml/metrics.h"

int main() {
  using namespace trajkit;

  // 1. Synthesize a corpus (stand-in for GeoLife; see DESIGN.md).
  synthgeo::GeneratorOptions generator_options;
  generator_options.num_users = 24;
  generator_options.days_per_user = 4;
  generator_options.seed = 7;

  core::PipelineOptions pipeline_options;  // Paper defaults: min 10 points.

  Stopwatch timer;
  const Result<core::SyntheticDatasetResult> built =
      core::BuildSyntheticDataset(generator_options, pipeline_options,
                                  core::LabelSet::Dabiri());
  if (!built.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const core::SyntheticDatasetResult& result = built.value();
  std::printf("corpus: %zu points, %zu trips (%.2fs)\n",
              result.corpus_summary.total_points,
              result.corpus_summary.total_trips, timer.ElapsedSeconds());
  std::printf("dataset: %zu segments x %zu features, %d classes\n",
              result.dataset.num_samples(), result.dataset.num_features(),
              result.dataset.num_classes());

  // 2. Train + evaluate a random forest under random 5-fold CV.
  const Result<std::unique_ptr<ml::Classifier>> rf =
      ml::MakeClassifier("random_forest");
  if (!rf.ok()) {
    std::fprintf(stderr, "%s\n", rf.status().ToString().c_str());
    return 1;
  }
  timer.Reset();
  const std::vector<ml::FoldSplit> folds = core::MakeFolds(
      core::CvScheme::kRandom, result.dataset, /*k=*/5, /*seed=*/13);
  const Result<ml::CrossValidationResult> cv =
      ml::CrossValidate(*rf.value(), result.dataset, folds);
  if (!cv.ok()) {
    std::fprintf(stderr, "cross-validation failed: %s\n",
                 cv.status().ToString().c_str());
    return 1;
  }
  std::printf("random 5-fold CV accuracy: %.4f ± %.4f (%.2fs)\n",
              cv.value().MeanAccuracy(), cv.value().StdAccuracy(),
              timer.ElapsedSeconds());

  // 3. Pooled confusion matrix across folds.
  const ml::ConfusionMatrix cm(cv.value().pooled_true,
                               cv.value().pooled_pred,
                               result.dataset.num_classes());
  std::printf("%s", cm.ToString(result.dataset.class_names()).c_str());
  return 0;
}
