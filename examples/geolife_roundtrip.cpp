// GeoLife-format interop: exports a synthetic corpus to the real GeoLife
// directory layout (<root>/<user>/Trajectory/*.plt + labels.txt), reads it
// back with the geolife reader, and runs the full pipeline on the
// re-imported corpus. With --data=<path to GeoLife "Data" dir> it skips
// the export and runs on the real dataset instead — the library is
// format-compatible with the original distribution.
//
// Build & run:
//   ./build/examples/geolife_roundtrip [--data=/path/to/Geolife/Data]

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/strings.h"
#include "core/experiments.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "geolife/geolife_reader.h"
#include "ml/crossval.h"
#include "ml/factory.h"
#include "synthgeo/generator.h"
#include "traj/segmentation.h"

namespace trajkit {
namespace {

int Run(int argc, char** argv) {
  std::string data_root;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (StartsWith(arg, "--data=")) {
      data_root = std::string(arg.substr(7));
    }
  }

  if (data_root.empty()) {
    // Export a small synthetic corpus in GeoLife layout.
    data_root =
        (std::filesystem::temp_directory_path() / "trajkit_geolife_export")
            .string();
    std::filesystem::remove_all(data_root);
    std::printf("no --data given; exporting a synthetic corpus to %s\n",
                data_root.c_str());
    synthgeo::GeneratorOptions options;
    options.num_users = 8;
    options.days_per_user = 2;
    options.seed = 29;
    synthgeo::GeoLifeLikeGenerator generator(options);
    const Status status =
        geolife::ExportGeoLifeCorpus(generator.Generate(), data_root);
    if (!status.ok()) {
      std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Read it back with the real-GeoLife reader.
  const auto corpus = geolife::LoadGeoLifeCorpus(data_root);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  size_t total_points = 0;
  size_t labelled = 0;
  for (const traj::Trajectory& user : corpus.value()) {
    total_points += user.points.size();
    for (const auto& p : user.points) {
      if (p.mode != traj::Mode::kUnknown) ++labelled;
    }
  }
  std::printf("loaded %zu users, %zu points (%.1f%% labelled)\n",
              corpus->size(), total_points,
              100.0 * static_cast<double>(labelled) /
                  static_cast<double>(total_points));

  // Run the paper's pipeline + a quick RF evaluation on the import.
  const core::Pipeline pipeline;
  const auto dataset =
      pipeline.BuildDataset(corpus.value(), core::LabelSet::Dabiri());
  if (!dataset.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("pipeline: %zu labelled segments x %zu features\n",
              dataset->num_samples(), dataset->num_features());
  const auto rf = ml::MakeClassifier("random_forest", {.seed = 1});
  if (!rf.ok()) return 1;
  const auto folds =
      core::MakeFolds(core::CvScheme::kRandom, dataset.value(), 3, 9);
  const auto cv = ml::CrossValidate(*rf.value(), dataset.value(), folds);
  if (!cv.ok()) {
    std::fprintf(stderr, "cv failed: %s\n",
                 cv.status().ToString().c_str());
    return 1;
  }
  std::printf("random 3-fold CV accuracy on the imported corpus: %.4f\n",
              cv->MeanAccuracy());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
