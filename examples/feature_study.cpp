// Feature-selection study in miniature: ranks the 70 trajectory features
// with random-forest importance, compares the full feature set against the
// top-k subset under user-oriented CV, and runs a small wrapper search —
// the workflow of §4.2 as a library user would script it.
//
// Build & run:
//   ./build/examples/feature_study

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "common/table_printer.h"
#include "core/experiments.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/feature_selection.h"
#include "ml/random_forest.h"
#include "traj/trajectory_features.h"

namespace trajkit {
namespace {

double UserCvAccuracy(const ml::Dataset& dataset, int trees, uint64_t seed) {
  ml::RandomForestParams params;
  params.n_estimators = trees;
  params.seed = seed;
  const ml::RandomForest forest(params);
  const auto folds =
      core::MakeFolds(core::CvScheme::kUserOriented, dataset, 3, seed);
  const auto cv = ml::CrossValidate(forest, dataset, folds);
  return cv.ok() ? cv->MeanAccuracy() : 0.0;
}

int Run() {
  synthgeo::GeneratorOptions options;
  options.num_users = 30;
  options.days_per_user = 3;
  options.seed = 19;
  const auto built = core::BuildSyntheticDataset(
      options, core::PipelineOptions{}, core::LabelSet::Endo());
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const ml::Dataset& dataset = built->dataset;
  const auto& names = traj::TrajectoryFeatureExtractor::FeatureNames();
  std::printf("dataset: %zu segments x %zu features (%d classes)\n\n",
              dataset.num_samples(), dataset.num_features(),
              dataset.num_classes());

  // 1. Importance ranking.
  ml::RandomForestParams params;
  params.n_estimators = 50;
  params.seed = 5;
  ml::RandomForest forest(params);
  if (const Status s = forest.Fit(dataset); !s.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::vector<int> ranking = forest.ImportanceRanking();
  std::printf("ten most important features (RF impurity decrease):\n");
  for (int i = 0; i < 10; ++i) {
    const int f = ranking[static_cast<size_t>(i)];
    std::printf("  %2d. %-24s %.4f\n", i + 1,
                names[static_cast<size_t>(f)].c_str(),
                forest.FeatureImportances()[static_cast<size_t>(f)]);
  }

  // 2. Full set vs top-k subsets.
  std::printf("\nuser-oriented CV accuracy by feature-subset size:\n");
  TablePrinter table({"subset", "features", "accuracy"});
  table.AddRow({"all", "70",
                StrPrintf("%.4f", UserCvAccuracy(dataset, 25, 7))});
  for (int k : {40, 20, 10, 5}) {
    std::vector<int> top(ranking.begin(), ranking.begin() + k);
    table.AddRow(
        {StrPrintf("top-%d", k), StrPrintf("%d", k),
         StrPrintf("%.4f",
                    UserCvAccuracy(dataset.SelectFeatures(top), 25, 7))});
  }
  table.Print();

  // 3. A short wrapper search (first 8 picks).
  std::printf("\nforward wrapper search, first 8 picks:\n");
  const ml::SubsetEvaluator evaluator = [](const ml::Dataset& subset) {
    return UserCvAccuracy(subset, 10, 13);
  };
  const auto steps = ml::ForwardWrapperSelection(dataset, evaluator, 8);
  if (!steps.ok()) {
    std::fprintf(stderr, "wrapper failed: %s\n",
                 steps.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < steps->size(); ++i) {
    std::printf("  %zu. %-24s -> %.4f\n", i + 1,
                names[static_cast<size_t>((*steps)[i].feature_index)]
                    .c_str(),
                (*steps)[i].score);
  }
  return 0;
}

}  // namespace
}  // namespace trajkit

int main() { return trajkit::Run(); }
