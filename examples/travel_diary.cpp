// Travel-diary scenario: the smart-city use case from the paper's
// introduction. A model is trained on the trips of known users, then an
// unseen user's day of GPS data arrives and the system reconstructs their
// travel diary — one row per sub-trajectory with the predicted
// transportation mode — exactly the user-oriented evaluation regime the
// paper advocates.
//
// Build & run:
//   ./build/examples/travel_diary [--users=30] [--days=3] [--seed=11]

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "ml/metrics.h"
#include "ml/normalize.h"
#include "ml/random_forest.h"
#include "synthgeo/generator.h"
#include "traj/segmentation.h"

namespace trajkit {
namespace {

int Run() {
  // 1. A city of users with GPS loggers (the unseen user is held out).
  synthgeo::GeneratorOptions options;
  options.num_users = 30;
  options.days_per_user = 3;
  options.seed = 11;
  synthgeo::GeoLifeLikeGenerator generator(options);
  std::vector<traj::Trajectory> corpus = generator.Generate();
  const traj::Trajectory unseen_user = std::move(corpus.back());
  corpus.pop_back();

  // 2. Train the paper's model (segment → 70 features → RF) on everyone
  // else.
  const core::Pipeline pipeline;
  const core::LabelSet labels = core::LabelSet::AllModes();
  const auto train = pipeline.BuildDataset(corpus, labels);
  if (!train.ok()) {
    std::fprintf(stderr, "training build failed: %s\n",
                 train.status().ToString().c_str());
    return 1;
  }
  ml::Dataset train_set = train.value();
  ml::MinMaxScaler scaler;
  scaler.Fit(train_set.features());
  scaler.Transform(train_set.mutable_features());

  ml::RandomForestParams params;
  params.n_estimators = 50;
  params.seed = 3;
  ml::RandomForest forest(params);
  const Status fit = forest.Fit(train_set);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu segments from %d users\n\n",
              train_set.num_samples(), options.num_users - 1);

  // 3. The unseen user's fixes arrive; reconstruct their diary.
  const std::vector<traj::Segment> segments =
      traj::SegmentTrajectory(unseen_user, traj::SegmentationOptions{});
  const traj::TrajectoryFeatureExtractor extractor;
  TablePrinter diary({"day", "start", "minutes", "points", "predicted",
                      "actual", "ok"});
  std::vector<int> y_true;
  std::vector<int> y_pred;
  for (const traj::Segment& segment : segments) {
    const auto features = extractor.Extract(segment);
    if (!features.ok()) continue;
    ml::Matrix row(1, features->size());
    for (size_t c = 0; c < features->size(); ++c) {
      row(0, c) = (*features)[c];
    }
    scaler.Transform(row);
    const int predicted = forest.Predict(row)[0];
    const int actual = labels.ClassOf(segment.mode);
    const double start = segment.points.front().timestamp;
    const double minutes =
        (segment.points.back().timestamp - start) / 60.0;
    const double hour_of_day =
        (start - static_cast<double>(segment.day) * 86400.0) / 3600.0;
    diary.AddRow(
        {StrPrintf("%lld", static_cast<long long>(segment.day)),
         StrPrintf("%05.2fh", hour_of_day), StrPrintf("%.0f", minutes),
         StrPrintf("%zu", segment.points.size()),
         labels.class_names()[static_cast<size_t>(predicted)],
         std::string(traj::ModeToString(segment.mode)),
         predicted == actual ? "+" : "x"});
    if (actual >= 0) {
      y_true.push_back(actual);
      y_pred.push_back(predicted);
    }
  }
  std::printf("travel diary of the unseen user (%zu sub-trajectories):\n",
              segments.size());
  diary.Print();
  if (!y_true.empty()) {
    std::printf("\ndiary accuracy on the unseen user: %.3f\n",
                ml::Accuracy(y_true, y_pred));
  }
  return 0;
}

}  // namespace
}  // namespace trajkit

int main() { return trajkit::Run(); }
