#!/usr/bin/env python3
"""CI perf-regression gate: compare benchmark artifacts to a baseline.

Reads one or more benchmark result files and compares every metric tracked
in the baseline against the current run:

  * TimingJson files emitted by the exp_*/micro_serve harnesses via
    --timing_json=FILE: {"harness": ..., "threads": N, "timings_s": {...}}
  * google-benchmark JSON emitted via --benchmark_out=FILE
    --benchmark_out_format=json: {"context": ..., "benchmarks": [...]}

The format is auto-detected per file. All metrics are wall-clock seconds
(google-benchmark real_time is converted from its time_unit). The baseline
(BENCH_baseline.json, checked in) defines WHICH keys are tracked — extra
keys in the current run are ignored, tracked keys missing from the run
fail the gate.

Thresholds (time ratios, current / baseline):
  * keys containing "p99"  fail above 1.30  (30% tail-latency regression)
  * all other keys         fail above 1.25  (20% throughput regression:
    1/1.25 = 0.8x items per second)

Regressions smaller than --min_delta_s (default 1 ms) of absolute change
never fail: sub-millisecond phases are noise-dominated on shared CI boxes.

Usage:
  tools/check_bench.py --baseline=BENCH_baseline.json result1.json ...
  tools/check_bench.py --baseline=BENCH_baseline.json --update result1.json ...

--update rewrites the baseline from the current run (tracked keys = all
keys present in the inputs) instead of checking. Exit code 0 = gate green,
1 = regression or malformed input.
"""

import argparse
import json
import os
import sys

P99_THRESHOLD = 1.30
THROUGHPUT_THRESHOLD = 1.25

TIME_UNIT_TO_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load_artifact(path):
    """Returns (artifact_name, {metric_key: seconds}) for one result file."""
    with open(path) as fh:
        data = json.load(fh)
    if "timings_s" in data:  # TimingJson from bench_common.h
        name = data.get("harness") or os.path.basename(path)
        metrics = {k: float(v) for k, v in data["timings_s"].items()}
        return name, metrics
    if "benchmarks" in data:  # google-benchmark --benchmark_out JSON
        executable = data.get("context", {}).get("executable", "")
        name = os.path.basename(executable) or os.path.basename(path)
        if name.startswith("./"):
            name = name[2:]
        metrics = {}
        for bench in data["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            unit = TIME_UNIT_TO_SECONDS.get(bench.get("time_unit", "ns"))
            if unit is None:
                raise ValueError(
                    f"{path}: unknown time_unit in {bench.get('name')}")
            metrics[bench["name"]] = float(bench["real_time"]) * unit
        return name, metrics
    raise ValueError(
        f"{path}: neither TimingJson ('timings_s') nor google-benchmark "
        "('benchmarks') format")


def threshold_for(key):
    return P99_THRESHOLD if "p99" in key else THROUGHPUT_THRESHOLD


def check(baseline, current, min_delta_s):
    """Returns a list of failure strings (empty = gate green)."""
    failures = []
    for artifact, tracked in sorted(baseline.get("artifacts", {}).items()):
        run = current.get(artifact)
        if run is None:
            failures.append(f"{artifact}: tracked artifact missing from the "
                            "current run (pass its result file)")
            continue
        for key, base_value in sorted(tracked["metrics"].items()):
            if key not in run:
                failures.append(f"{artifact}/{key}: tracked metric missing "
                                "from the current run")
                continue
            value = run[key]
            if base_value <= 0.0:
                continue  # cannot form a ratio; treat as untracked
            ratio = value / base_value
            limit = threshold_for(key)
            if ratio > limit and (value - base_value) > min_delta_s:
                failures.append(
                    f"{artifact}/{key}: {value:.6f}s vs baseline "
                    f"{base_value:.6f}s ({ratio:.2f}x > {limit:.2f}x limit)")
            else:
                print(f"  ok {artifact}/{key}: {value:.6f}s "
                      f"({ratio:.2f}x of baseline, limit {limit:.2f}x)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+",
                        help="benchmark result JSON files")
    parser.add_argument("--baseline", required=True,
                        help="path to BENCH_baseline.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--min_delta_s", type=float, default=1e-3,
                        help="absolute regression below this never fails")
    args = parser.parse_args()

    current = {}
    for path in args.results:
        try:
            name, metrics = load_artifact(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        # Repeated files for the same artifact keep the per-key minimum:
        # running a bench N times and passing every file gives a best-of-N
        # comparison, which damps scheduler noise on shared CI runners.
        slot = current.setdefault(name, {})
        for key, value in metrics.items():
            slot[key] = min(slot.get(key, value), value)

    if args.update:
        baseline = {
            "comment": "Perf-regression baseline for tools/check_bench.py. "
                       "Regenerate with --update after intentional perf "
                       "changes; thresholds live in the checker.",
            "artifacts": {
                name: {"metrics": dict(sorted(metrics.items()))}
                for name, metrics in sorted(current.items())
            },
        }
        with open(args.baseline, "w") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"baseline written to {args.baseline} "
              f"({sum(len(a['metrics']) for a in baseline['artifacts'].values())} "
              "tracked metrics)")
        return 0

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot load baseline: {err}", file=sys.stderr)
        return 1

    failures = check(baseline, current, args.min_delta_s)
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
