#!/usr/bin/env python3
"""Validates a --trace_json Chrome trace-event dump in CI.

Usage: check_trace.py TRACE.json [--require-tail-kept-fault]

Checks, in order:
  1. The file is valid JSON with a non-empty traceEvents array.
  2. Every request-scoped event (cat "serve") carries a trace id that
     resolves in the request log — the per-trace "request" summary
     events the tracer appends (cat "request").
  3. The serving lifecycle is actually visible: submit instants plus
     queue/batch/predict complete spans ("ph": "X") all appear.
  4. With --require-tail-kept-fault (the chaos-smoke mode): at least one
     request in the log is both fault-injected and tail-kept, proving
     the tail-keep override retained a bad-outcome trace independently
     of head sampling.

Exits nonzero with a one-line reason on the first violated check.
"""

import argparse
import json
import sys


def fail(reason: str) -> None:
    sys.exit(f"check_trace: {reason}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-tail-kept-fault",
        action="store_true",
        help="require >=1 request that is both fault-injected and tail-kept",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {args.trace}: {error}")

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents is missing or empty")

    # The request log: one summary event per exported trace.
    requests = {}
    for event in events:
        if event.get("cat") == "request":
            request_args = event.get("args", {})
            requests[request_args.get("trace_id")] = request_args
    if not requests:
        fail("no request-log events (cat 'request') in the dump")

    # Every serve-scoped span/instant must resolve in the request log.
    serve_events = [e for e in events if e.get("cat") == "serve"]
    if not serve_events:
        fail("no request-scoped events (cat 'serve') in the dump")
    unresolved = sorted(
        {
            e.get("args", {}).get("trace_id")
            for e in serve_events
            if e.get("args", {}).get("trace_id") not in requests
        }
    )
    if unresolved:
        fail(f"trace ids without a request-log entry: {unresolved[:10]}")

    span_names = {e["name"] for e in serve_events if e.get("ph") == "X"}
    instant_names = {e["name"] for e in serve_events if e.get("ph") == "i"}
    if "submit" not in instant_names:
        fail("no 'submit' instants recorded")
    missing_spans = {"queue", "batch", "predict"} - span_names
    if missing_spans:
        fail(f"lifecycle spans missing from the dump: {sorted(missing_spans)}")

    tail_kept_faults = [
        a for a in requests.values() if a.get("tail_kept") and a.get("fault")
    ]
    if args.require_tail_kept_fault and not tail_kept_faults:
        fail("no fault-injected request was tail-kept")

    print(
        f"check_trace: OK — {len(events)} events, {len(requests)} traces, "
        f"{len(tail_kept_faults)} tail-kept fault-injected"
    )


if __name__ == "__main__":
    main()
