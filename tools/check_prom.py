#!/usr/bin/env python3
"""Lint for the Prometheus text exposition our exporters emit.

Usage:
    tools/check_prom.py METRICS.prom [METRICS.prom ...]

Validates the exposition-format invariants a scraper relies on, over
either a --metrics_prom file or a saved /metrics scrape (they must be
byte-identical anyway — the CI scrape-smoke leg checks both):

  1. Every metric family is announced by a `# HELP` line immediately
     followed by a `# TYPE` line for the same metric name, with a known
     type (counter | gauge | histogram), and each family is announced at
     most once.
  2. Every sample line belongs to the most recently announced family
     (samples never appear before their family header or after another
     family's), and sample values parse as numbers.
  3. Histogram `le` buckets are cumulative: counts are monotonically
     non-decreasing as `le` increases, the bounds strictly increase, the
     last bucket is `le="+Inf"`, and `_count` equals the +Inf bucket.
  4. OpenMetrics-style exemplars (`... # {trace_id="..."} value`) only
     appear on bucket lines and carry a parsable value.

Exit 0 when every file is clean; exit 1 with per-line diagnostics.
"""

import math
import re
import sys

KNOWN_TYPES = ("counter", "gauge", "histogram")

# <name>{labels} <value> [# {exemplar-labels} <exemplar-value>]
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?P<exemplar> # \{[^}]*\} \S+)?$"
)
EXEMPLAR_RE = re.compile(r"^ # \{trace_id=\"[^\"]+\"\} (?P<value>\S+)$")
LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def family_of(name):
    """Strips the histogram sample suffix to the announced family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_file(path):
    errors = []

    def err(lineno, message):
        errors.append(f"{path}:{lineno}: {message}")

    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()

    announced = {}  # family -> type
    pending_help = None  # family named by a HELP line awaiting its TYPE
    current = None  # family the sample lines must belong to
    buckets = []  # (le, count) of the open histogram
    saw_count = {}  # family -> _count value

    def close_histogram(lineno):
        if not buckets:
            return
        prev_le, prev_count = None, None
        for le, count in buckets:
            if prev_le is not None:
                if le <= prev_le:
                    err(lineno, f"bucket le=\"{le}\" does not increase past "
                                f"le=\"{prev_le}\"")
                if count < prev_count:
                    err(lineno, f"bucket le=\"{le}\" count {count} < "
                                f"preceding count {prev_count} "
                                "(buckets must be cumulative)")
            prev_le, prev_count = le, count
        if buckets[-1][0] != math.inf:
            err(lineno, f"histogram {current} is missing the le=\"+Inf\" "
                        "bucket")
        elif current in saw_count and saw_count[current] != buckets[-1][1]:
            err(lineno, f"histogram {current}_count {saw_count[current]} != "
                        f"+Inf bucket {buckets[-1][1]}")
        buckets.clear()

    for lineno, line in enumerate(lines, start=1):
        if line.startswith("# HELP "):
            close_histogram(lineno)
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                err(lineno, "HELP line has no help text")
                continue
            if pending_help is not None:
                err(lineno, f"HELP {parts[2]} while HELP {pending_help} "
                            "still awaits its TYPE line")
            pending_help = parts[2]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                err(lineno, "malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in KNOWN_TYPES:
                err(lineno, f"unknown metric type \"{kind}\"")
            if pending_help != name:
                err(lineno, f"TYPE {name} is not immediately preceded by "
                            f"HELP {name} (HELP/TYPE must pair up)")
            pending_help = None
            if name in announced:
                err(lineno, f"family {name} announced twice")
            announced[name] = kind
            current = name
            continue
        if line.startswith("#"):
            err(lineno, f"unexpected comment line: {line!r}")
            continue

        match = SAMPLE_RE.match(line)
        if match is None:
            err(lineno, f"unparsable sample line: {line!r}")
            continue
        name = match.group("name")
        family = family_of(name)
        if family not in announced:
            err(lineno, f"sample {name} before any HELP/TYPE for {family}")
            continue
        if family != current:
            err(lineno, f"sample {name} appears after family {current} "
                        "was announced (families must be contiguous)")
        value = parse_value(match.group("value"))
        if value is None:
            err(lineno, f"sample {name} value {match.group('value')!r} "
                        "is not a number")
            continue
        if match.group("exemplar"):
            if not name.endswith("_bucket"):
                err(lineno, "exemplar on a non-bucket sample")
            exemplar = EXEMPLAR_RE.match(match.group("exemplar"))
            if exemplar is None:
                err(lineno, f"malformed exemplar: {match.group('exemplar')!r}")
            elif parse_value(exemplar.group("value")) is None:
                err(lineno, "exemplar value is not a number")
        if name.endswith("_bucket") and announced[family] == "histogram":
            labels = dict(LABEL_RE.findall(match.group("labels") or ""))
            le = parse_value(labels.get("le", ""))
            if le is None:
                err(lineno, f"bucket of {family} has no parsable le label")
            else:
                buckets.append((le, value))
        elif name.endswith("_count") and announced[family] == "histogram":
            saw_count[family] = value
            close_histogram(lineno)

    close_histogram(len(lines))
    if pending_help is not None:
        err(len(lines), f"HELP {pending_help} has no TYPE line")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        for error in errors:
            print(error, file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
