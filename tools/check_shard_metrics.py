#!/usr/bin/env python3
"""Shard-determinism gate over serve-replay --metrics_json dumps.

Usage:
    tools/check_shard_metrics.py BASELINE.json SHARDED.json [SHARDED.json ...]

BASELINE.json is the --shards=1 run; each SHARDED.json is the same replay
at a different shard count. Two properties are enforced:

  1. Deterministic counters are IDENTICAL across every file. The allowlist
     below names the counters whose values are a pure function of the
     replayed corpus (the shard-determinism contract); timing-dependent
     metrics (histograms, gauges, batch counts — batch composition depends
     on dispatch timing) are deliberately excluded.
  2. Shard-labelled counters (serve.shard<i>.<name>) in each sharded file
     SUM, per basename, to the baseline's value of that deterministic
     counter — the shard mirrors partition the aggregate, they never
     double- or under-count.

Exit 0 when every file agrees; exit 1 with a per-key diff otherwise.
"""

import argparse
import json
import re
import sys

# Counters whose values must not depend on the shard count. Prefix match.
DETERMINISTIC_PREFIXES = (
    "serve.sessions.",
    "serve.shed_total",
    "serve.degraded_total",
    "serve.deadline_exceeded_total",
    "serve.unavailable_total",
    "serve.batch_predictor.requests",
    "serve.registry.swaps",
    "serve.registry.promotions",
    "serve.registry.shadow_installs",
    "serve.registry.shadow_retired",
    "serve.shadow.",
    "serve.ct.",
    "store.",
)

SHARD_RE = re.compile(r"^serve\.shard(\d+)\.(.+)$")

# serve.shard<i>.<basename> -> the aggregate counter it partitions.
SHARD_BASENAME_TO_AGGREGATE = {
    "sessions.points_ingested": "serve.sessions.points_ingested",
    "sessions.segments_emitted": "serve.sessions.segments_emitted",
    "sessions.evicted_idle": "serve.sessions.evicted_idle",
    "sessions.evicted_cap": "serve.sessions.evicted_cap",
    "batch_predictor.requests": "serve.batch_predictor.requests",
    "shed_total": "serve.shed_total",
    "deadline_exceeded_total": "serve.deadline_exceeded_total",
    "degraded_total": "serve.degraded_total",
    "unavailable_total": "serve.unavailable_total",
}


def load_counters(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("counters", {}), doc.get("info", {})


def deterministic_view(counters):
    """The unlabelled deterministic counters, shard mirrors excluded."""
    view = {}
    for key, value in sorted(counters.items()):
        if SHARD_RE.match(key):
            continue
        if key.startswith(DETERMINISTIC_PREFIXES):
            view[key] = value
    return view


def aggregate_of(key):
    """Aggregate counter a shard-split total compares against.

    serve.shed_total.* / serve.degraded_total.* are reason-labelled in the
    aggregate but single counters per shard: fold the reasons together.
    """
    for prefix in ("serve.shed_total", "serve.degraded_total"):
        if key.startswith(prefix):
            return prefix
    return key


def shard_sums(counters):
    """Shard-labelled counters summed per basename -> aggregate name."""
    sums = {}
    for key, value in counters.items():
        match = SHARD_RE.match(key)
        if match is None:
            continue
        basename = match.group(2)
        aggregate = SHARD_BASENAME_TO_AGGREGATE.get(basename)
        if aggregate is None:
            sys.exit(f"unknown shard-labelled counter {key!r}: teach "
                     "tools/check_shard_metrics.py its aggregate")
        sums[aggregate] = sums.get(aggregate, 0) + value
    return sums


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="metrics JSON of the --shards=1 run")
    parser.add_argument("sharded", nargs="+",
                        help="metrics JSONs of the sharded runs")
    args = parser.parse_args()

    base_counters, base_info = load_counters(args.baseline)
    base_view = deterministic_view(base_counters)
    if not base_view:
        sys.exit(f"{args.baseline}: no deterministic serve counters found "
                 "(wrong file?)")

    # Fold the baseline's reason-labelled aggregates once for property 2.
    folded = {}
    for key, value in base_view.items():
        folded_key = aggregate_of(key)
        if folded_key != key or folded_key in SHARD_BASENAME_TO_AGGREGATE.values():
            folded[folded_key] = folded.get(folded_key, 0) + value

    failures = []
    for path in args.sharded:
        counters, info = load_counters(path)

        # Property 1: deterministic counters byte-equal.
        view = deterministic_view(counters)
        for key in sorted(set(base_view) | set(view)):
            if base_view.get(key) != view.get(key):
                failures.append(
                    f"{path}: {key} = {view.get(key)} != "
                    f"{base_view.get(key)} ({args.baseline})")

        # The active model version must agree too.
        base_version = base_info.get("serve.registry.active_version")
        version = info.get("serve.registry.active_version")
        if version != base_version:
            failures.append(
                f"{path}: serve.registry.active_version = {version!r} != "
                f"{base_version!r}")

        # Property 2: shard mirrors partition the aggregates.
        sums = shard_sums(counters)
        if not sums:
            failures.append(f"{path}: no serve.shard<i>.* counters "
                            "(was this run actually sharded?)")
        for aggregate, total in sorted(sums.items()):
            expected = folded.get(aggregate, base_view.get(aggregate, 0))
            if total != expected:
                failures.append(
                    f"{path}: sum over shards of {aggregate} = {total} != "
                    f"{expected} (shards=1 aggregate)")

    if failures:
        print("shard-determinism gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    print(f"shard-determinism gate: {len(base_view)} deterministic counters "
          f"identical across {1 + len(args.sharded)} runs; shard mirrors "
          "sum to the shards=1 aggregates")
    return 0


if __name__ == "__main__":
    sys.exit(main())
