// trajkit — command-line front end for the library's end-to-end workflow:
//
//   trajkit generate  --out=DIR [--users=N] [--days=D] [--seed=S]
//       Synthesize a GeoLife-like corpus and write it in the real GeoLife
//       directory layout (<out>/<user>/Trajectory/*.plt + labels.txt).
//
//   trajkit features  (--data=DIR | --synthetic) --out=FILE.csv
//                     [--labels=dabiri|endo|all] [--extended]
//                     [--windows=SECONDS] [--denoise]
//       Run the paper's pipeline (steps 1-3, optionally 6) and write the
//       feature matrix as CSV (with __label/__group columns).
//
//   trajkit train     --dataset=FILE.csv --model=FILE.model
//                     [--trees=50] [--balanced] [--seed=S]
//       Train a random forest on a feature CSV and save it.
//
//   trajkit evaluate  --dataset=FILE.csv [--classifier=random_forest]
//                     [--scheme=random|stratified|user|temporal]
//                     [--folds=5]
//                     [--scale=1.0] [--seed=S]
//       Cross-validated evaluation with a full classification report.
//
//   trajkit predict   --dataset=FILE.csv --model=FILE.model
//                     [--output=FILE.csv]
//       Load a saved forest, predict, and (when labels are present)
//       report accuracy and a confusion matrix. --output writes every
//       prediction (sample id, class, per-class probabilities) as CSV;
//       stdout keeps a short preview.
//
//   trajkit serve-replay  (--data=DIR | --synthetic) --model=FILE.model
//                     [--labels=dabiri|endo|all] [--batch=64]
//                     [--max_delay_ms=2] [--gap=SECONDS]
//                     [--max_window=N] [--shards=1]
//                     [--subset=FILE.csv --method=importance --top_k=20]
//                     [--deadline_ms=D] [--max_queue=N] [--retries=R]
//                     [--fault_spec=SPEC]
//                     [--continuous_training [--step_every=16]
//                      [--refit_every=48] [--min_fit=48] [--min_shadow=32]
//                      [--promote_epsilon=E] [--cost_budget=R]
//                      [--ct_trees=T] [--ct_seed=S] [--ct_buffer=N]
//                      [--drift_window=N] [--drift_threshold=SIGMAS]
//                      [--drift_degraded_rate=F]]
//                     [--metrics_json=FILE] [--metrics_prom=FILE]
//                     [--timeseries_json=FILE] [--tick_every=64]
//                     [--timeseries_capacity=512] [--slo_spec=SPEC]
//                     [--http_port=P [--http_linger]]
//                     [--trace_json=FILE] [--trace_test=FILE]
//                     [--trace_sample=N] [--trace_buffer=M]
//                     [--store_out=FILE] [--predictions_out=FILE]
//       Replay a corpus through the online serving stack (streaming
//       sessions -> incremental features -> micro-batched prediction) in
//       global timestamp order and compare the accuracy against the
//       offline pipeline on identically-segmented data. --shards=N routes
//       users onto N independent serving shards (sessions + micro-batch
//       queue per shard, hash(user_id) routing); the replay output is
//       byte-identical at any shard count, which the CI shard-determinism
//       matrix enforces. --predictions_out writes the per-segment
//       true/predicted classes (close order) as CSV — the artifact that
//       matrix diffs. --deadline_ms
//       attaches a per-request deadline, --max_queue bounds the predictor
//       queue (admission control sheds lowest-priority first), --retries
//       grants each request a resubmission budget for transient failures,
//       and --fault_spec injects deterministic chaos, e.g.
//       "swap_stall:p=0.01,latency_ms=50;predict_fail:p=0.02;seed=1" (see
//       serve/fault_injector.h). Every submitted request is accounted
//       exactly once: evaluated (possibly degraded), shed, or
//       deadline-exceeded — the command fails if the books don't balance.
//       --metrics_json / --metrics_prom dump the process metrics registry
//       (batch latency p50/p90/p99, shed/degraded/deadline counters,
//       session counters, active model version, pool stats) as JSON or
//       Prometheus text. --trace_json enables request-scoped tracing and
//       dumps the flight recorder as Chrome trace-event JSON (load in
//       chrome://tracing or Perfetto); --trace_test writes the
//       deterministic rank-timestamp dump, --trace_sample=N head-samples
//       every Nth request (bad outcomes are always tail-kept), and
//       --trace_buffer=M sizes the per-thread ring (events).
//       The live telemetry plane samples the registry into ring-buffered
//       time series at replay barriers — one tick per --tick_every closed
//       segments (ring capacity --timeseries_capacity), so the sampled
//       history is byte-identical at any thread/shard count.
//       --timeseries_json dumps the rings; --slo_spec declares burn-rate
//       objectives over them (obs/slo.h grammar, e.g.
//       "shed:type=ratio,bad=serve.shed_total.queue_full,
//       total=serve.batch_predictor.requests,budget=0.02") whose
//       ok<->breach transitions are logged and exported as slo.* metrics.
//       --http_port=P serves /metrics, /metrics.json, /timeseries.json,
//       /statusz, /healthz, /tracez live on 127.0.0.1:P while the replay
//       runs (0 picks a free port); --http_linger keeps serving the
//       frozen post-run snapshot until GET /quitquitquit.
//       --store_out=FILE persists every closed segment (with its resolved
//       prediction) as a trajectory-store segment log for `trajkit query`.
//       --continuous_training closes the loop (serve/continuous_training.h):
//       labeled closed segments feed background refits, candidates score
//       in the registry's shadow slot on the live batches (never served),
//       and the promotion policy (--promote_epsilon accuracy delta over a
//       --min_shadow labeled window, --cost_budget flat node-count ratio)
//       promotes or retires each one with an audit trail; drift
//       (--drift_window/--drift_threshold/--drift_degraded_rate) forces
//       early refits. Trainer steps run only at drained replay barriers,
//       so the output stays byte-identical at any thread/shard count; the
//       offline-parity check is skipped (the serving model evolves
//       mid-replay). All serving flags parse through one validated
//       surface (serve/serve_config.h): bad values or a CT flag without
//       --continuous_training fail naming the offending flag.
//
//   trajkit query     --store=FILE [--bbox=MINLAT,MINLON,MAXLAT,MAXLON]
//                     [--time=BEGIN,END] [--mode=walk,bus,...]
//                     [--user=ID] [--hotspots=CELL_DEG] [--k=10]
//                     [--str] [--oracle] [--limit=20]
//       Answer spatio-temporal queries over a trajectory store written by
//       `serve-replay --store_out` (src/store/): the default is a
//       bbox/time/mode scan through the bulk-loaded spatial index,
//       --user lists one user's history, and --hotspots aggregates the
//       top-k cells of a uniform CELL_DEG-degree grid. --oracle re-runs
//       the query through the brute-force scan and fails unless both
//       answers are byte-identical; --str packs the index with
//       Sort-Tile-Recursive instead of the Hilbert curve.
//
//   trajkit statusz   [--users=N] [--days=D] [--seed=S] [--trees=T]
//                     [--shards=2]
//                     [--batch=..] [--deadline_ms=..] [--max_queue=..]
//                     [--retries=..] [--fault_spec=SPEC | --fault_spec=]
//                     [--continuous_training [--step_every=..] ...]
//                     [--metrics_json/--metrics_prom/--trace_json/...]
//       Self-contained serving demo that prints the text status page:
//       train a small forest on a synthetic corpus, replay it through the
//       serving stack (chaos on by default so every section is
//       populated; --fault_spec= turns it off), then render active model
//       version, queue depth, shed/degraded/fault counters, latency
//       quantiles with exemplar trace ids, and the last tail-kept traces.
//       With --continuous_training (same flag family as serve-replay) the
//       page adds the shadow-scoring, continuous-training, and
//       registry-audit sections. Every section always renders — subsystems
//       that emitted nothing show "(no data)". The demo arms the live
//       telemetry plane (a built-in latency+shed --slo_spec unless one is
//       given), so the slo section and per-series sparklines render too.
//
// Every command also accepts --threads=N to bound the shared worker pool
// (default: TRAJKIT_THREADS env var, else hardware concurrency). Results
// are bit-identical at any thread count.

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/harness_options.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/experiments.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "geolife/geolife_reader.h"
#include "ml/crossval.h"
#include "ml/dataset_io.h"
#include "ml/factory.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "ml/random_forest.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "serve/batch_predictor.h"
#include "serve/continuous_training.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "serve/serve_config.h"
#include "serve/serving_plane.h"
#include "serve/session_manager.h"
#include "serve/statusz.h"
#include "store/trajectory_store.h"
#include "synthgeo/generator.h"
#include "traj/trajectory_features.h"

namespace trajkit {
namespace {

constexpr char kUsage[] =
    "usage: trajkit "
    "<generate|features|train|evaluate|predict|serve-replay|query|statusz> "
    "[--flags]\n"
    "run `trajkit <command> --help` or see the file header for details\n";

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  return 1;
}

synthgeo::GeneratorOptions GeneratorOptionsFromFlags(const Flags& flags) {
  synthgeo::GeneratorOptions options;
  options.num_users = flags.GetInt("users", 20);
  options.days_per_user = flags.GetInt("days", 4);
  options.seed = flags.GetUint64("seed", 7);
  return options;
}

Result<core::LabelSet> LabelSetFromFlags(const Flags& flags) {
  const std::string name = flags.GetString("labels", "dabiri");
  if (name == "dabiri") return core::LabelSet::Dabiri();
  if (name == "endo") return core::LabelSet::Endo();
  if (name == "all") return core::LabelSet::AllModes();
  return Status::InvalidArgument("unknown label set: '" + name +
                                 "' (want dabiri|endo|all)");
}

int RunGenerate(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out=DIR is required\n");
    return 2;
  }
  synthgeo::GeoLifeLikeGenerator generator(GeneratorOptionsFromFlags(flags));
  Stopwatch timer;
  const std::vector<traj::Trajectory> corpus = generator.Generate();
  const Status status = geolife::ExportGeoLifeCorpus(corpus, out);
  if (!status.ok()) return Fail(status, "export");
  std::printf("%s", generator.summary().ToString().c_str());
  std::printf("wrote %zu users to %s (%.1fs)\n", corpus.size(), out.c_str(),
              timer.ElapsedSeconds());
  return 0;
}

int RunFeatures(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "features: --out=FILE.csv is required\n");
    return 2;
  }
  // Corpus: real directory or synthetic.
  std::vector<traj::Trajectory> corpus;
  const std::string data = flags.GetString("data", "");
  if (!data.empty()) {
    auto loaded = geolife::LoadGeoLifeCorpus(data);
    if (!loaded.ok()) return Fail(loaded.status(), "GeoLife load");
    corpus = std::move(loaded).value();
  } else {
    synthgeo::GeoLifeLikeGenerator generator(
        GeneratorOptionsFromFlags(flags));
    corpus = generator.Generate();
    std::printf("(no --data; generated a synthetic corpus: %zu points)\n",
                generator.summary().total_points);
  }

  auto labels = LabelSetFromFlags(flags);
  if (!labels.ok()) return Fail(labels.status(), "label set");

  core::PipelineOptions options;
  options.remove_noise = flags.GetBool("denoise", false);
  options.include_extended_features = flags.GetBool("extended", false);
  if (flags.Has("windows")) {
    options.strategy = core::SegmentationStrategy::kFixedWindows;
    options.windows.window_seconds = flags.GetDouble("windows", 180.0);
  }
  const core::Pipeline pipeline(options);
  auto dataset = pipeline.BuildDataset(corpus, labels.value());
  if (!dataset.ok()) return Fail(dataset.status(), "pipeline");

  const Status status = ml::SaveDatasetCsv(dataset.value(), out);
  if (!status.ok()) return Fail(status, "CSV write");
  std::printf("wrote %zu segments x %zu features to %s\n",
              dataset->num_samples(), dataset->num_features(), out.c_str());
  return 0;
}

int RunTrain(const Flags& flags) {
  const std::string dataset_path = flags.GetString("dataset", "");
  const std::string model_path = flags.GetString("model", "");
  if (dataset_path.empty() || model_path.empty()) {
    std::fprintf(stderr,
                 "train: --dataset=FILE.csv and --model=FILE are required\n");
    return 2;
  }
  auto dataset = ml::LoadDatasetCsv(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status(), "dataset load");

  ml::RandomForestParams params;
  params.n_estimators = flags.GetInt("trees", 50);
  params.balanced_class_weights = flags.GetBool("balanced", false);
  params.seed = flags.GetUint64("seed", 42);
  ml::RandomForest forest(params);
  Stopwatch timer;
  const Status fit = forest.Fit(dataset.value());
  if (!fit.ok()) return Fail(fit, "training");
  const Status save = ml::SaveRandomForest(forest, model_path);
  if (!save.ok()) return Fail(save, "model save");
  std::printf(
      "trained random forest (%d trees) on %zu samples in %.1fs -> %s\n",
      params.n_estimators, dataset->num_samples(), timer.ElapsedSeconds(),
      model_path.c_str());
  return 0;
}

int RunEvaluate(const Flags& flags) {
  const std::string dataset_path = flags.GetString("dataset", "");
  if (dataset_path.empty()) {
    std::fprintf(stderr, "evaluate: --dataset=FILE.csv is required\n");
    return 2;
  }
  auto dataset = ml::LoadDatasetCsv(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status(), "dataset load");

  const std::string classifier_name =
      flags.GetString("classifier", "random_forest");
  auto model = ml::MakeClassifier(
      classifier_name,
      {.seed = flags.GetUint64("seed", 42),
       .scale = flags.GetDouble("scale", 1.0)});
  if (!model.ok()) return Fail(model.status(), "classifier");

  auto scheme = core::CvSchemeFromString(
      flags.GetString("scheme", "random"));
  if (!scheme.ok()) return Fail(scheme.status(), "scheme");
  const int folds = flags.GetInt("folds", 5);
  const auto cv_folds = core::MakeFolds(
      scheme.value(), dataset.value(), folds,
      flags.GetUint64("seed", 42));
  Stopwatch timer;
  const auto cv = ml::CrossValidate(*model.value(), dataset.value(),
                                    cv_folds);
  if (!cv.ok()) return Fail(cv.status(), "cross-validation");

  std::printf("%s, %s %d-fold CV on %zu samples (%.1fs)\n",
              classifier_name.c_str(),
              std::string(core::CvSchemeToString(scheme.value())).c_str(),
              folds, dataset->num_samples(), timer.ElapsedSeconds());
  std::printf("accuracy: %.4f ± %.4f   weighted F1: %.4f\n",
              cv->MeanAccuracy(), cv->StdAccuracy(), cv->MeanWeightedF1());
  std::printf("cohen's kappa: %.4f   balanced accuracy: %.4f\n",
              ml::CohensKappa(cv->pooled_true, cv->pooled_pred,
                              dataset->num_classes()),
              ml::BalancedAccuracy(cv->pooled_true, cv->pooled_pred,
                                   dataset->num_classes()));
  const ml::ClassificationReport report = ml::Evaluate(
      cv->pooled_true, cv->pooled_pred, dataset->num_classes());
  std::printf("%s", report.ToString(dataset->class_names()).c_str());
  return 0;
}

int RunPredict(const Flags& flags) {
  const std::string dataset_path = flags.GetString("dataset", "");
  const std::string model_path = flags.GetString("model", "");
  if (dataset_path.empty() || model_path.empty()) {
    std::fprintf(stderr,
                 "predict: --dataset=FILE.csv and --model=FILE are "
                 "required\n");
    return 2;
  }
  auto dataset = ml::LoadDatasetCsv(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status(), "dataset load");
  auto forest = ml::LoadRandomForest(model_path);
  if (!forest.ok()) return Fail(forest.status(), "model load");

  const std::vector<int> predictions =
      forest->Predict(dataset->features());
  size_t shown = 0;
  for (size_t i = 0; i < predictions.size() && shown < 20; ++i, ++shown) {
    std::printf("sample %zu -> class %d\n", i, predictions[i]);
  }
  if (predictions.size() > 20) {
    std::printf("... (%zu predictions total)\n", predictions.size());
  }

  // --output writes the full prediction table (the stdout preview above is
  // capped at 20 rows).
  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    auto probabilities = forest->PredictProba(dataset->features());
    CsvTable table;
    table.header = {"sample", "predicted_class", "predicted_label"};
    const bool with_proba = probabilities.ok();
    if (with_proba) {
      for (const std::string& name : dataset->class_names()) {
        table.header.push_back("proba_" + name);
      }
    }
    table.rows.reserve(predictions.size());
    for (size_t i = 0; i < predictions.size(); ++i) {
      std::vector<std::string> row;
      row.push_back(StrPrintf("%zu", i));
      row.push_back(StrPrintf("%d", predictions[i]));
      row.push_back(dataset->class_names()[
          static_cast<size_t>(predictions[i])]);
      if (with_proba) {
        for (const double p : probabilities->Row(i)) {
          row.push_back(StrPrintf("%.17g", p));
        }
      }
      table.rows.push_back(std::move(row));
    }
    const Status write = WriteCsvFile(output, table);
    if (!write.ok()) return Fail(write, "prediction CSV write");
    std::printf("wrote all %zu predictions to %s\n", predictions.size(),
                output.c_str());
  }
  // When the CSV carries labels, report quality.
  const ml::ClassificationReport report = ml::Evaluate(
      dataset->labels(), predictions, dataset->num_classes());
  std::printf("\naccuracy vs. CSV labels: %.4f\n%s", report.accuracy,
              ml::ConfusionMatrix(dataset->labels(), predictions,
                                  dataset->num_classes())
                  .ToString(dataset->class_names())
                  .c_str());
  return 0;
}

/// Dumps the metric artifacts (--metrics_json / --metrics_prom /
/// --timeseries_json, no-op for absent flags) through the shared
/// obs::WriteMetricsArtifacts helper. Returns false on a write failure.
bool DumpMetrics(const HarnessOptions& harness,
                 const obs::TimeSeriesStore* timeseries = nullptr) {
  if (!obs::WriteMetricsArtifacts(harness.MetricsArtifacts(timeseries),
                                  obs::MetricsRegistry::Global())) {
    return false;
  }
  if (!harness.metrics_json.empty()) {
    std::printf("metrics written to %s\n", harness.metrics_json.c_str());
  }
  if (!harness.metrics_prom.empty()) {
    std::printf("metrics written to %s\n", harness.metrics_prom.c_str());
  }
  if (!harness.timeseries_json.empty()) {
    std::printf("timeseries written to %s\n",
                harness.timeseries_json.c_str());
  }
  return true;
}

int RunServeReplay(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "serve-replay: --model=FILE.model is required\n");
    return 2;
  }
  auto config_or =
      serve::ParseServeFlags(flags, serve::ServeReplayDefaults());
  if (!config_or.ok()) return Fail(config_or.status(), "serve flags");
  const serve::ServeConfig& config = config_or.value();

  // Tracing must be armed before the registry activates the model so the
  // "registry_swap" landmark lands in the recorder.
  const HarnessOptions harness = HarnessOptions::FromFlags(flags);
  harness.ConfigureTracing();

  // Corpus: real directory or synthetic (same convention as `features`).
  std::vector<traj::Trajectory> corpus;
  const std::string data = flags.GetString("data", "");
  if (!data.empty()) {
    auto loaded = geolife::LoadGeoLifeCorpus(data);
    if (!loaded.ok()) return Fail(loaded.status(), "GeoLife load");
    corpus = std::move(loaded).value();
  } else {
    synthgeo::GeneratorOptions generator_options;
    generator_options.num_users = config.users;
    generator_options.days_per_user = config.days;
    generator_options.seed = config.seed;
    synthgeo::GeoLifeLikeGenerator generator(generator_options);
    corpus = generator.Generate();
    std::printf("(no --data; generated a synthetic corpus: %zu points)\n",
                generator.summary().total_points);
  }

  auto labels = LabelSetFromFlags(flags);
  if (!labels.ok()) return Fail(labels.status(), "label set");

  auto forest = ml::LoadRandomForest(model_path);
  if (!forest.ok()) return Fail(forest.status(), "model load");

  // Optional Fig. 3 feature-subset mask: the forest was trained on the
  // top-k columns, requests carry the full 70-dim vector.
  std::vector<int> subset;
  const std::string subset_path = flags.GetString("subset", "");
  if (!subset_path.empty()) {
    auto loaded = serve::LoadFig3FeatureSubset(
        subset_path, flags.GetString("method", "importance"),
        flags.GetInt("top_k", 20));
    if (!loaded.ok()) return Fail(loaded.status(), "feature subset");
    subset = std::move(loaded).value();
    std::printf("serving with a %zu-feature mask from %s\n", subset.size(),
                subset_path.c_str());
  }

  serve::ModelRegistry registry;
  {
    auto model = serve::MakeServingModel(
        "replay-v1", std::move(forest).value(),
        traj::kNumTrajectoryFeatures, subset);
    if (!model.ok()) return Fail(model.status(), "serving model");
    const Status status = registry.Publish(std::move(model).value());
    if (!status.ok()) return Fail(status, "registry");
  }

  serve::ServingPlaneOptions plane_options = config.MakePlaneOptions();

  // Deterministic chaos (--fault_spec): the injector must outlive the
  // predictor. Chaos runs also get the degradation chain's last rung, a
  // label prior counted from the replay corpus annotations, so a request
  // that exhausts its retry budget still resolves with an answer.
  std::optional<serve::FaultInjector> injector;
  if (config.fault_spec.has_value()) {
    injector.emplace(config.fault_spec.value());
    plane_options.batching.fault_injector = &*injector;
    std::vector<double> prior(
        static_cast<size_t>(labels->num_classes()), 0.0);
    for (const traj::Trajectory& trajectory : corpus) {
      for (const traj::TrajectoryPoint& point : trajectory.points) {
        const int cls = labels->ClassOf(point.mode);
        if (cls >= 0) prior[static_cast<size_t>(cls)] += 1.0;
      }
    }
    plane_options.batching.label_prior = std::move(prior);
    std::printf("fault injection on: %s\n", config.fault_spec_text.c_str());
  }

  // --continuous_training: close the loop. The trainer owns the shadow
  // evaluator every shard's predictor scores into, and the replay drives
  // its step barriers (see serve/continuous_training.h for why the output
  // stays byte-identical at any thread/shard count).
  std::optional<serve::ContinuousTrainer> trainer;
  serve::ReplayOptions replay_options = config.MakeReplayOptions();
  if (config.ct.enabled) {
    trainer.emplace(&registry, labels.value(), config.ct.MakeOptions());
    plane_options.batching.shadow_evaluator = &trainer->evaluator();
    replay_options.trainer = &*trainer;
    std::printf("continuous training on: refit every %zu labeled "
                "segments, promotion window %zu\n",
                config.ct.refit_every, config.ct.min_shadow);
  }

  serve::ServingPlane plane(&registry, plane_options);

  // --store_out: persist every closed segment (keyed by its resolved
  // prediction; segments never predicted keep their annotated mode) as a
  // trajectory-store segment log the `query` subcommand reads back.
  const std::string store_out = flags.GetString("store_out", "");
  std::optional<store::TrajectoryStore> trajectory_store;
  if (!store_out.empty()) {
    trajectory_store.emplace();
    replay_options.closed_sink = [&trajectory_store, &labels](
                                     const serve::ClosedSegment& segment,
                                     int predicted_class) {
      const traj::Mode predicted = predicted_class >= 0
                                       ? labels->ModeOf(predicted_class)
                                       : segment.mode;
      trajectory_store->Ingest(store::FromClosedSegment(segment, predicted));
    };
  }

  // Telemetry plane (--http_port / --slo_spec / --timeseries_json): a
  // TimeSeriesStore (and SLO engine over it) ticked at replay barriers —
  // one tick per --tick_every closed segments, with every in-flight
  // request drained first, so the sampled series and SLO transitions are
  // byte-identical at any thread/shard count. The HTTP server exports
  // the same registry live while the replay runs.
  std::optional<obs::TimeSeriesStore> timeseries;
  std::optional<obs::SloEngine> slo;
  size_t tick_index = 0;
  if (config.telemetry_enabled() || !harness.timeseries_json.empty()) {
    obs::TimeSeriesOptions ts_options;
    ts_options.capacity = config.timeseries_capacity;
    timeseries.emplace(obs::MetricsRegistry::Global(), ts_options);
    // Default tracked series: the counters whose values are a pure
    // function of the corpus (the shard-determinism allowlist), so the
    // exported series stay byte-comparable across thread/shard counts.
    // SLO specs add whatever they reference on top.
    timeseries->TrackCounter("serve.sessions.points_ingested");
    timeseries->TrackCounter("serve.sessions.segments_emitted");
    timeseries->TrackCounter("serve.batch_predictor.requests");
    timeseries->TrackCounter("serve.shed_total.queue_full");
    timeseries->TrackCounter("serve.shed_total.preempted");
    timeseries->TrackCounter("serve.deadline_exceeded_total");
    timeseries->TrackCounter("serve.degraded_total.previous_model");
    timeseries->TrackCounter("serve.degraded_total.majority_class");
    if (!config.slo_specs.empty()) {
      slo.emplace(&*timeseries, &obs::MetricsRegistry::Global(),
                  config.slo_specs);
      std::printf("slo engine on: %zu objectives, tick every %zu "
                  "segments\n",
                  slo->specs().size(), config.tick_every);
    }
    replay_options.tick_every_segments = config.tick_every;
    replay_options.tick = [&timeseries, &slo, &tick_index] {
      timeseries->Tick(static_cast<double>(tick_index));
      if (slo.has_value()) slo->Evaluate(tick_index);
      ++tick_index;
    };
  }

  std::optional<obs::HttpExportServer> http;
  std::mutex quit_mu;
  std::condition_variable quit_cv;
  bool quit_requested = false;
  if (config.http_port >= 0) {
    obs::HttpExportOptions http_options;
    http_options.port = config.http_port;
    http_options.registry = &obs::MetricsRegistry::Global();
    http_options.timeseries =
        timeseries.has_value() ? &*timeseries : nullptr;
    http_options.slo = slo.has_value() ? &*slo : nullptr;
    if (harness.tracing_requested()) {
      http_options.tracer = &obs::RequestTracer::Global();
    }
    http_options.statusz = [&timeseries, &slo] {
      serve::StatusPageOptions page;
      page.timeseries = timeseries.has_value() ? &*timeseries : nullptr;
      page.slo = slo.has_value() ? &*slo : nullptr;
      return serve::RenderStatusPage(obs::MetricsRegistry::Global(),
                                     obs::RequestTracer::Global(), page);
    };
    if (config.http_linger) {
      http_options.on_quit = [&quit_mu, &quit_cv, &quit_requested] {
        std::lock_guard<std::mutex> lock(quit_mu);
        quit_requested = true;
        quit_cv.notify_all();
      };
    }
    http.emplace();
    std::string error;
    if (!http->Start(std::move(http_options), &error)) {
      std::fprintf(stderr, "serve-replay: --http_port: %s\n",
                   error.c_str());
      return 1;
    }
    // CI polls this line for the bound port, so flush past any pipe
    // buffering.
    std::printf("http: listening on 127.0.0.1:%d\n", http->port());
    std::fflush(stdout);
  }

  Stopwatch timer;
  auto report = serve::ReplayCorpus(corpus, labels.value(), plane,
                                    replay_options);
  if (!report.ok()) return Fail(report.status(), "replay");
  const double total_seconds = timer.ElapsedSeconds();

  const serve::BatchPredictor::Counters counters =
      plane.predictor_counters();
  std::printf(
      "replayed %zu points in %.2fs (%.0f points/s ingest, %zu shards)\n",
      report->points, total_seconds,
      report->ingest_seconds > 0.0
          ? static_cast<double>(report->points) / report->ingest_seconds
          : 0.0,
      plane.num_shards());
  std::printf(
      "segments: %zu closed, %zu evaluated, %zu outside label set\n",
      report->segments_closed, report->segments_evaluated,
      report->segments_outside_label_set);
  std::printf("batches: %zu (mean %.1f, max %zu requests)\n",
              counters.batches,
              counters.batches > 0
                  ? static_cast<double>(counters.requests) /
                        static_cast<double>(counters.batches)
                  : 0.0,
              counters.max_batch);
  std::printf("online accuracy:  %.4f (%zu/%zu)\n", report->accuracy(),
              report->correct, report->segments_evaluated);

  // Lifecycle accounting: every submitted request must have resolved
  // exactly one way — evaluated (possibly degraded), shed, or
  // deadline-exceeded. A leak here means a request was dropped or double
  // counted, which is a serving bug, so it fails the command.
  const size_t submitted =
      report->segments_closed - report->segments_outside_label_set;
  const size_t accounted = report->segments_evaluated + report->shed +
                           report->deadline_exceeded;
  std::printf(
      "lifecycle: %zu submitted = %zu evaluated (%zu degraded: "
      "previous_model=%zu, majority_class=%zu) + %zu shed "
      "+ %zu deadline-exceeded; %zu retries\n",
      submitted, report->segments_evaluated, report->degraded,
      report->degraded_previous_model, report->degraded_majority_class,
      report->shed, report->deadline_exceeded, report->retries);
  if (accounted != submitted) {
    std::fprintf(stderr,
                 "serve-replay: request accounting leak (%zu submitted, "
                 "%zu accounted)\n",
                 submitted, accounted);
    return 1;
  }

  // Telemetry summary + SLO transition log: tick positions are corpus
  // positions, so (for SLOs over deterministic counters) every line here
  // is byte-identical at any thread/shard count — the CI telemetry
  // determinism leg diffs the "slo:" lines across t1/t8 x s1/s8.
  if (timeseries.has_value()) {
    std::printf("telemetry: %zu ticks, %zu series (capacity %zu)\n",
                timeseries->tick_count(), timeseries->series_count(),
                timeseries->capacity());
  }
  if (slo.has_value()) {
    for (const std::string& line : slo->transition_log()) {
      std::printf("slo: %s\n", line.c_str());
    }
    for (const obs::SloState& state : slo->states()) {
      std::printf("slo: final %s %s burn_fast=%.6g burn_slow=%.6g "
                  "budget_remaining=%.6g transitions=%llu\n",
                  state.name.c_str(), state.breached ? "breach" : "ok",
                  state.burn_fast, state.burn_slow, state.budget_remaining,
                  static_cast<unsigned long long>(state.transitions));
    }
  }

  // Continuous-training summary: every number here is a deterministic
  // function of the corpus (the CI continuous-training matrix diffs this
  // line across thread/shard counts alongside the predictions CSV).
  if (trainer.has_value()) {
    const serve::ContinuousTrainer::Stats& training = trainer->stats();
    const std::shared_ptr<const serve::ServingModel> active =
        registry.Acquire().active;
    std::printf(
        "training: %zu steps, %zu refits (%zu completed, %zu failed), "
        "%zu shadows, %zu promotions, %zu rejections, %zu drift "
        "triggers; serving %s\n",
        training.steps, training.refits_launched,
        training.refits_completed, training.fit_failures,
        training.shadows_installed, training.promotions,
        training.rejections, training.drift_triggers,
        active != nullptr ? active->version.c_str() : "?");
  }

  if (trajectory_store.has_value()) {
    const Status status = trajectory_store->SaveTo(store_out);
    if (!status.ok()) return Fail(status, "store save");
    std::printf("store: %zu segments -> %s\n", trajectory_store->size(),
                store_out.c_str());
  }

  // --predictions_out: the per-segment true/predicted classes in close
  // order — the byte-comparable artifact of the CI shard-determinism
  // matrix (identical at any --shards value).
  const std::string predictions_out = flags.GetString("predictions_out", "");
  if (!predictions_out.empty()) {
    CsvTable table;
    table.header = {"index", "true_class", "pred_class"};
    table.rows.reserve(report->y_true.size());
    for (size_t i = 0; i < report->y_true.size(); ++i) {
      table.rows.push_back({StrPrintf("%zu", i),
                            StrPrintf("%d", report->y_true[i]),
                            StrPrintf("%d", report->y_pred[i])});
    }
    const Status write = WriteCsvFile(predictions_out, table);
    if (!write.ok()) return Fail(write, "predictions CSV write");
    std::printf("predictions: %zu rows -> %s\n", table.rows.size(),
                predictions_out.c_str());
  }

  // The metrics/trace artifacts reflect the serving replay itself, so
  // dump them before the offline-comparison pipeline adds its own samples.
  if (!DumpMetrics(harness, timeseries.has_value() ? &*timeseries : nullptr)) {
    return 1;
  }
  if (!harness.DumpTrace()) return 1;

  // --http_linger: keep serving this exact post-replay snapshot until a
  // scraper hits /quitquitquit. Nothing mutates the registry between the
  // artifact dump above and here, so a /metrics scrape during the linger
  // is byte-identical to the --metrics_prom file (the CI scrape-smoke
  // leg compares them).
  if (http.has_value() && config.http_linger) {
    std::printf("http: lingering on 127.0.0.1:%d until /quitquitquit\n",
                http->port());
    std::fflush(stdout);
    std::unique_lock<std::mutex> lock(quit_mu);
    quit_cv.wait(lock, [&quit_requested] { return quit_requested; });
    std::printf("http: quit requested\n");
  }

  // Offline comparison: the batch pipeline on the same corpus with the
  // same segmentation rules, predicted through the same serving model.
  // The max-window rule has no offline counterpart, so skip when set;
  // chaos / deadline / shedding runs are not comparable either (requests
  // may be answered degraded or not at all).
  if (plane_options.session.max_segment_points > 0) {
    std::printf("(--max_window set: offline comparison skipped — the "
                "max-window rule has no offline counterpart)\n");
    return 0;
  }
  if (injector.has_value() || replay_options.deadline_seconds > 0.0 ||
      config.max_queue > 0) {
    std::printf("(chaos/deadline/admission flags set: offline comparison "
                "skipped — online answers are intentionally degraded)\n");
    return 0;
  }
  if (trainer.has_value()) {
    std::printf("(--continuous_training set: offline comparison skipped — "
                "the serving model evolves mid-replay)\n");
    return 0;
  }
  core::PipelineOptions pipeline_options;
  pipeline_options.segmentation.max_gap_seconds =
      plane_options.session.max_gap_seconds;
  const core::Pipeline pipeline(pipeline_options);
  auto dataset = pipeline.BuildDataset(corpus, labels.value());
  if (!dataset.ok()) return Fail(dataset.status(), "offline pipeline");
  const std::shared_ptr<const serve::ServingModel> model =
      registry.Acquire().active;
  std::vector<std::vector<double>> rows(dataset->num_samples());
  for (size_t r = 0; r < dataset->num_samples(); ++r) {
    const std::span<const double> row = dataset->features().Row(r);
    rows[r].assign(row.begin(), row.end());
  }
  auto offline = model->PredictBatch(rows);
  if (!offline.ok()) return Fail(offline.status(), "offline predict");
  size_t offline_correct = 0;
  for (size_t r = 0; r < offline->size(); ++r) {
    if ((*offline)[r].label == dataset->labels()[r]) ++offline_correct;
  }
  const double offline_accuracy =
      dataset->num_samples() == 0
          ? 0.0
          : static_cast<double>(offline_correct) /
                static_cast<double>(dataset->num_samples());
  std::printf("offline accuracy: %.4f (%zu/%zu)\n", offline_accuracy,
              offline_correct, dataset->num_samples());
  if (report->segments_evaluated == dataset->num_samples() &&
      report->correct == offline_correct) {
    std::printf("online == offline: segment count and accuracy match\n");
  } else {
    std::printf("WARNING: online and offline disagree (%zu vs %zu "
                "segments, %zu vs %zu correct)\n",
                report->segments_evaluated, dataset->num_samples(),
                report->correct, offline_correct);
  }
  return 0;
}

/// Parses a comma-separated list of exactly `expected` doubles.
Result<std::vector<double>> ParseDoubleList(const std::string& text,
                                            size_t expected,
                                            const char* what) {
  std::vector<double> values;
  for (std::string_view field : SplitString(text, ',')) {
    auto value = ParseDouble(StripWhitespace(field));
    if (!value.ok()) return value.status();
    values.push_back(value.value());
  }
  if (values.size() != expected) {
    return Status::InvalidArgument(
        StrPrintf("%s wants %zu comma-separated numbers, got %zu", what,
                  expected, values.size()));
  }
  return values;
}

void PrintSegmentRows(const store::TrajectoryStore& trajectory_store,
                      const std::vector<uint32_t>& ids, size_t limit) {
  std::printf("  %8s %8s %6s %6s %10s %10s %14s %14s %7s\n", "id", "session",
              "user", "day", "pred", "true", "start", "end", "points");
  const size_t show = ids.size() < limit ? ids.size() : limit;
  for (size_t i = 0; i < show; ++i) {
    const store::StoredSegment segment = trajectory_store.Segment(ids[i]);
    std::printf("  %8u %8lld %6d %6lld %10s %10s %14.0f %14.0f %7u\n",
                ids[i], static_cast<long long>(segment.session_id),
                segment.user_id, static_cast<long long>(segment.day),
                std::string(traj::ModeToString(segment.predicted_mode))
                    .c_str(),
                std::string(traj::ModeToString(segment.true_mode)).c_str(),
                segment.start_time, segment.end_time, segment.num_points);
  }
  if (ids.size() > show) {
    std::printf("  ... and %zu more (raise --limit to see them)\n",
                ids.size() - show);
  }
}

/// `trajkit query`: the read side. Loads a segment log written by
/// `serve-replay --store_out` and answers one of the three query shapes;
/// --oracle cross-checks the indexed answer against the brute-force scan.
int RunQuery(const Flags& flags) {
  const std::string store_path = flags.GetString("store", "");
  if (store_path.empty()) {
    std::fprintf(stderr, "query: --store=FILE is required\n");
    return 2;
  }
  store::TrajectoryStoreOptions store_options;
  if (flags.Has("str")) {
    store_options.strategy = store::BulkLoadStrategy::kStr;
  }
  store::TrajectoryStore trajectory_store(store_options);
  {
    const Status status = trajectory_store.Load(store_path);
    if (!status.ok()) return Fail(status, "store load");
  }
  std::printf("store: %zu segments from %s\n", trajectory_store.size(),
              store_path.c_str());

  store::TimeRange time = store::TimeRange::All();
  if (flags.Has("time")) {
    auto values =
        ParseDoubleList(flags.GetString("time", ""), 2, "--time");
    if (!values.ok()) return Fail(values.status(), "time range");
    time.begin = values.value()[0];
    time.end = values.value()[1];
  }
  auto mask = store::ParseModeMask(flags.GetString("mode", ""));
  if (!mask.ok()) return Fail(mask.status(), "mode mask");
  const size_t limit = static_cast<size_t>(flags.GetInt("limit", 20));
  const bool oracle = flags.Has("oracle");

  if (flags.Has("user")) {
    const int32_t user_id = flags.GetInt("user", 0);
    const std::vector<uint32_t> ids =
        trajectory_store.QueryUser(user_id, time);
    std::printf("user %d: %zu segments\n", user_id, ids.size());
    if (oracle &&
        ids != trajectory_store.QueryUserBruteForce(user_id, time)) {
      std::fprintf(stderr, "query: index disagrees with the oracle\n");
      return 1;
    }
    PrintSegmentRows(trajectory_store, ids, limit);
    if (oracle) std::printf("oracle check: identical\n");
    return 0;
  }

  if (flags.Has("hotspots")) {
    const double cell_deg = flags.GetDouble("hotspots", 0.01);
    if (cell_deg <= 0.0) {
      std::fprintf(stderr, "query: --hotspots wants a positive cell size\n");
      return 2;
    }
    const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
    const std::vector<store::HotspotCell> cells =
        trajectory_store.TopKHotspots(cell_deg, k, mask.value());
    std::printf("top %zu hotspot cells (%.4f deg grid)\n", cells.size(),
                cell_deg);
    if (oracle && cells != trajectory_store.TopKHotspotsBruteForce(
                               cell_deg, k, mask.value())) {
      std::fprintf(stderr, "query: index disagrees with the oracle\n");
      return 1;
    }
    std::printf("  %8s %8s %8s  %s\n", "cell_lat", "cell_lon", "count",
                "bounds (lat, lon)");
    for (const store::HotspotCell& cell : cells) {
      std::printf("  %8lld %8lld %8llu  [%.4f, %.4f] x [%.4f, %.4f]\n",
                  static_cast<long long>(cell.cell_lat),
                  static_cast<long long>(cell.cell_lon),
                  static_cast<unsigned long long>(cell.count),
                  cell.bounds.min_lat, cell.bounds.max_lat,
                  cell.bounds.min_lon, cell.bounds.max_lon);
    }
    if (oracle) std::printf("oracle check: identical\n");
    return 0;
  }

  geo::BoundingBox box;
  box.Extend(geo::LatLon{-90.0, -180.0});
  box.Extend(geo::LatLon{90.0, 180.0});
  if (flags.Has("bbox")) {
    auto values =
        ParseDoubleList(flags.GetString("bbox", ""), 4, "--bbox");
    if (!values.ok()) return Fail(values.status(), "bbox");
    box = geo::BoundingBox();
    box.Extend(geo::LatLon{values.value()[0], values.value()[1]});
    box.Extend(geo::LatLon{values.value()[2], values.value()[3]});
  }
  const std::vector<uint32_t> ids =
      trajectory_store.QueryBBox(box, time, mask.value());
  std::printf("bbox [%.4f, %.4f] x [%.4f, %.4f]: %zu segments\n",
              box.min_lat, box.max_lat, box.min_lon, box.max_lon,
              ids.size());
  if (oracle &&
      ids != trajectory_store.QueryBBoxBruteForce(box, time, mask.value())) {
    std::fprintf(stderr, "query: index disagrees with the oracle\n");
    return 1;
  }
  PrintSegmentRows(trajectory_store, ids, limit);
  if (oracle) std::printf("oracle check: identical\n");
  const store::StoreStats stats = trajectory_store.stats();
  std::printf("index: %zu nodes, height %zu, %zu visited\n",
              stats.index_nodes, stats.index_height, stats.nodes_visited);
  return 0;
}

/// `trajkit statusz`: a self-contained serving demo that renders the
/// text status page. Everything runs in-process on a synthetic corpus —
/// generate, train a small forest, replay through the serving stack
/// (chaos + deadlines on by default so every section of the page is
/// populated), then print serve::RenderStatusPage. Pass --fault_spec=
/// (empty) for a clean, fault-free page.
int RunStatusz(const Flags& flags) {
  // The flight recorder is always on for statusz — the page's "retained
  // traces" section is the point — honoring --trace_sample/--trace_buffer.
  const HarnessOptions harness = HarnessOptions::FromFlags(flags);
  {
    obs::RequestTracerOptions tracer_options;
    tracer_options.enabled = true;
    tracer_options.sample_every =
        harness.trace_sample == 0 ? 1 : harness.trace_sample;
    tracer_options.buffer_capacity =
        harness.trace_buffer == 0 ? 8192 : harness.trace_buffer;
    obs::RequestTracer::Global().Configure(tracer_options);
  }

  auto config_or = serve::ParseServeFlags(flags, serve::StatuszDefaults());
  if (!config_or.ok()) return Fail(config_or.status(), "serve flags");
  const serve::ServeConfig& config = config_or.value();

  synthgeo::GeneratorOptions generator_options;
  generator_options.num_users = config.users;
  generator_options.days_per_user = config.days;
  generator_options.seed = config.seed;
  synthgeo::GeoLifeLikeGenerator generator(generator_options);
  const std::vector<traj::Trajectory> corpus = generator.Generate();

  auto labels = LabelSetFromFlags(flags);
  if (!labels.ok()) return Fail(labels.status(), "label set");

  const core::Pipeline pipeline{core::PipelineOptions{}};
  auto dataset = pipeline.BuildDataset(corpus, labels.value());
  if (!dataset.ok()) return Fail(dataset.status(), "pipeline");

  ml::RandomForestParams params;
  params.n_estimators = config.trees;
  params.seed = flags.GetUint64("seed", 42);
  ml::RandomForest forest(params);
  const Status fit = forest.Fit(dataset.value());
  if (!fit.ok()) return Fail(fit, "training");

  serve::ModelRegistry registry;
  {
    auto model = serve::MakeServingModel("statusz-v1", std::move(forest),
                                         traj::kNumTrajectoryFeatures, {});
    if (!model.ok()) return Fail(model.status(), "serving model");
    const Status status = registry.Publish(std::move(model).value());
    if (!status.ok()) return Fail(status, "registry");
  }

  // Chaos defaults on (StatuszDefaults) so the faults / degraded /
  // retained-traces sections show live numbers; --fault_spec= (empty
  // value) turns it off. Two shards by default so the per-shard section
  // renders with real numbers.
  serve::ServingPlaneOptions plane_options = config.MakePlaneOptions();
  std::optional<serve::FaultInjector> injector;
  if (config.fault_spec.has_value()) {
    injector.emplace(config.fault_spec.value());
    plane_options.batching.fault_injector = &*injector;
    std::vector<double> prior(
        static_cast<size_t>(labels->num_classes()), 0.0);
    for (const traj::Trajectory& trajectory : corpus) {
      for (const traj::TrajectoryPoint& point : trajectory.points) {
        const int cls = labels->ClassOf(point.mode);
        if (cls >= 0) prior[static_cast<size_t>(cls)] += 1.0;
      }
    }
    plane_options.batching.label_prior = std::move(prior);
  }

  serve::ReplayOptions replay_options = config.MakeReplayOptions();

  // --continuous_training: run the refit/shadow/promotion loop during the
  // demo replay so the page's shadow + registry-audit sections render
  // live numbers.
  std::optional<serve::ContinuousTrainer> trainer;
  if (config.ct.enabled) {
    trainer.emplace(&registry, labels.value(), config.ct.MakeOptions());
    plane_options.batching.shadow_evaluator = &trainer->evaluator();
    replay_options.trainer = &*trainer;
  }

  // The statusz demo always arms the telemetry plane so the page's slo +
  // timeseries sections render live sparklines: --slo_spec overrides the
  // built-in demo objectives (a p99 latency ceiling and a shed-rate
  // ceiling).
  obs::TimeSeriesOptions ts_options;
  ts_options.capacity = config.timeseries_capacity;
  obs::TimeSeriesStore timeseries(obs::MetricsRegistry::Global(),
                                  ts_options);
  timeseries.TrackCounter("serve.sessions.points_ingested");
  timeseries.TrackCounter("serve.sessions.segments_emitted");
  timeseries.TrackCounter("serve.batch_predictor.requests");
  timeseries.TrackGauge("serve.sessions.active");
  timeseries.TrackHistogram("serve.batch_predictor.latency_seconds");
  std::vector<obs::SloSpec> slo_specs = config.slo_specs;
  if (slo_specs.empty()) {
    std::string error;
    const bool parsed = obs::ParseSloSpecs(
        "latency_p99:type=latency,"
        "metric=serve.batch_predictor.latency_seconds,ceiling_ms=50,"
        "budget=0.05,fast=4,slow=16;"
        "shed:type=ratio,bad=serve.shed_total.queue_full+"
        "serve.shed_total.preempted,total=serve.batch_predictor.requests,"
        "budget=0.02,fast=4,slow=16",
        &slo_specs, &error);
    if (!parsed) {
      std::fprintf(stderr, "statusz: built-in slo spec: %s\n",
                   error.c_str());
      return 1;
    }
  }
  obs::SloEngine slo(&timeseries, &obs::MetricsRegistry::Global(),
                     std::move(slo_specs));
  size_t tick_index = 0;
  replay_options.tick_every_segments = config.tick_every;
  replay_options.tick = [&timeseries, &slo, &tick_index] {
    timeseries.Tick(static_cast<double>(tick_index));
    slo.Evaluate(tick_index);
    ++tick_index;
  };

  serve::ServingPlane plane(&registry, plane_options);
  // Feed a trajectory store from the replay so the page's store section
  // renders live numbers, and touch each query path once.
  store::TrajectoryStore trajectory_store;
  replay_options.closed_sink = [&trajectory_store, &labels](
                                   const serve::ClosedSegment& segment,
                                   int predicted_class) {
    const traj::Mode predicted = predicted_class >= 0
                                     ? labels->ModeOf(predicted_class)
                                     : segment.mode;
    trajectory_store.Ingest(store::FromClosedSegment(segment, predicted));
  };
  auto report = serve::ReplayCorpus(corpus, labels.value(), plane,
                                    replay_options);
  if (!report.ok()) return Fail(report.status(), "replay");
  geo::BoundingBox everywhere;
  everywhere.Extend(geo::LatLon{-90.0, -180.0});
  everywhere.Extend(geo::LatLon{90.0, 180.0});
  (void)trajectory_store.QueryBBox(everywhere);
  (void)trajectory_store.TopKHotspots(/*cell_deg=*/0.01, /*k=*/5);

  serve::StatusPageOptions page;
  page.timeseries = &timeseries;
  page.slo = &slo;
  std::printf("%s", serve::RenderStatusPage(
                        obs::MetricsRegistry::Global(),
                        obs::RequestTracer::Global(), page)
                        .c_str());
  if (!DumpMetrics(harness, &timeseries)) return 1;
  if (!harness.DumpTrace()) return 1;
  return 0;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  // Every command honors the shared harness trio (common/harness_options):
  // --threads=N bounds the worker pool (0/absent keeps the process
  // default, which itself honors the TRAJKIT_THREADS environment
  // variable); --metrics_json is read by the commands that dump metrics.
  HarnessOptions::FromFlags(flags).ApplyThreads();
  if (flags.positional().empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string& command = flags.positional().front();
  if (command == "generate") return RunGenerate(flags);
  if (command == "features") return RunFeatures(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "predict") return RunPredict(flags);
  if (command == "serve-replay") return RunServeReplay(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "statusz") return RunStatusz(flags);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
