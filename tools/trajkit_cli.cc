// trajkit — command-line front end for the library's end-to-end workflow:
//
//   trajkit generate  --out=DIR [--users=N] [--days=D] [--seed=S]
//       Synthesize a GeoLife-like corpus and write it in the real GeoLife
//       directory layout (<out>/<user>/Trajectory/*.plt + labels.txt).
//
//   trajkit features  (--data=DIR | --synthetic) --out=FILE.csv
//                     [--labels=dabiri|endo|all] [--extended]
//                     [--windows=SECONDS] [--denoise]
//       Run the paper's pipeline (steps 1-3, optionally 6) and write the
//       feature matrix as CSV (with __label/__group columns).
//
//   trajkit train     --dataset=FILE.csv --model=FILE.model
//                     [--trees=50] [--balanced] [--seed=S]
//       Train a random forest on a feature CSV and save it.
//
//   trajkit evaluate  --dataset=FILE.csv [--classifier=random_forest]
//                     [--scheme=random|stratified|user|temporal]
//                     [--folds=5]
//                     [--scale=1.0] [--seed=S]
//       Cross-validated evaluation with a full classification report.
//
//   trajkit predict   --dataset=FILE.csv --model=FILE.model
//       Load a saved forest, predict, and (when labels are present)
//       report accuracy and a confusion matrix.
//
// Every command also accepts --threads=N to bound the shared worker pool
// (default: TRAJKIT_THREADS env var, else hardware concurrency). Results
// are bit-identical at any thread count.

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/experiments.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "geolife/geolife_reader.h"
#include "ml/crossval.h"
#include "ml/dataset_io.h"
#include "ml/factory.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "ml/random_forest.h"
#include "synthgeo/generator.h"

namespace trajkit {
namespace {

constexpr char kUsage[] =
    "usage: trajkit <generate|features|train|evaluate|predict> [--flags]\n"
    "run `trajkit <command> --help` or see the file header for details\n";

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  return 1;
}

synthgeo::GeneratorOptions GeneratorOptionsFromFlags(const Flags& flags) {
  synthgeo::GeneratorOptions options;
  options.num_users = flags.GetInt("users", 20);
  options.days_per_user = flags.GetInt("days", 4);
  options.seed = flags.GetUint64("seed", 7);
  return options;
}

Result<core::LabelSet> LabelSetFromFlags(const Flags& flags) {
  const std::string name = flags.GetString("labels", "dabiri");
  if (name == "dabiri") return core::LabelSet::Dabiri();
  if (name == "endo") return core::LabelSet::Endo();
  if (name == "all") return core::LabelSet::AllModes();
  return Status::InvalidArgument("unknown label set: '" + name +
                                 "' (want dabiri|endo|all)");
}

int RunGenerate(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out=DIR is required\n");
    return 2;
  }
  synthgeo::GeoLifeLikeGenerator generator(GeneratorOptionsFromFlags(flags));
  Stopwatch timer;
  const std::vector<traj::Trajectory> corpus = generator.Generate();
  const Status status = geolife::ExportGeoLifeCorpus(corpus, out);
  if (!status.ok()) return Fail(status, "export");
  std::printf("%s", generator.summary().ToString().c_str());
  std::printf("wrote %zu users to %s (%.1fs)\n", corpus.size(), out.c_str(),
              timer.ElapsedSeconds());
  return 0;
}

int RunFeatures(const Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "features: --out=FILE.csv is required\n");
    return 2;
  }
  // Corpus: real directory or synthetic.
  std::vector<traj::Trajectory> corpus;
  const std::string data = flags.GetString("data", "");
  if (!data.empty()) {
    auto loaded = geolife::LoadGeoLifeCorpus(data);
    if (!loaded.ok()) return Fail(loaded.status(), "GeoLife load");
    corpus = std::move(loaded).value();
  } else {
    synthgeo::GeoLifeLikeGenerator generator(
        GeneratorOptionsFromFlags(flags));
    corpus = generator.Generate();
    std::printf("(no --data; generated a synthetic corpus: %zu points)\n",
                generator.summary().total_points);
  }

  auto labels = LabelSetFromFlags(flags);
  if (!labels.ok()) return Fail(labels.status(), "label set");

  core::PipelineOptions options;
  options.remove_noise = flags.GetBool("denoise", false);
  options.include_extended_features = flags.GetBool("extended", false);
  if (flags.Has("windows")) {
    options.strategy = core::SegmentationStrategy::kFixedWindows;
    options.windows.window_seconds = flags.GetDouble("windows", 180.0);
  }
  const core::Pipeline pipeline(options);
  auto dataset = pipeline.BuildDataset(corpus, labels.value());
  if (!dataset.ok()) return Fail(dataset.status(), "pipeline");

  const Status status = ml::SaveDatasetCsv(dataset.value(), out);
  if (!status.ok()) return Fail(status, "CSV write");
  std::printf("wrote %zu segments x %zu features to %s\n",
              dataset->num_samples(), dataset->num_features(), out.c_str());
  return 0;
}

int RunTrain(const Flags& flags) {
  const std::string dataset_path = flags.GetString("dataset", "");
  const std::string model_path = flags.GetString("model", "");
  if (dataset_path.empty() || model_path.empty()) {
    std::fprintf(stderr,
                 "train: --dataset=FILE.csv and --model=FILE are required\n");
    return 2;
  }
  auto dataset = ml::LoadDatasetCsv(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status(), "dataset load");

  ml::RandomForestParams params;
  params.n_estimators = flags.GetInt("trees", 50);
  params.balanced_class_weights = flags.GetBool("balanced", false);
  params.seed = flags.GetUint64("seed", 42);
  ml::RandomForest forest(params);
  Stopwatch timer;
  const Status fit = forest.Fit(dataset.value());
  if (!fit.ok()) return Fail(fit, "training");
  const Status save = ml::SaveRandomForest(forest, model_path);
  if (!save.ok()) return Fail(save, "model save");
  std::printf(
      "trained random forest (%d trees) on %zu samples in %.1fs -> %s\n",
      params.n_estimators, dataset->num_samples(), timer.ElapsedSeconds(),
      model_path.c_str());
  return 0;
}

int RunEvaluate(const Flags& flags) {
  const std::string dataset_path = flags.GetString("dataset", "");
  if (dataset_path.empty()) {
    std::fprintf(stderr, "evaluate: --dataset=FILE.csv is required\n");
    return 2;
  }
  auto dataset = ml::LoadDatasetCsv(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status(), "dataset load");

  const std::string classifier_name =
      flags.GetString("classifier", "random_forest");
  auto model = ml::MakeClassifier(
      classifier_name,
      {.seed = flags.GetUint64("seed", 42),
       .scale = flags.GetDouble("scale", 1.0)});
  if (!model.ok()) return Fail(model.status(), "classifier");

  auto scheme = core::CvSchemeFromString(
      flags.GetString("scheme", "random"));
  if (!scheme.ok()) return Fail(scheme.status(), "scheme");
  const int folds = flags.GetInt("folds", 5);
  const auto cv_folds = core::MakeFolds(
      scheme.value(), dataset.value(), folds,
      flags.GetUint64("seed", 42));
  Stopwatch timer;
  const auto cv = ml::CrossValidate(*model.value(), dataset.value(),
                                    cv_folds);
  if (!cv.ok()) return Fail(cv.status(), "cross-validation");

  std::printf("%s, %s %d-fold CV on %zu samples (%.1fs)\n",
              classifier_name.c_str(),
              std::string(core::CvSchemeToString(scheme.value())).c_str(),
              folds, dataset->num_samples(), timer.ElapsedSeconds());
  std::printf("accuracy: %.4f ± %.4f   weighted F1: %.4f\n",
              cv->MeanAccuracy(), cv->StdAccuracy(), cv->MeanWeightedF1());
  std::printf("cohen's kappa: %.4f   balanced accuracy: %.4f\n",
              ml::CohensKappa(cv->pooled_true, cv->pooled_pred,
                              dataset->num_classes()),
              ml::BalancedAccuracy(cv->pooled_true, cv->pooled_pred,
                                   dataset->num_classes()));
  const ml::ClassificationReport report = ml::Evaluate(
      cv->pooled_true, cv->pooled_pred, dataset->num_classes());
  std::printf("%s", report.ToString(dataset->class_names()).c_str());
  return 0;
}

int RunPredict(const Flags& flags) {
  const std::string dataset_path = flags.GetString("dataset", "");
  const std::string model_path = flags.GetString("model", "");
  if (dataset_path.empty() || model_path.empty()) {
    std::fprintf(stderr,
                 "predict: --dataset=FILE.csv and --model=FILE are "
                 "required\n");
    return 2;
  }
  auto dataset = ml::LoadDatasetCsv(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status(), "dataset load");
  auto forest = ml::LoadRandomForest(model_path);
  if (!forest.ok()) return Fail(forest.status(), "model load");

  const std::vector<int> predictions =
      forest->Predict(dataset->features());
  size_t shown = 0;
  for (size_t i = 0; i < predictions.size() && shown < 20; ++i, ++shown) {
    std::printf("sample %zu -> class %d\n", i, predictions[i]);
  }
  if (predictions.size() > 20) {
    std::printf("... (%zu predictions total)\n", predictions.size());
  }
  // When the CSV carries labels, report quality.
  const ml::ClassificationReport report = ml::Evaluate(
      dataset->labels(), predictions, dataset->num_classes());
  std::printf("\naccuracy vs. CSV labels: %.4f\n%s", report.accuracy,
              ml::ConfusionMatrix(dataset->labels(), predictions,
                                  dataset->num_classes())
                  .ToString(dataset->class_names())
                  .c_str());
  return 0;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  // Every command honors --threads=N (0/absent keeps the process default,
  // which itself honors the TRAJKIT_THREADS environment variable).
  const int threads = flags.GetInt("threads", 0);
  if (threads > 0) SetMaxThreads(threads);
  if (flags.positional().empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string& command = flags.positional().front();
  if (command == "generate") return RunGenerate(flags);
  if (command == "features") return RunFeatures(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "predict") return RunPredict(flags);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
