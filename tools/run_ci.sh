#!/usr/bin/env bash
# TrajKit CI driver, run locally or by .github/workflows/ci.yml:
#
#   1. tier-1: configure (-Werror) + build + full ctest
#   2. shard determinism: the same replay corpus at --shards=1/2/8 must
#      produce byte-identical predictions, lifecycle accounting, and
#      deterministic metrics (tools/check_shard_metrics.py)
#   3. continuous-training determinism: the same replay with
#      --continuous_training at t1/t8 × s1/s2/s8 must be byte-identical
#      (predictions + lifecycle + training lines + deterministic
#      registry/shadow/ct counters) with >= 1 auto-promotion
#   4. telemetry determinism + scrape smoke: tick-sampled time-series
#      dumps and SLO transitions byte-identical at t1/t8 × s1/s8; a
#      lingering serve-replay's /metrics byte-matches --metrics_prom and
#      passes tools/check_prom.py, then exits via /quitquitquit
#   5. chaos smokes: fault-injection replay (sharded) and a
#      shadow-promotion run under chaos — >= 1 promotion in the trace
#      export, metrics, and the statusz registry-audit section
#   6. TSan:   concurrency-labelled tests under ThreadSanitizer
#   7. ASan:   the full suite under AddressSanitizer
#   8. bench:  perf-regression gate (tools/check_bench.py) against the
#              checked-in BENCH_baseline.json, incl. the shadow-scoring
#              and telemetry-tick ingest-overhead self-gates
#              (--require_shadow_overhead / --require_tick_overhead)
#
# Usage: tools/run_ci.sh [--skip-tsan] [--skip-asan] [--skip-bench]
# Env:   BUILD_DIR (default build), TSAN_BUILD_DIR (default build-tsan),
#        ASAN_BUILD_DIR (default build-asan), JOBS (default nproc),
#        BENCH_RUNS (default 2, best-of-N for the perf gate).
#
# All sanitizer/bench legs reuse their build directories across runs; a
# ccache install is picked up automatically for faster rebuilds.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
JOBS="${JOBS:-$(nproc)}"
BENCH_RUNS="${BENCH_RUNS:-2}"
SKIP_TSAN=0
SKIP_ASAN=0
SKIP_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-bench) SKIP_BENCH=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Warnings are errors in CI; local developer builds stay permissive.
COMMON_CMAKE_ARGS=(-DTRAJKIT_WERROR=ON)
if command -v ccache >/dev/null 2>&1; then
  COMMON_CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  echo "==> ccache enabled"
fi

echo "==> tier-1: configure + build (${BUILD_DIR})"
cmake -B "$BUILD_DIR" -S . "${COMMON_CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Shard-determinism matrix: the sharding refactor must be invisible to
# the replayed workload. One corpus, one model, three shard counts —
# the per-segment predictions CSV and the lifecycle accounting line must
# be byte-identical, and the deterministic metrics must agree modulo the
# shard-labelled mirrors (which must sum back to the shards=1 totals).
echo "==> shard determinism: serve-replay at --shards=1/2/8"
SHARD_OUT="$BUILD_DIR/shard-determinism"
mkdir -p "$SHARD_OUT"
"$BUILD_DIR"/tools/trajkit features --users=6 --days=2 --seed=42 \
  --out="$SHARD_OUT/features.csv" >/dev/null
"$BUILD_DIR"/tools/trajkit train --dataset="$SHARD_OUT/features.csv" \
  --trees=15 --model="$SHARD_OUT/rf.model" >/dev/null
for shards in 1 2 8; do
  "$BUILD_DIR"/tools/trajkit serve-replay --users=6 --days=2 --seed=42 \
    --model="$SHARD_OUT/rf.model" --shards="$shards" \
    --predictions_out="$SHARD_OUT/predictions_s$shards.csv" \
    --metrics_json="$SHARD_OUT/metrics_s$shards.json" \
    > "$SHARD_OUT/replay_s$shards.log"
  grep '^lifecycle:' "$SHARD_OUT/replay_s$shards.log" \
    > "$SHARD_OUT/lifecycle_s$shards.txt"
done
for shards in 2 8; do
  cmp "$SHARD_OUT/predictions_s1.csv" \
      "$SHARD_OUT/predictions_s$shards.csv" || {
    echo "shard determinism: predictions diverge at --shards=$shards" >&2
    exit 1
  }
  diff "$SHARD_OUT/lifecycle_s1.txt" "$SHARD_OUT/lifecycle_s$shards.txt" || {
    echo "shard determinism: lifecycle accounting diverges at --shards=$shards" >&2
    exit 1
  }
done
python3 tools/check_shard_metrics.py "$SHARD_OUT/metrics_s1.json" \
  "$SHARD_OUT/metrics_s2.json" "$SHARD_OUT/metrics_s8.json"

# Continuous-training determinism matrix: with the refit/shadow/promotion
# loop live (--continuous_training), the replay must STILL be
# byte-identical at any thread or shard count — registry mutations only
# happen at replay-step barriers, so which model answers which request is
# a pure function of the corpus. The training summary line (steps,
# refits, promotions, final served version) must agree too, and the run
# must contain at least one auto-promotion or the leg proves nothing.
echo "==> continuous-training determinism: serve-replay at --threads=1/8 x --shards=1/2/8"
CT_OUT="$BUILD_DIR/ct-determinism"
mkdir -p "$CT_OUT"
CT_FLAGS=(--users=6 --days=2 --seed=42 --model="$SHARD_OUT/rf.model"
  --continuous_training --step_every=8 --refit_every=16 --min_fit=16
  --min_shadow=8 --promote_epsilon=-1 --ct_trees=10 --ct_buffer=256)
for config in "t1_s1 --threads=1 --shards=1" "t8_s1 --threads=8 --shards=1" \
              "t1_s2 --threads=1 --shards=2" "t8_s8 --threads=8 --shards=8"; do
  # shellcheck disable=SC2086
  set -- $config
  tag="$1"; shift
  "$BUILD_DIR"/tools/trajkit serve-replay "${CT_FLAGS[@]}" "$@" \
    --predictions_out="$CT_OUT/predictions_$tag.csv" \
    --metrics_json="$CT_OUT/metrics_$tag.json" \
    > "$CT_OUT/replay_$tag.log"
  grep '^lifecycle:\|^training:' "$CT_OUT/replay_$tag.log" \
    > "$CT_OUT/summary_$tag.txt"
done
grep -E '^training: .* [1-9][0-9]* promotions' "$CT_OUT/summary_t1_s1.txt" \
  >/dev/null || {
    echo "ct determinism: the matrix corpus produced no promotion" >&2
    exit 1
  }
for tag in t8_s1 t1_s2 t8_s8; do
  cmp "$CT_OUT/predictions_t1_s1.csv" "$CT_OUT/predictions_$tag.csv" || {
    echo "ct determinism: predictions diverge at $tag" >&2
    exit 1
  }
  diff "$CT_OUT/summary_t1_s1.txt" "$CT_OUT/summary_$tag.txt" || {
    echo "ct determinism: lifecycle/training summary diverges at $tag" >&2
    exit 1
  }
done
python3 tools/check_shard_metrics.py "$CT_OUT/metrics_t1_s1.json" \
  "$CT_OUT/metrics_t1_s2.json" "$CT_OUT/metrics_t8_s8.json"

# Telemetry determinism matrix: the live telemetry plane samples at
# replay barriers, so the tick-sampled time-series rings and the SLO
# burn-rate transitions are a pure function of the corpus — the
# --timeseries_json dump and the slo/telemetry summary lines must be
# byte-identical at any thread or shard count.
echo "==> telemetry determinism: serve-replay at --threads=1/8 x --shards=1/8"
TELE_OUT="$BUILD_DIR/telemetry"
mkdir -p "$TELE_OUT"
TELE_SLO='shed:type=ratio,bad=serve.shed_total.queue_full+serve.shed_total.preempted,total=serve.batch_predictor.requests,budget=0.02,fast=4,slow=16'
for config in "t1_s1 --threads=1 --shards=1" "t8_s1 --threads=8 --shards=1" \
              "t1_s8 --threads=1 --shards=8" "t8_s8 --threads=8 --shards=8"; do
  # shellcheck disable=SC2086
  set -- $config
  tag="$1"; shift
  "$BUILD_DIR"/tools/trajkit serve-replay --users=6 --days=2 --seed=42 \
    --model="$SHARD_OUT/rf.model" "$@" --tick_every=16 \
    --slo_spec="$TELE_SLO" \
    --timeseries_json="$TELE_OUT/timeseries_$tag.json" \
    > "$TELE_OUT/replay_$tag.log"
  grep '^telemetry:\|^slo:' "$TELE_OUT/replay_$tag.log" \
    > "$TELE_OUT/summary_$tag.txt"
done
grep -q '^telemetry: [1-9]' "$TELE_OUT/summary_t1_s1.txt" || {
  echo "telemetry determinism: the replay never ticked" >&2
  exit 1
}
for tag in t8_s1 t1_s8 t8_s8; do
  cmp "$TELE_OUT/timeseries_t1_s1.json" "$TELE_OUT/timeseries_$tag.json" || {
    echo "telemetry determinism: time-series dump diverges at $tag" >&2
    exit 1
  }
  diff "$TELE_OUT/summary_t1_s1.txt" "$TELE_OUT/summary_$tag.txt" || {
    echo "telemetry determinism: slo/telemetry summary diverges at $tag" >&2
    exit 1
  }
done

# Scrape smoke: a lingering serve-replay serves the frozen post-run
# snapshot over HTTP; /metrics must byte-match the --metrics_prom file
# (a scrape never mutates what it exports), both must pass the
# exposition-format lint, and /quitquitquit ends the process cleanly —
# no signals, no sleeps against a moving target.
echo "==> scrape smoke: serve-replay --http_port=0 --http_linger"
"$BUILD_DIR"/tools/trajkit serve-replay --users=6 --days=2 --seed=42 \
  --model="$SHARD_OUT/rf.model" --tick_every=16 --slo_spec="$TELE_SLO" \
  --http_port=0 --http_linger \
  --metrics_prom="$TELE_OUT/metrics.prom" \
  --timeseries_json="$TELE_OUT/timeseries.json" \
  > "$TELE_OUT/http.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 200); do
  PORT=$(sed -n 's/^http: lingering on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$TELE_OUT/http.log" | head -1)
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
[[ -n "$PORT" ]] || {
  echo "scrape smoke: server never reached the linger state" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
}
scrape() {
  python3 -c 'import sys, urllib.request
with urllib.request.urlopen(sys.argv[1]) as response:
    sys.stdout.buffer.write(response.read())' "http://127.0.0.1:$PORT$1"
}
scrape /metrics > "$TELE_OUT/scrape_metrics.prom"
cmp "$TELE_OUT/metrics.prom" "$TELE_OUT/scrape_metrics.prom" || {
  echo "scrape smoke: /metrics differs from the --metrics_prom file" >&2
  exit 1
}
python3 tools/check_prom.py "$TELE_OUT/metrics.prom" \
  "$TELE_OUT/scrape_metrics.prom"
scrape /timeseries.json > "$TELE_OUT/scrape_timeseries.json"
cmp "$TELE_OUT/timeseries.json" "$TELE_OUT/scrape_timeseries.json" || {
  echo "scrape smoke: /timeseries.json differs from the --timeseries_json file" >&2
  exit 1
}
scrape /healthz | grep -qx ok || {
  echo "scrape smoke: /healthz is not ok" >&2
  exit 1
}
scrape /metrics.json | python3 -c 'import json, sys; json.load(sys.stdin)'
scrape /statusz > "$TELE_OUT/scrape_statusz.txt"
grep -q '^slo$' "$TELE_OUT/scrape_statusz.txt" || {
  echo "scrape smoke: /statusz lost its slo section" >&2
  exit 1
}
grep -q '^timeseries$' "$TELE_OUT/scrape_statusz.txt" || {
  echo "scrape smoke: /statusz lost its timeseries section" >&2
  exit 1
}
scrape /quitquitquit >/dev/null
wait "$SERVE_PID" || {
  echo "scrape smoke: lingering serve-replay exited nonzero" >&2
  exit 1
}
echo "scrape smoke: ok (port $PORT)"

# Fault-injection smoke: a chaos replay must survive (exit 0, every
# request accounted — the CLI itself fails on a lifecycle leak) AND the
# chaos must actually bite: at least one request shed or degraded, with
# the last-good-snapshot rung (previous_model) demonstrably exercised.
# The same run dumps the flight recorder; tools/check_trace.py proves
# the Chrome trace is loadable, every span's trace id resolves in the
# request log, and a fault-injected request was tail-kept.
echo "==> chaos smoke: serve-replay under --fault_spec"
CHAOS_OUT="$BUILD_DIR/chaos-smoke"
mkdir -p "$CHAOS_OUT"
"$BUILD_DIR"/tools/trajkit features --users=6 --days=2 --seed=42 \
  --out="$CHAOS_OUT/features.csv" >/dev/null
"$BUILD_DIR"/tools/trajkit train --dataset="$CHAOS_OUT/features.csv" \
  --trees=15 --model="$CHAOS_OUT/rf.model" >/dev/null
"$BUILD_DIR"/tools/trajkit serve-replay --users=6 --days=2 --seed=42 \
  --model="$CHAOS_OUT/rf.model" \
  --deadline_ms=100 --max_queue=16 --retries=2 \
  --fault_spec="swap_stall:p=0.2,latency_ms=5;predict_fail:p=0.2;batch_delay:p=0.3,latency_ms=2;seed=3" \
  --metrics_json="$CHAOS_OUT/metrics.json" \
  --trace_json="$CHAOS_OUT/trace.json" | tee "$CHAOS_OUT/replay.log"
grep -E "lifecycle: .* degraded: previous_model=" "$CHAOS_OUT/replay.log" \
  >/dev/null || {
    echo "chaos smoke: accounting line lost its per-rung counts" >&2
    exit 1
  }
python3 - "$CHAOS_OUT/metrics.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
shed = sum(v for k, v in counters.items() if k.startswith("serve.shed_total"))
degraded = sum(
    v for k, v in counters.items() if k.startswith("serve.degraded_total"))
previous_model = counters.get("serve.degraded_total.previous_model", 0)
print(f"chaos smoke: shed={shed} degraded={degraded} "
      f"previous_model={previous_model}")
if shed + degraded == 0:
    sys.exit("chaos smoke: fault spec injected nothing "
             "(expected nonzero serve.shed_total or serve.degraded_total)")
if previous_model == 0:
    sys.exit("chaos smoke: the last-good-snapshot rung was never "
             "exercised (serve.degraded_total.previous_model == 0)")
EOF
python3 tools/check_trace.py "$CHAOS_OUT/trace.json" \
  --require-tail-kept-fault

# The same chaos must bite when the plane is sharded: admission control
# and the degradation ladder are per-shard now, so re-run at --shards=8
# and re-assert the shed/degraded counters (the shard mirrors must light
# up too — a silent fall-back to one shard would pass the first run).
"$BUILD_DIR"/tools/trajkit serve-replay --users=6 --days=2 --seed=42 \
  --model="$CHAOS_OUT/rf.model" --shards=8 \
  --deadline_ms=100 --max_queue=16 --retries=2 \
  --fault_spec="swap_stall:p=0.2,latency_ms=5;predict_fail:p=0.2;batch_delay:p=0.3,latency_ms=2;seed=3" \
  --metrics_json="$CHAOS_OUT/metrics_s8.json" | tee "$CHAOS_OUT/replay_s8.log"
grep -E "lifecycle: .* degraded: previous_model=" "$CHAOS_OUT/replay_s8.log" \
  >/dev/null || {
    echo "chaos smoke (sharded): accounting line lost its per-rung counts" >&2
    exit 1
  }
python3 - "$CHAOS_OUT/metrics_s8.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
shed = sum(v for k, v in counters.items()
           if k.startswith("serve.shed_total"))
degraded = sum(v for k, v in counters.items()
               if k.startswith("serve.degraded_total"))
previous_model = counters.get("serve.degraded_total.previous_model", 0)
shard_counters = sum(1 for k in counters if k.startswith("serve.shard"))
print(f"chaos smoke (shards=8): shed={shed} degraded={degraded} "
      f"previous_model={previous_model} shard_counters={shard_counters}")
if shed + degraded == 0:
    sys.exit("chaos smoke (shards=8): fault spec injected nothing")
if previous_model == 0:
    sys.exit("chaos smoke (shards=8): the last-good-snapshot rung was "
             "never exercised")
if shard_counters == 0:
    sys.exit("chaos smoke (shards=8): no serve.shard<i>.* counters — "
             "the plane silently ran unsharded")
EOF

# Shadow-promotion smoke: the continuous-training loop must close under
# chaos — candidates refit, shadow-score on the live batches, and at
# least one auto-promotes, with the promotion landmark in the trace
# export, the audit counters in the metrics dump, and every request
# still accounted (the CLI fails itself on a lifecycle leak). The
# statusz demo then proves the page's registry-audit section shows the
# promotion.
echo "==> shadow promotion smoke: --continuous_training under --fault_spec"
CTP_OUT="$BUILD_DIR/ct-promotion"
mkdir -p "$CTP_OUT"
"$BUILD_DIR"/tools/trajkit serve-replay --users=6 --days=2 --seed=42 \
  --model="$CHAOS_OUT/rf.model" --shards=2 \
  --continuous_training --step_every=8 --refit_every=16 --min_fit=16 \
  --min_shadow=4 --promote_epsilon=-1 --ct_trees=10 --ct_buffer=256 \
  --deadline_ms=100 --max_queue=16 --retries=2 \
  --fault_spec="predict_fail:p=0.1;batch_delay:p=0.2,latency_ms=1;seed=3" \
  --metrics_json="$CTP_OUT/metrics.json" \
  --trace_json="$CTP_OUT/trace.json" | tee "$CTP_OUT/replay.log"
grep -E '^training: .* [1-9][0-9]* promotions' "$CTP_OUT/replay.log" \
  >/dev/null || {
    echo "shadow promotion smoke: no promotion under chaos" >&2
    exit 1
  }
grep -q registry_promotion "$CTP_OUT/trace.json" || {
  echo "shadow promotion smoke: registry_promotion landmark missing from the trace export" >&2
  exit 1
}
python3 - "$CTP_OUT/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc.get("counters", {})
promotions = counters.get("serve.registry.promotions", 0)
shadows = counters.get("serve.registry.shadow_installs", 0)
samples = counters.get("serve.shadow.samples", 0)
audit = doc.get("info", {}).get("serve.registry.audit", "")
print(f"shadow promotion smoke: shadows={shadows} promotions={promotions} "
      f"shadow_samples={samples}")
if promotions == 0:
    sys.exit("shadow promotion smoke: serve.registry.promotions == 0")
if samples == 0:
    sys.exit("shadow promotion smoke: the shadow was never scored "
             "(serve.shadow.samples == 0)")
if " promote " not in f" {audit} ":
    sys.exit("shadow promotion smoke: no promote event in the registry "
             "audit trail")
EOF
"$BUILD_DIR"/tools/trajkit statusz --continuous_training --step_every=8 \
  --refit_every=16 --min_fit=16 --min_shadow=4 --promote_epsilon=-1 \
  --ct_trees=10 --ct_buffer=256 > "$CTP_OUT/statusz.log"
grep -A8 '^registry audit' "$CTP_OUT/statusz.log" | grep -q ' promote ' || {
  echo "shadow promotion smoke: statusz registry-audit section shows no promotion" >&2
  exit 1
}

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> TSan leg skipped (--skip-tsan)"
else
  echo "==> TSan: configure + build (${TSAN_BUILD_DIR})"
  cmake -B "$TSAN_BUILD_DIR" -S . -DTRAJKIT_SANITIZE=thread \
    "${COMMON_CMAKE_ARGS[@]}"
  cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" \
    --target parallel_test serve_test serve_shard_test serve_ct_test \
             obs_test obs_timeseries_test http_export_test \
             request_trace_test ml_flat_forest_test store_test

  echo "==> TSan: concurrency-labelled tests"
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
    -L concurrency
fi

if [[ "$SKIP_ASAN" -eq 1 ]]; then
  echo "==> ASan leg skipped (--skip-asan)"
else
  echo "==> ASan: configure + build (${ASAN_BUILD_DIR})"
  cmake -B "$ASAN_BUILD_DIR" -S . -DTRAJKIT_SANITIZE=address \
    "${COMMON_CMAKE_ARGS[@]}"
  cmake --build "$ASAN_BUILD_DIR" -j "$JOBS"

  echo "==> ASan: full ctest"
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_BENCH" -eq 1 ]]; then
  echo "==> bench gate skipped (--skip-bench)"
else
  echo "==> bench gate: ${BENCH_RUNS} run(s) of micro_serve + micro_parallel + micro_ml + micro_store"
  BENCH_OUT="$BUILD_DIR/bench-gate"
  mkdir -p "$BENCH_OUT"
  # The >=Nx sharded-ingest scaling assert needs real cores to mean
  # anything; scale the bar to the machine and skip it entirely on boxes
  # too small to demonstrate parallelism (the ingest_t8_s ratio gate in
  # check_bench.py still runs everywhere).
  CORES=$(nproc)
  SHARD_SCALING_ARGS=()
  if [[ "$CORES" -ge 8 ]]; then
    SHARD_SCALING_ARGS=(--require_shard_scaling=3.0)
  elif [[ "$CORES" -ge 4 ]]; then
    SHARD_SCALING_ARGS=(--require_shard_scaling=2.0)
  else
    echo "bench gate: $CORES core(s) — shard-scaling assert skipped"
  fi
  GATE_FILES=()
  for run in $(seq 1 "$BENCH_RUNS"); do
    "$BUILD_DIR"/bench/micro_serve --users=12 --days=2 --requests=4096 \
      --threads_list=1 --shards_list=1,8 --require_shadow_overhead=0.15 \
      --require_tick_overhead=0.05 \
      "${SHARD_SCALING_ARGS[@]}" \
      --timing_json="$BENCH_OUT/serve_$run.json" \
      --metrics_json="$BENCH_OUT/serve_metrics_$run.json" >/dev/null
    "$BUILD_DIR"/bench/micro_parallel \
      '--benchmark_filter=(BM_ParallelForOverhead|BM_RandomForestPredictThreads)/1$' \
      --benchmark_out="$BENCH_OUT/parallel_$run.json" \
      --benchmark_out_format=json \
      --metrics_json="$BENCH_OUT/parallel_metrics_$run.json" >/dev/null 2>&1
    # The filter matches nothing: only the --timing_json gate workload runs
    # (flat vs pointer forest inference + point-feature kernels, 1 thread).
    "$BUILD_DIR"/bench/micro_ml --threads=1 '--benchmark_filter=^$' \
      --timing_json="$BENCH_OUT/ml_$run.json" >/dev/null 2>&1
    # micro_store exits nonzero on its own if the indexed bbox path is
    # not >=10x faster than the oracle scan or any result diverges.
    "$BUILD_DIR"/bench/micro_store --segments=20000 --queries=400 \
      --timing_json="$BENCH_OUT/store_$run.json" >/dev/null
    GATE_FILES+=("$BENCH_OUT/serve_$run.json" "$BENCH_OUT/parallel_$run.json" \
                 "$BENCH_OUT/ml_$run.json" "$BENCH_OUT/store_$run.json")
  done
  python3 tools/check_bench.py --baseline=BENCH_baseline.json "${GATE_FILES[@]}"
fi

echo "==> CI green"
