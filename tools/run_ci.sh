#!/usr/bin/env bash
# TrajKit CI driver: the tier-1 verify (configure, build, full ctest) plus
# the ThreadSanitizer configuration of the concurrency-sensitive tests
# (parallel_test, serve_test — the shared pool and the serving layer's
# hot-swap/micro-batching machinery).
#
# Usage: tools/run_ci.sh [--skip-tsan]
# Env:   BUILD_DIR (default build), TSAN_BUILD_DIR (default build-tsan),
#        JOBS (default nproc).

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
JOBS="${JOBS:-$(nproc)}"
SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build (${BUILD_DIR})"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> TSan configuration skipped (--skip-tsan)"
  exit 0
fi

echo "==> TSan: configure + build (${TSAN_BUILD_DIR})"
cmake -B "$TSAN_BUILD_DIR" -S . -DTRAJKIT_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target parallel_test serve_test

echo "==> TSan: parallel_test + serve_test"
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R '^(parallel_test|serve_test)$'

echo "==> CI green"
