# Empty dependencies file for feature_study.
# This may be replaced when dependencies are built.
