file(REMOVE_RECURSE
  "CMakeFiles/feature_study.dir/feature_study.cpp.o"
  "CMakeFiles/feature_study.dir/feature_study.cpp.o.d"
  "feature_study"
  "feature_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
