# Empty dependencies file for geolife_roundtrip.
# This may be replaced when dependencies are built.
