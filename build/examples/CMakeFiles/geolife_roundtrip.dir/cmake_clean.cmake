file(REMOVE_RECURSE
  "CMakeFiles/geolife_roundtrip.dir/geolife_roundtrip.cpp.o"
  "CMakeFiles/geolife_roundtrip.dir/geolife_roundtrip.cpp.o.d"
  "geolife_roundtrip"
  "geolife_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolife_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
