# Empty compiler generated dependencies file for travel_diary.
# This may be replaced when dependencies are built.
