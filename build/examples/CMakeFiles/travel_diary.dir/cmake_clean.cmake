file(REMOVE_RECURSE
  "CMakeFiles/travel_diary.dir/travel_diary.cpp.o"
  "CMakeFiles/travel_diary.dir/travel_diary.cpp.o.d"
  "travel_diary"
  "travel_diary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_diary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
