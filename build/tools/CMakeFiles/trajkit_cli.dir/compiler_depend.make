# Empty compiler generated dependencies file for trajkit_cli.
# This may be replaced when dependencies are built.
