file(REMOVE_RECURSE
  "CMakeFiles/trajkit_cli.dir/trajkit_cli.cc.o"
  "CMakeFiles/trajkit_cli.dir/trajkit_cli.cc.o.d"
  "trajkit"
  "trajkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
