file(REMOVE_RECURSE
  "libtrajkit_common.a"
)
