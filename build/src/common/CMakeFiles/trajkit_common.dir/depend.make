# Empty dependencies file for trajkit_common.
# This may be replaced when dependencies are built.
