file(REMOVE_RECURSE
  "CMakeFiles/trajkit_common.dir/csv.cc.o"
  "CMakeFiles/trajkit_common.dir/csv.cc.o.d"
  "CMakeFiles/trajkit_common.dir/flags.cc.o"
  "CMakeFiles/trajkit_common.dir/flags.cc.o.d"
  "CMakeFiles/trajkit_common.dir/rng.cc.o"
  "CMakeFiles/trajkit_common.dir/rng.cc.o.d"
  "CMakeFiles/trajkit_common.dir/status.cc.o"
  "CMakeFiles/trajkit_common.dir/status.cc.o.d"
  "CMakeFiles/trajkit_common.dir/strings.cc.o"
  "CMakeFiles/trajkit_common.dir/strings.cc.o.d"
  "CMakeFiles/trajkit_common.dir/table_printer.cc.o"
  "CMakeFiles/trajkit_common.dir/table_printer.cc.o.d"
  "libtrajkit_common.a"
  "libtrajkit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
