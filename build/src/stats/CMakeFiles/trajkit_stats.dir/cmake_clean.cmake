file(REMOVE_RECURSE
  "CMakeFiles/trajkit_stats.dir/correlation.cc.o"
  "CMakeFiles/trajkit_stats.dir/correlation.cc.o.d"
  "CMakeFiles/trajkit_stats.dir/descriptive.cc.o"
  "CMakeFiles/trajkit_stats.dir/descriptive.cc.o.d"
  "libtrajkit_stats.a"
  "libtrajkit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
