file(REMOVE_RECURSE
  "libtrajkit_stats.a"
)
