# Empty compiler generated dependencies file for trajkit_stats.
# This may be replaced when dependencies are built.
