# Empty compiler generated dependencies file for trajkit_core.
# This may be replaced when dependencies are built.
