file(REMOVE_RECURSE
  "libtrajkit_core.a"
)
