file(REMOVE_RECURSE
  "CMakeFiles/trajkit_core.dir/experiments.cc.o"
  "CMakeFiles/trajkit_core.dir/experiments.cc.o.d"
  "CMakeFiles/trajkit_core.dir/label_sets.cc.o"
  "CMakeFiles/trajkit_core.dir/label_sets.cc.o.d"
  "CMakeFiles/trajkit_core.dir/pipeline.cc.o"
  "CMakeFiles/trajkit_core.dir/pipeline.cc.o.d"
  "libtrajkit_core.a"
  "libtrajkit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
