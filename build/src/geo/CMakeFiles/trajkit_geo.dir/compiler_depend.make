# Empty compiler generated dependencies file for trajkit_geo.
# This may be replaced when dependencies are built.
