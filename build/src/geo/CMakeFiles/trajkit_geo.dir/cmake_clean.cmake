file(REMOVE_RECURSE
  "CMakeFiles/trajkit_geo.dir/geodesy.cc.o"
  "CMakeFiles/trajkit_geo.dir/geodesy.cc.o.d"
  "libtrajkit_geo.a"
  "libtrajkit_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
