file(REMOVE_RECURSE
  "libtrajkit_geo.a"
)
