
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cc" "src/ml/CMakeFiles/trajkit_ml.dir/adaboost.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/adaboost.cc.o.d"
  "/root/repo/src/ml/crossval.cc" "src/ml/CMakeFiles/trajkit_ml.dir/crossval.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/crossval.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/trajkit_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/dataset_io.cc" "src/ml/CMakeFiles/trajkit_ml.dir/dataset_io.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/dataset_io.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/trajkit_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/factory.cc" "src/ml/CMakeFiles/trajkit_ml.dir/factory.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/factory.cc.o.d"
  "/root/repo/src/ml/feature_selection.cc" "src/ml/CMakeFiles/trajkit_ml.dir/feature_selection.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/feature_selection.cc.o.d"
  "/root/repo/src/ml/filter_selection.cc" "src/ml/CMakeFiles/trajkit_ml.dir/filter_selection.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/filter_selection.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/ml/CMakeFiles/trajkit_ml.dir/gradient_boosting.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/grid_search.cc" "src/ml/CMakeFiles/trajkit_ml.dir/grid_search.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/grid_search.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/trajkit_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear_svm.cc" "src/ml/CMakeFiles/trajkit_ml.dir/linear_svm.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/linear_svm.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/trajkit_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/trajkit_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/trajkit_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/trajkit_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model_io.cc" "src/ml/CMakeFiles/trajkit_ml.dir/model_io.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/model_io.cc.o.d"
  "/root/repo/src/ml/normalize.cc" "src/ml/CMakeFiles/trajkit_ml.dir/normalize.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/normalize.cc.o.d"
  "/root/repo/src/ml/permutation_importance.cc" "src/ml/CMakeFiles/trajkit_ml.dir/permutation_importance.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/permutation_importance.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/trajkit_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/splits.cc" "src/ml/CMakeFiles/trajkit_ml.dir/splits.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/splits.cc.o.d"
  "/root/repo/src/ml/stats_tests.cc" "src/ml/CMakeFiles/trajkit_ml.dir/stats_tests.cc.o" "gcc" "src/ml/CMakeFiles/trajkit_ml.dir/stats_tests.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trajkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
