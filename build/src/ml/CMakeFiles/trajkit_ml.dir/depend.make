# Empty dependencies file for trajkit_ml.
# This may be replaced when dependencies are built.
