file(REMOVE_RECURSE
  "libtrajkit_ml.a"
)
