file(REMOVE_RECURSE
  "CMakeFiles/trajkit_synthgeo.dir/generator.cc.o"
  "CMakeFiles/trajkit_synthgeo.dir/generator.cc.o.d"
  "CMakeFiles/trajkit_synthgeo.dir/mode_profiles.cc.o"
  "CMakeFiles/trajkit_synthgeo.dir/mode_profiles.cc.o.d"
  "CMakeFiles/trajkit_synthgeo.dir/trip_simulator.cc.o"
  "CMakeFiles/trajkit_synthgeo.dir/trip_simulator.cc.o.d"
  "CMakeFiles/trajkit_synthgeo.dir/user_profile.cc.o"
  "CMakeFiles/trajkit_synthgeo.dir/user_profile.cc.o.d"
  "libtrajkit_synthgeo.a"
  "libtrajkit_synthgeo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_synthgeo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
