
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synthgeo/generator.cc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/generator.cc.o" "gcc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/generator.cc.o.d"
  "/root/repo/src/synthgeo/mode_profiles.cc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/mode_profiles.cc.o" "gcc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/mode_profiles.cc.o.d"
  "/root/repo/src/synthgeo/trip_simulator.cc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/trip_simulator.cc.o" "gcc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/trip_simulator.cc.o.d"
  "/root/repo/src/synthgeo/user_profile.cc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/user_profile.cc.o" "gcc" "src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/user_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trajkit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/trajkit_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/trajkit_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/trajkit_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
