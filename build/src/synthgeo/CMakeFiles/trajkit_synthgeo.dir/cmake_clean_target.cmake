file(REMOVE_RECURSE
  "libtrajkit_synthgeo.a"
)
