# Empty compiler generated dependencies file for trajkit_synthgeo.
# This may be replaced when dependencies are built.
