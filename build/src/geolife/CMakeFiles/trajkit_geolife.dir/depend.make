# Empty dependencies file for trajkit_geolife.
# This may be replaced when dependencies are built.
