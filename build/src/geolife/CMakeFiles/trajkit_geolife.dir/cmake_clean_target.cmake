file(REMOVE_RECURSE
  "libtrajkit_geolife.a"
)
