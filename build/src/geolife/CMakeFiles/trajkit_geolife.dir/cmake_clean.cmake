file(REMOVE_RECURSE
  "CMakeFiles/trajkit_geolife.dir/geolife_reader.cc.o"
  "CMakeFiles/trajkit_geolife.dir/geolife_reader.cc.o.d"
  "libtrajkit_geolife.a"
  "libtrajkit_geolife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_geolife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
