file(REMOVE_RECURSE
  "CMakeFiles/trajkit_traj.dir/extended_features.cc.o"
  "CMakeFiles/trajkit_traj.dir/extended_features.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/geojson.cc.o"
  "CMakeFiles/trajkit_traj.dir/geojson.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/noise.cc.o"
  "CMakeFiles/trajkit_traj.dir/noise.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/point_features.cc.o"
  "CMakeFiles/trajkit_traj.dir/point_features.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/resample.cc.o"
  "CMakeFiles/trajkit_traj.dir/resample.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/segmentation.cc.o"
  "CMakeFiles/trajkit_traj.dir/segmentation.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/simplify.cc.o"
  "CMakeFiles/trajkit_traj.dir/simplify.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/stay_points.cc.o"
  "CMakeFiles/trajkit_traj.dir/stay_points.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/trajectory_features.cc.o"
  "CMakeFiles/trajkit_traj.dir/trajectory_features.cc.o.d"
  "CMakeFiles/trajkit_traj.dir/types.cc.o"
  "CMakeFiles/trajkit_traj.dir/types.cc.o.d"
  "libtrajkit_traj.a"
  "libtrajkit_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajkit_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
