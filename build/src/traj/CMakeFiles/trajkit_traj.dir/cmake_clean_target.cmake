file(REMOVE_RECURSE
  "libtrajkit_traj.a"
)
