# Empty dependencies file for trajkit_traj.
# This may be replaced when dependencies are built.
