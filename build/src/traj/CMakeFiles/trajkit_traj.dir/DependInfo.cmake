
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/extended_features.cc" "src/traj/CMakeFiles/trajkit_traj.dir/extended_features.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/extended_features.cc.o.d"
  "/root/repo/src/traj/geojson.cc" "src/traj/CMakeFiles/trajkit_traj.dir/geojson.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/geojson.cc.o.d"
  "/root/repo/src/traj/noise.cc" "src/traj/CMakeFiles/trajkit_traj.dir/noise.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/noise.cc.o.d"
  "/root/repo/src/traj/point_features.cc" "src/traj/CMakeFiles/trajkit_traj.dir/point_features.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/point_features.cc.o.d"
  "/root/repo/src/traj/resample.cc" "src/traj/CMakeFiles/trajkit_traj.dir/resample.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/resample.cc.o.d"
  "/root/repo/src/traj/segmentation.cc" "src/traj/CMakeFiles/trajkit_traj.dir/segmentation.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/segmentation.cc.o.d"
  "/root/repo/src/traj/simplify.cc" "src/traj/CMakeFiles/trajkit_traj.dir/simplify.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/simplify.cc.o.d"
  "/root/repo/src/traj/stay_points.cc" "src/traj/CMakeFiles/trajkit_traj.dir/stay_points.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/stay_points.cc.o.d"
  "/root/repo/src/traj/trajectory_features.cc" "src/traj/CMakeFiles/trajkit_traj.dir/trajectory_features.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/trajectory_features.cc.o.d"
  "/root/repo/src/traj/types.cc" "src/traj/CMakeFiles/trajkit_traj.dir/types.cc.o" "gcc" "src/traj/CMakeFiles/trajkit_traj.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trajkit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/trajkit_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/trajkit_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
