file(REMOVE_RECURSE
  "CMakeFiles/micro_ml.dir/micro_ml.cc.o"
  "CMakeFiles/micro_ml.dir/micro_ml.cc.o.d"
  "micro_ml"
  "micro_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
