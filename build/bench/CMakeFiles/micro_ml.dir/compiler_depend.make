# Empty compiler generated dependencies file for micro_ml.
# This may be replaced when dependencies are built.
