# Empty dependencies file for exp_sec43_dabiri.
# This may be replaced when dependencies are built.
