file(REMOVE_RECURSE
  "CMakeFiles/exp_sec43_dabiri.dir/exp_sec43_dabiri.cc.o"
  "CMakeFiles/exp_sec43_dabiri.dir/exp_sec43_dabiri.cc.o.d"
  "exp_sec43_dabiri"
  "exp_sec43_dabiri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec43_dabiri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
