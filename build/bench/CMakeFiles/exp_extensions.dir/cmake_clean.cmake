file(REMOVE_RECURSE
  "CMakeFiles/exp_extensions.dir/exp_extensions.cc.o"
  "CMakeFiles/exp_extensions.dir/exp_extensions.cc.o.d"
  "exp_extensions"
  "exp_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
