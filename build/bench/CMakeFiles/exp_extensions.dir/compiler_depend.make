# Empty compiler generated dependencies file for exp_extensions.
# This may be replaced when dependencies are built.
