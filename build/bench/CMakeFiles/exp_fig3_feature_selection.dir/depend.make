# Empty dependencies file for exp_fig3_feature_selection.
# This may be replaced when dependencies are built.
