
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_fig3_feature_selection.cc" "bench/CMakeFiles/exp_fig3_feature_selection.dir/exp_fig3_feature_selection.cc.o" "gcc" "bench/CMakeFiles/exp_fig3_feature_selection.dir/exp_fig3_feature_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/trajkit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synthgeo/CMakeFiles/trajkit_synthgeo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/trajkit_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/trajkit_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/trajkit_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/trajkit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trajkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
