file(REMOVE_RECURSE
  "CMakeFiles/exp_fig3_feature_selection.dir/exp_fig3_feature_selection.cc.o"
  "CMakeFiles/exp_fig3_feature_selection.dir/exp_fig3_feature_selection.cc.o.d"
  "exp_fig3_feature_selection"
  "exp_fig3_feature_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig3_feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
