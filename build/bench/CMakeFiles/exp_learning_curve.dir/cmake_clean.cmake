file(REMOVE_RECURSE
  "CMakeFiles/exp_learning_curve.dir/exp_learning_curve.cc.o"
  "CMakeFiles/exp_learning_curve.dir/exp_learning_curve.cc.o.d"
  "exp_learning_curve"
  "exp_learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
