# Empty compiler generated dependencies file for exp_learning_curve.
# This may be replaced when dependencies are built.
