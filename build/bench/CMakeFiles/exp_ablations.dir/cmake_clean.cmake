file(REMOVE_RECURSE
  "CMakeFiles/exp_ablations.dir/exp_ablations.cc.o"
  "CMakeFiles/exp_ablations.dir/exp_ablations.cc.o.d"
  "exp_ablations"
  "exp_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
