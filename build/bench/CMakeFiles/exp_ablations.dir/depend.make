# Empty dependencies file for exp_ablations.
# This may be replaced when dependencies are built.
