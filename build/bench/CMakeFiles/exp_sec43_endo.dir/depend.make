# Empty dependencies file for exp_sec43_endo.
# This may be replaced when dependencies are built.
