file(REMOVE_RECURSE
  "CMakeFiles/exp_sec43_endo.dir/exp_sec43_endo.cc.o"
  "CMakeFiles/exp_sec43_endo.dir/exp_sec43_endo.cc.o.d"
  "exp_sec43_endo"
  "exp_sec43_endo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec43_endo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
