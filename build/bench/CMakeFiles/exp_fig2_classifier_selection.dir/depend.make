# Empty dependencies file for exp_fig2_classifier_selection.
# This may be replaced when dependencies are built.
