file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_classifier_selection.dir/exp_fig2_classifier_selection.cc.o"
  "CMakeFiles/exp_fig2_classifier_selection.dir/exp_fig2_classifier_selection.cc.o.d"
  "exp_fig2_classifier_selection"
  "exp_fig2_classifier_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_classifier_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
