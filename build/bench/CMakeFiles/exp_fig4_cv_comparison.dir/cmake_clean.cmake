file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_cv_comparison.dir/exp_fig4_cv_comparison.cc.o"
  "CMakeFiles/exp_fig4_cv_comparison.dir/exp_fig4_cv_comparison.cc.o.d"
  "exp_fig4_cv_comparison"
  "exp_fig4_cv_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_cv_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
