# Empty dependencies file for exp_fig4_cv_comparison.
# This may be replaced when dependencies are built.
