# Empty compiler generated dependencies file for micro_features.
# This may be replaced when dependencies are built.
