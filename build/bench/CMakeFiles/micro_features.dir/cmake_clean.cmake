file(REMOVE_RECURSE
  "CMakeFiles/micro_features.dir/micro_features.cc.o"
  "CMakeFiles/micro_features.dir/micro_features.cc.o.d"
  "micro_features"
  "micro_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
