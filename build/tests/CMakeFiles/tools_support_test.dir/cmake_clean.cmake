file(REMOVE_RECURSE
  "CMakeFiles/tools_support_test.dir/tools_support_test.cc.o"
  "CMakeFiles/tools_support_test.dir/tools_support_test.cc.o.d"
  "tools_support_test"
  "tools_support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
