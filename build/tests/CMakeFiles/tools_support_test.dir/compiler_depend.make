# Empty compiler generated dependencies file for tools_support_test.
# This may be replaced when dependencies are built.
