# Empty dependencies file for simplify_test.
# This may be replaced when dependencies are built.
