file(REMOVE_RECURSE
  "CMakeFiles/simplify_test.dir/simplify_test.cc.o"
  "CMakeFiles/simplify_test.dir/simplify_test.cc.o.d"
  "simplify_test"
  "simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
