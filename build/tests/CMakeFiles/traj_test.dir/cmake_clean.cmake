file(REMOVE_RECURSE
  "CMakeFiles/traj_test.dir/traj_test.cc.o"
  "CMakeFiles/traj_test.dir/traj_test.cc.o.d"
  "traj_test"
  "traj_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
