file(REMOVE_RECURSE
  "CMakeFiles/ml_core_test.dir/ml_core_test.cc.o"
  "CMakeFiles/ml_core_test.dir/ml_core_test.cc.o.d"
  "ml_core_test"
  "ml_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
