# Empty compiler generated dependencies file for ml_core_test.
# This may be replaced when dependencies are built.
