# Empty dependencies file for ml_tuning_test.
# This may be replaced when dependencies are built.
