file(REMOVE_RECURSE
  "CMakeFiles/ml_tuning_test.dir/ml_tuning_test.cc.o"
  "CMakeFiles/ml_tuning_test.dir/ml_tuning_test.cc.o.d"
  "ml_tuning_test"
  "ml_tuning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tuning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
