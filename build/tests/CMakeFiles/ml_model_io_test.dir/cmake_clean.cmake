file(REMOVE_RECURSE
  "CMakeFiles/ml_model_io_test.dir/ml_model_io_test.cc.o"
  "CMakeFiles/ml_model_io_test.dir/ml_model_io_test.cc.o.d"
  "ml_model_io_test"
  "ml_model_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_model_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
