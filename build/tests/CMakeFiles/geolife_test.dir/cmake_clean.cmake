file(REMOVE_RECURSE
  "CMakeFiles/geolife_test.dir/geolife_test.cc.o"
  "CMakeFiles/geolife_test.dir/geolife_test.cc.o.d"
  "geolife_test"
  "geolife_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolife_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
