# Empty compiler generated dependencies file for geolife_test.
# This may be replaced when dependencies are built.
