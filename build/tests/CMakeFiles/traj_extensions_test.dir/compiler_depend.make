# Empty compiler generated dependencies file for traj_extensions_test.
# This may be replaced when dependencies are built.
