file(REMOVE_RECURSE
  "CMakeFiles/traj_extensions_test.dir/traj_extensions_test.cc.o"
  "CMakeFiles/traj_extensions_test.dir/traj_extensions_test.cc.o.d"
  "traj_extensions_test"
  "traj_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
