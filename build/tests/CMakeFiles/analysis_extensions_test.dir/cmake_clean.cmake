file(REMOVE_RECURSE
  "CMakeFiles/analysis_extensions_test.dir/analysis_extensions_test.cc.o"
  "CMakeFiles/analysis_extensions_test.dir/analysis_extensions_test.cc.o.d"
  "analysis_extensions_test"
  "analysis_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
