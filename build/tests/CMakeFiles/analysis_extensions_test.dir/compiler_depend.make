# Empty compiler generated dependencies file for analysis_extensions_test.
# This may be replaced when dependencies are built.
