file(REMOVE_RECURSE
  "CMakeFiles/synthgeo_test.dir/synthgeo_test.cc.o"
  "CMakeFiles/synthgeo_test.dir/synthgeo_test.cc.o.d"
  "synthgeo_test"
  "synthgeo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthgeo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
