# Empty dependencies file for synthgeo_test.
# This may be replaced when dependencies are built.
