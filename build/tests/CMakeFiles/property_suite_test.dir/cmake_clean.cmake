file(REMOVE_RECURSE
  "CMakeFiles/property_suite_test.dir/property_suite_test.cc.o"
  "CMakeFiles/property_suite_test.dir/property_suite_test.cc.o.d"
  "property_suite_test"
  "property_suite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
