file(REMOVE_RECURSE
  "CMakeFiles/ml_splits_test.dir/ml_splits_test.cc.o"
  "CMakeFiles/ml_splits_test.dir/ml_splits_test.cc.o.d"
  "ml_splits_test"
  "ml_splits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_splits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
