# Empty compiler generated dependencies file for ml_splits_test.
# This may be replaced when dependencies are built.
