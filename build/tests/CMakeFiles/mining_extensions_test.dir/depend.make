# Empty dependencies file for mining_extensions_test.
# This may be replaced when dependencies are built.
