file(REMOVE_RECURSE
  "CMakeFiles/mining_extensions_test.dir/mining_extensions_test.cc.o"
  "CMakeFiles/mining_extensions_test.dir/mining_extensions_test.cc.o.d"
  "mining_extensions_test"
  "mining_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
