file(REMOVE_RECURSE
  "CMakeFiles/ml_eval_test.dir/ml_eval_test.cc.o"
  "CMakeFiles/ml_eval_test.dir/ml_eval_test.cc.o.d"
  "ml_eval_test"
  "ml_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
