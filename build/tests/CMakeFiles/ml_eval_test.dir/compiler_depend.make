# Empty compiler generated dependencies file for ml_eval_test.
# This may be replaced when dependencies are built.
