# Empty dependencies file for ml_extensions_test.
# This may be replaced when dependencies are built.
