file(REMOVE_RECURSE
  "CMakeFiles/ml_extensions_test.dir/ml_extensions_test.cc.o"
  "CMakeFiles/ml_extensions_test.dir/ml_extensions_test.cc.o.d"
  "ml_extensions_test"
  "ml_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
