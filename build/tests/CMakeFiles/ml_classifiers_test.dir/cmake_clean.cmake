file(REMOVE_RECURSE
  "CMakeFiles/ml_classifiers_test.dir/ml_classifiers_test.cc.o"
  "CMakeFiles/ml_classifiers_test.dir/ml_classifiers_test.cc.o.d"
  "ml_classifiers_test"
  "ml_classifiers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_classifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
