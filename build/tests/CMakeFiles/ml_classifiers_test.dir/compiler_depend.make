# Empty compiler generated dependencies file for ml_classifiers_test.
# This may be replaced when dependencies are built.
