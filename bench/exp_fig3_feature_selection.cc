// Experiment E2 — reproduces Figure 3 of the paper:
//   (a) accuracy of a random forest while appending features in
//       random-forest importance order ("information theoretical" method);
//   (b) accuracy while appending features chosen by greedy forward wrapper
//       search.
//
// Setting (§4.2): Endo et al. label set, user-oriented cross-validation.
// The paper's readout: the top-20 subset achieves the best accuracy, and
// speed_p90 is the most essential feature under both methods.
//
// Beyond the paper, the same curve can be produced for the *filter*
// branch of its §2 taxonomy (mutual information, chi-square, ANOVA F) via
// --method, completing the filter/wrapper/embedded comparison the related
// work discusses.
//
// Flags: --users --days --seed --folds --trees --max_features
//        --method=importance|wrapper|mi|chi2|anova|both|all
//        --out=<csv path> --threads=N --timing_json=<path>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/feature_selection.h"
#include "ml/filter_selection.h"
#include "ml/random_forest.h"
#include "traj/trajectory_features.h"

namespace trajkit {
namespace {

// Cross-validated RF accuracy under user-oriented folds — the evaluator
// both selection methods maximize.
ml::SubsetEvaluator MakeEvaluator(int trees, int folds, uint64_t seed) {
  return [trees, folds, seed](const ml::Dataset& subset) {
    ml::RandomForestParams params;
    params.n_estimators = trees;
    params.seed = seed;
    const ml::RandomForest forest(params);
    const auto cv_folds =
        core::MakeFolds(core::CvScheme::kUserOriented, subset, folds, seed);
    const auto cv = ml::CrossValidate(forest, subset, cv_folds);
    return cv.ok() ? cv->MeanAccuracy() : 0.0;
  };
}

void PrintCurve(const char* title,
                const std::vector<ml::SelectionStep>& steps,
                const std::vector<std::string>& names, CsvTable* csv,
                const char* method) {
  std::printf("\n--- %s ---\n", title);
  TablePrinter table({"k", "appended_feature", "cv_accuracy"});
  size_t best_k = 0;
  double best = -1.0;
  for (size_t i = 0; i < steps.size(); ++i) {
    table.AddRow({StrPrintf("%zu", i + 1),
                  names[static_cast<size_t>(steps[i].feature_index)],
                  StrPrintf("%.4f", steps[i].score)});
    csv->rows.push_back(
        {method, StrPrintf("%zu", i + 1),
         names[static_cast<size_t>(steps[i].feature_index)],
         StrPrintf("%.6f", steps[i].score)});
    if (steps[i].score > best) {
      best = steps[i].score;
      best_k = i + 1;
    }
  }
  table.Print();
  std::printf("best prefix: k=%zu, accuracy=%.4f\n", best_k, best);
  std::printf("first feature appended: %s\n",
              names[static_cast<size_t>(steps[0].feature_index)].c_str());
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int folds = flags.GetInt("folds", 3);
  const int trees = flags.GetInt("trees", 15);
  const int max_features = flags.GetInt("max_features", 30);
  const std::string method = flags.GetString("method", "both");
  const std::string out_path =
      flags.GetString("out", "results/fig3_feature_selection.csv");

  std::printf(
      "=== Figure 3: feature selection (user-oriented CV, Endo labels) "
      "===\n");
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_fig3_feature_selection", harness);
  Stopwatch total_timer;
  Stopwatch phase_timer;

  const auto built = bench::DieOnError(
      core::BuildSyntheticDataset(
          bench::CorpusOptionsFromFlags(flags, /*default_users=*/40,
                                        /*default_days=*/4),
          core::PipelineOptions{}, core::LabelSet::Endo()),
      "dataset build");
  std::printf("dataset: %zu segments x %zu features\n",
              built.dataset.num_samples(), built.dataset.num_features());
  timing.RecordLap("dataset_build", phase_timer);

  const auto& names = traj::TrajectoryFeatureExtractor::FeatureNames();
  const ml::SubsetEvaluator evaluator = MakeEvaluator(trees, folds, 17);
  CsvTable csv;
  csv.header = {"method", "k", "feature", "cv_accuracy"};

  if (method == "importance" || method == "both" || method == "all") {
    // (a) Rank all 70 features by random-forest impurity importance, then
    // evaluate prefixes of every length.
    ml::RandomForestParams params;
    params.n_estimators = 50;
    params.seed = 23;
    ml::RandomForest forest(params);
    const Status fit_status = forest.Fit(built.dataset);
    if (!fit_status.ok()) {
      std::fprintf(stderr, "importance forest fit failed: %s\n",
                   fit_status.ToString().c_str());
      return 1;
    }
    const std::vector<int> ranking = forest.ImportanceRanking();
    std::printf("\nRF importance ranking (top 10):\n");
    for (int i = 0; i < 10; ++i) {
      std::printf("  %2d. %-22s %.4f\n", i + 1,
                  names[static_cast<size_t>(ranking[static_cast<size_t>(i)])]
                      .c_str(),
                  forest.FeatureImportances()[static_cast<size_t>(
                      ranking[static_cast<size_t>(i)])]);
    }
    const auto steps = bench::DieOnError(
        ml::IncrementalRankingSelection(built.dataset, evaluator, ranking,
                                        70),
        "importance curve");
    PrintCurve("Fig 3(a): incremental by RF importance", steps, names, &csv,
               "importance");
    timing.RecordLap("importance_curve", phase_timer);
  }

  // Filter methods (extension): rank by a classifier-independent score,
  // then evaluate prefixes with the same evaluator.
  struct FilterMethod {
    const char* name;
    Result<std::vector<ml::FeatureScore>> scores;
  };
  std::vector<FilterMethod> filters;
  if (method == "mi" || method == "all") {
    filters.push_back({"mi", ml::MutualInformationScores(built.dataset)});
  }
  if (method == "chi2" || method == "all") {
    filters.push_back({"chi2", ml::ChiSquareScores(built.dataset)});
  }
  if (method == "anova" || method == "all") {
    filters.push_back({"anova", ml::AnovaFScores(built.dataset)});
  }
  for (FilterMethod& filter : filters) {
    if (!filter.scores.ok()) {
      std::fprintf(stderr, "%s scoring failed: %s\n", filter.name,
                   filter.scores.status().ToString().c_str());
      continue;
    }
    const std::vector<int> ranking =
        ml::RankingFromScores(filter.scores.value());
    const auto steps = bench::DieOnError(
        ml::IncrementalRankingSelection(built.dataset, evaluator, ranking,
                                        std::min(max_features, 70)),
        "filter curve");
    PrintCurve(StrPrintf("extension: incremental by %s filter score",
                         filter.name)
                   .c_str(),
               steps, names, &csv, filter.name);
  }

  if (method == "wrapper" || method == "both" || method == "all") {
    // (b) Greedy forward wrapper search.
    phase_timer.Reset();
    const auto steps = bench::DieOnError(
        ml::ForwardWrapperSelection(built.dataset, evaluator, max_features),
        "wrapper search");
    timing.RecordLap("wrapper_search", phase_timer);
    PrintCurve("Fig 3(b): forward wrapper search", steps, names, &csv,
               "wrapper");
    std::printf("\ntop-20 wrapper subset (the paper's selected subset):\n");
    const std::vector<int> top20 = ml::PrefixOfSize(
        steps, std::min<size_t>(20, steps.size()));
    for (size_t i = 0; i < top20.size(); ++i) {
      std::printf("  %2zu. %s\n", i + 1,
                  names[static_cast<size_t>(top20[i])].c_str());
    }
  }

  if (!out_path.empty()) {
    const Status status = WriteCsvFile(out_path, csv);
    if (status.ok()) {
      std::printf("\ncurves written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "csv write failed: %s\n",
                   status.ToString().c_str());
    }
  }

  std::printf(
      "\npaper reference: accuracy rises then plateaus; top-20 subset "
      "is best; speed_p90 is the most essential feature under both "
      "methods.\n");
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("total time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
