// Microbenchmarks for the parallel execution layer: raw pool dispatch
// overhead and the thread-count scaling of the parallelized hot paths
// (forest fit/predict, cross-validation). Thread-count benchmarks take
// the count from Arg(); on a single-core host all counts collapse to the
// serial path, so run on a multi-core machine to observe scaling.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "common/harness_options.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "common/rng.h"
#include "core/experiments.h"
#include "ml/crossval.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"

namespace trajkit {
namespace {

ml::Dataset SyntheticFeatures(size_t samples, size_t features, int classes,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<int> groups;
  rows.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    const int y = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(classes)));
    std::vector<double> row(features);
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Gaussian(0.0, 1.0);
    }
    row[0] += 1.5 * y;
    row[1] += 0.8 * (y % 2);
    row[2] -= 0.6 * y;
    rows.push_back(std::move(row));
    labels.push_back(y);
    groups.push_back(static_cast<int>(i % 16));
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(ml::Dataset::Create(ml::Matrix::FromRows(rows),
                                       std::move(labels), std::move(groups),
                                       {}, std::move(class_names)))
      .value();
}

/// RAII thread-count override so a benchmark cannot leak its setting into
/// the next one.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { SetMaxThreads(n); }
  ~ScopedThreads() { SetMaxThreads(0); }
};

// Dispatch overhead: near-empty bodies over a large index range. Measures
// the cost of chunk claiming + wakeup, not useful work.
void BM_ParallelForOverhead(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  constexpr size_t kIndices = 1 << 14;
  std::vector<double> out(kIndices);
  for (auto _ : state) {
    const Status status = ParallelFor(0, kIndices, 256, [&](size_t i) {
      out[i] = static_cast<double>(i) * 0.5;
    });
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kIndices));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RandomForestFitThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  const ml::Dataset ds = SyntheticFeatures(1024, 70, 5, 2);
  for (auto _ : state) {
    ml::RandomForestParams params;
    params.n_estimators = 50;
    ml::RandomForest forest(params);
    benchmark::DoNotOptimize(forest.Fit(ds));
  }
}
BENCHMARK(BM_RandomForestFitThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RandomForestPredictThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  const ml::Dataset ds = SyntheticFeatures(4096, 70, 5, 3);
  ml::RandomForestParams params;
  params.n_estimators = 50;
  ml::RandomForest forest(params);
  (void)forest.Fit(ds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(ds.features()));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RandomForestPredictThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CrossValidateThreads(benchmark::State& state) {
  ScopedThreads threads(static_cast<int>(state.range(0)));
  const ml::Dataset ds = SyntheticFeatures(1024, 70, 5, 4);
  ml::RandomForestParams params;
  params.n_estimators = 25;
  const ml::RandomForest forest(params);
  const auto folds =
      core::MakeFolds(core::CvScheme::kRandom, ds, 5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::CrossValidate(forest, ds, folds));
  }
}
BENCHMARK(BM_CrossValidateThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace trajkit

// Expanded BENCHMARK_MAIN so the shared --threads/--timing_json/
// --metrics_json trio can be stripped before google-benchmark sees (and
// rejects) it: after the run the process metrics registry (pool
// chunk/invocation counters, idle seconds, forest fit/predict histograms)
// is dumped as JSON.
int main(int argc, char** argv) {
  const trajkit::HarnessOptions harness =
      trajkit::HarnessOptions::FromArgv(&argc, argv);
  harness.ApplyThreads();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trajkit::obs::WriteMetricsArtifacts(
          harness.MetricsArtifacts(),
          trajkit::obs::MetricsRegistry::Global())) {
    return 1;
  }
  return 0;
}
