// micro_serve — throughput and latency of the online serving stack.
//
// Phase A sweeps the ServingPlane over --shards_list (default 1,8): the
// point stream is partitioned by the plane's hash(user_id) routing and one
// writer thread per shard drives SessionManager +
// StreamingFeatureExtractor concurrently — shard-per-core ingest scaling
// (ingest_t<S>_s; S=1 is the pre-shard single-writer baseline).
// --require_shard_scaling=R additionally fails the run unless the largest
// shard count ingests >= R times the shards=1 rate (CI passes it only on
// machines with enough cores).
//
// Then the shared pool sweeps --threads_list (default 1,2,4,8) and, per
// thread count, measures:
//   B. batched:     micro-batched prediction via BatchPredictor — request
//                   throughput and enqueue-to-completion latency
//                   p50/p90/p99.
//   C. per-request: the same async dispatch path with max_batch_size=1 —
//                   every request pays its own worker wakeup and forest
//                   pass. This is the baseline micro-batching must beat.
//   D. direct:      synchronous ServingModel::PredictOne loop (no
//                   dispatch at all) — the lower bound on serving
//                   overhead, printed as a reference.
//   E. overload:    open-loop flood of a bounded queue with per-request
//                   deadlines and mixed priorities — measures admission
//                   control + deadline enforcement under saturation
//                   (served/shed/expired split and survivor p99).
//
// Phase F measures the ingest-throughput cost of shadow scoring
// (serve/continuous_training.h): the corpus is replay-ingested through a
// single-shard plane plain, then again with the same model republished as
// the shadow candidate (worst case: shadow as expensive as active) and a
// ShadowEvaluator wired in. Both runs are warmed and best-of-3; the
// shadowed ingest time is recorded as shadow_overhead_t1_s, and
// --require_shadow_overhead=R fails the run when the relative overhead
// exceeds R (CI passes 0.15 — the shadow must ride the worker thread, not
// the ingest path).
//
// Phase G measures the ingest cost of the live telemetry plane: the same
// ingest loop with a TimeSeriesStore + SloEngine ticking every 16 closed
// segments (4x the serve-replay default rate). Recorded as
// timeseries_tick_t1_s; --require_tick_overhead=R fails the run when the
// relative ingest overhead exceeds R (CI passes 0.05 — a tick is a
// handful of relaxed loads, it must not show up in ingest throughput).
//
// Flags: --users/--days/--seed (corpus), --trees, --batch, --max_delay_ms,
// --overload_deadline_ms, --shards_list=1,8, --require_shard_scaling=R,
// --require_shadow_overhead=R, --require_tick_overhead=R,
// --threads_list=1,2,4,8, --timing_json=FILE,
// plus the shared --trace_json/--trace_test/--trace_sample/--trace_buffer
// (flight recorder off unless a trace output is requested, so the perf
// gate measures the untraced path).
//
//   ./micro_serve --users=30 --days=4 --timing_json=BENCH_serve.json

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "core/label_sets.h"
#include "core/pipeline.h"
#include "ml/random_forest.h"
#include "serve/batch_predictor.h"
#include "serve/model_registry.h"
#include "serve/serve_config.h"
#include "serve/serving_plane.h"
#include "serve/session_manager.h"
#include "serve/shadow_evaluator.h"
#include "stats/descriptive.h"
#include "synthgeo/generator.h"
#include "traj/trajectory_features.h"

namespace trajkit::bench {
namespace {

std::vector<int> ParseIntList(const Flags& flags, const char* name,
                              const char* fallback) {
  std::vector<int> values;
  const std::string list = flags.GetString(name, fallback);
  for (const std::string_view token : SplitString(list, ',')) {
    values.push_back(static_cast<int>(DieOnError(ParseInt64(token), name)));
  }
  return values;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const HarnessOptions harness = HarnessOptions::FromFlags(flags);
  harness.ApplyThreads();
  harness.ConfigureTracing();
  TimingJson timings("micro_serve", harness);

  // Shared serving flag surface (serve/serve_config.h).
  auto config_or =
      serve::ParseServeFlags(flags, serve::MicroServeDefaults());
  if (!config_or.ok()) {
    std::fprintf(stderr, "micro_serve: %s\n",
                 config_or.status().ToString().c_str());
    return 2;
  }
  const serve::ServeConfig& config = config_or.value();

  // Corpus + a forest trained offline on the same features.
  synthgeo::GeneratorOptions generator_options;
  generator_options.num_users = config.users;
  generator_options.days_per_user = config.days;
  generator_options.seed = config.seed;
  synthgeo::GeoLifeLikeGenerator generator(generator_options);
  const std::vector<traj::Trajectory> corpus = generator.Generate();
  const core::LabelSet labels = core::LabelSet::Dabiri();
  const core::Pipeline pipeline;
  const ml::Dataset dataset =
      DieOnError(pipeline.BuildDataset(corpus, labels), "pipeline");
  ml::RandomForestParams params;
  params.n_estimators = config.trees;
  ml::RandomForest forest(params);
  if (const Status status = forest.Fit(dataset); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  serve::ModelRegistry registry;
  if (const Status status = registry.Publish(DieOnError(
          serve::MakeServingModel("bench-v1", std::move(forest),
                                  traj::kNumTrajectoryFeatures),
          "serving model"));
      !status.ok()) {
    std::fprintf(stderr, "registry failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // The point stream, in per-user order (what the session layer consumes),
  // and the closed-segment feature vectors (phase B/C input) computed once
  // up front so prediction phases measure prediction only.
  size_t total_points = 0;
  for (const traj::Trajectory& trajectory : corpus) {
    total_points += trajectory.points.size();
  }
  std::vector<std::vector<double>> segment_features;
  {
    serve::SessionManager sessions;
    std::vector<serve::ClosedSegment> closed;
    for (const traj::Trajectory& trajectory : corpus) {
      for (const traj::TrajectoryPoint& point : trajectory.points) {
        sessions.Ingest(trajectory.user_id, point, &closed);
      }
    }
    sessions.FlushAll(&closed);
    for (serve::ClosedSegment& segment : closed) {
      segment_features.push_back(std::move(segment.features));
    }
  }
  const serve::BatchPredictorOptions batching =
      config.MakeBatchingOptions();
  // Prediction phases cycle the segment features into a longer request
  // stream so steady-state batching (not the one trailing deadline stall)
  // is what gets measured.
  const size_t num_requests = static_cast<size_t>(
      flags.GetInt("requests", 8192));
  // Closed loop with a bounded in-flight window: keeps the predictor
  // saturated while latency percentiles reflect batching delay, not the
  // depth of a pre-filled queue.
  const size_t window = 4 * batching.max_batch_size;

  std::printf("corpus: %zu points -> %zu segments; forest: %d trees; "
              "%zu requests/phase\n",
              total_points, segment_features.size(), params.n_estimators,
              num_requests);

  // Phase A: sharded ingest scaling. One writer thread per shard drives
  // its shard's SessionManager — the single-writer-per-shard contract —
  // over the plane's own hash(user_id) partition of the corpus.
  std::printf("%8s %12s %9s\n", "shards", "ingest/s", "speedup");
  double shard1_rate = 0.0;
  double max_shards_rate = 0.0;
  int max_shards = 1;
  for (const int shards : ParseIntList(flags, "shards_list", "1,8")) {
    serve::ServingPlaneOptions plane_options;
    plane_options.shards = static_cast<size_t>(shards);
    serve::ServingPlane plane(&registry, plane_options);
    std::vector<std::vector<const traj::Trajectory*>> partition(
        plane.num_shards());
    for (const traj::Trajectory& trajectory : corpus) {
      partition[plane.ShardOf(trajectory.user_id)].push_back(&trajectory);
    }
    Stopwatch watch;
    {
      std::vector<std::thread> writers;
      writers.reserve(plane.num_shards());
      for (size_t s = 0; s < plane.num_shards(); ++s) {
        writers.emplace_back([&plane, &partition, s] {
          std::vector<serve::ClosedSegment> closed;
          serve::SessionManager& sessions = plane.sessions(s);
          for (const traj::Trajectory* trajectory : partition[s]) {
            for (const traj::TrajectoryPoint& point : trajectory->points) {
              sessions.Ingest(trajectory->user_id, point, &closed);
            }
          }
        });
      }
      for (std::thread& writer : writers) writer.join();
      std::vector<serve::ClosedSegment> closed;
      plane.FlushAll(&closed);
    }
    const double ingest_seconds = watch.ElapsedSeconds();
    const double ingest_rate =
        static_cast<double>(total_points) / ingest_seconds;
    if (shards == 1) shard1_rate = ingest_rate;
    if (shards >= max_shards) {
      max_shards = shards;
      max_shards_rate = ingest_rate;
    }
    std::printf("%8d %12.0f %8.2fx\n", shards, ingest_rate,
                shard1_rate > 0.0 ? ingest_rate / shard1_rate : 0.0);
    timings.Record(StrPrintf("ingest_t%d_s", shards), ingest_seconds);
  }
  // Self-gate for the scaling claim: on a machine with the cores to back
  // it, shards must actually buy throughput (CI sizes R to the host).
  const double require_scaling =
      flags.GetDouble("require_shard_scaling", 0.0);
  if (require_scaling > 0.0 && shard1_rate > 0.0) {
    const double speedup = max_shards_rate / shard1_rate;
    if (speedup < require_scaling) {
      std::fprintf(stderr,
                   "micro_serve: %d-shard ingest is only %.2fx the 1-shard "
                   "rate (--require_shard_scaling=%.2f)\n",
                   max_shards, speedup, require_scaling);
      return 1;
    }
    std::printf("shard scaling gate: %.2fx >= %.2fx at %d shards\n", speedup,
                require_scaling, max_shards);
  }

  const std::shared_ptr<const serve::ServingModel> model =
      registry.Acquire().active;

  // Closed loop through a BatchPredictor: up to `window` requests in
  // flight, harvesting the oldest before each new submit. Returns
  // enqueue-to-completion latencies.
  const auto run_closed_loop =
      [&](const serve::BatchPredictorOptions& options) {
        std::vector<double> latencies;
        latencies.reserve(num_requests);
        serve::BatchPredictor predictor(&registry, options);
        std::vector<std::future<Result<serve::Prediction>>> futures;
        futures.reserve(num_requests);
        for (size_t i = 0; i < num_requests; ++i) {
          if (i >= window) {
            latencies.push_back(
                DieOnError(futures[i - window].get(), "predict")
                    .latency_seconds);
          }
          futures.push_back(predictor.Submit(serve::PredictRequest(
              segment_features[i % segment_features.size()])));
        }
        for (size_t i = num_requests >= window ? num_requests - window : 0;
             i < num_requests; ++i) {
          latencies.push_back(
              DieOnError(futures[i].get(), "predict").latency_seconds);
        }
        return latencies;
      };

  // Phase F: shadow-scoring ingest overhead at one thread. Shadow
  // scoring runs on the predictor's worker thread, so the claim to pin is
  // that it stays OFF the ingest hot path: the replay-style ingest loop
  // (points -> sessions -> submit-on-close) is timed once plain and once
  // with the active model republished into the shadow slot (the worst
  // case — the shadow costs exactly as much as the active) and a
  // ShadowEvaluator installed. The shadowed ingest wall time lands in the
  // perf baseline as shadow_overhead_t1_s; --require_shadow_overhead=R
  // self-gates the relative ingest-throughput overhead.
  const auto run_ingest_loop =
      [&](const serve::BatchPredictorOptions& options,
          size_t tick_every = 0, const std::function<void()>& tick = {}) {
        serve::ServingPlaneOptions plane_options;
        plane_options.batching = options;
        serve::ServingPlane plane(&registry, plane_options);
        std::vector<serve::ClosedSegment> closed;
        std::vector<std::future<Result<serve::Prediction>>> futures;
        futures.reserve(segment_features.size());
        size_t segments_closed = 0;
        size_t next_tick = tick_every;
        const auto submit_closed = [&] {
          segments_closed += closed.size();
          for (serve::ClosedSegment& segment : closed) {
            futures.push_back(plane.Submit(
                segment.user_id,
                serve::PredictRequest(std::move(segment.features))));
          }
          closed.clear();
          while (next_tick > 0 && segments_closed >= next_tick) {
            tick();
            next_tick += tick_every;
          }
        };
        Stopwatch watch;
        for (const traj::Trajectory& trajectory : corpus) {
          for (const traj::TrajectoryPoint& point : trajectory.points) {
            plane.Ingest(trajectory.user_id, point, &closed);
            if (!closed.empty()) submit_closed();
          }
        }
        plane.FlushAll(&closed);
        submit_closed();
        const double ingest_seconds = watch.ElapsedSeconds();
        plane.FlushPredictors();
        for (auto& future : futures) {
          DieOnError(future.get(), "shadow-phase predict");
        }
        return ingest_seconds;
      };
  {
    SetMaxThreads(1);
    run_ingest_loop(batching);  // Warmup: touch-fault both loops' memory.
    if (const Status status =
            registry.Publish("bench-v1", serve::ModelRole::kShadow);
        !status.ok()) {
      std::fprintf(stderr, "shadow publish failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    serve::ShadowEvaluator evaluator;
    serve::BatchPredictorOptions shadowed = batching;
    shadowed.shadow_evaluator = &evaluator;
    // Best-of-3, interleaved: the phase is ~tens of milliseconds, so a
    // single pair of runs is scheduling-noise-dominated.
    double plain_seconds = 0.0;
    double shadow_seconds = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double plain = run_ingest_loop(batching);
      if (rep == 0 || plain < plain_seconds) plain_seconds = plain;
      evaluator.StartWindow("bench-v1", /*cost_ratio=*/1.0);
      const double shadow = run_ingest_loop(shadowed);
      evaluator.EndWindow();
      if (rep == 0 || shadow < shadow_seconds) shadow_seconds = shadow;
    }
    if (const Status status = registry.RetireShadow("bench teardown");
        !status.ok()) {
      std::fprintf(stderr, "shadow retire failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    const double overhead =
        plain_seconds > 0.0 ? shadow_seconds / plain_seconds - 1.0 : 0.0;
    std::printf("shadow scoring: ingest %.3f s plain vs %.3f s shadowed "
                "at 1 thread (%+.1f%% overhead, %zu shadow samples)\n",
                plain_seconds, shadow_seconds, overhead * 100.0,
                evaluator.window().scored);
    timings.Record("shadow_overhead_t1_s", shadow_seconds);
    const double require_overhead =
        flags.GetDouble("require_shadow_overhead", 0.0);
    if (require_overhead > 0.0 && overhead > require_overhead) {
      std::fprintf(stderr,
                   "micro_serve: shadow scoring costs %+.1f%% ingest "
                   "throughput (--require_shadow_overhead=%.2f allows "
                   "%.0f%%)\n",
                   overhead * 100.0, require_overhead,
                   require_overhead * 100.0);
      return 1;
    }
  }

  // Phase G: telemetry tick overhead at one thread. The live telemetry
  // plane (obs/timeseries.h + obs/slo.h) samples at ingest barriers, so
  // the claim to pin is that a tick — sampling every tracked series plus
  // a burn-rate evaluation — is cheap enough to ride the ingest loop.
  // The same replay-style ingest is timed plain and with a
  // TimeSeriesStore + SloEngine ticking every 16 closed segments (the
  // serve-replay default is 64 — this measures 4x the production tick
  // rate). Recorded as timeseries_tick_t1_s; --require_tick_overhead=R
  // self-gates the relative ingest cost (CI passes 0.05).
  {
    SetMaxThreads(1);
    obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
    obs::TimeSeriesStore store(global);
    for (const char* name :
         {"serve.sessions.points_ingested", "serve.sessions.segments_emitted",
          "serve.batch_predictor.requests", "serve.shed_total.queue_full",
          "serve.shed_total.preempted", "serve.deadline_exceeded_total",
          "serve.degraded_total.previous_model",
          "serve.degraded_total.majority_class"}) {
      store.TrackCounter(name);
    }
    std::vector<obs::SloSpec> slo_specs;
    std::string slo_error;
    if (!obs::ParseSloSpecs(
            "shed:type=ratio,bad=serve.shed_total.queue_full+"
            "serve.shed_total.preempted,total=serve.batch_predictor.requests,"
            "budget=0.02,fast=4,slow=16",
            &slo_specs, &slo_error)) {
      std::fprintf(stderr, "micro_serve: bad bench SLO spec: %s\n",
                   slo_error.c_str());
      return 1;
    }
    obs::SloEngine slo(&store, &global, std::move(slo_specs));
    uint64_t tick_index = 0;
    const auto tick = [&] {
      store.Tick(static_cast<double>(tick_index));
      slo.Evaluate(tick_index);
      ++tick_index;
    };
    run_ingest_loop(batching);  // Warmup after the phase-F teardown.
    double plain_seconds = 0.0;
    double ticked_seconds = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double plain = run_ingest_loop(batching);
      if (rep == 0 || plain < plain_seconds) plain_seconds = plain;
      const double ticked =
          run_ingest_loop(batching, /*tick_every=*/16, tick);
      if (rep == 0 || ticked < ticked_seconds) ticked_seconds = ticked;
    }
    const double overhead =
        plain_seconds > 0.0 ? ticked_seconds / plain_seconds - 1.0 : 0.0;
    std::printf("telemetry tick: ingest %.3f s plain vs %.3f s ticked at 1 "
                "thread (%+.1f%% overhead, %llu ticks, %zu series)\n",
                plain_seconds, ticked_seconds, overhead * 100.0,
                static_cast<unsigned long long>(tick_index),
                store.series_count());
    timings.Record("timeseries_tick_t1_s", ticked_seconds);
    const double require_tick_overhead =
        flags.GetDouble("require_tick_overhead", 0.0);
    if (require_tick_overhead > 0.0 && overhead > require_tick_overhead) {
      std::fprintf(stderr,
                   "micro_serve: telemetry ticks cost %+.1f%% ingest "
                   "throughput (--require_tick_overhead=%.2f allows "
                   "%.0f%%)\n",
                   overhead * 100.0, require_tick_overhead,
                   require_tick_overhead * 100.0);
      return 1;
    }
  }

  std::printf("%8s %12s %12s %12s %9s %9s %9s\n", "threads",
              "batched/s", "per-req/s", "direct/s", "p50_ms",
              "p90_ms", "p99_ms");

  for (const int threads : ParseIntList(flags, "threads_list", "1,2,4,8")) {
    SetMaxThreads(threads);

    // Phase B: micro-batched dispatch.
    Stopwatch watch;
    const std::vector<double> latencies = run_closed_loop(batching);
    const double batched_seconds = watch.ElapsedSeconds();
    const double batched_rate =
        static_cast<double>(num_requests) / batched_seconds;
    const double p50 = stats::Percentile(latencies, 50.0);
    const double p90 = stats::Percentile(latencies, 90.0);
    const double p99 = stats::Percentile(latencies, 99.0);

    // Phase C: per-request dispatch — the same path, batches of one.
    serve::BatchPredictorOptions singles = batching;
    singles.max_batch_size = 1;
    watch.Reset();
    run_closed_loop(singles);
    const double per_request_seconds = watch.ElapsedSeconds();
    const double per_request_rate =
        static_cast<double>(num_requests) / per_request_seconds;

    // Phase D: the synchronous lower bound, no dispatch machinery at all.
    watch.Reset();
    for (size_t i = 0; i < num_requests; ++i) {
      DieOnError(
          model->PredictOne(segment_features[i % segment_features.size()]),
          "direct predict");
    }
    const double direct_seconds = watch.ElapsedSeconds();
    const double direct_rate =
        static_cast<double>(num_requests) / direct_seconds;

    // Phase E: overload — an open loop (no in-flight window) slams the
    // whole request stream into a small bounded queue with per-request
    // deadlines and mixed priorities. Admission control sheds, the
    // deadline sweep expires, and whatever survives is served; latency
    // percentiles cover the survivors only and are bounded above by the
    // deadline, which keeps the perf-gate keys stable.
    serve::BatchPredictorOptions overload = batching;
    overload.max_queue = 4 * batching.max_batch_size;
    const double overload_deadline_s =
        flags.GetDouble("overload_deadline_ms", 20.0) * 1e-3;
    watch.Reset();
    size_t served = 0;
    size_t shed = 0;
    size_t expired = 0;
    std::vector<double> overload_latencies;
    {
      serve::BatchPredictor predictor(&registry, overload);
      std::vector<std::future<Result<serve::Prediction>>> futures;
      futures.reserve(num_requests);
      for (size_t i = 0; i < num_requests; ++i) {
        serve::RequestContext context =
            serve::RequestContext::WithTimeout(overload_deadline_s);
        context.priority = static_cast<int>(i % 3);
        futures.push_back(predictor.Submit(serve::PredictRequest(
            segment_features[i % segment_features.size()], context)));
      }
      predictor.Flush();
      for (auto& future : futures) {
        const auto result = future.get();
        if (result.ok()) {
          ++served;
          overload_latencies.push_back(result.value().latency_seconds);
        } else if (result.status().code() ==
                   StatusCode::kResourceExhausted) {
          ++shed;
        } else if (result.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          ++expired;
        } else {
          DieOnError(result, "overload predict");
        }
      }
    }
    const double overload_seconds = watch.ElapsedSeconds();
    const double overload_p99 =
        overload_latencies.empty()
            ? 0.0
            : stats::Percentile(overload_latencies, 99.0);

    std::printf("%8d %12.0f %12.0f %12.0f %9.3f %9.3f %9.3f\n",
                threads, batched_rate, per_request_rate,
                direct_rate, p50 * 1e3, p90 * 1e3, p99 * 1e3);
    std::printf("%8s overload: %zu served, %zu shed, %zu expired, "
                "p99 %.3f ms in %.3f s\n",
                "", served, shed, expired, overload_p99 * 1e3,
                overload_seconds);
    const std::string suffix = StrPrintf("_t%d_s", threads);
    timings.Record("predict_batched" + suffix, batched_seconds);
    timings.Record("predict_per_request" + suffix, per_request_seconds);
    timings.Record("predict_direct" + suffix, direct_seconds);
    timings.Record(StrPrintf("latency_batched_t%d_p50_s", threads), p50);
    timings.Record(StrPrintf("latency_batched_t%d_p90_s", threads), p90);
    timings.Record(StrPrintf("latency_batched_t%d_p99_s", threads), p99);
    timings.Record("overload" + suffix, overload_seconds);
    timings.Record(StrPrintf("latency_overload_t%d_p99_s", threads),
                   overload_p99);
  }
  timings.Write();
  if (!harness.DumpTrace()) return 1;
  return 0;
}

}  // namespace
}  // namespace trajkit::bench

int main(int argc, char** argv) { return trajkit::bench::Main(argc, argv); }
