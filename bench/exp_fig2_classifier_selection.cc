// Experiment E1 — reproduces Figure 2 of the paper: "Among the trained
// classifiers random forest achieved the highest mean accuracy."
//
// Setting (§4.1): Dabiri & Heaslip label set {walk, train, bus, bike,
// driving}, no noise removal, random cross-validation, six classifiers.
// Prints per-classifier fold accuracies (the data behind the box plot),
// the mean/std, and pairwise Wilcoxon signed-rank tests of random forest
// against every other classifier — the significance readouts quoted in
// §4.1.
//
// Flags: --users --days --seed --folds --repeats --scale
//        --threads=N --timing_json=<path>
//   --scale < 1 shrinks ensemble sizes / epochs for a faster smoke run.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/factory.h"
#include "ml/stats_tests.h"

namespace trajkit {
namespace {

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int folds = flags.GetInt("folds", 5);
  const int repeats = flags.GetInt("repeats", 2);
  const double scale = flags.GetDouble("scale", 1.0);

  std::printf(
      "=== Figure 2: classifier selection (random CV, Dabiri labels) ===\n");
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_fig2_classifier_selection", harness);
  Stopwatch total_timer;
  Stopwatch phase_timer;

  const auto built = bench::DieOnError(
      core::BuildSyntheticDataset(bench::CorpusOptionsFromFlags(flags),
                                  core::PipelineOptions{},
                                  core::LabelSet::Dabiri()),
      "dataset build");
  timing.RecordLap("dataset_build", phase_timer);
  std::printf("corpus: %zu points, dataset: %zu segments x %zu features\n\n",
              built.corpus_summary.total_points, built.dataset.num_samples(),
              built.dataset.num_features());

  // Collect per-fold accuracies for each classifier (repeats × folds).
  std::map<std::string, std::vector<double>> fold_scores;
  TablePrinter table({"classifier", "mean_acc", "std_acc", "mean_wf1",
                      "fit+eval_s"});
  for (const std::string& name : ml::AllClassifierNames()) {
    Stopwatch timer;
    std::vector<double> scores;
    double wf1_sum = 0.0;
    int wf1_count = 0;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      const auto model = bench::DieOnError(
          ml::MakeClassifier(
              name, {.seed = 42 + static_cast<uint64_t>(repeat),
                     .scale = scale}),
          "classifier construction");
      const auto cv_folds =
          core::MakeFolds(core::CvScheme::kRandom, built.dataset, folds,
                          100 + static_cast<uint64_t>(repeat));
      const auto cv = bench::DieOnError(
          ml::CrossValidate(*model, built.dataset, cv_folds),
          "cross-validation");
      scores.insert(scores.end(), cv.fold_accuracy.begin(),
                    cv.fold_accuracy.end());
      wf1_sum += cv.MeanWeightedF1();
      ++wf1_count;
    }
    double mean = 0.0;
    for (double s : scores) mean += s;
    mean /= static_cast<double>(scores.size());
    double var = 0.0;
    for (double s : scores) var += (s - mean) * (s - mean);
    var /= static_cast<double>(scores.size());
    table.AddRow({name, StrPrintf("%.4f", mean),
                  StrPrintf("%.4f", std::sqrt(var)),
                  StrPrintf("%.4f", wf1_sum / wf1_count),
                  StrPrintf("%.1f", timer.ElapsedSeconds())});
    timing.Record("cv_" + name, timer.ElapsedSeconds());
    fold_scores[name] = std::move(scores);
  }
  table.Print();

  // Box-plot data: the per-fold accuracies behind Figure 2.
  std::printf("\nper-fold accuracies (box-plot data):\n");
  for (const auto& [name, scores] : fold_scores) {
    std::string line = name + ":";
    for (double s : scores) line += StrPrintf(" %.4f", s);
    std::printf("%s\n", line.c_str());
  }

  // Wilcoxon signed-rank: random forest vs every other classifier, paired
  // on folds (§4.1's significance statements).
  std::printf("\nWilcoxon signed-rank, random_forest vs. others "
              "(two-sided):\n");
  TablePrinter wilcoxon({"opponent", "W+", "p_value", "n", "significant"});
  const std::vector<double>& rf = fold_scores.at("random_forest");
  for (const auto& [name, scores] : fold_scores) {
    if (name == "random_forest") continue;
    const auto test = ml::WilcoxonSignedRank(rf, scores);
    if (!test.ok()) {
      wilcoxon.AddRow({name, "-", "-", "-", "-"});
      continue;
    }
    wilcoxon.AddRow({name, StrPrintf("%.1f", test->statistic),
                     StrPrintf("%.4f", test->p_value),
                     StrPrintf("%d", test->n_used),
                     test->p_value < 0.05 ? "yes" : "no"});
  }
  wilcoxon.Print();

  std::printf(
      "\npaper reference: RF mu=90.4%%, XGBoost mu=90.0%%; RF vs XGB and "
      "RF vs DT not significant; RF vs {SVM, NN, AdaBoost} significant.\n");
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("total time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
