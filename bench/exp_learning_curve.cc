// Experiment E8 (extension) — learning curves: how the headline numbers
// scale with the amount of data. Puts every other experiment's corpus-size
// defaults in context and shows where the paper-scale plateau begins.
// Sweeps the number of users (the unit that matters for user-oriented CV)
// at a fixed number of days.
//
// Flags: --days --seed --folds --scale --max_users --threads=N
//        --timing_json=<path>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/factory.h"

namespace trajkit {
namespace {

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int folds = flags.GetInt("folds", 5);
  const int days = flags.GetInt("days", 4);
  const int max_users = flags.GetInt("max_users", 60);
  const double scale = flags.GetDouble("scale", 1.0);

  std::printf(
      "=== Learning curve: corpus size vs accuracy (RF, Dabiri labels) "
      "===\n\n");
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_learning_curve", harness);
  Stopwatch total_timer;

  TablePrinter table({"users", "segments", "points", "random_acc",
                      "user_acc", "gap", "seconds"});
  for (int users : {10, 20, 30, 45, 60, 80}) {
    if (users > max_users) break;
    synthgeo::GeneratorOptions generator_options;
    generator_options.num_users = users;
    generator_options.days_per_user = days;
    generator_options.seed = flags.GetUint64("seed", 7);
    Stopwatch timer;
    const auto built = bench::DieOnError(
        core::BuildSyntheticDataset(generator_options,
                                    core::PipelineOptions{},
                                    core::LabelSet::Dabiri()),
        "dataset build");
    const auto rf = bench::DieOnError(
        ml::MakeClassifier("random_forest", {.seed = 1, .scale = scale}),
        "factory");
    const auto random_folds = core::MakeFolds(core::CvScheme::kRandom,
                                              built.dataset, folds, 5);
    const auto user_folds = core::MakeFolds(
        core::CvScheme::kUserOriented, built.dataset, folds, 5);
    const auto random_cv = bench::DieOnError(
        ml::CrossValidate(*rf, built.dataset, random_folds), "random CV");
    const auto user_cv = bench::DieOnError(
        ml::CrossValidate(*rf, built.dataset, user_folds), "user CV");
    table.AddRow(
        {StrPrintf("%d", users),
         StrPrintf("%zu", built.dataset.num_samples()),
         StrPrintf("%zu", built.corpus_summary.total_points),
         StrPrintf("%.4f", random_cv.MeanAccuracy()),
         StrPrintf("%.4f", user_cv.MeanAccuracy()),
         StrPrintf("%+.4f",
                   random_cv.MeanAccuracy() - user_cv.MeanAccuracy()),
         StrPrintf("%.1f", timer.ElapsedSeconds())});
    timing.Record(StrPrintf("users_%d", users), timer.ElapsedSeconds());
  }
  table.Print();
  std::printf(
      "\nexpected shape: both curves rise with more users; the optimism "
      "gap persists at every size.\n");
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("total time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
