// Experiment E4 — reproduces Figure 4 of the paper: "The different cross
// validation results for user oriented cross-validation and random
// cross-validation."
//
// Setting (§4.4): identical classifiers and features under two CV schemes;
// only the fold construction differs. The paper's readout: random CV
// yields optimistic accuracy and F-score for every classifier.
//
// Flags: --users --days --seed --folds --scale --classifiers=a,b,c
//        --threads=N --timing_json=<path>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/factory.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace trajkit {
namespace {

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int folds = flags.GetInt("folds", 5);
  const int repeats = flags.GetInt("repeats", 3);
  const double scale = flags.GetDouble("scale", 1.0);
  const std::string classifier_list = flags.GetString("classifiers", "");

  std::printf(
      "=== Figure 4: random vs user-oriented cross-validation ===\n\n");
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_fig4_cv_comparison", harness);
  Stopwatch total_timer;
  Stopwatch phase_timer;

  const auto built = bench::DieOnError(
      core::BuildSyntheticDataset(bench::CorpusOptionsFromFlags(flags),
                                  core::PipelineOptions{},
                                  core::LabelSet::Dabiri()),
      "dataset build");
  timing.RecordLap("dataset_build", phase_timer);
  std::printf("dataset: %zu segments, %zu users\n\n",
              built.dataset.num_samples(),
              built.dataset.DistinctGroups().size());

  std::vector<std::string> roster;
  if (classifier_list.empty()) {
    roster = ml::AllClassifierNames();
  } else {
    for (std::string_view name : SplitString(classifier_list, ',')) {
      roster.emplace_back(name);
    }
  }

  TablePrinter table({"classifier", "random_acc", "user_acc", "acc_gap",
                      "random_wf1", "user_wf1", "wf1_gap"});
  int optimistic = 0;
  // Per-classifier fold-accuracy series (folds aligned across classifiers
  // by the shared fold seeds) for the §4.4 correlation claim.
  std::vector<std::vector<double>> random_series;
  std::vector<std::vector<double>> user_series;
  for (const std::string& name : roster) {
    double random_acc = 0.0;
    double user_acc = 0.0;
    double random_wf1 = 0.0;
    double user_wf1 = 0.0;
    std::vector<double> random_folds_acc;
    std::vector<double> user_folds_acc;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      const uint64_t fold_seed = 7 + static_cast<uint64_t>(repeat);
      const auto model = bench::DieOnError(
          ml::MakeClassifier(name,
                             {.seed = 42 + static_cast<uint64_t>(repeat),
                              .scale = scale}),
          "classifier construction");
      const auto random_folds = core::MakeFolds(
          core::CvScheme::kRandom, built.dataset, folds, fold_seed);
      const auto user_folds = core::MakeFolds(
          core::CvScheme::kUserOriented, built.dataset, folds, fold_seed);
      const auto random_cv = bench::DieOnError(
          ml::CrossValidate(*model, built.dataset, random_folds),
          "random CV");
      const auto user_cv = bench::DieOnError(
          ml::CrossValidate(*model, built.dataset, user_folds), "user CV");
      random_acc += random_cv.MeanAccuracy() / repeats;
      user_acc += user_cv.MeanAccuracy() / repeats;
      random_wf1 += random_cv.MeanWeightedF1() / repeats;
      user_wf1 += user_cv.MeanWeightedF1() / repeats;
      random_folds_acc.insert(random_folds_acc.end(),
                              random_cv.fold_accuracy.begin(),
                              random_cv.fold_accuracy.end());
      user_folds_acc.insert(user_folds_acc.end(),
                            user_cv.fold_accuracy.begin(),
                            user_cv.fold_accuracy.end());
    }
    random_series.push_back(std::move(random_folds_acc));
    user_series.push_back(std::move(user_folds_acc));
    const double acc_gap = random_acc - user_acc;
    const double wf1_gap = random_wf1 - user_wf1;
    if (acc_gap > 0.0) ++optimistic;
    table.AddRow({name, StrPrintf("%.4f", random_acc),
                  StrPrintf("%.4f", user_acc),
                  StrPrintf("%+.4f", acc_gap),
                  StrPrintf("%.4f", random_wf1),
                  StrPrintf("%.4f", user_wf1),
                  StrPrintf("%+.4f", wf1_gap)});
  }
  table.Print();
  std::printf(
      "\n%d/%zu classifiers score higher under random CV.\n",
      optimistic, roster.size());

  // §4.4 closes with a consistency observation about the two schemes.
  // Two readings, both reported: (a) fold-score dispersion — user-oriented
  // folds vary far more because whole users differ in difficulty; (b) the
  // cross-classifier fold-score correlation — under user CV the folds'
  // difficulty is shared by all classifiers (hard users are hard for
  // everyone), under random CV fold noise is classifier-specific.
  auto dispersion = [](const std::vector<std::vector<double>>& series) {
    double total = 0.0;
    for (const std::vector<double>& s : series) {
      total += stats::StdDev(s);
    }
    return series.empty() ? 0.0
                          : total / static_cast<double>(series.size());
  };
  std::printf("mean fold-score std: random=%.4f  user_oriented=%.4f\n",
              dispersion(random_series), dispersion(user_series));
  const auto random_corr = stats::MeanPairwiseCorrelation(random_series);
  const auto user_corr = stats::MeanPairwiseCorrelation(user_series);
  if (random_corr.ok() && user_corr.ok()) {
    std::printf(
        "mean pairwise fold-score correlation across classifiers: "
        "random=%.3f  user_oriented=%.3f\n",
        random_corr.value(), user_corr.value());
  }
  std::printf(
      "paper reference: random CV is optimistic for every classifier on "
      "accuracy and F-score; user-oriented results are less stable "
      "fold-to-fold.\n");
  timing.RecordLap("cv_comparison", phase_timer);
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("total time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
