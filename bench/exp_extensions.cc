// Experiment E7 (extension) — evaluates the library features that go
// beyond the paper, in the paper's own evaluation frame:
//   1. segmentation strategy: the paper's (user, day, mode) runs vs
//      fixed-duration windows (the scheme of Dabiri & Heaslip), which
//      needs no test-time annotations;
//   2. the 70-statistic feature set vs 70 + 8 Zheng-style segment
//      features (heading-change / stop / velocity-change rates — the
//      "tailored features" the paper's §5 names as future work);
//   3. the extended classifier roster (six paper families + k-NN +
//      logistic regression) under random and user-oriented CV.
//
// Flags: --users --days --seed --folds --scale --threads=N
//        --timing_json=<path>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/factory.h"
#include "synthgeo/generator.h"

namespace trajkit {
namespace {

double CvAccuracy(const ml::Classifier& model, const ml::Dataset& dataset,
                  core::CvScheme scheme, int folds, uint64_t seed) {
  const auto cv_folds = core::MakeFolds(scheme, dataset, folds, seed);
  const auto cv = ml::CrossValidate(model, dataset, cv_folds);
  return cv.ok() ? cv->MeanAccuracy() : 0.0;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int folds = flags.GetInt("folds", 5);
  const double scale = flags.GetDouble("scale", 0.5);

  std::printf("=== Extensions: segmentation, features, classifiers ===\n\n");
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_extensions", harness);
  Stopwatch total_timer;
  Stopwatch phase_timer;

  synthgeo::GeoLifeLikeGenerator generator(
      bench::CorpusOptionsFromFlags(flags));
  const std::vector<traj::Trajectory> corpus = generator.Generate();
  timing.RecordLap("corpus_generate", phase_timer);
  const core::LabelSet labels = core::LabelSet::Dabiri();

  // ---- 1. Segmentation strategy ---------------------------------------
  std::printf("--- segmentation strategy (RF, random + user CV) ---\n");
  {
    TablePrinter table({"strategy", "segments", "random_acc", "user_acc"});
    struct Strategy {
      const char* name;
      core::PipelineOptions options;
    };
    std::vector<Strategy> strategies;
    strategies.push_back({"user_day_mode", core::PipelineOptions{}});
    for (double window_s : {120.0, 300.0, 600.0}) {
      core::PipelineOptions options;
      options.strategy = core::SegmentationStrategy::kFixedWindows;
      options.windows.window_seconds = window_s;
      strategies.push_back(
          {window_s == 120.0   ? "windows_120s"
           : window_s == 300.0 ? "windows_300s"
                               : "windows_600s",
           options});
    }
    for (const Strategy& strategy : strategies) {
      const core::Pipeline pipeline(strategy.options);
      const auto dataset = pipeline.BuildDataset(corpus, labels);
      if (!dataset.ok()) continue;
      const auto rf = bench::DieOnError(
          ml::MakeClassifier("random_forest", {.seed = 1, .scale = scale}),
          "factory");
      table.AddRow(
          {strategy.name, StrPrintf("%zu", dataset->num_samples()),
           StrPrintf("%.4f", CvAccuracy(*rf, dataset.value(),
                                        core::CvScheme::kRandom, folds, 5)),
           StrPrintf("%.4f",
                     CvAccuracy(*rf, dataset.value(),
                                core::CvScheme::kUserOriented, folds, 5))});
    }
    table.Print();
    std::printf("(fixed windows avoid the paper's test-time annotation "
                "assumption at some accuracy cost)\n");
  }

  // ---- 2. Extended features -------------------------------------------
  std::printf("\n--- 70 statistics vs 70+8 Zheng features ---\n");
  {
    TablePrinter table({"feature_set", "features", "random_acc",
                        "user_acc"});
    for (bool extended : {false, true}) {
      core::PipelineOptions options;
      options.include_extended_features = extended;
      const core::Pipeline pipeline(options);
      const auto dataset = bench::DieOnError(
          pipeline.BuildDataset(corpus, labels), "pipeline");
      const auto rf = bench::DieOnError(
          ml::MakeClassifier("random_forest", {.seed = 2, .scale = scale}),
          "factory");
      table.AddRow(
          {extended ? "70+8 extended" : "70 statistics",
           StrPrintf("%zu", dataset.num_features()),
           StrPrintf("%.4f", CvAccuracy(*rf, dataset,
                                        core::CvScheme::kRandom, folds, 7)),
           StrPrintf("%.4f",
                     CvAccuracy(*rf, dataset,
                                core::CvScheme::kUserOriented, folds, 7))});
    }
    table.Print();
  }

  // ---- 3. Four evaluation schemes (incl. temporal, §5 future work) ----
  std::printf("\n--- evaluation schemes (RF) ---\n");
  {
    const core::Pipeline pipeline;
    const auto dataset = bench::DieOnError(
        pipeline.BuildDataset(corpus, labels), "pipeline");
    TablePrinter table({"scheme", "accuracy", "weighted_f1"});
    for (core::CvScheme scheme :
         {core::CvScheme::kRandom, core::CvScheme::kStratified,
          core::CvScheme::kUserOriented, core::CvScheme::kTemporal}) {
      const auto rf = bench::DieOnError(
          ml::MakeClassifier("random_forest", {.seed = 9, .scale = scale}),
          "factory");
      const auto cv_folds = core::MakeFolds(scheme, dataset, folds, 13);
      const auto cv = bench::DieOnError(
          ml::CrossValidate(*rf, dataset, cv_folds), "CV");
      table.AddRow({std::string(core::CvSchemeToString(scheme)),
                    StrPrintf("%.4f", cv.MeanAccuracy()),
                    StrPrintf("%.4f", cv.MeanWeightedF1())});
    }
    table.Print();
    std::printf("(temporal folds train strictly on earlier days — the "
                "deployment-faithful holdout of §5's future work)\n");
  }

  // ---- 4. Extended classifier roster ----------------------------------
  std::printf("\n--- extended roster (random vs user CV) ---\n");
  {
    const core::Pipeline pipeline;
    const auto dataset = bench::DieOnError(
        pipeline.BuildDataset(corpus, labels), "pipeline");
    TablePrinter table({"classifier", "random_acc", "user_acc", "gap"});
    for (const std::string& name : ml::ExtendedClassifierNames()) {
      const auto model = bench::DieOnError(
          ml::MakeClassifier(name, {.seed = 3, .scale = scale}), "factory");
      const double random_acc = CvAccuracy(
          *model, dataset, core::CvScheme::kRandom, folds, 11);
      const double user_acc = CvAccuracy(
          *model, dataset, core::CvScheme::kUserOriented, folds, 11);
      table.AddRow({name, StrPrintf("%.4f", random_acc),
                    StrPrintf("%.4f", user_acc),
                    StrPrintf("%+.4f", random_acc - user_acc)});
    }
    table.Print();
  }

  timing.RecordLap("extensions", phase_timer);
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("\ntotal time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
