#ifndef TRAJKIT_BENCH_BENCH_COMMON_H_
#define TRAJKIT_BENCH_BENCH_COMMON_H_

// Shared plumbing of the experiment harnesses: a tiny --flag=value parser,
// the corpus knobs every experiment accepts, and the --timing_json
// machine-readable timing emitter. The harness-wide trio
// --threads/--timing_json/--metrics_json is parsed by the shared
// common/harness_options.h so every harness, microbenchmark, and the CLI
// spell them identically. Harnesses are plain executables that print the
// paper's rows; microbenchmarks (micro_*.cc) use google-benchmark instead.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/harness_options.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/experiments.h"
#include "obs/metrics.h"

namespace trajkit::bench {

/// The harnesses use the library's --key=value parser and the shared
/// --threads/--timing_json/--metrics_json trio.
using ::trajkit::Flags;
using ::trajkit::HarnessOptions;

/// Corpus knobs shared by all experiments. --users/--days/--seed shrink or
/// grow the synthetic corpus; the defaults below reproduce the numbers in
/// EXPERIMENTS.md. --seed accepts the full uint64 range.
inline synthgeo::GeneratorOptions CorpusOptionsFromFlags(
    const Flags& flags, int default_users = 60, int default_days = 6) {
  synthgeo::GeneratorOptions options;
  options.num_users = flags.GetInt("users", default_users);
  options.days_per_user = flags.GetInt("days", default_days);
  options.seed = flags.GetUint64("seed", 7);
  return options;
}

/// Collects named wall-clock phase timings and, when --timing_json=<path>
/// was given, writes them as one JSON object — the machine-readable perf
/// trajectory consumed by BENCH_*.json tooling (tools/check_bench.py):
///   {"harness": "...", "threads": N, "timings_s": {"phase": 1.23, ...}}
/// Record() keeps insertion order; duplicate names are emitted as given.
/// Write() additionally honors the shared --metrics_json=<path> flag: the
/// process metrics registry (counters, gauges, latency histograms with
/// p50/p90/p99) is dumped alongside the timings, so every harness emits
/// the same structured observability artifact.
class TimingJson {
 public:
  TimingJson(const char* harness, const HarnessOptions& options)
      : harness_(harness),
        path_(options.timing_json),
        metrics_path_(options.metrics_json) {}

  /// Records one phase's wall-clock seconds.
  void Record(const std::string& name, double seconds) {
    entries_.emplace_back(name, seconds);
  }

  /// Convenience: records the stopwatch's elapsed seconds and restarts it,
  /// so consecutive phases chain naturally.
  void RecordLap(const std::string& name, Stopwatch& watch) {
    Record(name, watch.ElapsedSeconds());
    watch.Reset();
  }

  /// Writes the timing JSON (--timing_json) and the metrics registry dump
  /// (--metrics_json) if their flags were given; no-ops otherwise. Returns
  /// false (with a stderr note) when a file cannot be written.
  bool Write() const {
    if (!metrics_path_.empty()) {
      if (!obs::WriteTextFile(metrics_path_,
                              obs::MetricsRegistry::Global().ToJson())) {
        return false;
      }
      std::printf("metrics written to %s\n", metrics_path_.c_str());
    }
    if (path_.empty()) return true;
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "timing_json: cannot open '%s'\n", path_.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"harness\": \"%s\",\n  \"threads\": %d,\n",
                 harness_, MaxThreads());
    std::fprintf(out, "  \"timings_s\": {");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": %.6f", i == 0 ? "" : ",",
                   entries_[i].first.c_str(), entries_[i].second);
    }
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("timings written to %s\n", path_.c_str());
    return true;
  }

 private:
  const char* harness_;
  std::string path_;
  std::string metrics_path_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// Dies with a message when a Status/Result is not OK.
template <typename T>
T DieOnError(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace trajkit::bench

#endif  // TRAJKIT_BENCH_BENCH_COMMON_H_
