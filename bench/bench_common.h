#ifndef TRAJKIT_BENCH_BENCH_COMMON_H_
#define TRAJKIT_BENCH_BENCH_COMMON_H_

// Shared plumbing of the experiment harnesses: a tiny --flag=value parser
// and the corpus knobs every experiment accepts. Harnesses are plain
// executables that print the paper's rows; microbenchmarks (micro_*.cc) use
// google-benchmark instead.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"
#include "core/experiments.h"

namespace trajkit::bench {

/// The harnesses use the library's --key=value parser.
using ::trajkit::Flags;

/// Corpus knobs shared by all experiments. --users/--days/--seed shrink or
/// grow the synthetic corpus; the defaults below reproduce the numbers in
/// EXPERIMENTS.md.
inline synthgeo::GeneratorOptions CorpusOptionsFromFlags(
    const Flags& flags, int default_users = 60, int default_days = 6) {
  synthgeo::GeneratorOptions options;
  options.num_users = flags.GetInt("users", default_users);
  options.days_per_user = flags.GetInt("days", default_days);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  return options;
}

/// Dies with a message when a Status/Result is not OK.
template <typename T>
T DieOnError(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace trajkit::bench

#endif  // TRAJKIT_BENCH_BENCH_COMMON_H_
