// Microbenchmarks for the ML substrate: tree/forest training and
// prediction throughput on trajectory-feature-shaped data (70 columns).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/harness_options.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/random_forest.h"

namespace trajkit::ml {
namespace {

Dataset SyntheticFeatures(size_t samples, size_t features, int classes,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  rows.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    const int y = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(classes)));
    std::vector<double> row(features);
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Gaussian(0.0, 1.0);
    }
    // A handful of informative columns.
    row[0] += 1.5 * y;
    row[1] += 0.8 * (y % 2);
    row[2] -= 0.6 * y;
    rows.push_back(std::move(row));
    labels.push_back(y);
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows), std::move(labels),
                                   {}, {}, std::move(class_names)))
      .value();
}

void BM_DecisionTreeFit(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(
      static_cast<size_t>(state.range(0)), 70, 5, 1);
  for (auto _ : state) {
    DecisionTree tree;
    benchmark::DoNotOptimize(tree.Fit(ds));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RandomForestFit(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(1024, 70, 5, 2);
  for (auto _ : state) {
    RandomForestParams params;
    params.n_estimators = static_cast<int>(state.range(0));
    RandomForest forest(params);
    benchmark::DoNotOptimize(forest.Fit(ds));
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(10)->Arg(50);

void BM_RandomForestPredict(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(2048, 70, 5, 3);
  RandomForestParams params;
  params.n_estimators = 50;
  RandomForest forest(params);
  (void)forest.Fit(ds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(ds.features()));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_RandomForestPredict);

void BM_GradientBoostingFit(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(1024, 70, 5, 4);
  for (auto _ : state) {
    GradientBoostingParams params;
    params.n_rounds = static_cast<int>(state.range(0));
    GradientBoosting gbdt(params);
    benchmark::DoNotOptimize(gbdt.Fit(ds));
  }
}
BENCHMARK(BM_GradientBoostingFit)->Arg(10)->Arg(30);

}  // namespace
}  // namespace trajkit::ml

// Expanded BENCHMARK_MAIN so the shared --threads/--timing_json/
// --metrics_json trio (common/harness_options.h) is accepted and stripped
// before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  const trajkit::HarnessOptions harness =
      trajkit::HarnessOptions::FromArgv(&argc, argv);
  harness.ApplyThreads();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!harness.metrics_json.empty() &&
      !trajkit::obs::WriteTextFile(
          harness.metrics_json,
          trajkit::obs::MetricsRegistry::Global().ToJson())) {
    return 1;
  }
  return 0;
}
