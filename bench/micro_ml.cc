// Microbenchmarks for the ML substrate: tree/forest training and
// prediction throughput on trajectory-feature-shaped data (70 columns),
// plus the flat-vs-pointer forest inference comparison and the point
// feature kernels. With --timing_json=<path> a fixed gate workload runs
// after the google-benchmarks and emits the phase timings consumed by
// tools/check_bench.py (the micro_ml artifact in BENCH_baseline.json).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/harness_options.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/flat_forest.h"
#include "ml/gradient_boosting.h"
#include "ml/random_forest.h"
#include "traj/point_features.h"
#include "traj/trajectory_features.h"

namespace trajkit::ml {
namespace {

Dataset SyntheticFeatures(size_t samples, size_t features, int classes,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  rows.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    const int y = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(classes)));
    std::vector<double> row(features);
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Gaussian(0.0, 1.0);
    }
    // A handful of informative columns.
    row[0] += 1.5 * y;
    row[1] += 0.8 * (y % 2);
    row[2] -= 0.6 * y;
    rows.push_back(std::move(row));
    labels.push_back(y);
  }
  std::vector<std::string> class_names;
  for (int c = 0; c < classes; ++c) {
    class_names.push_back(std::string(1, 'c') + std::to_string(c));
  }
  return std::move(Dataset::Create(Matrix::FromRows(rows), std::move(labels),
                                   {}, {}, std::move(class_names)))
      .value();
}

void BM_DecisionTreeFit(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(
      static_cast<size_t>(state.range(0)), 70, 5, 1);
  for (auto _ : state) {
    DecisionTree tree;
    benchmark::DoNotOptimize(tree.Fit(ds));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RandomForestFit(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(1024, 70, 5, 2);
  for (auto _ : state) {
    RandomForestParams params;
    params.n_estimators = static_cast<int>(state.range(0));
    RandomForest forest(params);
    benchmark::DoNotOptimize(forest.Fit(ds));
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(10)->Arg(50);

void BM_RandomForestPredict(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(2048, 70, 5, 3);
  RandomForestParams params;
  params.n_estimators = 50;
  RandomForest forest(params);
  (void)forest.Fit(ds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(ds.features()));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_RandomForestPredict);

// Same fitted forest, compiled flat form (SoA pool, cohort descent).
void BM_FlatForestPredict(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(2048, 70, 5, 3);
  RandomForestParams params;
  params.n_estimators = 50;
  RandomForest forest(params);
  (void)forest.Fit(ds);
  (void)forest.CompileFlat();
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(ds.features()));
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_FlatForestPredict);

// Single-row (serving-shaped) predicts, pointer walk vs compiled form:
// Arg(0) = pointer, Arg(1) = flat.
void BM_ForestPredictSingleRow(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(1024, 70, 5, 3);
  RandomForestParams params;
  params.n_estimators = 50;
  RandomForest forest(params);
  (void)forest.Fit(ds);
  if (state.range(0) == 1) (void)forest.CompileFlat();
  size_t r = 0;
  for (auto _ : state) {
    const std::span<const double> row = ds.features().Row(r);
    ml::Matrix one(1, row.size());
    std::copy(row.begin(), row.end(), one.MutableRow(0).begin());
    benchmark::DoNotOptimize(forest.Predict(one));
    r = (r + 1) % ds.num_samples();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredictSingleRow)->Arg(0)->Arg(1);

void BM_GradientBoostingFit(benchmark::State& state) {
  const Dataset ds = SyntheticFeatures(1024, 70, 5, 4);
  for (auto _ : state) {
    GradientBoostingParams params;
    params.n_rounds = static_cast<int>(state.range(0));
    GradientBoosting gbdt(params);
    benchmark::DoNotOptimize(gbdt.Fit(ds));
  }
}
BENCHMARK(BM_GradientBoostingFit)->Arg(10)->Arg(30);

/// Fixed-size gate workload behind --timing_json: flat vs pointer forest
/// inference (batched and single-row) plus the point-feature kernels, as
/// wall-clock phases tools/check_bench.py tracks against BENCH_baseline.json.
/// The CI leg runs it with --threads=1 and a benchmark filter matching
/// nothing, so the phases are the entire measured work.
int RunTimingGate(const trajkit::HarnessOptions& harness) {
  using trajkit::Stopwatch;
  constexpr size_t kRows = 2048;
  constexpr int kBatchReps = 3;
  // The flat batch is several times faster, so it gets more reps to keep
  // its measured phase comfortably above scheduler noise.
  constexpr int kFlatBatchReps = 10;

  const Dataset ds = SyntheticFeatures(kRows, 70, 5, 3);
  RandomForestParams params;
  params.n_estimators = 50;
  RandomForest pointer(params);
  if (!pointer.Fit(ds).ok()) return 1;
  RandomForest flat = pointer;
  if (!flat.CompileFlat().ok()) return 1;

  // The comparison is only meaningful if both forms answer identically.
  if (pointer.Predict(ds.features()) != flat.Predict(ds.features())) {
    std::fprintf(stderr,
                 "micro_ml: flat forest diverged from the pointer walk\n");
    return 1;
  }

  // main() owns the metric-artifact dumps; this emitter only writes timings.
  trajkit::HarnessOptions timing_only = harness;
  timing_only.metrics_json.clear();
  timing_only.metrics_prom.clear();
  timing_only.timeseries_json.clear();
  trajkit::bench::TimingJson timing("micro_ml", timing_only);
  Stopwatch watch;
  for (int i = 0; i < kBatchReps; ++i) {
    benchmark::DoNotOptimize(pointer.Predict(ds.features()));
  }
  timing.Record("predict_pointer_batch_s",
                watch.ElapsedSeconds() / kBatchReps);
  watch.Reset();
  for (int i = 0; i < kFlatBatchReps; ++i) {
    benchmark::DoNotOptimize(flat.Predict(ds.features()));
  }
  timing.Record("predict_flat_batch_s",
                watch.ElapsedSeconds() / kFlatBatchReps);

  ml::Matrix one(1, ds.num_features());
  watch.Reset();
  for (size_t r = 0; r < kRows; ++r) {
    const std::span<const double> row = ds.features().Row(r);
    std::copy(row.begin(), row.end(), one.MutableRow(0).begin());
    benchmark::DoNotOptimize(pointer.Predict(one));
  }
  timing.RecordLap("predict_pointer_single_s", watch);
  for (size_t r = 0; r < kRows; ++r) {
    const std::span<const double> row = ds.features().Row(r);
    std::copy(row.begin(), row.end(), one.MutableRow(0).begin());
    benchmark::DoNotOptimize(flat.Predict(one));
  }
  timing.RecordLap("predict_flat_single_s", watch);

  // Point-feature kernels: 64 synthetic segments of 1024 fixes through the
  // full 70-feature extraction (columnar channel loops + shared-sort
  // percentiles).
  trajkit::Rng rng(11);
  std::vector<std::vector<trajkit::traj::TrajectoryPoint>> segments(64);
  for (auto& segment : segments) {
    double lat = 39.9, lon = 116.3, ts = 0.0;
    segment.resize(1024);
    for (auto& point : segment) {
      lat += rng.Gaussian(0.0, 1e-4);
      lon += rng.Gaussian(0.0, 1e-4);
      ts += 1.0 + rng.Uniform(0.0, 2.0);
      point.pos = {lat, lon};
      point.timestamp = ts;
    }
  }
  const trajkit::traj::TrajectoryFeatureExtractor extractor;
  watch.Reset();
  for (const auto& segment : segments) {
    const trajkit::traj::PointFeatures features =
        trajkit::traj::ComputePointFeatures(segment);
    benchmark::DoNotOptimize(extractor.ExtractFromPointFeatures(features));
  }
  timing.RecordLap("point_features_s", watch);
  return timing.Write() ? 0 : 1;
}

}  // namespace
}  // namespace trajkit::ml

// Expanded BENCHMARK_MAIN so the shared --threads/--timing_json/
// --metrics_json trio (common/harness_options.h) is accepted and stripped
// before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  const trajkit::HarnessOptions harness =
      trajkit::HarnessOptions::FromArgv(&argc, argv);
  harness.ApplyThreads();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!harness.timing_json.empty()) {
    const int gate = trajkit::ml::RunTimingGate(harness);
    if (gate != 0) return gate;
  }
  if (!trajkit::obs::WriteMetricsArtifacts(
          harness.MetricsArtifacts(),
          trajkit::obs::MetricsRegistry::Global())) {
    return 1;
  }
  return 0;
}
