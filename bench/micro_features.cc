// Microbenchmarks (E5) for the feature pipeline — the paper's §3.2 claims
// the point-feature computation "was written in a vectorized manner ...
// faster than other online available versions"; these benchmarks measure
// the columnar kernels' throughput.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/harness_options.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "geo/geodesy.h"
#include "stats/descriptive.h"
#include "synthgeo/generator.h"
#include "traj/point_features.h"
#include "traj/segmentation.h"
#include "traj/trajectory_features.h"

namespace trajkit {
namespace {

std::vector<traj::TrajectoryPoint> RandomWalkPoints(size_t n,
                                                    uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<traj::TrajectoryPoint> points;
  points.reserve(n);
  geo::LatLon pos{39.9, 116.4};
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    points.push_back({pos, t, traj::Mode::kWalk});
    pos = geo::Destination(pos, rng.Uniform(0.0, 360.0),
                           rng.Uniform(0.5, 5.0));
    t += rng.Uniform(1.0, 3.0);
  }
  return points;
}

void BM_Haversine(benchmark::State& state) {
  const geo::LatLon a{39.9042, 116.4074};
  const geo::LatLon b{39.9142, 116.4174};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::HaversineMeters(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_InitialBearing(benchmark::State& state) {
  const geo::LatLon a{39.9042, 116.4074};
  const geo::LatLon b{39.9142, 116.4174};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::InitialBearingDeg(a, b));
  }
}
BENCHMARK(BM_InitialBearing);

void BM_PointFeatureKernels(benchmark::State& state) {
  const auto points = RandomWalkPoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj::ComputePointFeatures(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PointFeatureKernels)->Range(64, 65536);

void BM_TrajectoryFeatureExtraction(benchmark::State& state) {
  traj::Segment segment;
  segment.mode = traj::Mode::kWalk;
  segment.points = RandomWalkPoints(static_cast<size_t>(state.range(0)));
  const traj::TrajectoryFeatureExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(segment));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrajectoryFeatureExtraction)->Range(64, 16384);

void BM_Percentiles(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.Gaussian(0.0, 10.0);
  const std::vector<double> ps = {10.0, 25.0, 50.0, 75.0, 90.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Percentiles(values, ps));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Percentiles)->Range(64, 65536);

void BM_Segmentation(benchmark::State& state) {
  synthgeo::GeneratorOptions options;
  options.num_users = 4;
  options.days_per_user = 2;
  options.seed = 11;
  synthgeo::GeoLifeLikeGenerator generator(options);
  const auto corpus = generator.Generate();
  size_t total_points = 0;
  for (const auto& trajectory : corpus) {
    total_points += trajectory.points.size();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        traj::SegmentCorpus(corpus, traj::SegmentationOptions{}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(total_points));
}
BENCHMARK(BM_Segmentation);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    synthgeo::GeneratorOptions options;
    options.num_users = static_cast<int>(state.range(0));
    options.days_per_user = 1;
    options.seed = 13;
    synthgeo::GeoLifeLikeGenerator generator(options);
    benchmark::DoNotOptimize(generator.Generate());
  }
}
BENCHMARK(BM_CorpusGeneration)->Arg(1)->Arg(4);

}  // namespace
}  // namespace trajkit

// Expanded BENCHMARK_MAIN so the shared --threads/--timing_json/
// --metrics_json trio (common/harness_options.h) is accepted and stripped
// before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  const trajkit::HarnessOptions harness =
      trajkit::HarnessOptions::FromArgv(&argc, argv);
  harness.ApplyThreads();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trajkit::obs::WriteMetricsArtifacts(
          harness.MetricsArtifacts(),
          trajkit::obs::MetricsRegistry::Global())) {
    return 1;
  }
  return 0;
}
