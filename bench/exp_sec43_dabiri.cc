// Experiment E3b — reproduces the second comparison of §4.3: against
// Dabiri & Heaslip [2] ("Inferring transportation modes from GPS
// trajectories using a convolutional neural network").
//
// Setting: Dabiri label set {walk, bike, bus, driving, train}; random
// five-fold cross-validation; top-20 features; random forest with 50
// estimators (the paper names the sklearn implementation explicitly); no
// noise removal ("we avoided using the noise removal method ... because we
// do not have access to labels of the test dataset"). The paper reports a
// mean accuracy of 88.5% vs. Dabiri's 84.8% (p = 0.0796).
//
// Flags: --users --days --seed --folds --trees --reference
//        --threads=N --timing_json=<path>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/stats_tests.h"
#include "traj/trajectory_features.h"

namespace trajkit {
namespace {

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int folds = flags.GetInt("folds", 5);
  const int trees = flags.GetInt("trees", 50);
  const double reference = flags.GetDouble("reference", 0.848);

  std::printf(
      "=== Section 4.3 (ii): comparison with Dabiri & Heaslip [2] ===\n"
      "random %d-fold CV, top-20 features, RF(%d), no noise removal\n\n",
      folds, trees);
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_sec43_dabiri", harness);
  Stopwatch total_timer;
  Stopwatch phase_timer;

  const auto built = bench::DieOnError(
      core::BuildSyntheticDataset(bench::CorpusOptionsFromFlags(flags),
                                  core::PipelineOptions{},
                                  core::LabelSet::Dabiri()),
      "dataset build");
  timing.RecordLap("dataset_build", phase_timer);
  std::printf("dataset: %zu segments, %d classes\n",
              built.dataset.num_samples(), built.dataset.num_classes());

  // Top-20 by RF importance (§4.2's best subset).
  ml::RandomForestParams rank_params;
  rank_params.n_estimators = trees;
  rank_params.seed = 11;
  ml::RandomForest ranker(rank_params);
  const Status fit_status = ranker.Fit(built.dataset);
  if (!fit_status.ok()) {
    std::fprintf(stderr, "ranking fit failed: %s\n",
                 fit_status.ToString().c_str());
    return 1;
  }
  std::vector<int> top20 = ranker.ImportanceRanking();
  top20.resize(20);
  const ml::Dataset dataset20 = built.dataset.SelectFeatures(top20);

  ml::RandomForestParams params;
  params.n_estimators = trees;
  params.seed = 31;
  const ml::RandomForest forest(params);
  const auto cv_folds =
      core::MakeFolds(core::CvScheme::kRandom, dataset20, folds, 71);
  const auto cv = bench::DieOnError(
      ml::CrossValidate(forest, dataset20, cv_folds), "cross-validation");

  TablePrinter table({"fold", "accuracy", "weighted_f1"});
  for (size_t f = 0; f < cv.fold_accuracy.size(); ++f) {
    table.AddRow({StrPrintf("%zu", f + 1),
                  StrPrintf("%.4f", cv.fold_accuracy[f]),
                  StrPrintf("%.4f", cv.fold_weighted_f1[f])});
  }
  table.Print();
  std::printf("\nmean accuracy: %.4f  (std %.4f)\n", cv.MeanAccuracy(),
              cv.StdAccuracy());

  const auto test = ml::WilcoxonSignedRankOneSample(
      cv.fold_accuracy, reference, ml::Alternative::kGreater);
  if (test.ok()) {
    std::printf(
        "one-sample Wilcoxon vs reference %.3f (greater): W+=%.1f, "
        "p=%.4f%s\n",
        reference, test->statistic, test->p_value,
        test->exact ? " (exact)" : "");
  }

  std::printf("\npooled confusion matrix:\n%s",
              ml::ConfusionMatrix(cv.pooled_true, cv.pooled_pred,
                                  dataset20.num_classes())
                  .ToString(dataset20.class_names())
                  .c_str());
  std::printf(
      "\npaper reference: 88.5%% vs Dabiri's 84.8%%, p=0.0796 — ours should "
      "likewise exceed the reference.\n");
  timing.RecordLap("evaluation", phase_timer);
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("total time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
