// Experiment E6 — ablations of the framework's design choices that the
// paper discusses but does not plot:
//   * step 6 noise removal on/off (§4.3 argues against it at test time;
//     §3.2 lists it as optional),
//   * step 7 min-max normalization on/off ("improves the quality of the
//     classification process" for scale-sensitive models),
//   * the min-10-points segmentation filter (§3.2) swept over thresholds,
//   * the random-forest estimator count (50 in §4.3) swept.
//
// Flags: --users --days --seed --folds --threads=N --timing_json=<path>

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/factory.h"
#include "ml/linear_svm.h"
#include "ml/mlp.h"
#include "ml/grid_search.h"
#include "ml/random_forest.h"
#include "synthgeo/generator.h"

namespace trajkit {
namespace {

double RandomCvAccuracy(const ml::Classifier& model,
                        const ml::Dataset& dataset, int folds, uint64_t seed,
                        bool normalize = true) {
  const auto cv_folds =
      core::MakeFolds(core::CvScheme::kRandom, dataset, folds, seed);
  ml::CrossValidationOptions options;
  options.minmax_normalize = normalize;
  const auto cv = ml::CrossValidate(model, dataset, cv_folds, options);
  return cv.ok() ? cv->MeanAccuracy() : 0.0;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int folds = flags.GetInt("folds", 5);
  const auto generator_options = bench::CorpusOptionsFromFlags(flags);

  std::printf("=== Ablations (Dabiri labels, random %d-fold CV) ===\n\n",
              folds);
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_ablations", harness);
  Stopwatch total_timer;
  Stopwatch phase_timer;

  // Generate the corpus once; rebuild datasets under different pipelines.
  synthgeo::GeoLifeLikeGenerator generator(generator_options);
  const std::vector<traj::Trajectory> corpus = generator.Generate();
  timing.RecordLap("corpus_generate", phase_timer);
  const core::LabelSet labels = core::LabelSet::Dabiri();

  // ---- Ablation 1: noise removal (step 6) ----------------------------
  std::printf("--- step 6: noise removal ---\n");
  {
    TablePrinter table({"noise_removal", "segments", "rf_accuracy"});
    for (bool remove_noise : {false, true}) {
      core::PipelineOptions options;
      options.remove_noise = remove_noise;
      const core::Pipeline pipeline(options);
      const auto dataset = bench::DieOnError(
          pipeline.BuildDataset(corpus, labels), "pipeline");
      const auto rf = bench::DieOnError(
          ml::MakeClassifier("random_forest", {.seed = 1}), "factory");
      table.AddRow({remove_noise ? "on" : "off",
                    StrPrintf("%zu", dataset.num_samples()),
                    StrPrintf("%.4f",
                              RandomCvAccuracy(*rf, dataset, folds, 5))});
    }
    table.Print();
  }

  // Base dataset for the remaining ablations.
  const core::Pipeline pipeline;
  const auto dataset = bench::DieOnError(
      pipeline.BuildDataset(corpus, labels), "pipeline");

  // ---- Ablation 2: min-max normalization (step 7) --------------------
  // The factory SVM/MLP scale internally (as library implementations do),
  // which would mask the effect; here the internal scaling is disabled so
  // step 7 is the only scaling in play.
  std::printf("\n--- step 7: min-max normalization ---\n");
  {
    TablePrinter table({"classifier", "normalized", "raw", "delta"});
    ml::LinearSvmParams svm_params;
    svm_params.internal_scaling = false;
    svm_params.seed = 2;
    const ml::LinearSvm svm(svm_params);
    ml::MlpParams mlp_params;
    mlp_params.internal_scaling = false;
    mlp_params.epochs = 50;
    mlp_params.seed = 2;
    const ml::Mlp mlp(mlp_params);
    ml::RandomForestParams rf_params;
    rf_params.seed = 2;
    const ml::RandomForest rf(rf_params);
    const std::pair<const char*, const ml::Classifier*> roster[] = {
        {"svm (no internal scaling)", &svm},
        {"neural_network (no internal scaling)", &mlp},
        {"random_forest", &rf},
    };
    for (const auto& [name, model] : roster) {
      const double with = RandomCvAccuracy(*model, dataset, folds, 9, true);
      const double without =
          RandomCvAccuracy(*model, dataset, folds, 9, false);
      table.AddRow({name, StrPrintf("%.4f", with),
                    StrPrintf("%.4f", without),
                    StrPrintf("%+.4f", with - without)});
    }
    table.Print();
    std::printf(
        "(trees are scale-invariant by construction; for the margin/"
        "gradient learners the sign of the delta depends on the optimizer "
        "configuration — compare with the paper's blanket claim that "
        "min-max normalization 'improves the quality of the "
        "classification process')\n");
  }

  // ---- Ablation 3: minimum segment length (step 1) -------------------
  std::printf("\n--- step 1: minimum points per segment ---\n");
  {
    TablePrinter table({"min_points", "segments", "rf_accuracy"});
    for (int min_points : {10, 50, 150, 300, 600}) {
      core::PipelineOptions options;
      options.segmentation.min_points = min_points;
      const core::Pipeline swept(options);
      const auto ds = swept.BuildDataset(corpus, labels);
      if (!ds.ok()) continue;
      const auto rf = bench::DieOnError(
          ml::MakeClassifier("random_forest", {.seed = 3}), "factory");
      table.AddRow({StrPrintf("%d", min_points),
                    StrPrintf("%zu", ds->num_samples()),
                    StrPrintf("%.4f",
                              RandomCvAccuracy(*rf, ds.value(), folds, 13))});
    }
    table.Print();
  }

  // ---- Ablation 4: forest size (step 8) ------------------------------
  std::printf("\n--- step 8: random-forest estimator count ---\n");
  {
    TablePrinter table({"n_estimators", "rf_accuracy", "fit_eval_s"});
    for (int trees : {5, 10, 25, 50, 100}) {
      ml::RandomForestParams params;
      params.n_estimators = trees;
      params.seed = 4;
      const ml::RandomForest forest(params);
      Stopwatch timer;
      const double accuracy =
          RandomCvAccuracy(forest, dataset, folds, 17);
      table.AddRow({StrPrintf("%d", trees), StrPrintf("%.4f", accuracy),
                    StrPrintf("%.1f", timer.ElapsedSeconds())});
    }
    table.Print();
  }

  // ---- Ablation 5: tuning sensitivity (grid search) -------------------
  // The paper runs library defaults everywhere; how much is left on the
  // table? A small RF grid answers it.
  std::printf("\n--- step 8: tuning sensitivity (RF grid search) ---\n");
  {
    const ml::ModelBuilder builder =
        [](const ml::ParamPoint& point) -> std::unique_ptr<ml::Classifier> {
      ml::RandomForestParams params;
      params.n_estimators = static_cast<int>(point.at("trees"));
      params.max_depth = static_cast<int>(point.at("max_depth"));
      params.seed = 6;
      return std::make_unique<ml::RandomForest>(params);
    };
    const ml::ParamGrid grid = {{"trees", {25.0, 50.0}},
                                {"max_depth", {0.0, 8.0, 16.0}}};
    const auto cv_folds =
        core::MakeFolds(core::CvScheme::kRandom, dataset, folds, 23);
    const auto search = bench::DieOnError(
        ml::GridSearch(builder, grid, dataset, cv_folds), "grid search");
    TablePrinter table({"trees", "max_depth", "cv_accuracy", "std"});
    for (const auto& entry : search.entries) {
      table.AddRow({StrPrintf("%.0f", entry.params.at("trees")),
                    entry.params.at("max_depth") == 0.0
                        ? "unbounded"
                        : StrPrintf("%.0f", entry.params.at("max_depth")),
                    StrPrintf("%.4f", entry.mean_accuracy),
                    StrPrintf("%.4f", entry.std_accuracy)});
    }
    table.Print();
    std::printf("(the paper's defaults — 50 trees, unbounded depth — sit "
                "within noise of the grid optimum)\n");
  }

  timing.RecordLap("ablations", phase_timer);
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("\ntotal time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
