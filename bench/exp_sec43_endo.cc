// Experiment E3a — reproduces the first comparison of §4.3: against Endo
// et al. [4] ("Deep feature extraction from trajectories for
// transportation mode estimation").
//
// Setting: Endo label set; training and test users disjoint ("we divided
// the training and test dataset in a way that each user can appear only
// either in the training or test set"), ~80/20; top-20 features (best
// subset from §4.2, obtained here from RF importance); random forest with
// 50 estimators. The paper reports 69.50% vs. Endo's 67.9% with a
// one-sample Wilcoxon signed-rank test (p = 0.0431).
//
// Flags: --users --days --seed --repeats --trees --reference
//        --threads=N --timing_json=<path>

#include <cstdio>
#include <set>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "core/label_sets.h"
#include "ml/crossval.h"
#include "ml/random_forest.h"
#include "ml/splits.h"
#include "ml/stats_tests.h"
#include "traj/trajectory_features.h"

namespace trajkit {
namespace {

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const int repeats = flags.GetInt("repeats", 7);
  const int trees = flags.GetInt("trees", 50);
  const double reference = flags.GetDouble("reference", 0.679);

  std::printf(
      "=== Section 4.3 (i): comparison with Endo et al. [4] ===\n"
      "disjoint-user 80/20 split, top-20 features, RF(%d)\n\n",
      trees);
  const bench::HarnessOptions harness =
      bench::HarnessOptions::FromFlags(flags);
  std::printf("threads: %d\n", harness.ApplyThreads());
  bench::TimingJson timing("exp_sec43_endo", harness);
  Stopwatch total_timer;
  Stopwatch phase_timer;

  const auto built = bench::DieOnError(
      core::BuildSyntheticDataset(bench::CorpusOptionsFromFlags(flags),
                                  core::PipelineOptions{},
                                  core::LabelSet::Endo()),
      "dataset build");
  timing.RecordLap("dataset_build", phase_timer);
  std::printf("dataset: %zu segments, %d classes, %zu users\n",
              built.dataset.num_samples(), built.dataset.num_classes(),
              built.dataset.DistinctGroups().size());

  // Top-20 features by random-forest importance (the §4.2 best subset).
  ml::RandomForestParams rank_params;
  rank_params.n_estimators = trees;
  rank_params.seed = 11;
  ml::RandomForest ranker(rank_params);
  const Status fit_status = ranker.Fit(built.dataset);
  if (!fit_status.ok()) {
    std::fprintf(stderr, "ranking fit failed: %s\n",
                 fit_status.ToString().c_str());
    return 1;
  }
  std::vector<int> top20 = ranker.ImportanceRanking();
  top20.resize(20);
  const ml::Dataset dataset20 = built.dataset.SelectFeatures(top20);
  const auto& names = traj::TrajectoryFeatureExtractor::FeatureNames();
  std::printf("top-20 subset head: %s, %s, %s, ...\n\n",
              names[static_cast<size_t>(top20[0])].c_str(),
              names[static_cast<size_t>(top20[1])].c_str(),
              names[static_cast<size_t>(top20[2])].c_str());

  // Repeated disjoint-user holdouts.
  TablePrinter table({"repeat", "test_users", "test_segments", "accuracy",
                      "weighted_f1"});
  std::vector<double> accuracies;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    Rng rng(1000 + static_cast<uint64_t>(repeat));
    const ml::FoldSplit split =
        ml::GroupShuffleSplit(dataset20.groups(), 0.2, rng);
    ml::RandomForestParams params;
    params.n_estimators = trees;
    params.seed = 2000 + static_cast<uint64_t>(repeat);
    const ml::RandomForest forest(params);
    const auto holdout = bench::DieOnError(
        ml::EvaluateHoldout(forest, dataset20, split), "holdout");
    std::set<int> test_users;
    for (size_t i : split.test_indices) {
      test_users.insert(dataset20.groups()[i]);
    }
    table.AddRow({StrPrintf("%d", repeat + 1),
                  StrPrintf("%zu", test_users.size()),
                  StrPrintf("%zu", split.test_indices.size()),
                  StrPrintf("%.4f", holdout.accuracy),
                  StrPrintf("%.4f", holdout.weighted_f1)});
    accuracies.push_back(holdout.accuracy);
  }
  table.Print();

  double mean = 0.0;
  for (double a : accuracies) mean += a;
  mean /= static_cast<double>(accuracies.size());
  std::printf("\nmean accuracy over %d repeats: %.4f\n", repeats, mean);

  const auto test = ml::WilcoxonSignedRankOneSample(
      accuracies, reference, ml::Alternative::kGreater);
  if (test.ok()) {
    std::printf(
        "one-sample Wilcoxon vs reference %.3f (greater): W+=%.1f, "
        "p=%.4f%s\n",
        reference, test->statistic, test->p_value,
        test->exact ? " (exact)" : "");
  }
  std::printf(
      "\npaper reference: 69.50%% vs Endo's 67.9%%, p=0.0431 — ours should "
      "likewise exceed the reference.\n");
  timing.RecordLap("evaluation", phase_timer);
  timing.Record("total", total_timer.ElapsedSeconds());
  timing.Write();
  std::printf("total time: %.1fs\n", total_timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace trajkit

int main(int argc, char** argv) { return trajkit::Run(argc, argv); }
