// micro_store — bulk-load and query performance of the trajectory store.
//
// Builds a synthetic corpus of closed segments directly (no model in the
// loop — this measures the store, not the predictor), then times:
//   A. ingest:    appending --segments segments (index stays lazy).
//   B. bulk load: one explicit BuildIndex() — the Hilbert R-tree pack.
//   C. bbox:      --queries random bbox+time+mode queries through the
//                 index, with per-query latency p50/p99.
//   D. scan:      the same queries through the brute-force oracle. Every
//                 indexed result must be byte-identical to its oracle
//                 result, and the aggregate speedup must clear
//                 --min_speedup (default 10x) or the harness exits 1 —
//                 this is the perf gate of DESIGN.md §12.
//   E. user/hotspot: QueryUser over every user and TopKHotspots at two
//                 cell sizes, as secondary timings.
//
// Flags: --segments=20000 --queries=400 --seed=7 --min_speedup=10
// --str (STR packing instead of Hilbert), --timing_json=FILE plus the
// shared --threads/--metrics_json.
//
//   ./micro_store --segments=20000 --timing_json=BENCH_store.json

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "geo/geodesy.h"
#include "stats/descriptive.h"
#include "store/trajectory_store.h"
#include "traj/types.h"

namespace trajkit::bench {
namespace {

/// One synthetic closed segment around the Beijing extent the experiments
/// use: a small random MBR, a random day-scale time interval, and a mode
/// drawn non-uniformly so the postings lists have realistic skew.
store::StoredSegment MakeSegment(Rng& rng, int64_t id) {
  store::StoredSegment segment;
  segment.session_id = id;
  segment.user_id = static_cast<int32_t>(rng.NextBounded(64));
  segment.day = static_cast<int64_t>(rng.NextBounded(30));
  // Walk/bus/car dominate; the tail modes stay rare (postings skew).
  const double roll = rng.NextDouble();
  segment.predicted_mode = roll < 0.4   ? traj::Mode::kWalk
                           : roll < 0.7 ? traj::Mode::kBus
                           : roll < 0.9 ? traj::Mode::kCar
                                        : traj::Mode::kTrain;
  segment.true_mode = segment.predicted_mode;
  segment.start_time = rng.Uniform(0.0, 30.0 * 86400.0);
  segment.end_time = segment.start_time + rng.Uniform(60.0, 3600.0);
  segment.num_points = static_cast<uint32_t>(10 + rng.NextBounded(200));
  const double lat = rng.Uniform(39.5, 40.5);
  const double lon = rng.Uniform(116.0, 117.0);
  segment.bbox.Extend(geo::LatLon{lat, lon});
  segment.bbox.Extend(geo::LatLon{lat + rng.Uniform(0.0, 0.02),
                                  lon + rng.Uniform(0.0, 0.02)});
  segment.features = {static_cast<double>(id % 7), 1.0, 2.0};
  return segment;
}

struct BBoxQuery {
  geo::BoundingBox box;
  store::TimeRange time;
  store::ModeMask mask = store::kAllModesMask;
};

/// Random query mix: mostly small boxes (selective), some wide ones, a
/// third with a time window, a third mode-filtered (postings fast path).
BBoxQuery MakeQuery(Rng& rng) {
  BBoxQuery query;
  const double lat = rng.Uniform(39.5, 40.5);
  const double lon = rng.Uniform(116.0, 117.0);
  const double extent = rng.NextDouble() < 0.8 ? rng.Uniform(0.01, 0.05)
                                               : rng.Uniform(0.2, 0.5);
  query.box.Extend(geo::LatLon{lat, lon});
  query.box.Extend(geo::LatLon{lat + extent, lon + extent});
  if (rng.NextDouble() < 1.0 / 3.0) {
    query.time.begin = rng.Uniform(0.0, 25.0 * 86400.0);
    query.time.end = query.time.begin + rng.Uniform(3600.0, 5.0 * 86400.0);
  }
  const double mode_roll = rng.NextDouble();
  if (mode_roll < 1.0 / 6.0) {
    query.mask = store::MaskOf(traj::Mode::kTrain);  // rare: fast path
  } else if (mode_roll < 1.0 / 3.0) {
    query.mask = store::MaskOf(traj::Mode::kWalk) |
                 store::MaskOf(traj::Mode::kBus);
  }
  return query;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const HarnessOptions harness = HarnessOptions::FromFlags(flags);
  harness.ApplyThreads();
  TimingJson timings("micro_store", harness);

  const size_t num_segments =
      static_cast<size_t>(flags.GetInt("segments", 20000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 400));
  const double min_speedup = flags.GetDouble("min_speedup", 10.0);
  Rng rng(flags.GetUint64("seed", 7));

  store::TrajectoryStoreOptions options;
  if (flags.Has("str")) options.strategy = store::BulkLoadStrategy::kStr;
  options.leaf_fanout = static_cast<size_t>(
      flags.GetInt("leaf_fanout", static_cast<int>(options.leaf_fanout)));
  options.fanout =
      static_cast<size_t>(flags.GetInt("fanout", static_cast<int>(options.fanout)));
  store::TrajectoryStore trajectory_store(options);

  std::vector<store::StoredSegment> corpus;
  corpus.reserve(num_segments);
  for (size_t i = 0; i < num_segments; ++i) {
    corpus.push_back(MakeSegment(rng, static_cast<int64_t>(i)));
  }
  std::vector<BBoxQuery> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) queries.push_back(MakeQuery(rng));

  // Phase A: ingest (no index work — that is the point of lazy builds).
  Stopwatch watch;
  for (store::StoredSegment& segment : corpus) {
    trajectory_store.Ingest(std::move(segment));
  }
  const double ingest_seconds = watch.ElapsedSeconds();

  // Phase B: one explicit bulk load.
  watch.Reset();
  trajectory_store.BuildIndex();
  const double bulk_load_seconds = watch.ElapsedSeconds();

  // Phase C: indexed bbox queries with per-query latencies.
  std::vector<std::vector<uint32_t>> indexed;
  indexed.reserve(num_queries);
  std::vector<double> latencies;
  latencies.reserve(num_queries);
  watch.Reset();
  Stopwatch per_query;
  for (const BBoxQuery& query : queries) {
    per_query.Reset();
    indexed.push_back(
        trajectory_store.QueryBBox(query.box, query.time, query.mask));
    latencies.push_back(per_query.ElapsedSeconds());
  }
  const double index_seconds = watch.ElapsedSeconds();
  const double p50 = stats::Percentile(latencies, 50.0);
  const double p99 = stats::Percentile(latencies, 99.0);

  // Phase D: the oracle scan over the identical query set, plus the
  // result-identity and speedup gates.
  size_t hits = 0;
  watch.Reset();
  for (size_t i = 0; i < num_queries; ++i) {
    const std::vector<uint32_t> oracle = trajectory_store.QueryBBoxBruteForce(
        queries[i].box, queries[i].time, queries[i].mask);
    if (oracle != indexed[i]) {
      std::fprintf(stderr,
                   "micro_store: query %zu: index returned %zu ids, oracle "
                   "%zu — results must be identical\n",
                   i, indexed[i].size(), oracle.size());
      return 1;
    }
    hits += oracle.size();
  }
  const double scan_seconds = watch.ElapsedSeconds();
  const double speedup = index_seconds > 0.0 ? scan_seconds / index_seconds
                                             : 0.0;

  // Phase E: user and hotspot query timings.
  watch.Reset();
  size_t user_hits = 0;
  for (int32_t user = 0; user < 64; ++user) {
    user_hits += trajectory_store.QueryUser(user).size();
  }
  const double user_seconds = watch.ElapsedSeconds();
  watch.Reset();
  const auto coarse = trajectory_store.TopKHotspots(0.05, 10);
  const auto fine = trajectory_store.TopKHotspots(
      0.005, 10, store::MaskOf(traj::Mode::kWalk));
  const double hotspot_seconds = watch.ElapsedSeconds();

  const store::StoreStats stats = trajectory_store.stats();
  std::printf("micro_store: %zu segments, %zu queries, %zu hits\n",
              trajectory_store.size(), num_queries, hits);
  std::printf("  ingest     %9.3f ms\n", ingest_seconds * 1e3);
  std::printf("  bulk load  %9.3f ms  (%zu nodes, height %zu)\n",
              bulk_load_seconds * 1e3, stats.index_nodes, stats.index_height);
  std::printf("  bbox index %9.3f ms  (p50 %.1f us, p99 %.1f us)\n",
              index_seconds * 1e3, p50 * 1e6, p99 * 1e6);
  std::printf("  bbox scan  %9.3f ms  -> speedup %.1fx\n", scan_seconds * 1e3,
              speedup);
  std::printf("  users      %9.3f ms  (%zu hits)\n", user_seconds * 1e3,
              user_hits);
  std::printf("  hotspots   %9.3f ms  (top cells %llu / %llu)\n",
              hotspot_seconds * 1e3,
              coarse.empty() ? 0ULL
                             : static_cast<unsigned long long>(coarse[0].count),
              fine.empty() ? 0ULL
                           : static_cast<unsigned long long>(fine[0].count));

  timings.Record("ingest_s", ingest_seconds);
  timings.Record("bulk_load_s", bulk_load_seconds);
  timings.Record("query_bbox_index_s", index_seconds);
  timings.Record("query_bbox_p50_s", p50);
  timings.Record("query_bbox_p99_s", p99);
  timings.Record("query_bbox_scan_s", scan_seconds);
  timings.Record("query_user_s", user_seconds);
  timings.Record("hotspots_s", hotspot_seconds);
  if (!timings.Write()) return 1;

  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "micro_store: indexed bbox queries only %.1fx faster than "
                 "the oracle scan (gate: %.1fx)\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace trajkit::bench

int main(int argc, char** argv) { return trajkit::bench::Main(argc, argv); }
