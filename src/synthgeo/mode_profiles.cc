#include "synthgeo/mode_profiles.h"

#include <array>

#include "common/check.h"

namespace trajkit::synthgeo {

namespace {

using traj::Mode;

constexpr int kProfileCount = traj::kNumModes;

std::array<ModeProfile, kProfileCount> BuildProfiles() {
  std::array<ModeProfile, kProfileCount> table;

  {
    ModeProfile& p = table[static_cast<int>(Mode::kWalk)];
    p.mode = Mode::kWalk;
    p.cruise_mean_mps = 1.35;
    p.cruise_sd_mps = 0.2;
    p.speed_jitter = 0.25;
    p.max_accel = 0.6;
    p.max_decel = 0.9;
    p.stop_interval_s = 120.0;
    p.stop_duration_min_s = 3.0;
    p.stop_duration_max_s = 45.0;
    p.heading_sigma_deg = 14.0;
    p.turn_interval_s = 90.0;
    p.trip_median_s = 840.0;
    p.trip_log_sigma = 0.55;
    p.sampling_interval_s = 2.0;
    p.gps_sigma_m = 3.5;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kRun)];
    p.mode = Mode::kRun;
    p.cruise_mean_mps = 3.0;
    p.cruise_sd_mps = 0.4;
    p.speed_jitter = 0.35;
    p.max_accel = 1.0;
    p.max_decel = 1.5;
    p.stop_interval_s = 400.0;
    p.stop_duration_min_s = 5.0;
    p.stop_duration_max_s = 30.0;
    p.heading_sigma_deg = 9.0;
    p.turn_interval_s = 120.0;
    p.trip_median_s = 1500.0;
    p.trip_log_sigma = 0.4;
    p.sampling_interval_s = 2.0;
    p.gps_sigma_m = 3.5;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kBike)];
    p.mode = Mode::kBike;
    p.cruise_mean_mps = 4.2;
    p.cruise_sd_mps = 0.65;
    p.speed_jitter = 0.4;
    p.max_accel = 1.0;
    p.max_decel = 1.8;
    p.stop_interval_s = 180.0;  // Lights and crossings.
    p.stop_duration_min_s = 5.0;
    p.stop_duration_max_s = 60.0;
    p.heading_sigma_deg = 6.0;
    p.turn_interval_s = 110.0;
    p.trip_median_s = 1020.0;
    p.trip_log_sigma = 0.5;
    p.sampling_interval_s = 2.0;
    p.gps_sigma_m = 3.5;
    // Bikes filter through congestion: not traffic sensitive.
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kBus)];
    p.mode = Mode::kBus;
    p.cruise_mean_mps = 6.6;
    p.cruise_sd_mps = 1.5;
    p.speed_jitter = 0.8;
    p.max_accel = 1.1;
    p.max_decel = 1.6;
    p.stop_interval_s = 55.0;  // Bus stops plus traffic lights.
    p.stop_duration_min_s = 20.0;
    p.stop_duration_max_s = 80.0;
    p.heading_sigma_deg = 2.5;
    p.turn_interval_s = 170.0;
    p.trip_median_s = 1380.0;
    p.trip_log_sigma = 0.5;
    p.sampling_interval_s = 2.5;
    p.gps_sigma_m = 4.5;  // Urban canyon.
    p.traffic_sensitive = true;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kCar)];
    p.mode = Mode::kCar;
    p.cruise_mean_mps = 12.6;
    p.cruise_sd_mps = 2.8;
    p.speed_jitter = 1.0;
    p.max_accel = 2.2;
    p.max_decel = 2.8;
    p.stop_interval_s = 160.0;  // Traffic lights.
    p.stop_duration_min_s = 5.0;
    p.stop_duration_max_s = 55.0;
    p.heading_sigma_deg = 2.0;
    p.turn_interval_s = 150.0;
    p.trip_median_s = 1140.0;
    p.trip_log_sigma = 0.55;
    p.sampling_interval_s = 2.5;
    p.gps_sigma_m = 4.0;
    p.traffic_sensitive = true;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kTaxi)];
    p.mode = Mode::kTaxi;
    // Deliberately near-identical to car: the classes are merged as
    // "driving" in the Dabiri label set and are genuinely confusable.
    p.cruise_mean_mps = 12.0;
    p.cruise_sd_mps = 2.8;
    p.speed_jitter = 1.05;
    p.max_accel = 2.3;
    p.max_decel = 3.0;
    p.stop_interval_s = 140.0;
    p.stop_duration_min_s = 5.0;
    p.stop_duration_max_s = 60.0;
    p.heading_sigma_deg = 2.2;
    p.turn_interval_s = 140.0;
    p.trip_median_s = 1080.0;
    p.trip_log_sigma = 0.5;
    p.sampling_interval_s = 2.5;
    p.gps_sigma_m = 4.0;
    p.traffic_sensitive = true;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kMotorcycle)];
    p.mode = Mode::kMotorcycle;
    p.cruise_mean_mps = 9.0;
    p.cruise_sd_mps = 2.5;
    p.speed_jitter = 1.1;
    p.max_accel = 2.8;
    p.max_decel = 3.4;
    p.stop_interval_s = 120.0;
    p.stop_duration_min_s = 5.0;
    p.stop_duration_max_s = 60.0;
    p.heading_sigma_deg = 3.0;
    p.turn_interval_s = 130.0;
    p.trip_median_s = 900.0;
    p.trip_log_sigma = 0.5;
    p.sampling_interval_s = 2.5;
    p.gps_sigma_m = 4.0;
    p.traffic_sensitive = true;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kSubway)];
    p.mode = Mode::kSubway;
    p.cruise_mean_mps = 14.5;
    p.cruise_sd_mps = 3.0;
    p.speed_jitter = 0.6;
    p.max_accel = 1.0;
    p.max_decel = 1.1;
    p.stop_interval_s = 110.0;  // Stations.
    p.stop_duration_min_s = 20.0;
    p.stop_duration_max_s = 50.0;
    p.heading_sigma_deg = 0.8;
    p.turn_interval_s = 400.0;  // Line curves.
    p.trip_median_s = 1320.0;
    p.trip_log_sigma = 0.45;
    p.sampling_interval_s = 3.0;
    p.gps_sigma_m = 12.0;  // Poor fixes near/under ground.
    p.dropout_interval_s = 180.0;
    p.dropout_duration_min_s = 20.0;
    p.dropout_duration_max_s = 120.0;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kTrain)];
    p.mode = Mode::kTrain;
    p.cruise_mean_mps = 19.0;
    p.cruise_sd_mps = 5.0;
    p.speed_jitter = 0.7;
    p.max_accel = 0.8;
    p.max_decel = 0.9;
    p.stop_interval_s = 300.0;  // Stations far apart.
    p.stop_duration_min_s = 25.0;
    p.stop_duration_max_s = 100.0;
    p.heading_sigma_deg = 0.5;
    p.turn_interval_s = 600.0;
    p.trip_median_s = 2100.0;
    p.trip_log_sigma = 0.5;
    p.sampling_interval_s = 3.0;
    p.gps_sigma_m = 6.0;
    p.dropout_interval_s = 420.0;
    p.dropout_duration_min_s = 15.0;
    p.dropout_duration_max_s = 90.0;
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kBoat)];
    p.mode = Mode::kBoat;
    p.cruise_mean_mps = 5.0;
    p.cruise_sd_mps = 1.2;
    p.speed_jitter = 0.3;
    p.max_accel = 0.4;
    p.max_decel = 0.5;
    p.heading_sigma_deg = 1.2;
    p.trip_median_s = 1800.0;
    p.trip_log_sigma = 0.4;
    p.sampling_interval_s = 4.0;
    p.gps_sigma_m = 3.0;  // Open sky.
  }
  {
    ModeProfile& p = table[static_cast<int>(Mode::kAirplane)];
    p.mode = Mode::kAirplane;
    p.cruise_mean_mps = 190.0;
    p.cruise_sd_mps = 35.0;
    p.speed_jitter = 2.0;
    p.max_accel = 3.0;
    p.max_decel = 2.0;
    p.heading_sigma_deg = 0.2;
    p.trip_median_s = 4200.0;
    p.trip_log_sigma = 0.35;
    p.sampling_interval_s = 5.0;
    p.gps_sigma_m = 8.0;
    p.dropout_interval_s = 600.0;
    p.dropout_duration_min_s = 30.0;
    p.dropout_duration_max_s = 240.0;
  }
  {
    // kUnknown: inert defaults; the simulator never draws it.
    table[static_cast<int>(Mode::kUnknown)].mode = Mode::kUnknown;
  }
  return table;
}

std::array<double, kProfileCount> BuildShares() {
  std::array<double, kProfileCount> shares{};
  shares[static_cast<int>(Mode::kWalk)] = 0.2935;
  shares[static_cast<int>(Mode::kBus)] = 0.2333;
  shares[static_cast<int>(Mode::kBike)] = 0.1734;
  shares[static_cast<int>(Mode::kTrain)] = 0.1019;
  shares[static_cast<int>(Mode::kCar)] = 0.0940;
  shares[static_cast<int>(Mode::kSubway)] = 0.0568;
  shares[static_cast<int>(Mode::kTaxi)] = 0.0441;
  shares[static_cast<int>(Mode::kAirplane)] = 0.0016;
  shares[static_cast<int>(Mode::kBoat)] = 0.0006;
  shares[static_cast<int>(Mode::kRun)] = 0.0003;
  shares[static_cast<int>(Mode::kMotorcycle)] = 0.00006;
  return shares;
}

}  // namespace

const ModeProfile& GetModeProfile(traj::Mode mode) {
  static const std::array<ModeProfile, kProfileCount>* const kTable =
      new std::array<ModeProfile, kProfileCount>(BuildProfiles());
  const int index = static_cast<int>(mode);
  TRAJKIT_CHECK_GE(index, 0);
  TRAJKIT_CHECK_LT(index, kProfileCount);
  return (*kTable)[static_cast<size_t>(index)];
}

double GeoLifePointShare(traj::Mode mode) {
  static const std::array<double, kProfileCount>* const kShares =
      new std::array<double, kProfileCount>(BuildShares());
  const int index = static_cast<int>(mode);
  TRAJKIT_CHECK_GE(index, 0);
  TRAJKIT_CHECK_LT(index, kProfileCount);
  return (*kShares)[static_cast<size_t>(index)];
}

}  // namespace trajkit::synthgeo
