#ifndef TRAJKIT_SYNTHGEO_TRIP_SIMULATOR_H_
#define TRAJKIT_SYNTHGEO_TRIP_SIMULATOR_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geo/geodesy.h"
#include "synthgeo/mode_profiles.h"
#include "synthgeo/user_profile.h"
#include "traj/types.h"

namespace trajkit::synthgeo {

/// Inputs of one trip simulation.
struct TripRequest {
  traj::Mode mode = traj::Mode::kWalk;
  geo::LatLon start;
  /// Seconds since epoch of the first ground-truth state.
  double start_time = 0.0;
  /// <= 0 draws a log-normal duration from the mode profile.
  double duration_s = 0.0;
  /// Disable GPS error (used by tests asserting pure kinematics).
  bool clean_gps = false;
};

/// Output of one trip simulation.
struct SimulatedTrip {
  /// Recorded (noisy, possibly gappy) fixes, labelled with the trip mode.
  std::vector<traj::TrajectoryPoint> points;
  /// Ground-truth final state, used to chain trips within a day.
  geo::LatLon end_position;
  double end_time = 0.0;
  /// Ground-truth mean moving speed (diagnostics / calibration tests).
  double mean_true_speed_mps = 0.0;
};

/// Simulates one trip of `user` in mode `request.mode`.
///
/// Model: 1 Hz kinematic integration on a local tangent plane. Cruise
/// speed is drawn per trip (mode profile × user pace × traffic), tracked
/// by an Ornstein–Uhlenbeck-like controller bounded by the mode's
/// acceleration envelope, interrupted by a Poisson stop process (traffic
/// lights / stations); heading follows a random walk plus discrete
/// intersection turns. The recorder samples every
/// sampling_interval × user.sampling_factor seconds, suffers Poisson
/// signal-loss episodes, and adds per-fix Gaussian jitter plus a slowly
/// drifting systematic bias (AR(1)), both scaled by the user's device
/// factor — the "random" and "systematic" GPS error classes discussed in
/// §4 of the paper.
///
/// InvalidArgument when `request.mode` is kUnknown (there is no motion
/// profile to simulate from).
Result<SimulatedTrip> SimulateTrip(const TripRequest& request,
                                   const UserProfile& user, Rng& rng);

}  // namespace trajkit::synthgeo

#endif  // TRAJKIT_SYNTHGEO_TRIP_SIMULATOR_H_
