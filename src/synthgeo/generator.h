#ifndef TRAJKIT_SYNTHGEO_GENERATOR_H_
#define TRAJKIT_SYNTHGEO_GENERATOR_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "synthgeo/trip_simulator.h"
#include "traj/types.h"

namespace trajkit::synthgeo {

/// Knobs of the corpus generator. The defaults produce a GeoLife-scale
/// study population (69 users); benches shrink days_per_user to trade
/// corpus size for runtime.
struct GeneratorOptions {
  int num_users = 69;
  int days_per_user = 8;
  double mean_trips_per_day = 4.0;
  /// Probability that a trip's annotation boundary is wrong (the human
  /// labelling error §4 discusses): the first 20–120 s of the trip keep
  /// the previous trip's label.
  double label_noise_prob = 0.06;
  /// Disable all GPS error (clean ground-truth fixes).
  bool clean_gps = false;
  uint64_t seed = 7;
  /// First day 00:00, seconds since epoch (defaults to 2008-05-01, inside
  /// GeoLife's collection window).
  double base_time = 1209600000.0;
};

/// Diagnostics of a generated corpus.
struct CorpusSummary {
  size_t total_points = 0;
  size_t total_trips = 0;
  std::array<size_t, traj::kNumModes> points_per_mode{};
  std::array<size_t, traj::kNumModes> trips_per_mode{};

  /// Achieved share of points per mode.
  double PointShare(traj::Mode mode) const;
  /// Table of modes, trips, points, achieved vs. GeoLife target share.
  std::string ToString() const;
};

/// Generates a labelled multi-user, multi-day GPS corpus that plays the
/// role of GeoLife (see DESIGN.md §2 for the substitution argument). Each
/// user gets an idiosyncratic UserProfile; each day chains several trips
/// with gaps; trip modes follow the user's preferences calibrated so the
/// corpus-level point shares approximate GeoLife's published shares.
class GeoLifeLikeGenerator {
 public:
  explicit GeoLifeLikeGenerator(GeneratorOptions options = {});

  /// Generates the corpus: one Trajectory per user. Deterministic in
  /// options.seed.
  std::vector<traj::Trajectory> Generate();

  /// Summary of the last Generate() call.
  const CorpusSummary& summary() const { return summary_; }

  /// User profiles drawn for the last Generate() call (index = user id).
  const std::vector<UserProfile>& user_profiles() const { return profiles_; }

 private:
  GeneratorOptions options_;
  CorpusSummary summary_;
  std::vector<UserProfile> profiles_;
};

}  // namespace trajkit::synthgeo

#endif  // TRAJKIT_SYNTHGEO_GENERATOR_H_
