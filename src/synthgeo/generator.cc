#include "synthgeo/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"
#include "synthgeo/mode_profiles.h"

namespace trajkit::synthgeo {

namespace {

// Beijing: GeoLife's collection city.
constexpr geo::LatLon kCityCenter{39.9042, 116.4074};

// Converts a user's point-share weights into trip-draw weights by dividing
// out the expected number of points a trip of each mode contributes.
std::array<double, traj::kNumModes> TripWeights(const UserProfile& user) {
  std::array<double, traj::kNumModes> weights{};
  for (traj::Mode mode : traj::AllLabeledModes()) {
    const size_t i = static_cast<size_t>(mode);
    const ModeProfile& profile = GetModeProfile(mode);
    const double expected_points =
        profile.trip_median_s /
        std::max(1.0, profile.sampling_interval_s * user.sampling_factor);
    weights[i] = user.mode_weights[i] / std::max(1.0, expected_points);
  }
  return weights;
}

}  // namespace

double CorpusSummary::PointShare(traj::Mode mode) const {
  if (total_points == 0) return 0.0;
  return static_cast<double>(
             points_per_mode[static_cast<size_t>(mode)]) /
         static_cast<double>(total_points);
}

std::string CorpusSummary::ToString() const {
  std::string out = StrPrintf("%-12s %8s %10s %9s %9s\n", "mode", "trips",
                              "points", "share", "target");
  for (traj::Mode mode : traj::AllLabeledModes()) {
    const size_t i = static_cast<size_t>(mode);
    out += StrPrintf("%-12s %8zu %10zu %8.3f%% %8.3f%%\n",
                     std::string(traj::ModeToString(mode)).c_str(),
                     trips_per_mode[i], points_per_mode[i],
                     100.0 * PointShare(mode),
                     100.0 * GeoLifePointShare(mode));
  }
  out += StrPrintf("total trips=%zu points=%zu\n", total_trips, total_points);
  return out;
}

GeoLifeLikeGenerator::GeoLifeLikeGenerator(GeneratorOptions options)
    : options_(options) {}

std::vector<traj::Trajectory> GeoLifeLikeGenerator::Generate() {
  TRAJKIT_CHECK_GT(options_.num_users, 0);
  TRAJKIT_CHECK_GT(options_.days_per_user, 0);
  TRAJKIT_CHECK_GT(options_.mean_trips_per_day, 0.0);

  Rng master(options_.seed);
  summary_ = CorpusSummary{};
  profiles_.clear();
  profiles_.reserve(static_cast<size_t>(options_.num_users));

  std::vector<traj::Trajectory> corpus;
  corpus.reserve(static_cast<size_t>(options_.num_users));

  for (int uid = 0; uid < options_.num_users; ++uid) {
    Rng rng = master.Fork();
    UserProfile user = SampleUserProfile(uid, kCityCenter, rng);
    const std::array<double, traj::kNumModes> trip_weights =
        TripWeights(user);
    const std::vector<double> weight_vec(trip_weights.begin(),
                                         trip_weights.end());
    double weight_total = 0.0;
    for (double w : weight_vec) weight_total += w;
    TRAJKIT_CHECK_GT(weight_total, 0.0) << "user has no usable modes";

    traj::Trajectory trajectory;
    trajectory.user_id = uid;

    for (int day = 0; day < options_.days_per_user; ++day) {
      const double day_start =
          options_.base_time + 86400.0 * static_cast<double>(day);
      // The diary starts between 06:00 and 10:00.
      double clock = day_start + rng.Uniform(6.0, 10.0) * 3600.0;
      const double day_end = day_start + 23.5 * 3600.0;

      const int trips_today = std::max(
          1, static_cast<int>(std::lround(
                 rng.Gaussian(options_.mean_trips_per_day, 1.2))));
      geo::LatLon position = user.home;
      traj::Mode previous_mode = traj::Mode::kUnknown;

      for (int trip_index = 0; trip_index < trips_today; ++trip_index) {
        if (clock >= day_end) break;
        const traj::Mode mode = static_cast<traj::Mode>(
            rng.SampleDiscrete(weight_vec));

        TripRequest request;
        request.mode = mode;
        request.start = position;
        request.start_time = clock;
        request.clean_gps = options_.clean_gps;
        // `mode` was drawn from the profile weights, never kUnknown, so
        // the Result is always OK here (value() aborts otherwise).
        SimulatedTrip trip = SimulateTrip(request, user, rng).value();

        // Annotation error: with probability label_noise_prob, the user
        // forgot to switch the label when this trip started, so its first
        // 20–120 s inherit the previous trip's mode. Both draws happen
        // unconditionally so that corpora generated from one seed stay
        // point-aligned across label_noise_prob settings.
        const bool shift_label = rng.NextBernoulli(options_.label_noise_prob);
        const double lag = rng.Uniform(20.0, 120.0);
        if (shift_label && previous_mode != traj::Mode::kUnknown) {
          for (traj::TrajectoryPoint& p : trip.points) {
            if (p.timestamp - clock > lag) break;
            p.mode = previous_mode;
          }
        }

        const size_t mode_index = static_cast<size_t>(mode);
        summary_.trips_per_mode[mode_index] += 1;
        summary_.total_trips += 1;
        summary_.points_per_mode[mode_index] += trip.points.size();
        summary_.total_points += trip.points.size();

        trajectory.points.insert(trajectory.points.end(),
                                 trip.points.begin(), trip.points.end());
        position = trip.end_position;
        previous_mode = mode;
        // Untracked dwell before the next trip.
        clock = trip.end_time + rng.Uniform(300.0, 7200.0);
      }
    }
    profiles_.push_back(user);
    corpus.push_back(std::move(trajectory));
  }
  return corpus;
}

}  // namespace trajkit::synthgeo
