#ifndef TRAJKIT_SYNTHGEO_MODE_PROFILES_H_
#define TRAJKIT_SYNTHGEO_MODE_PROFILES_H_

#include "traj/types.h"

namespace trajkit::synthgeo {

/// Kinematic and sensing profile of one transportation mode, the knobs the
/// trip simulator integrates. Values are calibrated to the urban-movement
/// literature (and GeoLife's documented speed distributions) so that the
/// class-separability structure matches the real dataset: walk is easy,
/// car/taxi are nearly indistinguishable, bus overlaps both, subway/train
/// overlap at the slow end, and GPS noise affects jerk/bearing channels.
struct ModeProfile {
  traj::Mode mode = traj::Mode::kUnknown;

  /// Mean cruise speed (m/s) and its between-trip standard deviation.
  double cruise_mean_mps = 1.0;
  double cruise_sd_mps = 0.2;
  /// Within-trip speed fluctuation (OU noise, m/s per √s).
  double speed_jitter = 0.15;
  /// Acceleration / braking envelope (m/s²).
  double max_accel = 0.8;
  double max_decel = 1.2;

  /// Stop process: expected seconds between stop events and stop-duration
  /// range. Zero interval disables stops (airplane, boat cruise).
  double stop_interval_s = 0.0;
  double stop_duration_min_s = 10.0;
  double stop_duration_max_s = 40.0;

  /// Heading behaviour: per-√s standard deviation of the heading random
  /// walk (degrees), plus the expected seconds between discrete grid turns
  /// (0 disables; road modes turn at intersections).
  double heading_sigma_deg = 2.0;
  double turn_interval_s = 0.0;

  /// Trip duration (log-normal): median seconds and sigma of log.
  double trip_median_s = 900.0;
  double trip_log_sigma = 0.5;

  /// Nominal sampling interval of the recorder in this mode (seconds).
  double sampling_interval_s = 2.0;

  /// GPS error: per-fix jitter sigma (meters, multiplied by the user's
  /// device factor) and the expected seconds between signal-loss episodes
  /// (0 disables; subway/train tunnels lose signal often).
  double gps_sigma_m = 3.0;
  double dropout_interval_s = 0.0;
  double dropout_duration_min_s = 10.0;
  double dropout_duration_max_s = 90.0;

  /// Whether per-user road-traffic conditions scale this mode's cruise
  /// speed (road vehicles yes; trains/boats/planes no).
  bool traffic_sensitive = false;
};

/// The calibrated profile of a mode.
const ModeProfile& GetModeProfile(traj::Mode mode);

/// GeoLife's published share of GPS records per mode (§4 of the paper:
/// walk 29.35%, bus 23.33%, bike 17.34%, train 10.19%, car 9.40%, subway
/// 5.68%, taxi 4.41%, airplane 0.16%, boat 0.06%, run 0.03%,
/// motorcycle 0.006%). Indexable by mode; kUnknown maps to 0.
double GeoLifePointShare(traj::Mode mode);

}  // namespace trajkit::synthgeo

#endif  // TRAJKIT_SYNTHGEO_MODE_PROFILES_H_
