#include "synthgeo/trip_simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace trajkit::synthgeo {

namespace {

using geo::DegToRad;

double DrawTripDuration(const ModeProfile& profile, Rng& rng) {
  const double log_median = std::log(profile.trip_median_s);
  const double duration =
      std::exp(rng.Gaussian(log_median, profile.trip_log_sigma));
  return std::clamp(duration, 120.0, 4.0 * profile.trip_median_s);
}

}  // namespace

Result<SimulatedTrip> SimulateTrip(const TripRequest& request,
                                   const UserProfile& user, Rng& rng) {
  if (request.mode == traj::Mode::kUnknown) {
    return Status::InvalidArgument(
        "cannot simulate a trip with mode kUnknown: no motion profile");
  }
  const ModeProfile& profile = GetModeProfile(request.mode);
  SimulatedTrip trip;

  const double duration = request.duration_s > 0.0
                              ? request.duration_s
                              : DrawTripDuration(profile, rng);

  // Per-trip cruise speed: mode × user pace (self-powered modes feel the
  // full pace factor; vehicles a dampened one) × local traffic.
  const bool self_powered = request.mode == traj::Mode::kWalk ||
                            request.mode == traj::Mode::kRun ||
                            request.mode == traj::Mode::kBike;
  double pace = self_powered
                    ? user.speed_multiplier
                    : 1.0 + 0.6 * (user.speed_multiplier - 1.0);
  double traffic = profile.traffic_sensitive ? user.traffic_factor : 1.0;
  double cruise =
      rng.Gaussian(profile.cruise_mean_mps * pace * traffic,
                   profile.cruise_sd_mps);
  cruise = std::max(cruise, 0.15 * profile.cruise_mean_mps);

  // State.
  const geo::EnuProjector projector(request.start);
  double east = 0.0;
  double north = 0.0;
  double speed = 0.0;
  double heading = rng.Uniform(0.0, 360.0);
  double stop_remaining = 0.0;
  double congestion_remaining = 0.0;
  double congestion_factor = 1.0;
  double dropout_remaining = 0.0;
  // Systematic GPS bias: AR(1) random walk, meters.
  double bias_e = 0.0;
  double bias_n = 0.0;
  const double bias_sigma =
      0.35 * profile.gps_sigma_m * user.device_noise_factor;

  const double sampling =
      std::max(1.0, profile.sampling_interval_s * user.sampling_factor);
  double next_sample_in = 0.0;  // Record the very first second.
  double true_speed_sum = 0.0;

  const int steps = static_cast<int>(std::lround(duration));
  trip.points.reserve(static_cast<size_t>(
      std::max(2.0, duration / sampling)));

  for (int t = 0; t <= steps; ++t) {
    // --- Kinematics (dt = 1 s) ---
    double target = cruise;
    if (stop_remaining > 0.0) {
      target = 0.0;
      stop_remaining -= 1.0;
    } else if (profile.stop_interval_s > 0.0 &&
               rng.NextBernoulli(1.0 / profile.stop_interval_s)) {
      stop_remaining = rng.Uniform(profile.stop_duration_min_s,
                                   profile.stop_duration_max_s);
      target = 0.0;
    }
    // Congestion crawl episodes (road modes): the vehicle moves well below
    // cruise for a while. These compress the lower speed quantiles of
    // every road mode unpredictably, which is why the paper finds the
    // robust upper percentile (speed_p90 ≈ free-flow speed) to be the
    // most informative feature.
    if (profile.traffic_sensitive && stop_remaining <= 0.0) {
      if (congestion_remaining > 0.0) {
        congestion_remaining -= 1.0;
        target *= congestion_factor;
      } else if (rng.NextBernoulli(1.0 / 300.0)) {
        congestion_remaining = rng.Uniform(15.0, 70.0);
        congestion_factor = rng.Uniform(0.25, 0.60);
        target *= congestion_factor;
      }
    }
    // OU-style noisy tracking of the target inside the accel envelope.
    double desired_delta =
        0.35 * (target - speed) + rng.Gaussian(0.0, profile.speed_jitter);
    desired_delta =
        std::clamp(desired_delta, -profile.max_decel, profile.max_accel);
    speed = std::max(0.0, speed + desired_delta);

    // Heading: random walk plus occasional grid turns (only while moving).
    if (speed > 0.3) {
      heading += rng.Gaussian(0.0, profile.heading_sigma_deg);
      if (profile.turn_interval_s > 0.0 &&
          rng.NextBernoulli(1.0 / profile.turn_interval_s)) {
        const double turns[] = {-90.0, 90.0, -90.0, 90.0, 180.0};
        heading += turns[rng.NextBounded(std::size(turns))];
      }
      heading = geo::NormalizeBearingDeg(heading);
    }

    east += speed * std::sin(DegToRad(heading));
    north += speed * std::cos(DegToRad(heading));
    true_speed_sum += speed;

    // --- Recorder ---
    if (dropout_remaining > 0.0) {
      dropout_remaining -= 1.0;
    } else if (profile.dropout_interval_s > 0.0 &&
               rng.NextBernoulli(1.0 / profile.dropout_interval_s)) {
      dropout_remaining = rng.Uniform(profile.dropout_duration_min_s,
                                      profile.dropout_duration_max_s);
    }
    next_sample_in -= 1.0;
    const bool record = next_sample_in <= 0.0 && dropout_remaining <= 0.0;
    if (record) {
      next_sample_in = sampling;
      double fix_e = east;
      double fix_n = north;
      if (!request.clean_gps) {
        // Systematic bias drifts slowly; random jitter is per fix.
        bias_e = 0.995 * bias_e + rng.Gaussian(0.0, bias_sigma * 0.1);
        bias_n = 0.995 * bias_n + rng.Gaussian(0.0, bias_sigma * 0.1);
        const double jitter =
            profile.gps_sigma_m * user.device_noise_factor;
        fix_e += bias_e + rng.Gaussian(0.0, jitter);
        fix_n += bias_n + rng.Gaussian(0.0, jitter);
        // Impulse glitches: multipath/ionospheric outliers that throw a
        // single fix tens to hundreds of meters off. These corrupt the
        // extreme-value features (max speed, max distance, std) while
        // leaving percentiles intact — the reason §5 gives for
        // speed_p90's robustness.
        if (rng.NextBernoulli(0.008)) {
          const double glitch_bearing = rng.Uniform(0.0, 2.0 * M_PI);
          const double glitch_m = rng.Uniform(40.0, 400.0);
          fix_e += glitch_m * std::sin(glitch_bearing);
          fix_n += glitch_m * std::cos(glitch_bearing);
        }
      }
      traj::TrajectoryPoint point;
      point.pos = projector.Backward(fix_e, fix_n);
      point.timestamp = request.start_time + static_cast<double>(t);
      point.mode = request.mode;
      trip.points.push_back(point);
    }
  }

  trip.end_position = projector.Backward(east, north);
  trip.end_time = request.start_time + static_cast<double>(steps);
  trip.mean_true_speed_mps =
      true_speed_sum / static_cast<double>(steps + 1);
  return trip;
}

}  // namespace trajkit::synthgeo
