#ifndef TRAJKIT_SYNTHGEO_USER_PROFILE_H_
#define TRAJKIT_SYNTHGEO_USER_PROFILE_H_

#include <array>

#include "common/rng.h"
#include "geo/geodesy.h"
#include "traj/types.h"

namespace trajkit::synthgeo {

/// Per-user idiosyncrasies. These are the source of the user-level
/// autocorrelation that makes random cross-validation optimistic (§4.4):
/// samples from one user share a speed multiplier, local traffic
/// conditions, a GPS device quality, and mode preferences, so a classifier
/// that has seen a user in training recognizes that user's quirks at test
/// time.
struct UserProfile {
  int user_id = 0;
  /// Home location (trips start near it).
  geo::LatLon home;
  /// Personal pace: multiplies cruise speeds of self-powered modes and,
  /// dampened, driving style. ~N(1, 0.18), clamped to [0.60, 1.50].
  double speed_multiplier = 1.0;
  /// Local congestion: multiplies road-mode cruise speeds. ~U(0.55, 1.45).
  double traffic_factor = 1.0;
  /// GPS receiver quality: multiplies per-fix jitter sigma. Log-normal.
  double device_noise_factor = 1.0;
  /// Preferred logging interval multiplier (some users log at 1 s, some at
  /// 5 s).
  double sampling_factor = 1.0;
  /// Unnormalized per-mode trip weights (index = Mode enum value).
  std::array<double, traj::kNumModes> mode_weights{};
};

/// Draws a user profile. Mode weights start from the GeoLife point shares
/// and get a per-user log-normal perturbation; rare modes (airplane, boat,
/// run, motorcycle) are zeroed for most users so they concentrate in a few
/// users, as in the real dataset.
UserProfile SampleUserProfile(int user_id, const geo::LatLon& city_center,
                              Rng& rng);

}  // namespace trajkit::synthgeo

#endif  // TRAJKIT_SYNTHGEO_USER_PROFILE_H_
