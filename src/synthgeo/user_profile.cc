#include "synthgeo/user_profile.h"

#include <algorithm>
#include <cmath>

#include "synthgeo/mode_profiles.h"

namespace trajkit::synthgeo {

UserProfile SampleUserProfile(int user_id, const geo::LatLon& city_center,
                              Rng& rng) {
  UserProfile profile;
  profile.user_id = user_id;

  // Home: within ~12 km of the center.
  const double bearing = rng.Uniform(0.0, 360.0);
  const double radius_m = rng.Uniform(500.0, 12000.0);
  profile.home = geo::Destination(city_center, bearing, radius_m);

  profile.speed_multiplier =
      std::clamp(rng.Gaussian(1.0, 0.18), 0.60, 1.50);
  profile.traffic_factor = rng.Uniform(0.55, 1.35);
  profile.device_noise_factor =
      std::clamp(std::exp(rng.Gaussian(0.0, 0.60)), 0.3, 4.5);
  const double sampling_choices[] = {0.5, 1.0, 1.0, 1.5, 2.0, 3.0};
  profile.sampling_factor =
      sampling_choices[rng.NextBounded(std::size(sampling_choices))];

  for (traj::Mode mode : traj::AllLabeledModes()) {
    const size_t index = static_cast<size_t>(mode);
    double weight = GeoLifePointShare(mode);
    // Per-user taste: log-normal perturbation. The sizeable sigma gives
    // users visibly different mode mixes, one of the drivers of the
    // random-vs-user-CV gap (§4.4): under user-oriented CV the test fold's
    // class distribution is shifted against the training fold's.
    weight *= std::exp(rng.Gaussian(0.0, 1.1));
    // Rare modes concentrate in a minority of users.
    const bool rare = mode == traj::Mode::kAirplane ||
                      mode == traj::Mode::kBoat || mode == traj::Mode::kRun ||
                      mode == traj::Mode::kMotorcycle;
    if (rare && !rng.NextBernoulli(0.15)) weight = 0.0;
    profile.mode_weights[index] = weight;
  }
  return profile;
}

}  // namespace trajkit::synthgeo
