#include "geolife/geolife_reader.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>

#include "common/csv.h"
#include "common/strings.h"
#include "geo/geodesy.h"

namespace trajkit::geolife {

namespace {

// Days from 1970-01-01 of a proleptic-Gregorian civil date (Hinnant's
// days_from_civil).
int64_t DaysFromCivil(int year, int month, int day) {
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

Result<int> ParseIntField(std::string_view text) {
  TRAJKIT_ASSIGN_OR_RETURN(long long v, ParseInt64(text));
  return static_cast<int>(v);
}

}  // namespace

Result<double> ParseGeoLifeDateTime(std::string_view date,
                                    std::string_view time) {
  char date_sep = '/';
  if (date.find('-') != std::string_view::npos) date_sep = '-';
  const std::vector<std::string_view> d = SplitString(date, date_sep);
  const std::vector<std::string_view> t = SplitString(time, ':');
  if (d.size() != 3 || t.size() != 3) {
    return Status::ParseError("bad GeoLife datetime: '" + std::string(date) +
                              " " + std::string(time) + "'");
  }
  TRAJKIT_ASSIGN_OR_RETURN(int year, ParseIntField(d[0]));
  TRAJKIT_ASSIGN_OR_RETURN(int month, ParseIntField(d[1]));
  TRAJKIT_ASSIGN_OR_RETURN(int day, ParseIntField(d[2]));
  TRAJKIT_ASSIGN_OR_RETURN(int hour, ParseIntField(t[0]));
  TRAJKIT_ASSIGN_OR_RETURN(int minute, ParseIntField(t[1]));
  TRAJKIT_ASSIGN_OR_RETURN(int second, ParseIntField(t[2]));
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 ||
      hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    return Status::ParseError("out-of-range GeoLife datetime: '" +
                              std::string(date) + " " + std::string(time) +
                              "'");
  }
  return static_cast<double>(DaysFromCivil(year, month, day)) * 86400.0 +
         hour * 3600.0 + minute * 60.0 + second;
}

Result<std::vector<traj::TrajectoryPoint>> ParsePltText(
    std::string_view text) {
  CsvOptions options;
  options.has_header = false;
  options.skip_lines = 6;
  options.skip_malformed_rows = true;
  TRAJKIT_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text, options));
  std::vector<traj::TrajectoryPoint> points;
  points.reserve(table.rows.size());
  for (const std::vector<std::string>& row : table.rows) {
    if (row.size() < 7) continue;
    const Result<double> lat = ParseDouble(row[0]);
    const Result<double> lon = ParseDouble(row[1]);
    if (!lat.ok() || !lon.ok()) continue;
    traj::TrajectoryPoint point;
    point.pos = geo::LatLon{lat.value(), lon.value()};
    if (!geo::IsValid(point.pos)) continue;
    const Result<double> timestamp = ParseGeoLifeDateTime(row[5], row[6]);
    if (!timestamp.ok()) continue;
    point.timestamp = timestamp.value();
    points.push_back(point);
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const traj::TrajectoryPoint& a,
                      const traj::TrajectoryPoint& b) {
                     return a.timestamp < b.timestamp;
                   });
  return points;
}

Result<std::vector<traj::TrajectoryPoint>> ReadPltFile(
    const std::string& path) {
  TRAJKIT_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParsePltText(content);
}

Result<std::vector<LabelInterval>> ParseLabelsText(std::string_view text) {
  CsvOptions options;
  options.delimiter = '\t';
  options.has_header = true;
  options.skip_malformed_rows = true;
  TRAJKIT_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text, options));
  std::vector<LabelInterval> intervals;
  intervals.reserve(table.rows.size());
  for (const std::vector<std::string>& row : table.rows) {
    if (row.size() < 3) continue;
    // Fields: "yyyy/mm/dd hh:mm:ss" twice, then the mode.
    const std::vector<std::string_view> start = SplitString(row[0], ' ');
    const std::vector<std::string_view> end = SplitString(row[1], ' ');
    if (start.size() != 2 || end.size() != 2) continue;
    const Result<double> start_time =
        ParseGeoLifeDateTime(start[0], start[1]);
    const Result<double> end_time = ParseGeoLifeDateTime(end[0], end[1]);
    const Result<traj::Mode> mode = traj::ModeFromString(row[2]);
    if (!start_time.ok() || !end_time.ok() || !mode.ok()) continue;
    intervals.push_back(
        {start_time.value(), end_time.value(), mode.value()});
  }
  return intervals;
}

void ApplyLabels(std::vector<LabelInterval> intervals,
                 std::vector<traj::TrajectoryPoint>& points) {
  std::stable_sort(intervals.begin(), intervals.end(),
                   [](const LabelInterval& a, const LabelInterval& b) {
                     return a.start_time < b.start_time;
                   });
  size_t cursor = 0;
  for (traj::TrajectoryPoint& point : points) {
    // Points are time-sorted, so the matching interval only moves forward.
    while (cursor < intervals.size() &&
           intervals[cursor].end_time < point.timestamp) {
      ++cursor;
    }
    point.mode = traj::Mode::kUnknown;
    if (cursor < intervals.size() &&
        point.timestamp >= intervals[cursor].start_time &&
        point.timestamp <= intervals[cursor].end_time) {
      point.mode = intervals[cursor].mode;
    }
  }
}

Result<traj::Trajectory> LoadGeoLifeUser(const std::string& user_directory,
                                         int user_id) {
  namespace fs = std::filesystem;
  traj::Trajectory trajectory;
  trajectory.user_id = user_id;

  const fs::path traj_dir = fs::path(user_directory) / "Trajectory";
  std::error_code ec;
  if (!fs::is_directory(traj_dir, ec)) {
    return Status::NotFound("no Trajectory directory under: " +
                            user_directory);
  }
  std::vector<fs::path> plt_files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(traj_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".plt") {
      plt_files.push_back(entry.path());
    }
  }
  std::sort(plt_files.begin(), plt_files.end());
  for (const fs::path& file : plt_files) {
    TRAJKIT_ASSIGN_OR_RETURN(std::vector<traj::TrajectoryPoint> points,
                             ReadPltFile(file.string()));
    trajectory.points.insert(trajectory.points.end(), points.begin(),
                             points.end());
  }
  std::stable_sort(trajectory.points.begin(), trajectory.points.end(),
                   [](const traj::TrajectoryPoint& a,
                      const traj::TrajectoryPoint& b) {
                     return a.timestamp < b.timestamp;
                   });

  const fs::path labels_path = fs::path(user_directory) / "labels.txt";
  if (fs::is_regular_file(labels_path, ec)) {
    TRAJKIT_ASSIGN_OR_RETURN(std::string text,
                             ReadFileToString(labels_path.string()));
    TRAJKIT_ASSIGN_OR_RETURN(std::vector<LabelInterval> intervals,
                             ParseLabelsText(text));
    ApplyLabels(std::move(intervals), trajectory.points);
  }
  return trajectory;
}

Result<std::vector<traj::Trajectory>> LoadGeoLifeCorpus(
    const std::string& data_root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(data_root, ec)) {
    return Status::NotFound("not a directory: " + data_root);
  }
  std::vector<fs::path> user_dirs;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(data_root, ec)) {
    if (entry.is_directory()) user_dirs.push_back(entry.path());
  }
  std::sort(user_dirs.begin(), user_dirs.end());
  std::vector<traj::Trajectory> corpus;
  for (const fs::path& dir : user_dirs) {
    const Result<long long> uid = ParseInt64(dir.filename().string());
    if (!uid.ok()) continue;  // Not a numbered user directory.
    TRAJKIT_ASSIGN_OR_RETURN(
        traj::Trajectory trajectory,
        LoadGeoLifeUser(dir.string(), static_cast<int>(uid.value())));
    corpus.push_back(std::move(trajectory));
  }
  if (corpus.empty()) {
    return Status::NotFound("no user directories under: " + data_root);
  }
  return corpus;
}

std::string WritePltText(const std::vector<traj::TrajectoryPoint>& points) {
  std::string out =
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n0\n";
  for (const traj::TrajectoryPoint& p : points) {
    const int64_t days = static_cast<int64_t>(
        std::floor(p.timestamp / 86400.0));
    double rem = p.timestamp - static_cast<double>(days) * 86400.0;
    const int hour = static_cast<int>(rem / 3600.0);
    rem -= hour * 3600.0;
    const int minute = static_cast<int>(rem / 60.0);
    const int second = static_cast<int>(rem - minute * 60.0);
    // Invert DaysFromCivil via civil_from_days.
    int64_t z = days + 719468;
    const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);
    const unsigned yoe =
        (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const int64_t y = static_cast<int64_t>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;
    const unsigned m = mp + (mp < 10 ? 3 : -9);
    const int64_t year = y + (m <= 2);
    // Excel-style day number used by GeoLife (days since 1899-12-30).
    const double excel_days =
        static_cast<double>(days) + 25569.0 +
        (p.timestamp - static_cast<double>(days) * 86400.0) / 86400.0;
    out += StrPrintf("%.6f,%.6f,0,0,%.10f,%04lld/%02u/%02u,%02d:%02d:%02d\n",
                     p.pos.lat_deg, p.pos.lon_deg, excel_days,
                     static_cast<long long>(year), m, d, hour, minute,
                     second);
  }
  return out;
}

namespace {

// civil_from_days (Hinnant): inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, unsigned* month, unsigned* day) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = doy - (153 * mp + 2) / 5 + 1;
  *month = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (*month <= 2));
}

}  // namespace

std::string FormatGeoLifeDateTime(double timestamp) {
  const int64_t days = static_cast<int64_t>(std::floor(timestamp / 86400.0));
  double rem = timestamp - static_cast<double>(days) * 86400.0;
  const int hour = static_cast<int>(rem / 3600.0);
  rem -= hour * 3600.0;
  const int minute = static_cast<int>(rem / 60.0);
  const int second = static_cast<int>(rem - minute * 60.0);
  int year;
  unsigned month;
  unsigned day;
  CivilFromDays(days, &year, &month, &day);
  return StrPrintf("%04d/%02u/%02u %02d:%02d:%02d", year, month, day, hour,
                   minute, second);
}

Status ExportGeoLifeUser(const traj::Trajectory& user,
                         const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path user_dir = fs::path(root) / StrPrintf("%03d", user.user_id);

  // One .plt file per UTC day.
  std::map<int64_t, std::vector<traj::TrajectoryPoint>> by_day;
  for (const traj::TrajectoryPoint& p : user.points) {
    by_day[traj::DayIndex(p.timestamp)].push_back(p);
  }
  for (const auto& [day, points] : by_day) {
    const std::string path =
        (user_dir / "Trajectory" /
         StrPrintf("day%06lld.plt", static_cast<long long>(day)))
            .string();
    TRAJKIT_RETURN_IF_ERROR(WriteStringToFile(path, WritePltText(points)));
  }

  // labels.txt: one interval per maximal run of a labelled mode.
  std::string labels = "Start Time\tEnd Time\tTransportation Mode\n";
  traj::Mode run_mode = traj::Mode::kUnknown;
  double run_start = 0.0;
  double run_end = 0.0;
  auto flush = [&]() {
    if (run_mode != traj::Mode::kUnknown) {
      labels += FormatGeoLifeDateTime(run_start) + "\t" +
                FormatGeoLifeDateTime(run_end) + "\t" +
                std::string(traj::ModeToString(run_mode)) + "\n";
    }
  };
  for (const traj::TrajectoryPoint& p : user.points) {
    if (p.mode != run_mode) {
      flush();
      run_mode = p.mode;
      run_start = p.timestamp;
    }
    run_end = p.timestamp;
  }
  flush();
  return WriteStringToFile((user_dir / "labels.txt").string(), labels);
}

Status ExportGeoLifeCorpus(const std::vector<traj::Trajectory>& corpus,
                           const std::string& root) {
  for (const traj::Trajectory& user : corpus) {
    TRAJKIT_RETURN_IF_ERROR(ExportGeoLifeUser(user, root));
  }
  return Status::Ok();
}

}  // namespace trajkit::geolife
