#ifndef TRAJKIT_GEOLIFE_GEOLIFE_READER_H_
#define TRAJKIT_GEOLIFE_GEOLIFE_READER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "traj/types.h"

namespace trajkit::geolife {

/// One labelled interval from a user's labels.txt.
struct LabelInterval {
  double start_time = 0.0;  // Seconds since epoch.
  double end_time = 0.0;
  traj::Mode mode = traj::Mode::kUnknown;
};

/// Parses one GeoLife .plt file (6 preamble lines, then
/// "lat,lon,0,altitude_ft,days_since_1899,date,time" rows) into time-ordered
/// unlabelled points. Rows with invalid coordinates are skipped.
Result<std::vector<traj::TrajectoryPoint>> ParsePltText(
    std::string_view text);

/// Reads and parses a .plt file from disk.
Result<std::vector<traj::TrajectoryPoint>> ReadPltFile(
    const std::string& path);

/// Parses a GeoLife labels.txt ("Start Time\tEnd Time\tTransportation Mode"
/// header plus tab-separated rows with "yyyy/mm/dd hh:mm:ss" timestamps).
Result<std::vector<LabelInterval>> ParseLabelsText(std::string_view text);

/// Assigns modes to points from labelled intervals: a point gets the mode
/// of the first interval containing its timestamp (inclusive), else
/// kUnknown. Intervals are expected sorted; unsorted input is sorted first.
void ApplyLabels(std::vector<LabelInterval> intervals,
                 std::vector<traj::TrajectoryPoint>& points);

/// Loads one user directory ("<root>/<user>/Trajectory/*.plt" plus optional
/// "<root>/<user>/labels.txt") into a labelled Trajectory. Unlabelled users
/// load with all points kUnknown.
Result<traj::Trajectory> LoadGeoLifeUser(const std::string& user_directory,
                                         int user_id);

/// Loads every user directory under a GeoLife "Data" root. Directory names
/// must parse as integers ("000", "001", ...); others are skipped.
Result<std::vector<traj::Trajectory>> LoadGeoLifeCorpus(
    const std::string& data_root);

/// Parses "yyyy/mm/dd hh:mm:ss" or "yyyy-mm-dd hh:mm:ss" (GeoLife uses
/// both) into seconds since epoch, treating the wall time as UTC — a fixed
/// offset that cancels in all derived features.
Result<double> ParseGeoLifeDateTime(std::string_view date,
                                    std::string_view time);

/// Serializes points to GeoLife .plt text (the inverse of ParsePltText),
/// used by the round-trip tests and the export example.
std::string WritePltText(const std::vector<traj::TrajectoryPoint>& points);

/// Formats seconds-since-epoch as the "yyyy/mm/dd hh:mm:ss" wall time used
/// by labels.txt (inverse of ParseGeoLifeDateTime; sub-second truncated).
std::string FormatGeoLifeDateTime(double timestamp);

/// Writes one user in the GeoLife directory layout under `root`:
/// <root>/<user_id as %03d>/Trajectory/day*.plt (one file per UTC day)
/// plus labels.txt with one interval per maximal labelled mode run.
Status ExportGeoLifeUser(const traj::Trajectory& user,
                         const std::string& root);

/// Exports a whole corpus (ExportGeoLifeUser per trajectory).
Status ExportGeoLifeCorpus(const std::vector<traj::Trajectory>& corpus,
                           const std::string& root);

}  // namespace trajkit::geolife

#endif  // TRAJKIT_GEOLIFE_GEOLIFE_READER_H_
