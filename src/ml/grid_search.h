#ifndef TRAJKIT_ML_GRID_SEARCH_H_
#define TRAJKIT_ML_GRID_SEARCH_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/classifier.h"
#include "ml/crossval.h"
#include "ml/splits.h"

namespace trajkit::ml {

/// One hyper-parameter assignment: named numeric values ("n_estimators" →
/// 50, "max_depth" → 4, ...). Interpretation belongs to the model builder.
using ParamPoint = std::map<std::string, double>;

/// The grid: each parameter maps to the values to try; the search is the
/// cartesian product.
using ParamGrid = std::map<std::string, std::vector<double>>;

/// Builds an unfitted classifier for one grid point.
using ModelBuilder =
    std::function<std::unique_ptr<Classifier>(const ParamPoint&)>;

/// One evaluated grid point.
struct GridSearchEntry {
  ParamPoint params;
  double mean_accuracy = 0.0;
  double std_accuracy = 0.0;
};

/// Result of a grid search: every entry (descending accuracy) plus the
/// winner.
struct GridSearchResult {
  std::vector<GridSearchEntry> entries;
  const GridSearchEntry& best() const { return entries.front(); }
};

/// Exhaustive cross-validated grid search: evaluates every point of the
/// cartesian product of `grid` with CrossValidate over `folds` and returns
/// all points sorted by mean accuracy (ties: first in product order).
/// The paper runs library defaults everywhere; this utility answers the
/// obvious follow-up of how sensitive its rankings are to tuning.
/// Returns InvalidArgument for an empty grid/axis or when the builder
/// returns null.
Result<GridSearchResult> GridSearch(
    const ModelBuilder& builder, const ParamGrid& grid,
    const Dataset& dataset, const std::vector<FoldSplit>& folds,
    const CrossValidationOptions& options = {});

/// Expands a grid into the full list of points (product order: last axis
/// fastest). Exposed for tests and for custom search loops.
std::vector<ParamPoint> ExpandGrid(const ParamGrid& grid);

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_GRID_SEARCH_H_
