#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "ml/flat_forest.h"
#include "obs/trace.h"

namespace trajkit::ml {

namespace {

/// Forest-level instrumentation: fit/predict wall-time histograms plus a
/// rows-predicted counter, resolved once (handles are registry-stable).
struct ForestMetrics {
  obs::Histogram& fit_seconds;
  obs::Histogram& predict_seconds;
  obs::Counter& rows_predicted;

  static ForestMetrics& Get() {
    static ForestMetrics* metrics = new ForestMetrics{
        obs::MetricsRegistry::Global().GetHistogram(
            "ml.random_forest.fit_seconds",
            obs::HistogramOptions::DurationSeconds()),
        obs::MetricsRegistry::Global().GetHistogram(
            "ml.random_forest.predict_seconds",
            obs::HistogramOptions::LatencySeconds()),
        obs::MetricsRegistry::Global().GetCounter(
            "ml.random_forest.rows_predicted"),
    };
    return *metrics;
  }
};

}  // namespace

RandomForest::RandomForest(RandomForestParams params) : params_(params) {}

Status RandomForest::Fit(const Dataset& train) {
  const obs::ScopedTimer timer(ForestMetrics::Get().fit_seconds);
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("cannot fit a forest on an empty dataset");
  }
  if (params_.n_estimators <= 0) {
    return Status::InvalidArgument("n_estimators must be positive");
  }
  num_classes_ = train.num_classes();
  trees_.clear();
  flat_.reset();  // A refit invalidates any compiled inference form.
  importances_.assign(train.num_features(), 0.0);

  int max_features = params_.max_features;
  if (max_features <= 0) {
    max_features = std::max(
        1, static_cast<int>(std::lround(
               std::sqrt(static_cast<double>(train.num_features())))));
  }

  // Derive every tree's seed and bootstrap weights up front, consuming the
  // forest RNG in the exact order a serial fit would. Tree builds then only
  // touch per-tree state, so they can run on any number of threads while
  // producing bit-identical forests (the determinism contract of
  // common/parallel.h).
  Rng rng(params_.seed);
  const size_t n = train.num_samples();
  const size_t num_trees = static_cast<size_t>(params_.n_estimators);
  std::vector<DecisionTree> trees;
  trees.reserve(num_trees);
  std::vector<std::vector<double>> bootstrap_weights(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    DecisionTreeParams tree_params;
    tree_params.criterion = params_.criterion;
    tree_params.max_depth = params_.max_depth;
    tree_params.min_samples_split = params_.min_samples_split;
    tree_params.min_samples_leaf = params_.min_samples_leaf;
    tree_params.max_features = max_features;
    tree_params.balanced_class_weights = params_.balanced_class_weights;
    tree_params.seed = rng.NextUint64();
    trees.emplace_back(tree_params);
    if (params_.bootstrap) {
      // Bootstrap as integer sample weights: equivalent to resampling and
      // avoids materializing a copied dataset per tree.
      bootstrap_weights[t].assign(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        bootstrap_weights[t][rng.NextBounded(n)] += 1.0;
      }
    }
  }

  std::vector<Status> tree_status(num_trees);
  TRAJKIT_RETURN_IF_ERROR(ParallelFor(0, num_trees, 1, [&](size_t t) {
    tree_status[t] = params_.bootstrap
                         ? trees[t].FitWeighted(train, bootstrap_weights[t])
                         : trees[t].Fit(train);
  }));
  for (const Status& status : tree_status) {
    TRAJKIT_RETURN_IF_ERROR(status);
  }

  // Merge importances in tree-index order so the floating-point summation
  // order is independent of scheduling.
  for (const DecisionTree& tree : trees) {
    const std::vector<double>& tree_importances = tree.FeatureImportances();
    for (size_t f = 0; f < importances_.size(); ++f) {
      importances_[f] += tree_importances[f];
    }
  }
  trees_ = std::move(trees);
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  return Status::Ok();
}

std::vector<int> RandomForest::Predict(const Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  // Tiny predicts (the online per-request path) skip the timer: two clock
  // reads + an observe are measurable against a ~1µs single-row predict,
  // and the serving latency histogram already covers that path end-to-end.
  ForestMetrics& metrics = ForestMetrics::Get();
  metrics.rows_predicted.Increment(features.rows());
  std::optional<obs::ScopedTimer> timer;
  if (features.rows() >= 64) timer.emplace(metrics.predict_seconds);
  // The compiled flat form accumulates the same leaf distributions in the
  // same tree order per row, so delegating is bit-identical (see
  // tests/ml_flat_forest_test.cc golden parity).
  if (flat_ != nullptr) return flat_->Predict(features);
  std::vector<int> out(features.rows());
  // Rows are independent; each writes only its own output slot.
  const Status status = ParallelFor(0, features.rows(), 16, [&](size_t r) {
    std::vector<double> acc(static_cast<size_t>(num_classes_), 0.0);
    const std::span<const double> row = features.Row(r);
    for (const DecisionTree& tree : trees_) {
      const std::span<const double> dist = tree.LeafDistribution(row);
      for (size_t c = 0; c < acc.size(); ++c) acc[c] += dist[c];
    }
    out[r] = static_cast<int>(std::max_element(acc.begin(), acc.end()) -
                              acc.begin());
  });
  TRAJKIT_CHECK(status.ok()) << status.ToString();
  return out;
}

Result<Matrix> RandomForest::PredictProba(const Matrix& features) const {
  if (!fitted()) {
    return Status::FailedPrecondition("PredictProba before Fit");
  }
  if (flat_ != nullptr) return flat_->PredictProba(features);
  Matrix probs(features.rows(), static_cast<size_t>(num_classes_));
  const double inv = 1.0 / static_cast<double>(trees_.size());
  TRAJKIT_RETURN_IF_ERROR(ParallelFor(0, features.rows(), 16, [&](size_t r) {
    const std::span<const double> row = features.Row(r);
    for (const DecisionTree& tree : trees_) {
      const std::span<const double> dist = tree.LeafDistribution(row);
      for (size_t c = 0; c < dist.size(); ++c) probs(r, c) += dist[c] * inv;
    }
  }));
  return probs;
}

std::unique_ptr<Classifier> RandomForest::Clone() const {
  return std::make_unique<RandomForest>(params_);
}

Status RandomForest::CompileFlat() { return CompileFlat(FlatForestOptions{}); }

Status RandomForest::CompileFlat(const FlatForestOptions& options) {
  return CompileFlat(options, nullptr);
}

Status RandomForest::CompileFlat(const FlatForestOptions& options,
                                 FlatForestScratch* scratch) {
  if (!fitted()) {
    return Status::FailedPrecondition("CompileFlat before Fit");
  }
  TRAJKIT_ASSIGN_OR_RETURN(FlatForest flat,
                           FlatForest::Compile(*this, options, scratch));
  flat_ = std::make_shared<const FlatForest>(std::move(flat));
  return Status::Ok();
}

const std::vector<double>& RandomForest::FeatureImportances() const {
  TRAJKIT_CHECK(fitted());
  return importances_;
}

std::vector<int> RandomForest::ImportanceRanking() const {
  TRAJKIT_CHECK(fitted());
  std::vector<int> order(importances_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return importances_[static_cast<size_t>(a)] >
           importances_[static_cast<size_t>(b)];
  });
  return order;
}

}  // namespace trajkit::ml
