#include "ml/matrix.h"

namespace trajkit::ml {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    TRAJKIT_CHECK_EQ(rows[r].size(), m.cols_)
        << "ragged row" << r << "in Matrix::FromRows";
    for (size_t c = 0; c < m.cols_; ++c) m.data_[r * m.cols_ + c] = rows[r][c];
  }
  return m;
}

std::vector<double> Matrix::Column(size_t c) const {
  TRAJKIT_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Matrix Matrix::SelectRows(std::span<const size_t> row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    const size_t r = row_indices[i];
    TRAJKIT_CHECK_LT(r, rows_);
    for (size_t c = 0; c < cols_; ++c) {
      out.data_[i * cols_ + c] = data_[r * cols_ + c];
    }
  }
  return out;
}

Matrix Matrix::SelectColumns(std::span<const int> column_indices) const {
  Matrix out(rows_, column_indices.size());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < column_indices.size(); ++i) {
      const size_t c = static_cast<size_t>(column_indices[i]);
      TRAJKIT_CHECK_LT(c, cols_);
      out.data_[r * column_indices.size() + i] = data_[r * cols_ + c];
    }
  }
  return out;
}

}  // namespace trajkit::ml
