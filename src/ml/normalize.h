#ifndef TRAJKIT_ML_NORMALIZE_H_
#define TRAJKIT_ML_NORMALIZE_H_

#include <vector>

#include "ml/matrix.h"

namespace trajkit::ml {

/// Min-Max normalization to [0, 1] per feature (step 7 of the framework;
/// the paper picks Min-Max because "this method preserves the relationship
/// between the values"). Fit on training data, then applied to train and
/// test with the training ranges — constant columns map to 0.
class MinMaxScaler {
 public:
  /// Learns per-column min and max. Precondition: non-empty matrix.
  void Fit(const Matrix& features);

  /// Maps each column through (x - min) / (max - min), clamping is NOT
  /// applied (test values outside the training range map outside [0, 1],
  /// as in scikit-learn). Precondition: Fit() called with matching width.
  void Transform(Matrix& features) const;

  /// Fit on and transform the same matrix.
  void FitTransform(Matrix& features);

  bool fitted() const { return !mins_.empty(); }
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// Z-score standardization ((x - mean) / std); provided for the MLP/SVM
/// ablations. Constant columns map to 0.
class StandardScaler {
 public:
  void Fit(const Matrix& features);
  void Transform(Matrix& features) const;
  void FitTransform(Matrix& features);

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_NORMALIZE_H_
