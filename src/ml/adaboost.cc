#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace trajkit::ml {

AdaBoost::AdaBoost(AdaBoostParams params) : params_(params) {}

Status AdaBoost::Fit(const Dataset& train) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("cannot fit AdaBoost on an empty dataset");
  }
  if (params_.n_estimators <= 0) {
    return Status::InvalidArgument("n_estimators must be positive");
  }
  num_classes_ = train.num_classes();
  learners_.clear();
  alphas_.clear();

  const size_t n = train.num_samples();
  const double k = static_cast<double>(num_classes_);
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  Rng rng(params_.seed);

  for (int round = 0; round < params_.n_estimators; ++round) {
    DecisionTreeParams tree_params;
    tree_params.max_depth = params_.base_max_depth;
    tree_params.seed = rng.NextUint64();
    DecisionTree tree(tree_params);
    TRAJKIT_RETURN_IF_ERROR(tree.FitWeighted(train, weights));

    const std::vector<int> pred = tree.Predict(train.features());
    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (pred[i] != train.labels()[i]) err += weights[i];
    }

    if (err <= 0.0) {
      // Perfect learner: keep it with a large finite weight and stop.
      learners_.push_back(std::move(tree));
      alphas_.push_back(10.0 + std::log(k - 1.0 + 1e-12));
      break;
    }
    // SAMME requires better-than-random: err < 1 - 1/K.
    if (err >= 1.0 - 1.0 / k) {
      if (learners_.empty()) {
        // Keep one learner anyway so Predict() is well defined.
        learners_.push_back(std::move(tree));
        alphas_.push_back(1e-6);
      }
      break;
    }

    const double alpha =
        params_.learning_rate *
        (std::log((1.0 - err) / err) + std::log(k - 1.0));
    for (size_t i = 0; i < n; ++i) {
      if (pred[i] != train.labels()[i]) {
        weights[i] *= std::exp(alpha);
      }
    }
    double total = 0.0;
    for (double w : weights) total += w;
    TRAJKIT_CHECK_GT(total, 0.0);
    for (double& w : weights) w /= total;

    learners_.push_back(std::move(tree));
    alphas_.push_back(alpha);
  }
  if (learners_.empty()) {
    return Status::Internal("AdaBoost produced no learners");
  }
  return Status::Ok();
}

std::vector<int> AdaBoost::Predict(const Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  std::vector<int> out(features.rows());
  std::vector<double> votes(static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    std::fill(votes.begin(), votes.end(), 0.0);
    const std::span<const double> row = features.Row(r);
    for (size_t t = 0; t < learners_.size(); ++t) {
      const std::span<const double> dist =
          learners_[t].LeafDistribution(row);
      const int cls = static_cast<int>(
          std::max_element(dist.begin(), dist.end()) - dist.begin());
      votes[static_cast<size_t>(cls)] += alphas_[t];
    }
    out[r] = static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                              votes.begin());
  }
  return out;
}

Result<Matrix> AdaBoost::PredictProba(const Matrix& features) const {
  if (!fitted()) {
    return Status::FailedPrecondition("PredictProba before Fit");
  }
  // Normalized alpha votes as a probability surrogate.
  Matrix probs(features.rows(), static_cast<size_t>(num_classes_));
  double alpha_total = 0.0;
  for (double a : alphas_) alpha_total += a;
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::span<const double> row = features.Row(r);
    for (size_t t = 0; t < learners_.size(); ++t) {
      const std::span<const double> dist =
          learners_[t].LeafDistribution(row);
      const int cls = static_cast<int>(
          std::max_element(dist.begin(), dist.end()) - dist.begin());
      probs(r, static_cast<size_t>(cls)) += alphas_[t] / alpha_total;
    }
  }
  return probs;
}

std::unique_ptr<Classifier> AdaBoost::Clone() const {
  return std::make_unique<AdaBoost>(params_);
}

}  // namespace trajkit::ml
