#include "ml/permutation_importance.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"
#include "ml/metrics.h"

namespace trajkit::ml {

Result<std::vector<FeatureScore>> PermutationImportance(
    const Classifier& model, const Dataset& holdout,
    const PermutationImportanceOptions& options) {
  if (holdout.num_samples() < 2) {
    return Status::InvalidArgument(
        "permutation importance needs at least 2 holdout samples");
  }
  if (options.repeats <= 0) {
    return Status::InvalidArgument("repeats must be positive");
  }

  const double baseline =
      Accuracy(holdout.labels(), model.Predict(holdout.features()));
  const size_t n = holdout.num_samples();
  const size_t num_features = holdout.num_features();
  const size_t repeats = static_cast<size_t>(options.repeats);

  // Pre-derive every shuffle order serially, consuming the RNG in the exact
  // (feature, repeat) order the serial implementation did — a Fisher–Yates
  // shuffle draws a data-dependent number of words (rejection sampling), so
  // the stream cannot be split by counting. The predict-heavy scoring below
  // then runs per-feature in parallel with bit-identical results.
  Rng rng(options.seed);
  std::vector<std::vector<size_t>> orders(num_features * repeats);
  for (std::vector<size_t>& order : orders) {
    order.resize(n);
    std::iota(order.begin(), order.end(), size_t{0});
    rng.Shuffle(order);
  }

  std::vector<FeatureScore> scores(num_features);
  TRAJKIT_RETURN_IF_ERROR(ParallelFor(0, num_features, 1, [&](size_t f) {
    // Per-feature scratch copy: only column f is perturbed, and the model
    // is shared read-only across threads.
    Matrix scratch = holdout.features();
    std::vector<double> column(n);
    for (size_t r = 0; r < n; ++r) column[r] = scratch(r, f);
    double drop_total = 0.0;
    for (size_t repeat = 0; repeat < repeats; ++repeat) {
      const std::vector<size_t>& order = orders[f * repeats + repeat];
      for (size_t r = 0; r < n; ++r) scratch(r, f) = column[order[r]];
      const double shuffled =
          Accuracy(holdout.labels(), model.Predict(scratch));
      drop_total += baseline - shuffled;
    }
    scores[f] = {static_cast<int>(f),
                 drop_total / static_cast<double>(options.repeats)};
  }));
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     return a.score > b.score;
                   });
  return scores;
}

}  // namespace trajkit::ml
