#include "ml/permutation_importance.h"

#include <algorithm>

#include "ml/metrics.h"

namespace trajkit::ml {

Result<std::vector<FeatureScore>> PermutationImportance(
    const Classifier& model, const Dataset& holdout,
    const PermutationImportanceOptions& options) {
  if (holdout.num_samples() < 2) {
    return Status::InvalidArgument(
        "permutation importance needs at least 2 holdout samples");
  }
  if (options.repeats <= 0) {
    return Status::InvalidArgument("repeats must be positive");
  }

  const double baseline =
      Accuracy(holdout.labels(), model.Predict(holdout.features()));
  Rng rng(options.seed);
  const size_t n = holdout.num_samples();

  std::vector<FeatureScore> scores;
  scores.reserve(holdout.num_features());
  Matrix scratch = holdout.features();
  std::vector<double> column(n);
  std::vector<size_t> order(n);

  for (size_t f = 0; f < holdout.num_features(); ++f) {
    // Save the column, then shuffle it `repeats` times.
    for (size_t r = 0; r < n; ++r) column[r] = scratch(r, f);
    double drop_total = 0.0;
    for (int repeat = 0; repeat < options.repeats; ++repeat) {
      for (size_t r = 0; r < n; ++r) order[r] = r;
      rng.Shuffle(order);
      for (size_t r = 0; r < n; ++r) scratch(r, f) = column[order[r]];
      const double shuffled =
          Accuracy(holdout.labels(), model.Predict(scratch));
      drop_total += baseline - shuffled;
    }
    // Restore.
    for (size_t r = 0; r < n; ++r) scratch(r, f) = column[r];
    scores.push_back(
        {static_cast<int>(f),
         drop_total / static_cast<double>(options.repeats)});
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     return a.score > b.score;
                   });
  return scores;
}

}  // namespace trajkit::ml
