#include "ml/model_io.h"

#include "common/csv.h"
#include "common/strings.h"

// Serialization member functions of DecisionTree and RandomForest live
// here next to the file helpers so the wire format has a single home.
//
// Format (line-based text):
//   trajkit_random_forest v1
//   params <n_estimators> <criterion> <max_depth> <min_split> <min_leaf>
//          <max_features> <bootstrap> <balanced> <seed>
//   classes <k>
//   trees <t>
//   <t tree blocks>
// Tree block:
//   tree <num_classes> <depth>
//   nodes <n>
//   <feature> <threshold> <left> <right> <distribution>   (n lines)
//   distributions <m> <k>
//   <k probabilities>                                      (m lines)
//   importances <f>
//   <f values on one line>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace trajkit::ml {

namespace {

Result<std::vector<double>> ParseDoubles(std::string_view line,
                                         size_t expected) {
  std::vector<double> out;
  for (std::string_view field : SplitString(line, ' ')) {
    if (StripWhitespace(field).empty()) continue;
    TRAJKIT_ASSIGN_OR_RETURN(double v, ParseDouble(field));
    out.push_back(v);
  }
  if (out.size() != expected) {
    return Status::ParseError(StrPrintf(
        "expected %zu numeric fields, got %zu", expected, out.size()));
  }
  return out;
}

Result<std::string_view> NextLine(const std::vector<std::string_view>& lines,
                                  size_t& cursor) {
  if (cursor >= lines.size()) {
    return Status::ParseError("unexpected end of model file");
  }
  return lines[cursor++];
}

}  // namespace

void DecisionTree::AppendSerialized(std::string& out) const {
  TRAJKIT_CHECK(fitted());
  out += StrPrintf("tree %d %d\n", num_classes_, depth_);
  out += StrPrintf("nodes %zu\n", nodes_.size());
  for (const Node& node : nodes_) {
    out += StrPrintf("%d %.17g %d %d %d\n", node.feature, node.threshold,
                     node.left, node.right, node.distribution);
  }
  out += StrPrintf("distributions %zu %d\n", leaf_distributions_.size(),
                   num_classes_);
  for (const std::vector<double>& dist : leaf_distributions_) {
    for (size_t c = 0; c < dist.size(); ++c) {
      if (c > 0) out += ' ';
      out += StrPrintf("%.17g", dist[c]);
    }
    out += '\n';
  }
  out += StrPrintf("importances %zu\n", importances_.size());
  for (size_t f = 0; f < importances_.size(); ++f) {
    if (f > 0) out += ' ';
    out += StrPrintf("%.17g", importances_[f]);
  }
  out += '\n';
}

Result<DecisionTree> DecisionTree::DeserializeBlock(
    const std::vector<std::string_view>& lines, size_t& cursor) {
  DecisionTree tree;

  TRAJKIT_ASSIGN_OR_RETURN(std::string_view header, NextLine(lines, cursor));
  {
    const auto fields = SplitString(header, ' ');
    if (fields.size() != 3 || fields[0] != "tree") {
      return Status::ParseError("bad tree header");
    }
    TRAJKIT_ASSIGN_OR_RETURN(long long classes, ParseInt64(fields[1]));
    TRAJKIT_ASSIGN_OR_RETURN(long long depth, ParseInt64(fields[2]));
    tree.num_classes_ = static_cast<int>(classes);
    tree.depth_ = static_cast<int>(depth);
    if (tree.num_classes_ <= 0) {
      return Status::ParseError("tree must have positive class count");
    }
  }

  TRAJKIT_ASSIGN_OR_RETURN(std::string_view nodes_line,
                           NextLine(lines, cursor));
  {
    const auto fields = SplitString(nodes_line, ' ');
    if (fields.size() != 2 || fields[0] != "nodes") {
      return Status::ParseError("bad nodes header");
    }
    TRAJKIT_ASSIGN_OR_RETURN(long long count, ParseInt64(fields[1]));
    tree.nodes_.reserve(static_cast<size_t>(count));
    for (long long i = 0; i < count; ++i) {
      TRAJKIT_ASSIGN_OR_RETURN(std::string_view line,
                               NextLine(lines, cursor));
      const auto f = SplitString(line, ' ');
      if (f.size() != 5) return Status::ParseError("bad node line");
      Node node;
      TRAJKIT_ASSIGN_OR_RETURN(long long feature, ParseInt64(f[0]));
      TRAJKIT_ASSIGN_OR_RETURN(double threshold, ParseDouble(f[1]));
      TRAJKIT_ASSIGN_OR_RETURN(long long left, ParseInt64(f[2]));
      TRAJKIT_ASSIGN_OR_RETURN(long long right, ParseInt64(f[3]));
      TRAJKIT_ASSIGN_OR_RETURN(long long dist, ParseInt64(f[4]));
      node.feature = static_cast<int>(feature);
      node.threshold = threshold;
      node.left = static_cast<int>(left);
      node.right = static_cast<int>(right);
      node.distribution = static_cast<int>(dist);
      tree.nodes_.push_back(node);
    }
  }

  TRAJKIT_ASSIGN_OR_RETURN(std::string_view dist_line,
                           NextLine(lines, cursor));
  {
    const auto fields = SplitString(dist_line, ' ');
    if (fields.size() != 3 || fields[0] != "distributions") {
      return Status::ParseError("bad distributions header");
    }
    TRAJKIT_ASSIGN_OR_RETURN(long long count, ParseInt64(fields[1]));
    TRAJKIT_ASSIGN_OR_RETURN(long long k, ParseInt64(fields[2]));
    if (static_cast<int>(k) != tree.num_classes_) {
      return Status::ParseError("distribution width != class count");
    }
    for (long long i = 0; i < count; ++i) {
      TRAJKIT_ASSIGN_OR_RETURN(std::string_view line,
                               NextLine(lines, cursor));
      TRAJKIT_ASSIGN_OR_RETURN(
          std::vector<double> dist,
          ParseDoubles(line, static_cast<size_t>(k)));
      tree.leaf_distributions_.push_back(std::move(dist));
    }
  }

  TRAJKIT_ASSIGN_OR_RETURN(std::string_view imp_line,
                           NextLine(lines, cursor));
  {
    const auto fields = SplitString(imp_line, ' ');
    if (fields.size() != 2 || fields[0] != "importances") {
      return Status::ParseError("bad importances header");
    }
    TRAJKIT_ASSIGN_OR_RETURN(long long count, ParseInt64(fields[1]));
    TRAJKIT_ASSIGN_OR_RETURN(std::string_view line,
                             NextLine(lines, cursor));
    TRAJKIT_ASSIGN_OR_RETURN(
        std::vector<double> imp,
        ParseDoubles(line, static_cast<size_t>(count)));
    tree.importances_ = std::move(imp);
  }

  // Structural validation: child/distribution indices in range.
  const int node_count = static_cast<int>(tree.nodes_.size());
  const int dist_count = static_cast<int>(tree.leaf_distributions_.size());
  if (node_count == 0) return Status::ParseError("tree has no nodes");
  for (const Node& node : tree.nodes_) {
    if (node.feature >= 0) {
      if (node.left < 0 || node.left >= node_count || node.right < 0 ||
          node.right >= node_count) {
        return Status::ParseError("node child index out of range");
      }
    } else if (node.distribution < 0 || node.distribution >= dist_count) {
      return Status::ParseError("leaf distribution index out of range");
    }
  }
  return tree;
}

std::string RandomForest::Serialize() const {
  TRAJKIT_CHECK(fitted());
  std::string out = "trajkit_random_forest v1\n";
  out += StrPrintf(
      "params %d %d %d %d %d %d %d %d %llu\n", params_.n_estimators,
      static_cast<int>(params_.criterion), params_.max_depth,
      params_.min_samples_split, params_.min_samples_leaf,
      params_.max_features, params_.bootstrap ? 1 : 0,
      params_.balanced_class_weights ? 1 : 0,
      static_cast<unsigned long long>(params_.seed));
  out += StrPrintf("classes %d\n", num_classes_);
  out += StrPrintf("trees %zu\n", trees_.size());
  for (const DecisionTree& tree : trees_) {
    tree.AppendSerialized(out);
  }
  return out;
}

Result<RandomForest> RandomForest::Deserialize(std::string_view text) {
  std::vector<std::string_view> lines;
  for (std::string_view line : SplitString(text, '\n')) {
    const std::string_view stripped = StripWhitespace(line);
    if (!stripped.empty()) lines.push_back(stripped);
  }
  size_t cursor = 0;
  TRAJKIT_ASSIGN_OR_RETURN(std::string_view magic, NextLine(lines, cursor));
  // Version-aware magic check: a file written by a future trajkit with a
  // newer format version gets a clean, actionable error instead of a
  // confusing structural parse failure further down.
  {
    const auto fields = SplitString(magic, ' ');
    if (fields.size() != 2 || fields[0] != "trajkit_random_forest" ||
        fields[1].size() < 2 || fields[1][0] != 'v') {
      return Status::ParseError("not a trajkit_random_forest file");
    }
    TRAJKIT_ASSIGN_OR_RETURN(long long version,
                             ParseInt64(fields[1].substr(1)));
    if (version != 1) {
      return Status::ParseError(StrPrintf(
          "model file uses format v%lld; this build reads v1 only — "
          "re-save the model with a matching trajkit version",
          version));
    }
  }

  RandomForestParams params;
  TRAJKIT_ASSIGN_OR_RETURN(std::string_view params_line,
                           NextLine(lines, cursor));
  {
    const auto f = SplitString(params_line, ' ');
    if (f.size() != 10 || f[0] != "params") {
      return Status::ParseError("bad params line");
    }
    TRAJKIT_ASSIGN_OR_RETURN(long long v1, ParseInt64(f[1]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v2, ParseInt64(f[2]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v3, ParseInt64(f[3]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v4, ParseInt64(f[4]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v5, ParseInt64(f[5]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v6, ParseInt64(f[6]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v7, ParseInt64(f[7]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v8, ParseInt64(f[8]));
    TRAJKIT_ASSIGN_OR_RETURN(long long v9, ParseInt64(f[9]));
    params.n_estimators = static_cast<int>(v1);
    params.criterion = static_cast<SplitCriterion>(v2);
    params.max_depth = static_cast<int>(v3);
    params.min_samples_split = static_cast<int>(v4);
    params.min_samples_leaf = static_cast<int>(v5);
    params.max_features = static_cast<int>(v6);
    params.bootstrap = v7 != 0;
    params.balanced_class_weights = v8 != 0;
    params.seed = static_cast<uint64_t>(v9);
  }
  RandomForest forest(params);

  TRAJKIT_ASSIGN_OR_RETURN(std::string_view classes_line,
                           NextLine(lines, cursor));
  {
    const auto f = SplitString(classes_line, ' ');
    if (f.size() != 2 || f[0] != "classes") {
      return Status::ParseError("bad classes line");
    }
    TRAJKIT_ASSIGN_OR_RETURN(long long k, ParseInt64(f[1]));
    forest.num_classes_ = static_cast<int>(k);
  }

  TRAJKIT_ASSIGN_OR_RETURN(std::string_view trees_line,
                           NextLine(lines, cursor));
  const auto f = SplitString(trees_line, ' ');
  if (f.size() != 2 || f[0] != "trees") {
    return Status::ParseError("bad trees line");
  }
  TRAJKIT_ASSIGN_OR_RETURN(long long tree_count, ParseInt64(f[1]));
  if (tree_count <= 0) {
    return Status::ParseError("forest must contain at least one tree");
  }
  for (long long i = 0; i < tree_count; ++i) {
    TRAJKIT_ASSIGN_OR_RETURN(DecisionTree tree,
                             DecisionTree::DeserializeBlock(lines, cursor));
    if (tree.num_classes() != forest.num_classes_) {
      return Status::ParseError("tree class count != forest class count");
    }
    forest.trees_.push_back(std::move(tree));
  }

  // Rebuild aggregate importances from the trees.
  if (!forest.trees_.empty()) {
    const std::vector<double>& first =
        forest.trees_.front().FeatureImportances();
    forest.importances_.assign(first.size(), 0.0);
    for (const DecisionTree& tree : forest.trees_) {
      const std::vector<double>& imp = tree.FeatureImportances();
      if (imp.size() != forest.importances_.size()) {
        return Status::ParseError("inconsistent importance widths");
      }
      for (size_t j = 0; j < imp.size(); ++j) {
        forest.importances_[j] += imp[j];
      }
    }
    double total = 0.0;
    for (double v : forest.importances_) total += v;
    if (total > 0.0) {
      for (double& v : forest.importances_) v /= total;
    }
  }
  return forest;
}

Status SaveRandomForest(const RandomForest& forest,
                        const std::string& path) {
  if (!forest.fitted()) {
    return Status::FailedPrecondition("cannot save an unfitted forest");
  }
  return WriteStringToFile(path, forest.Serialize());
}

Result<RandomForest> LoadRandomForest(const std::string& path) {
  TRAJKIT_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return RandomForest::Deserialize(text);
}

}  // namespace trajkit::ml
