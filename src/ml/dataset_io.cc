#include "ml/dataset_io.h"

#include <algorithm>

#include "common/csv.h"
#include "common/strings.h"

namespace trajkit::ml {

namespace {
constexpr char kLabelColumn[] = "__label";
constexpr char kGroupColumn[] = "__group";
constexpr char kTimeColumn[] = "__time";
}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  CsvTable table;
  table.header = dataset.feature_names();
  table.header.push_back(kLabelColumn);
  table.header.push_back(kGroupColumn);
  if (dataset.has_times()) table.header.push_back(kTimeColumn);
  table.rows.reserve(dataset.num_samples());
  for (size_t r = 0; r < dataset.num_samples(); ++r) {
    std::vector<std::string> row;
    row.reserve(dataset.num_features() + 2);
    for (size_t c = 0; c < dataset.num_features(); ++c) {
      row.push_back(StrPrintf("%.17g", dataset.features()(r, c)));
    }
    row.push_back(StrPrintf("%d", dataset.labels()[r]));
    row.push_back(StrPrintf("%d", dataset.groups()[r]));
    if (dataset.has_times()) {
      row.push_back(StrPrintf("%.17g", dataset.times()[r]));
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsv(table);
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  return WriteStringToFile(path, DatasetToCsv(dataset));
}

Result<Dataset> DatasetFromCsv(std::string_view text,
                               std::vector<std::string> class_names) {
  TRAJKIT_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text, CsvOptions{}));
  const int label_col = table.ColumnIndex(kLabelColumn);
  const int group_col = table.ColumnIndex(kGroupColumn);
  const int time_col = table.ColumnIndex(kTimeColumn);
  if (label_col < 0 || group_col < 0) {
    return Status::ParseError(
        "dataset CSV must contain __label and __group columns");
  }
  if (table.rows.empty()) {
    return Status::InvalidArgument("dataset CSV has no rows");
  }
  std::vector<int> feature_cols;
  std::vector<std::string> feature_names;
  for (size_t c = 0; c < table.header.size(); ++c) {
    if (static_cast<int>(c) == label_col ||
        static_cast<int>(c) == group_col ||
        static_cast<int>(c) == time_col) {
      continue;
    }
    feature_cols.push_back(static_cast<int>(c));
    feature_names.push_back(table.header[c]);
  }

  Matrix features(table.rows.size(), feature_cols.size());
  std::vector<int> labels(table.rows.size());
  std::vector<int> groups(table.rows.size());
  std::vector<double> times;
  if (time_col >= 0) times.resize(table.rows.size());
  int max_label = 0;
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const std::vector<std::string>& row = table.rows[r];
    for (size_t i = 0; i < feature_cols.size(); ++i) {
      TRAJKIT_ASSIGN_OR_RETURN(
          double v, ParseDouble(row[static_cast<size_t>(feature_cols[i])]));
      features(r, i) = v;
    }
    TRAJKIT_ASSIGN_OR_RETURN(
        long long label, ParseInt64(row[static_cast<size_t>(label_col)]));
    TRAJKIT_ASSIGN_OR_RETURN(
        long long group, ParseInt64(row[static_cast<size_t>(group_col)]));
    labels[r] = static_cast<int>(label);
    groups[r] = static_cast<int>(group);
    if (time_col >= 0) {
      TRAJKIT_ASSIGN_OR_RETURN(
          double t, ParseDouble(row[static_cast<size_t>(time_col)]));
      times[r] = t;
    }
    max_label = std::max(max_label, labels[r]);
  }
  if (class_names.empty()) {
    for (int k = 0; k <= max_label; ++k) {
      class_names.push_back(StrPrintf("class%d", k));
    }
  }
  TRAJKIT_ASSIGN_OR_RETURN(
      Dataset dataset,
      Dataset::Create(std::move(features), std::move(labels),
                      std::move(groups), std::move(feature_names),
                      std::move(class_names)));
  if (time_col >= 0) {
    TRAJKIT_RETURN_IF_ERROR(dataset.SetTimes(std::move(times)));
  }
  return dataset;
}

Result<Dataset> LoadDatasetCsv(const std::string& path,
                               std::vector<std::string> class_names) {
  TRAJKIT_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return DatasetFromCsv(text, std::move(class_names));
}

}  // namespace trajkit::ml
