#ifndef TRAJKIT_ML_GRADIENT_BOOSTING_H_
#define TRAJKIT_ML_GRADIENT_BOOSTING_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace trajkit::ml {

/// Hyper-parameters of the second-order gradient-boosted tree ensemble
/// (the XGBoost algorithm: softmax objective, per-leaf Newton step,
/// L2-regularized gain).
struct GradientBoostingParams {
  /// Boosting rounds; each round fits one regression tree per class.
  int n_rounds = 50;
  double learning_rate = 0.15;
  int max_depth = 4;
  /// L2 regularization on leaf weights (XGBoost's lambda).
  double lambda = 1.0;
  /// Minimum split gain (XGBoost's gamma).
  double gamma = 0.0;
  /// Minimum sum of hessians per child (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
  /// Row subsampling fraction per round, in (0, 1].
  double subsample = 0.8;
  /// Feature subsampling fraction per tree, in (0, 1].
  double colsample = 0.8;
  uint64_t seed = 42;
};

/// Multi-class gradient boosting with second-order (gradient + hessian)
/// tree fitting. The "XGBoost" entry in the paper's Fig. 2 roster.
class GradientBoosting final : public Classifier {
 public:
  explicit GradientBoosting(GradientBoostingParams params = {});

  Status Fit(const Dataset& train) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Result<Matrix> PredictProba(const Matrix& features) const override;
  std::string name() const override { return "xgboost"; }
  std::unique_ptr<Classifier> Clone() const override;

  /// Total gain-based feature importances, normalized to sum 1.
  /// Precondition: fitted.
  const std::vector<double>& FeatureImportances() const;

  bool fitted() const { return num_classes_ > 0; }
  int NumTreesTotal() const;

 private:
  struct RegressionNode {
    int feature = -1;     // -1 for leaves.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;   // Leaf weight.
  };
  struct RegressionTree {
    std::vector<RegressionNode> nodes;
    double PredictRow(std::span<const double> row) const;
  };

  RegressionTree FitTree(const Matrix& x, const std::vector<double>& grad,
                         const std::vector<double>& hess,
                         const std::vector<size_t>& rows,
                         const std::vector<int>& features);
  int BuildRegressionNode(RegressionTree& tree, const Matrix& x,
                          const std::vector<double>& grad,
                          const std::vector<double>& hess,
                          std::vector<size_t>& rows, size_t begin, size_t end,
                          const std::vector<int>& features, int depth);

  GradientBoostingParams params_;
  int num_classes_ = 0;
  // trees_[round * num_classes_ + k].
  std::vector<RegressionTree> trees_;
  std::vector<double> importances_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_GRADIENT_BOOSTING_H_
