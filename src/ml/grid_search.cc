#include "ml/grid_search.h"

#include <algorithm>

namespace trajkit::ml {

std::vector<ParamPoint> ExpandGrid(const ParamGrid& grid) {
  std::vector<ParamPoint> points;
  points.emplace_back();  // Start with the empty assignment.
  for (const auto& [name, values] : grid) {
    std::vector<ParamPoint> expanded;
    expanded.reserve(points.size() * values.size());
    for (const ParamPoint& base : points) {
      for (double value : values) {
        ParamPoint point = base;
        point[name] = value;
        expanded.push_back(std::move(point));
      }
    }
    points = std::move(expanded);
  }
  return points;
}

Result<GridSearchResult> GridSearch(const ModelBuilder& builder,
                                    const ParamGrid& grid,
                                    const Dataset& dataset,
                                    const std::vector<FoldSplit>& folds,
                                    const CrossValidationOptions& options) {
  if (grid.empty()) {
    return Status::InvalidArgument("empty parameter grid");
  }
  for (const auto& [name, values] : grid) {
    if (values.empty()) {
      return Status::InvalidArgument("empty axis in grid: '" + name + "'");
    }
  }
  if (folds.empty()) {
    return Status::InvalidArgument("no folds supplied");
  }

  GridSearchResult result;
  for (const ParamPoint& point : ExpandGrid(grid)) {
    std::unique_ptr<Classifier> model = builder(point);
    if (model == nullptr) {
      return Status::InvalidArgument("model builder returned null");
    }
    TRAJKIT_ASSIGN_OR_RETURN(CrossValidationResult cv,
                             CrossValidate(*model, dataset, folds, options));
    GridSearchEntry entry;
    entry.params = point;
    entry.mean_accuracy = cv.MeanAccuracy();
    entry.std_accuracy = cv.StdAccuracy();
    result.entries.push_back(std::move(entry));
  }
  std::stable_sort(result.entries.begin(), result.entries.end(),
                   [](const GridSearchEntry& a, const GridSearchEntry& b) {
                     return a.mean_accuracy > b.mean_accuracy;
                   });
  return result;
}

}  // namespace trajkit::ml
