#ifndef TRAJKIT_ML_KNN_H_
#define TRAJKIT_ML_KNN_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace trajkit::ml {

/// Hyper-parameters of the k-nearest-neighbours classifier.
struct KnnParams {
  int k = 5;
  /// Weight neighbours by inverse distance instead of uniformly.
  bool distance_weighted = false;
  /// Min-max scale features internally (distances are scale-sensitive).
  bool internal_scaling = true;
};

/// Brute-force k-NN over Euclidean distance. Not part of the paper's six
/// families; provided as an extra baseline (several of the surveyed works,
/// e.g. Zheng et al. [29], evaluate nearest-neighbour baselines).
class Knn final : public Classifier {
 public:
  explicit Knn(KnnParams params = {});

  Status Fit(const Dataset& train) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Result<Matrix> PredictProba(const Matrix& features) const override;
  std::string name() const override { return "knn"; }
  std::unique_ptr<Classifier> Clone() const override;

  bool fitted() const { return num_classes_ > 0; }

 private:
  std::vector<double> VoteRow(std::span<const double> row) const;

  KnnParams params_;
  int num_classes_ = 0;
  Matrix train_features_;  // Scaled.
  std::vector<int> train_labels_;
  std::vector<double> scale_min_;
  std::vector<double> scale_inv_range_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_KNN_H_
