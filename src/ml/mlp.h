#ifndef TRAJKIT_ML_MLP_H_
#define TRAJKIT_ML_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace trajkit::ml {

/// Hyper-parameters of the feed-forward neural network.
struct MlpParams {
  /// Hidden-layer widths; {100} mirrors sklearn's MLPClassifier default.
  std::vector<int> hidden_sizes = {100};
  int epochs = 100;
  int batch_size = 64;
  double learning_rate = 1e-3;  // Adam step size.
  double l2 = 1e-4;             // Weight decay (sklearn's alpha).
  /// When true (default), features are internally min-max scaled before
  /// training/prediction (neural nets are scale-sensitive).
  bool internal_scaling = true;
  uint64_t seed = 42;
};

/// Multi-layer perceptron: ReLU hidden layers, softmax output, cross-entropy
/// loss, Adam optimizer with mini-batches.
class Mlp final : public Classifier {
 public:
  explicit Mlp(MlpParams params = {});

  Status Fit(const Dataset& train) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Result<Matrix> PredictProba(const Matrix& features) const override;
  std::string name() const override { return "neural_network"; }
  std::unique_ptr<Classifier> Clone() const override;

  bool fitted() const { return num_classes_ > 0; }

 private:
  struct Layer {
    // weights: out × in, row-major. biases: out.
    std::vector<double> weights;
    std::vector<double> biases;
    int in = 0;
    int out = 0;
  };

  /// Forward pass of one (already scaled) sample; fills per-layer
  /// activations (post-ReLU for hidden, softmax for output).
  void Forward(std::span<const double> input,
               std::vector<std::vector<double>>& activations) const;
  std::vector<double> ScaleRow(std::span<const double> row) const;

  MlpParams params_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<Layer> layers_;
  std::vector<double> scale_min_;
  std::vector<double> scale_inv_range_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_MLP_H_
