#ifndef TRAJKIT_ML_FEATURE_SELECTION_H_
#define TRAJKIT_ML_FEATURE_SELECTION_H_

#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace trajkit::ml {

/// Scores a dataset restricted to a candidate feature subset; typically a
/// cross-validated accuracy. Higher is better. ForwardWrapperSelection
/// invokes the evaluator concurrently from several threads, so it must be
/// thread-safe: capture configuration by value and keep all mutable state
/// local to the call (the CV-accuracy evaluators in bench/ already do).
using SubsetEvaluator = std::function<double(const Dataset& subset)>;

/// One step of an incremental selection curve: after adding
/// `feature_index`, the subset of size (step position + 1) scores `score`.
struct SelectionStep {
  int feature_index = -1;
  double score = 0.0;
};

/// Greedy forward wrapper search (§4.2): starting from the empty set, at
/// each step evaluates every remaining feature appended to the current
/// subset and keeps the best-scoring one. Runs until `max_features`
/// features are selected (<= 0 means all). Cost: O(F · max_features)
/// evaluator calls.
Result<std::vector<SelectionStep>> ForwardWrapperSelection(
    const Dataset& dataset, const SubsetEvaluator& evaluator,
    int max_features = 0);

/// Incremental evaluation along a fixed ranking (§4.2's information
/// theoretical method): evaluates the prefix of `ranking` of every length
/// from 1 to max_features. Cost: O(max_features) evaluator calls.
Result<std::vector<SelectionStep>> IncrementalRankingSelection(
    const Dataset& dataset, const SubsetEvaluator& evaluator,
    std::span<const int> ranking, int max_features = 0);

/// Feature indices of the best-scoring prefix of a selection curve
/// (the "top 20 features get the highest accuracy" readout).
std::vector<int> BestPrefix(const std::vector<SelectionStep>& steps);

/// Feature indices of the prefix of exactly `k` steps.
std::vector<int> PrefixOfSize(const std::vector<SelectionStep>& steps,
                              size_t k);

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_FEATURE_SELECTION_H_
