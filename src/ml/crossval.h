#ifndef TRAJKIT_ML_CROSSVAL_H_
#define TRAJKIT_ML_CROSSVAL_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/splits.h"

namespace trajkit::ml {

/// Options of the cross-validation driver.
struct CrossValidationOptions {
  /// Fit a MinMaxScaler on each fold's training features and apply it to
  /// train and test (step 7 done correctly inside CV, no leakage).
  bool minmax_normalize = true;
};

/// Per-fold and aggregate scores of one cross-validated classifier.
struct CrossValidationResult {
  std::vector<double> fold_accuracy;
  std::vector<double> fold_macro_f1;
  std::vector<double> fold_weighted_f1;
  /// Test labels/predictions pooled over folds, for confusion matrices.
  std::vector<int> pooled_true;
  std::vector<int> pooled_pred;

  double MeanAccuracy() const;
  double StdAccuracy() const;
  double MeanWeightedF1() const;
  double MeanMacroF1() const;
};

/// Trains a clone of `prototype` on each fold's training set and scores it
/// on the fold's test set. Folds typically come from KFold (random CV),
/// StratifiedKFold, or GroupKFold (user-oriented CV).
Result<CrossValidationResult> CrossValidate(
    const Classifier& prototype, const Dataset& dataset,
    const std::vector<FoldSplit>& folds,
    const CrossValidationOptions& options = {});

/// Single-split variant: fit on the train indices, score on the test
/// indices; also returns the per-sample predictions.
struct HoldoutResult {
  double accuracy = 0.0;
  double weighted_f1 = 0.0;
  double macro_f1 = 0.0;
  std::vector<int> y_true;
  std::vector<int> y_pred;
};
Result<HoldoutResult> EvaluateHoldout(const Classifier& prototype,
                                      const Dataset& dataset,
                                      const FoldSplit& split,
                                      const CrossValidationOptions& options = {});

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_CROSSVAL_H_
