#ifndef TRAJKIT_ML_PERMUTATION_IMPORTANCE_H_
#define TRAJKIT_ML_PERMUTATION_IMPORTANCE_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/filter_selection.h"

namespace trajkit::ml {

/// Options for permutation importance.
struct PermutationImportanceOptions {
  /// Shuffle repetitions per feature (scores are averaged).
  int repeats = 3;
  uint64_t seed = 42;
};

/// Model-agnostic permutation feature importance (Breiman 2001): the drop
/// in held-out accuracy when one feature column is shuffled. Complements
/// the impurity importances (biased towards high-cardinality features) and
/// the filter scores. `model` must already be fitted; `holdout` should be
/// data the model was NOT trained on. Returns per-feature scores sorted
/// descending (negative scores — shuffling helped — are possible for
/// useless features).
Result<std::vector<FeatureScore>> PermutationImportance(
    const Classifier& model, const Dataset& holdout,
    const PermutationImportanceOptions& options = {});

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_PERMUTATION_IMPORTANCE_H_
