#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace trajkit::ml {

namespace {

// Row-wise softmax of a score matrix, numerically stabilized.
void SoftmaxRows(const Matrix& scores, Matrix& probs) {
  for (size_t r = 0; r < scores.rows(); ++r) {
    double max_score = scores(r, 0);
    for (size_t c = 1; c < scores.cols(); ++c) {
      max_score = std::max(max_score, scores(r, c));
    }
    double sum = 0.0;
    for (size_t c = 0; c < scores.cols(); ++c) {
      const double e = std::exp(scores(r, c) - max_score);
      probs(r, c) = e;
      sum += e;
    }
    const double inv = 1.0 / sum;
    for (size_t c = 0; c < scores.cols(); ++c) probs(r, c) *= inv;
  }
}

}  // namespace

GradientBoosting::GradientBoosting(GradientBoostingParams params)
    : params_(params) {}

double GradientBoosting::RegressionTree::PredictRow(
    std::span<const double> row) const {
  size_t node = 0;
  while (nodes[node].feature >= 0) {
    const double v = row[static_cast<size_t>(nodes[node].feature)];
    node = static_cast<size_t>(v <= nodes[node].threshold ? nodes[node].left
                                                          : nodes[node].right);
  }
  return nodes[node].value;
}

Status GradientBoosting::Fit(const Dataset& train) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("cannot fit boosting on an empty dataset");
  }
  if (params_.n_rounds <= 0 || params_.learning_rate <= 0.0) {
    return Status::InvalidArgument("n_rounds and learning_rate must be > 0");
  }
  if (params_.subsample <= 0.0 || params_.subsample > 1.0 ||
      params_.colsample <= 0.0 || params_.colsample > 1.0) {
    return Status::InvalidArgument("subsample/colsample must be in (0, 1]");
  }
  num_classes_ = train.num_classes();
  trees_.clear();
  importances_.assign(train.num_features(), 0.0);

  const size_t n = train.num_samples();
  const size_t k = static_cast<size_t>(num_classes_);
  const size_t p = train.num_features();
  Matrix scores(n, k);
  Matrix probs(n, k);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  Rng rng(params_.seed);

  const size_t sub_n = std::max<size_t>(
      1, static_cast<size_t>(std::lround(params_.subsample *
                                         static_cast<double>(n))));
  const size_t sub_p = std::max<size_t>(
      1, static_cast<size_t>(std::lround(params_.colsample *
                                         static_cast<double>(p))));

  std::vector<size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0u);
  std::vector<int> all_features(p);
  std::iota(all_features.begin(), all_features.end(), 0);

  for (int round = 0; round < params_.n_rounds; ++round) {
    SoftmaxRows(scores, probs);

    // Row subsample for this round (shared across the K class trees).
    std::vector<size_t> rows = all_rows;
    if (sub_n < n) {
      rng.Shuffle(rows);
      rows.resize(sub_n);
    }

    for (size_t cls = 0; cls < k; ++cls) {
      for (size_t i = 0; i < n; ++i) {
        const double pik = probs(i, cls);
        const double yik =
            train.labels()[i] == static_cast<int>(cls) ? 1.0 : 0.0;
        grad[i] = pik - yik;
        hess[i] = std::max(pik * (1.0 - pik), 1e-16);
      }
      // Column subsample per tree.
      std::vector<int> features = all_features;
      if (sub_p < p) {
        rng.Shuffle(features);
        features.resize(sub_p);
        std::sort(features.begin(), features.end());
      }
      RegressionTree tree = FitTree(train.features(), grad, hess, rows,
                                    features);
      for (size_t i = 0; i < n; ++i) {
        scores(i, cls) += params_.learning_rate *
                          tree.PredictRow(train.features().Row(i));
      }
      trees_.push_back(std::move(tree));
    }
  }
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  return Status::Ok();
}

GradientBoosting::RegressionTree GradientBoosting::FitTree(
    const Matrix& x, const std::vector<double>& grad,
    const std::vector<double>& hess, const std::vector<size_t>& rows,
    const std::vector<int>& features) {
  RegressionTree tree;
  std::vector<size_t> mutable_rows = rows;
  BuildRegressionNode(tree, x, grad, hess, mutable_rows, 0,
                      mutable_rows.size(), features, 0);
  return tree;
}

int GradientBoosting::BuildRegressionNode(
    RegressionTree& tree, const Matrix& x, const std::vector<double>& grad,
    const std::vector<double>& hess, std::vector<size_t>& rows, size_t begin,
    size_t end, const std::vector<int>& features, int depth) {
  TRAJKIT_CHECK_LT(begin, end);
  double g_total = 0.0;
  double h_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    g_total += grad[rows[i]];
    h_total += hess[rows[i]];
  }

  auto make_leaf = [&]() -> int {
    RegressionNode node;
    node.feature = -1;
    node.value = -g_total / (h_total + params_.lambda);
    tree.nodes.push_back(node);
    return static_cast<int>(tree.nodes.size() - 1);
  };

  if (depth >= params_.max_depth || end - begin < 2) {
    return make_leaf();
  }

  const double parent_score = g_total * g_total / (h_total + params_.lambda);
  struct SplitChoice {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };
  SplitChoice best;

  struct Sample {
    double value;
    double g;
    double h;
  };
  const size_t n = end - begin;
  std::vector<Sample> samples(n);

  for (int f : features) {
    for (size_t i = 0; i < n; ++i) {
      const size_t row = rows[begin + i];
      samples[i] = {x(row, static_cast<size_t>(f)), grad[row], hess[row]};
    }
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) {
                return a.value < b.value;
              });
    if (samples.front().value == samples.back().value) continue;

    double g_left = 0.0;
    double h_left = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      g_left += samples[i].g;
      h_left += samples[i].h;
      if (samples[i].value == samples[i + 1].value) continue;
      const double h_right = h_total - h_left;
      if (h_left < params_.min_child_weight ||
          h_right < params_.min_child_weight) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double gain =
          0.5 * (g_left * g_left / (h_left + params_.lambda) +
                 g_right * g_right / (h_right + params_.lambda) -
                 parent_score) -
          params_.gamma;
      if (gain > best.gain) {
        best.feature = f;
        best.threshold = 0.5 * (samples[i].value + samples[i + 1].value);
        best.gain = gain;
      }
    }
  }

  if (best.feature < 0 || best.gain <= 0.0) {
    return make_leaf();
  }

  std::stable_partition(
      rows.begin() + static_cast<long>(begin),
      rows.begin() + static_cast<long>(end), [&](size_t row) {
        return x(row, static_cast<size_t>(best.feature)) <= best.threshold;
      });
  size_t mid = begin;
  while (mid < end &&
         x(rows[mid], static_cast<size_t>(best.feature)) <= best.threshold) {
    ++mid;
  }
  TRAJKIT_CHECK(mid > begin && mid < end);

  importances_[static_cast<size_t>(best.feature)] += best.gain;

  const int node_index = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes[static_cast<size_t>(node_index)].feature = best.feature;
  tree.nodes[static_cast<size_t>(node_index)].threshold = best.threshold;
  const int left = BuildRegressionNode(tree, x, grad, hess, rows, begin, mid,
                                       features, depth + 1);
  tree.nodes[static_cast<size_t>(node_index)].left = left;
  const int right = BuildRegressionNode(tree, x, grad, hess, rows, mid, end,
                                        features, depth + 1);
  tree.nodes[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

std::vector<int> GradientBoosting::Predict(const Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  const Result<Matrix> probs = PredictProba(features);
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::span<const double> row = probs.value().Row(r);
    out[r] = static_cast<int>(std::max_element(row.begin(), row.end()) -
                              row.begin());
  }
  return out;
}

Result<Matrix> GradientBoosting::PredictProba(const Matrix& features) const {
  if (!fitted()) {
    return Status::FailedPrecondition("PredictProba before Fit");
  }
  const size_t k = static_cast<size_t>(num_classes_);
  Matrix scores(features.rows(), k);
  const size_t rounds = trees_.size() / k;
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::span<const double> row = features.Row(r);
    for (size_t round = 0; round < rounds; ++round) {
      for (size_t cls = 0; cls < k; ++cls) {
        scores(r, cls) += params_.learning_rate *
                          trees_[round * k + cls].PredictRow(row);
      }
    }
  }
  Matrix probs(features.rows(), k);
  SoftmaxRows(scores, probs);
  return probs;
}

std::unique_ptr<Classifier> GradientBoosting::Clone() const {
  return std::make_unique<GradientBoosting>(params_);
}

const std::vector<double>& GradientBoosting::FeatureImportances() const {
  TRAJKIT_CHECK(fitted());
  return importances_;
}

int GradientBoosting::NumTreesTotal() const {
  return static_cast<int>(trees_.size());
}

}  // namespace trajkit::ml
