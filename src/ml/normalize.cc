#include "ml/normalize.h"

#include <algorithm>
#include <cmath>

namespace trajkit::ml {

void MinMaxScaler::Fit(const Matrix& features) {
  TRAJKIT_CHECK(!features.empty());
  const size_t cols = features.cols();
  mins_.assign(cols, 0.0);
  maxs_.assign(cols, 0.0);
  for (size_t c = 0; c < cols; ++c) {
    double lo = features(0, c);
    double hi = features(0, c);
    for (size_t r = 1; r < features.rows(); ++r) {
      lo = std::min(lo, features(r, c));
      hi = std::max(hi, features(r, c));
    }
    mins_[c] = lo;
    maxs_[c] = hi;
  }
}

void MinMaxScaler::Transform(Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  TRAJKIT_CHECK_EQ(features.cols(), mins_.size());
  for (size_t c = 0; c < features.cols(); ++c) {
    const double range = maxs_[c] - mins_[c];
    if (range <= 0.0) {
      for (size_t r = 0; r < features.rows(); ++r) features(r, c) = 0.0;
    } else {
      const double inv = 1.0 / range;
      for (size_t r = 0; r < features.rows(); ++r) {
        features(r, c) = (features(r, c) - mins_[c]) * inv;
      }
    }
  }
}

void MinMaxScaler::FitTransform(Matrix& features) {
  Fit(features);
  Transform(features);
}

void StandardScaler::Fit(const Matrix& features) {
  TRAJKIT_CHECK(!features.empty());
  const size_t cols = features.cols();
  const double n = static_cast<double>(features.rows());
  means_.assign(cols, 0.0);
  stds_.assign(cols, 0.0);
  for (size_t c = 0; c < cols; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < features.rows(); ++r) sum += features(r, c);
    const double mean = sum / n;
    double acc = 0.0;
    for (size_t r = 0; r < features.rows(); ++r) {
      const double d = features(r, c) - mean;
      acc += d * d;
    }
    means_[c] = mean;
    stds_[c] = std::sqrt(acc / n);
  }
}

void StandardScaler::Transform(Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  TRAJKIT_CHECK_EQ(features.cols(), means_.size());
  for (size_t c = 0; c < features.cols(); ++c) {
    if (stds_[c] <= 0.0) {
      for (size_t r = 0; r < features.rows(); ++r) features(r, c) = 0.0;
    } else {
      const double inv = 1.0 / stds_[c];
      for (size_t r = 0; r < features.rows(); ++r) {
        features(r, c) = (features(r, c) - means_[c]) * inv;
      }
    }
  }
}

void StandardScaler::FitTransform(Matrix& features) {
  Fit(features);
  Transform(features);
}

}  // namespace trajkit::ml
