#ifndef TRAJKIT_ML_CLASSIFIER_H_
#define TRAJKIT_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace trajkit::ml {

/// Common interface of the six classifier families the paper evaluates.
///
/// Usage: construct with a parameter struct, Fit() on a training Dataset,
/// Predict() on a feature matrix with the same column layout. Classifiers
/// are deterministic given their seed parameter. Clone() produces a fresh,
/// unfitted classifier with identical hyper-parameters — the primitive the
/// cross-validation driver uses to train one model per fold.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `train`. Returns InvalidArgument for unusable input (empty,
  /// single-class where unsupported, etc.).
  virtual Status Fit(const Dataset& train) = 0;

  /// Predicts a class index for every row. Precondition: Fit() succeeded
  /// and `features` has the training column count.
  virtual std::vector<int> Predict(const Matrix& features) const = 0;

  /// Per-class probability estimates (rows × num_classes); Unimplemented
  /// for classifiers without a probabilistic output.
  virtual Result<Matrix> PredictProba(const Matrix& features) const {
    (void)features;
    return Status::Unimplemented(name() + " has no probability output");
  }

  /// Human-readable family name ("random_forest", ...).
  virtual std::string name() const = 0;

  /// Fresh unfitted copy with the same hyper-parameters and seed.
  virtual std::unique_ptr<Classifier> Clone() const = 0;
};

/// Split-quality criterion for tree learners.
enum class SplitCriterion { kGini, kEntropy };

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_CLASSIFIER_H_
