#include "ml/flat_forest.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "ml/decision_tree.h"

namespace trajkit::ml {

namespace {

/// Rows per cohort in the batched kernel. 64 cursors (256 B) plus 64 row
/// pointers stay resident in L1 while a whole tree's SoA node pool streams
/// through; bigger blocks stop helping once the accumulator rows spill.
constexpr size_t kBlockRows = 64;

constexpr int16_t kQuantLeafSentinel = std::numeric_limits<int16_t>::min();
constexpr int16_t kQuantNanValue = std::numeric_limits<int16_t>::max();

}  // namespace

size_t FlatForestScratch::DistributionHash::operator()(
    const std::vector<double>& dist) const {
  // FNV-1a over the raw double bits: deterministic across runs (no
  // pointer/seed inputs), which keeps the dedup probe order — though not
  // the table layout, which follows insertion order — reproducible.
  uint64_t hash = 1469598103934665603ull;
  for (const double value : dist) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  return static_cast<size_t>(hash);
}

Result<FlatForest> FlatForest::Compile(const RandomForest& forest,
                                       const FlatForestOptions& options) {
  return Compile(forest, options, nullptr);
}

Result<FlatForest> FlatForest::Compile(const RandomForest& forest,
                                       const FlatForestOptions& options,
                                       FlatForestScratch* scratch) {
  if (!forest.fitted()) {
    return Status::FailedPrecondition(
        "FlatForest::Compile requires a fitted forest");
  }
  FlatForest flat;
  flat.num_classes_ = forest.num_classes();
  flat.num_features_ = forest.FeatureImportances().size();
  if (options.quantize) {
    if (options.exactness_reference == nullptr ||
        options.exactness_reference->rows() == 0) {
      return Status::InvalidArgument(
          "threshold quantization requires non-empty exactness_reference "
          "rows (normally the training features)");
    }
    if (options.exactness_reference->cols() != flat.num_features_) {
      return Status::InvalidArgument(StrPrintf(
          "exactness_reference has %zu columns, forest expects %zu",
          options.exactness_reference->cols(), flat.num_features_));
    }
  }

  size_t total_nodes = 0;
  for (const DecisionTree& tree : forest.trees()) {
    total_nodes += tree.NodeCount();
  }
  TRAJKIT_CHECK_LT(total_nodes,
                   static_cast<size_t>(std::numeric_limits<int32_t>::max()));
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.child_.reserve(total_nodes);
  flat.dist_offset_.reserve(total_nodes);
  flat.roots_.reserve(forest.NumTrees());
  flat.depths_.reserve(forest.NumTrees());

  // Leaves across ALL trees fold into one shared distribution table;
  // identical distributions (pure leaves are overwhelmingly common) are
  // stored once. The dedup map (and the BFS arrays below) live in the
  // caller's scratch when one is supplied, so repeated compiles — the
  // continuous trainer recompiles a candidate per refit — reuse the
  // node/bucket allocations instead of rebuilding them.
  FlatForestScratch local_scratch;
  FlatForestScratch& ws = scratch != nullptr ? *scratch : local_scratch;
  ws.dedup.clear();
  auto& dedup = ws.dedup;

  for (const DecisionTree& tree : forest.trees()) {
    const std::vector<DecisionTree::Node>& nodes = tree.nodes();
    const std::vector<std::vector<double>>& dists =
        tree.leaf_distributions();
    const int32_t base = static_cast<int32_t>(flat.feature_.size());

    // Breadth-first renumbering: children are pushed as a consecutive
    // pair, so in the flat order right = left + 1 and descent needs only
    // the left offset plus the comparison bit.
    std::vector<int32_t>& bfs = ws.bfs;
    bfs.clear();
    bfs.reserve(nodes.size());
    std::vector<int32_t>& pos = ws.pos;
    pos.assign(nodes.size(), -1);
    bfs.push_back(0);
    pos[0] = 0;
    for (size_t j = 0; j < bfs.size(); ++j) {
      const DecisionTree::Node& node = nodes[static_cast<size_t>(bfs[j])];
      if (node.feature >= 0) {
        pos[static_cast<size_t>(node.left)] =
            static_cast<int32_t>(bfs.size());
        bfs.push_back(node.left);
        pos[static_cast<size_t>(node.right)] =
            static_cast<int32_t>(bfs.size());
        bfs.push_back(node.right);
      }
    }
    TRAJKIT_CHECK_EQ(bfs.size(), nodes.size());

    for (size_t j = 0; j < bfs.size(); ++j) {
      const DecisionTree::Node& node = nodes[static_cast<size_t>(bfs[j])];
      const int32_t self = base + static_cast<int32_t>(j);
      if (node.feature >= 0) {
        flat.feature_.push_back(node.feature);
        flat.threshold_.push_back(node.threshold);
        flat.child_.push_back(base + pos[static_cast<size_t>(node.left)]);
        flat.dist_offset_.push_back(0);
      } else {
        const std::vector<double>& dist =
            dists[static_cast<size_t>(node.distribution)];
        const auto [it, inserted] = dedup.try_emplace(
            dist, static_cast<int32_t>(flat.dist_table_.size()));
        if (inserted) {
          flat.dist_table_.insert(flat.dist_table_.end(), dist.begin(),
                                  dist.end());
        }
        flat.feature_.push_back(-1);
        // Leaf self-loop: NaN threshold makes the comparison false for any
        // input (including NaN, matching the pointer walk's right-on-NaN),
        // so the branchless step yields (self - 1) + 1 = self.
        flat.threshold_.push_back(std::numeric_limits<double>::quiet_NaN());
        flat.child_.push_back(self - 1);
        flat.dist_offset_.push_back(it->second);
        ++flat.num_leaves_;
      }
    }
    flat.roots_.push_back(base);
    flat.depths_.push_back(tree.Depth());
  }
  flat.num_distributions_ = dedup.size();

  if (options.quantize) {
    flat.TryQuantize(*options.exactness_reference);
  }
  return flat;
}

void FlatForest::TryQuantize(const Matrix& reference) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> lo(num_features_, inf);
  std::vector<double> hi(num_features_, -inf);
  for (size_t i = 0; i < feature_.size(); ++i) {
    const int32_t f = feature_[i];
    if (f < 0) continue;
    lo[static_cast<size_t>(f)] =
        std::min(lo[static_cast<size_t>(f)], threshold_[i]);
    hi[static_cast<size_t>(f)] =
        std::max(hi[static_cast<size_t>(f)], threshold_[i]);
  }
  qlo_.assign(num_features_, 0.0);
  qscale_.assign(num_features_, 0.0);
  for (size_t f = 0; f < num_features_; ++f) {
    if (lo[f] > hi[f]) continue;  // Feature never split on; never compared.
    qlo_[f] = lo[f];
    qscale_[f] = hi[f] > lo[f] ? 32000.0 / (hi[f] - lo[f]) : 1.0;
  }
  qthreshold_.resize(feature_.size());
  for (size_t i = 0; i < feature_.size(); ++i) {
    const int32_t f = feature_[i];
    if (f < 0) {
      // Every quantized row value is clamped to >= -32767, so the leaf
      // sentinel keeps `!(qv <= qt)` == 1 and the self-loop intact.
      qthreshold_[i] = kQuantLeafSentinel;
      continue;
    }
    const double g = std::floor(
        (threshold_[i] - qlo_[static_cast<size_t>(f)]) *
        qscale_[static_cast<size_t>(f)]);
    qthreshold_[i] = static_cast<int16_t>(std::clamp(g, -32767.0, 32766.0));
  }

  // Exactness check: the quantized grid is monotone, so x <= t always
  // implies q(x) <= q(t) — but a sample strictly above a threshold can
  // share its grid cell and flip right-to-left. Replay every reference
  // row through both descents; one divergence rejects the quantized form.
  std::vector<int16_t> qrow(num_features_);
  for (size_t r = 0; r < reference.rows(); ++r) {
    const std::span<const double> row = reference.Row(r);
    QuantizeRow(row, qrow.data());
    for (size_t t = 0; t < roots_.size(); ++t) {
      const size_t exact = DescendExact(t, row);
      const size_t quant = DescendQuantized(t, qrow.data());
      if (exact != quant) {
        quantization_rejection_ = StrPrintf(
            "quantized descent diverged from the exact path on reference "
            "row %zu, tree %zu (leaf node %zu vs %zu): a sample sits "
            "between a threshold and its int16 grid cell edge",
            r, t, exact, quant);
        qthreshold_.clear();
        qlo_.clear();
        qscale_.clear();
        return;
      }
    }
  }
}

void FlatForest::QuantizeRow(std::span<const double> row,
                             int16_t* out) const {
  for (size_t f = 0; f < num_features_; ++f) {
    const double g = std::floor((row[f] - qlo_[f]) * qscale_[f]);
    // NaN maps above every internal threshold so the quantized comparison
    // sends it right, exactly like `!(NaN <= t)` on the exact path.
    out[f] = std::isnan(g)
                 ? kQuantNanValue
                 : static_cast<int16_t>(std::clamp(g, -32767.0, 32766.0));
  }
}

size_t FlatForest::DescendExact(size_t tree,
                                std::span<const double> row) const {
  size_t i = static_cast<size_t>(roots_[tree]);
  int32_t f = feature_[i];
  while (f >= 0) {
    const double v = row[static_cast<size_t>(f)];
    i = static_cast<size_t>(child_[i] +
                            static_cast<int32_t>(!(v <= threshold_[i])));
    f = feature_[i];
  }
  return i;
}

size_t FlatForest::DescendQuantized(size_t tree, const int16_t* qrow) const {
  size_t i = static_cast<size_t>(roots_[tree]);
  int32_t f = feature_[i];
  while (f >= 0) {
    const int16_t v = qrow[static_cast<size_t>(f)];
    i = static_cast<size_t>(child_[i] +
                            static_cast<int32_t>(!(v <= qthreshold_[i])));
    f = feature_[i];
  }
  return i;
}

void FlatForest::AccumulateVotes(std::span<const double> row, double scale,
                                 std::span<double> acc) const {
  TRAJKIT_CHECK_GE(row.size(), num_features_);
  TRAJKIT_CHECK_EQ(acc.size(), static_cast<size_t>(num_classes_));
  const size_t k = static_cast<size_t>(num_classes_);
  if (!quantized()) {
    for (size_t t = 0; t < roots_.size(); ++t) {
      const double* dist = dist_table_.data() + dist_offset_[DescendExact(t, row)];
      for (size_t c = 0; c < k; ++c) acc[c] += dist[c] * scale;
    }
    return;
  }
  int16_t qstack[256];
  std::vector<int16_t> qheap;
  int16_t* qrow = qstack;
  if (num_features_ > std::size(qstack)) {
    qheap.resize(num_features_);
    qrow = qheap.data();
  }
  QuantizeRow(row, qrow);
  for (size_t t = 0; t < roots_.size(); ++t) {
    const double* dist =
        dist_table_.data() + dist_offset_[DescendQuantized(t, qrow)];
    for (size_t c = 0; c < k; ++c) acc[c] += dist[c] * scale;
  }
}

void FlatForest::AccumulateBlock(const Matrix& features, size_t begin,
                                 size_t end, double scale,
                                 double* acc) const {
  const size_t block = end - begin;
  TRAJKIT_CHECK_LE(block, kBlockRows);
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(acc, acc + block * k, 0.0);

  const double* rows[kBlockRows];
  for (size_t r = 0; r < block; ++r) {
    rows[r] = features.Row(begin + r).data();
  }
  int32_t cursor[kBlockRows];

  const int32_t* const feature = feature_.data();
  const int32_t* const child = child_.data();
  const int32_t* const dist_offset = dist_offset_.data();
  const double* const table = dist_table_.data();

  if (!quantized()) {
    const double* const threshold = threshold_.data();
    for (size_t t = 0; t < roots_.size(); ++t) {
      const int32_t root = roots_[t];
      const int32_t depth = depths_[t];
      for (size_t r = 0; r < block; ++r) cursor[r] = root;
      // Level-cohort descent: every row advances one level per sweep; rows
      // already at a leaf self-loop, so no per-row termination test and the
      // inner loop is a straight-line gather + compare + offset add.
      for (int32_t level = 0; level < depth; ++level) {
        for (size_t r = 0; r < block; ++r) {
          const int32_t i = cursor[r];
          const int32_t f = feature[i];
          const double v = rows[r][f < 0 ? 0 : f];
          cursor[r] =
              child[i] + static_cast<int32_t>(!(v <= threshold[i]));
        }
      }
      for (size_t r = 0; r < block; ++r) {
        const double* dist = table + dist_offset[cursor[r]];
        double* a = acc + r * k;
        for (size_t c = 0; c < k; ++c) a[c] += dist[c] * scale;
      }
    }
    return;
  }

  // Quantized path: rows are lowered to int16 once per block, then every
  // tree compares 2-byte lanes (half the node-pool bytes of the exact
  // form in the comparison stream).
  std::vector<int16_t> qrows(block * num_features_);
  for (size_t r = 0; r < block; ++r) {
    QuantizeRow(std::span<const double>(rows[r], features.cols()),
                qrows.data() + r * num_features_);
  }
  const int16_t* const qthreshold = qthreshold_.data();
  for (size_t t = 0; t < roots_.size(); ++t) {
    const int32_t root = roots_[t];
    const int32_t depth = depths_[t];
    for (size_t r = 0; r < block; ++r) cursor[r] = root;
    for (int32_t level = 0; level < depth; ++level) {
      for (size_t r = 0; r < block; ++r) {
        const int32_t i = cursor[r];
        const int32_t f = feature[i];
        const int16_t v = qrows[r * num_features_ +
                                static_cast<size_t>(f < 0 ? 0 : f)];
        cursor[r] = child[i] + static_cast<int32_t>(!(v <= qthreshold[i]));
      }
    }
    for (size_t r = 0; r < block; ++r) {
      const double* dist = table + dist_offset[cursor[r]];
      double* a = acc + r * k;
      for (size_t c = 0; c < k; ++c) a[c] += dist[c] * scale;
    }
  }
}

std::vector<int> FlatForest::Predict(const Matrix& features) const {
  TRAJKIT_CHECK_GE(features.cols(), num_features_);
  const size_t n = features.rows();
  std::vector<int> out(n);
  if (n == 0) return out;
  const size_t k = static_cast<size_t>(num_classes_);
  const size_t num_blocks = (n + kBlockRows - 1) / kBlockRows;
  // Blocks write disjoint out[] slots and each row accumulates its votes
  // in tree order, so the result is bit-identical at any thread count and
  // to the per-row pointer walk.
  const Status status = ParallelFor(0, num_blocks, 1, [&](size_t b) {
    const size_t begin = b * kBlockRows;
    const size_t end = std::min(begin + kBlockRows, n);
    double acc[kBlockRows * 32];
    std::vector<double> heap;
    double* block_acc = acc;
    if ((end - begin) * k > std::size(acc)) {
      heap.resize((end - begin) * k);
      block_acc = heap.data();
    }
    AccumulateBlock(features, begin, end, 1.0, block_acc);
    for (size_t r = begin; r < end; ++r) {
      const double* row_acc = block_acc + (r - begin) * k;
      out[r] = static_cast<int>(
          std::max_element(row_acc, row_acc + k) - row_acc);
    }
  });
  TRAJKIT_CHECK(status.ok()) << status.ToString();
  return out;
}

Matrix FlatForest::PredictProba(const Matrix& features) const {
  TRAJKIT_CHECK_GE(features.cols(), num_features_);
  const size_t n = features.rows();
  const size_t k = static_cast<size_t>(num_classes_);
  Matrix probs(n, k);
  if (n == 0) return probs;
  const double inv = 1.0 / static_cast<double>(roots_.size());
  const size_t num_blocks = (n + kBlockRows - 1) / kBlockRows;
  const Status status = ParallelFor(0, num_blocks, 1, [&](size_t b) {
    const size_t begin = b * kBlockRows;
    const size_t end = std::min(begin + kBlockRows, n);
    // Rows are contiguous in the row-major output, so the block kernel
    // accumulates straight into the result matrix.
    AccumulateBlock(features, begin, end, inv,
                    probs.MutableRow(begin).data());
  });
  TRAJKIT_CHECK(status.ok()) << status.ToString();
  return probs;
}

FlatForestStats FlatForest::Stats() const {
  FlatForestStats stats;
  stats.num_trees = num_trees();
  stats.num_nodes = num_nodes();
  stats.num_leaves = num_leaves_;
  stats.shared_distributions = num_distributions_;
  stats.quantized = quantized();
  return stats;
}

size_t FlatForest::LeafIndexForTest(size_t tree, std::span<const double> row,
                                    bool use_quantized) const {
  TRAJKIT_CHECK_LT(tree, roots_.size());
  if (!use_quantized) return DescendExact(tree, row);
  TRAJKIT_CHECK(quantized());
  std::vector<int16_t> qrow(num_features_);
  QuantizeRow(row, qrow.data());
  return DescendQuantized(tree, qrow.data());
}

}  // namespace trajkit::ml
