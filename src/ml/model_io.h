#ifndef TRAJKIT_ML_MODEL_IO_H_
#define TRAJKIT_ML_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "ml/random_forest.h"

namespace trajkit::ml {

/// File-level persistence for trained random forests (the paper's model of
/// choice). The format is a versioned line-based text file; restored
/// models predict bit-identically.

/// Writes a fitted forest to `path` (creating parent directories).
Status SaveRandomForest(const RandomForest& forest, const std::string& path);

/// Reads a forest written by SaveRandomForest.
Result<RandomForest> LoadRandomForest(const std::string& path);

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_MODEL_IO_H_
