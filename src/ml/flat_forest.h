#ifndef TRAJKIT_ML_FLAT_FOREST_H_
#define TRAJKIT_ML_FLAT_FOREST_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"
#include "ml/random_forest.h"

namespace trajkit::ml {

/// Options for FlatForest::Compile.
struct FlatForestOptions {
  /// Attempt int16 threshold quantization. The quantized form is accepted
  /// only when branchless descent over `exactness_reference` lands on the
  /// same leaf as the exact (double-threshold) descent for EVERY row and
  /// every tree; otherwise the compile silently keeps the exact form and
  /// records why in quantization_rejection().
  bool quantize = false;
  /// Rows the exactness check replays (normally the training features).
  /// Required — and must be non-empty — when `quantize` is set.
  const Matrix* exactness_reference = nullptr;
};

/// Reusable compile workspace: the leaf-distribution dedup table and the
/// per-tree BFS renumbering arrays keep their allocations across compiles,
/// so callers that recompile periodically (the continuous trainer lowers
/// every refit candidate) don't rebuild the maps from scratch each time.
/// Purely an allocation cache — compiled output is bit-identical with or
/// without one. Not thread-safe; use one scratch per compiling thread.
struct FlatForestScratch {
  struct DistributionHash {
    size_t operator()(const std::vector<double>& dist) const;
  };
  std::unordered_map<std::vector<double>, int32_t, DistributionHash> dedup;
  std::vector<int32_t> bfs;
  std::vector<int32_t> pos;
};

/// Size/shape summary of a compiled forest (statusz, bench reporting).
struct FlatForestStats {
  size_t num_trees = 0;
  size_t num_nodes = 0;
  size_t num_leaves = 0;
  /// Deduplicated leaf distributions actually stored (<= num_leaves).
  size_t shared_distributions = 0;
  bool quantized = false;
};

/// Compiled inference form of a fitted RandomForest: every tree lowered
/// into one contiguous structure-of-arrays node pool with breadth-first
/// renumbering so an internal node's children are adjacent
/// (right = left + 1) and descent is a branchless offset computation:
///
///   next = child[i] + !(row[feature[i]] <= threshold[i])
///
/// Leaves carry threshold = NaN and child = i - 1, so the same step maps a
/// leaf back onto itself for any input (the comparison is always false) —
/// the batched kernel can advance a whole cohort of rows level by level
/// with no per-row termination test. Leaf class distributions are folded
/// into one shared, deduplicated table (`dist_offset` indexes it).
///
/// The flat form predicts bit-identically to the pointer walk: per row,
/// leaf distributions are accumulated in tree order with the same
/// double-precision adds, so Predict/PredictProba agree to the last bit at
/// any thread count.
///
/// Optional int16 threshold quantization (per-feature affine grids) is
/// accepted only after an exactness check proves descent parity on every
/// reference row; see FlatForestOptions.
class FlatForest {
 public:
  /// Lowers a fitted forest. Errors when the forest is unfitted or the
  /// quantization options are malformed; quantization *rejection* is not an
  /// error (the exact form is kept, see quantization_rejection()).
  static Result<FlatForest> Compile(const RandomForest& forest,
                                    const FlatForestOptions& options = {});

  /// Same compile, reusing `scratch`'s allocations (nullptr behaves like
  /// the plain overload).
  static Result<FlatForest> Compile(const RandomForest& forest,
                                    const FlatForestOptions& options,
                                    FlatForestScratch* scratch);

  /// Soft-voting argmax per row; bit-identical to RandomForest::Predict's
  /// pointer walk. Parallelizes over row blocks.
  std::vector<int> Predict(const Matrix& features) const;

  /// Per-class probabilities; bit-identical to RandomForest::PredictProba.
  Matrix PredictProba(const Matrix& features) const;

  /// Single-row kernel: adds `scale * leaf_distribution` over all trees
  /// into `acc` (size num_classes), in tree order. The building block the
  /// batched paths and the serving single-row path share.
  void AccumulateVotes(std::span<const double> row, double scale,
                       std::span<double> acc) const;

  int num_classes() const { return num_classes_; }
  size_t num_features() const { return num_features_; }
  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  bool quantized() const { return !qthreshold_.empty(); }
  /// Non-empty when quantization was requested but failed the exactness
  /// check (names the first disagreeing row/tree).
  const std::string& quantization_rejection() const {
    return quantization_rejection_;
  }
  FlatForestStats Stats() const;

  /// Test hook: flat node index of the leaf `row` reaches in tree `tree`,
  /// via the exact or the quantized descent. Precondition: quantized()
  /// when use_quantized.
  size_t LeafIndexForTest(size_t tree, std::span<const double> row,
                          bool use_quantized) const;

  /// Dumps the compiled arrays as one raw little-endian binary image
  /// (flat-forest dump v1: header + each SoA array verbatim) — the first
  /// step toward mmap-able model loading. Creates parent directories.
  /// Round trip is bit-identical: LoadFrom(SaveTo(f)) predicts exactly
  /// like f, quantized mirror included.
  Status SaveTo(const std::string& path) const;

  /// Reads a dump written by SaveTo.
  static Result<FlatForest> LoadFrom(const std::string& path);

 private:
  FlatForest() = default;

  /// Builds the per-feature affine grids + int16 threshold mirror, then
  /// accepts them only if descent parity holds on every reference row.
  void TryQuantize(const Matrix& reference);

  /// Quantizes one full-width row into `out` (size num_features_).
  void QuantizeRow(std::span<const double> row, int16_t* out) const;

  /// Single-row descents to the leaf's flat node index.
  size_t DescendExact(size_t tree, std::span<const double> row) const;
  size_t DescendQuantized(size_t tree, const int16_t* qrow) const;

  /// Accumulates scale-weighted votes for rows [begin, end) of `features`
  /// into `acc` (row-major (end-begin) x num_classes, pre-zeroed by the
  /// caller or overwritten — the kernel zeroes it itself).
  void AccumulateBlock(const Matrix& features, size_t begin, size_t end,
                       double scale, double* acc) const;

  // One SoA node pool across all trees, tree nodes contiguous, BFS order.
  std::vector<int32_t> feature_;      // Split feature; -1 marks a leaf.
  std::vector<double> threshold_;     // Split threshold; NaN at leaves.
  std::vector<int32_t> child_;        // Left child (right = left + 1);
                                      // self - 1 at leaves (self-loop).
  std::vector<int32_t> dist_offset_;  // Element offset into dist_table_
                                      // (leaves only; 0 at internals).
  std::vector<int32_t> roots_;        // Root node per tree.
  std::vector<int32_t> depths_;       // Max depth (edges) per tree.
  std::vector<double> dist_table_;    // Deduped leaf distributions, each
                                      // num_classes_ wide.

  // Quantized mirror (empty when not accepted). Per-feature affine grids:
  // q(x) = floor((x - qlo[f]) * qscale[f]) clamped to [-32767, 32766];
  // NaN maps to 32767 (always compares right, like the exact path). Leaf
  // sentinel threshold -32768 keeps the self-loop property.
  std::vector<int16_t> qthreshold_;
  std::vector<double> qlo_;
  std::vector<double> qscale_;

  int num_classes_ = 0;
  size_t num_features_ = 0;
  size_t num_leaves_ = 0;
  size_t num_distributions_ = 0;
  std::string quantization_rejection_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_FLAT_FOREST_H_
