#include "ml/crossval.h"

#include <cmath>

#include "common/parallel.h"
#include "ml/metrics.h"
#include "ml/normalize.h"

namespace trajkit::ml {

namespace {

double MeanOf(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

}  // namespace

double CrossValidationResult::MeanAccuracy() const {
  return MeanOf(fold_accuracy);
}

double CrossValidationResult::StdAccuracy() const {
  if (fold_accuracy.size() < 2) return 0.0;
  const double mu = MeanAccuracy();
  double acc = 0.0;
  for (double x : fold_accuracy) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(fold_accuracy.size()));
}

double CrossValidationResult::MeanWeightedF1() const {
  return MeanOf(fold_weighted_f1);
}

double CrossValidationResult::MeanMacroF1() const {
  return MeanOf(fold_macro_f1);
}

Result<CrossValidationResult> CrossValidate(
    const Classifier& prototype, const Dataset& dataset,
    const std::vector<FoldSplit>& folds,
    const CrossValidationOptions& options) {
  if (folds.empty()) {
    return Status::InvalidArgument("no folds supplied");
  }
  // Folds are independent (each fits its own clone on its own train/test
  // copies); run them concurrently and merge in fold order so the result —
  // including the pooled prediction vectors — is identical at any thread
  // count.
  TRAJKIT_ASSIGN_OR_RETURN(
      std::vector<Result<HoldoutResult>> holdouts,
      (ParallelMap<Result<HoldoutResult>>(folds.size(), 1, [&](size_t i) {
        return EvaluateHoldout(prototype, dataset, folds[i], options);
      })));
  CrossValidationResult result;
  for (Result<HoldoutResult>& fold_result : holdouts) {
    if (!fold_result.ok()) return fold_result.status();
    HoldoutResult& holdout = fold_result.value();
    result.fold_accuracy.push_back(holdout.accuracy);
    result.fold_macro_f1.push_back(holdout.macro_f1);
    result.fold_weighted_f1.push_back(holdout.weighted_f1);
    result.pooled_true.insert(result.pooled_true.end(),
                              holdout.y_true.begin(), holdout.y_true.end());
    result.pooled_pred.insert(result.pooled_pred.end(),
                              holdout.y_pred.begin(), holdout.y_pred.end());
  }
  return result;
}

Result<HoldoutResult> EvaluateHoldout(const Classifier& prototype,
                                      const Dataset& dataset,
                                      const FoldSplit& split,
                                      const CrossValidationOptions& options) {
  if (split.train_indices.empty() || split.test_indices.empty()) {
    return Status::InvalidArgument("empty train or test split");
  }
  Dataset train = dataset.SelectSamples(split.train_indices);
  Dataset test = dataset.SelectSamples(split.test_indices);
  if (options.minmax_normalize) {
    MinMaxScaler scaler;
    scaler.Fit(train.features());
    scaler.Transform(train.mutable_features());
    scaler.Transform(test.mutable_features());
  }
  std::unique_ptr<Classifier> model = prototype.Clone();
  TRAJKIT_RETURN_IF_ERROR(model->Fit(train));
  HoldoutResult out;
  out.y_true = test.labels();
  out.y_pred = model->Predict(test.features());
  const ClassificationReport report =
      Evaluate(out.y_true, out.y_pred, dataset.num_classes());
  out.accuracy = report.accuracy;
  out.weighted_f1 = report.weighted_f1;
  out.macro_f1 = report.macro_f1;
  return out;
}

}  // namespace trajkit::ml
