#include "ml/feature_selection.h"

#include <algorithm>

#include "common/check.h"

namespace trajkit::ml {

Result<std::vector<SelectionStep>> ForwardWrapperSelection(
    const Dataset& dataset, const SubsetEvaluator& evaluator,
    int max_features) {
  const int total = static_cast<int>(dataset.num_features());
  if (total == 0) {
    return Status::InvalidArgument("dataset has no features");
  }
  int budget = (max_features <= 0 || max_features > total) ? total
                                                           : max_features;
  std::vector<SelectionStep> steps;
  std::vector<int> selected;
  std::vector<bool> used(static_cast<size_t>(total), false);

  for (int step = 0; step < budget; ++step) {
    int best_feature = -1;
    double best_score = -1.0;
    for (int f = 0; f < total; ++f) {
      if (used[static_cast<size_t>(f)]) continue;
      std::vector<int> candidate = selected;
      candidate.push_back(f);
      const double score = evaluator(dataset.SelectFeatures(candidate));
      if (score > best_score) {
        best_score = score;
        best_feature = f;
      }
    }
    TRAJKIT_CHECK_GE(best_feature, 0);
    used[static_cast<size_t>(best_feature)] = true;
    selected.push_back(best_feature);
    steps.push_back({best_feature, best_score});
  }
  return steps;
}

Result<std::vector<SelectionStep>> IncrementalRankingSelection(
    const Dataset& dataset, const SubsetEvaluator& evaluator,
    std::span<const int> ranking, int max_features) {
  if (ranking.empty()) {
    return Status::InvalidArgument("empty feature ranking");
  }
  for (int f : ranking) {
    if (f < 0 || f >= static_cast<int>(dataset.num_features())) {
      return Status::InvalidArgument("ranking contains invalid feature index");
    }
  }
  const int total = static_cast<int>(ranking.size());
  const int budget = (max_features <= 0 || max_features > total)
                         ? total
                         : max_features;
  std::vector<SelectionStep> steps;
  std::vector<int> prefix;
  for (int k = 0; k < budget; ++k) {
    prefix.push_back(ranking[static_cast<size_t>(k)]);
    const double score = evaluator(dataset.SelectFeatures(prefix));
    steps.push_back({ranking[static_cast<size_t>(k)], score});
  }
  return steps;
}

std::vector<int> BestPrefix(const std::vector<SelectionStep>& steps) {
  size_t best_len = 0;
  double best_score = -1.0;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].score > best_score) {
      best_score = steps[i].score;
      best_len = i + 1;
    }
  }
  return PrefixOfSize(steps, best_len);
}

std::vector<int> PrefixOfSize(const std::vector<SelectionStep>& steps,
                              size_t k) {
  TRAJKIT_CHECK_LE(k, steps.size());
  std::vector<int> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(steps[i].feature_index);
  return out;
}

}  // namespace trajkit::ml
