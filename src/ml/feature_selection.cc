#include "ml/feature_selection.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"

namespace trajkit::ml {

Result<std::vector<SelectionStep>> ForwardWrapperSelection(
    const Dataset& dataset, const SubsetEvaluator& evaluator,
    int max_features) {
  const int total = static_cast<int>(dataset.num_features());
  if (total == 0) {
    return Status::InvalidArgument("dataset has no features");
  }
  int budget = (max_features <= 0 || max_features > total) ? total
                                                           : max_features;
  std::vector<SelectionStep> steps;
  std::vector<int> selected;
  std::vector<bool> used(static_cast<size_t>(total), false);

  for (int step = 0; step < budget; ++step) {
    // All candidates of a round are independent evaluator calls; score them
    // concurrently (this turns the O(F^2) sequential fit count into O(F)
    // rounds of parallel fits), then reduce in ascending feature order so
    // the argmax tie-break matches the serial scan exactly.
    std::vector<int> open;
    open.reserve(static_cast<size_t>(total));
    for (int f = 0; f < total; ++f) {
      if (!used[static_cast<size_t>(f)]) open.push_back(f);
    }
    std::vector<double> scores(open.size(), 0.0);
    TRAJKIT_RETURN_IF_ERROR(ParallelFor(0, open.size(), 1, [&](size_t i) {
      std::vector<int> candidate = selected;
      candidate.push_back(open[i]);
      scores[i] = evaluator(dataset.SelectFeatures(candidate));
    }));
    int best_feature = -1;
    double best_score = -1.0;
    for (size_t i = 0; i < open.size(); ++i) {
      if (scores[i] > best_score) {
        best_score = scores[i];
        best_feature = open[i];
      }
    }
    TRAJKIT_CHECK_GE(best_feature, 0);
    used[static_cast<size_t>(best_feature)] = true;
    selected.push_back(best_feature);
    steps.push_back({best_feature, best_score});
  }
  return steps;
}

Result<std::vector<SelectionStep>> IncrementalRankingSelection(
    const Dataset& dataset, const SubsetEvaluator& evaluator,
    std::span<const int> ranking, int max_features) {
  if (ranking.empty()) {
    return Status::InvalidArgument("empty feature ranking");
  }
  for (int f : ranking) {
    if (f < 0 || f >= static_cast<int>(dataset.num_features())) {
      return Status::InvalidArgument("ranking contains invalid feature index");
    }
  }
  const int total = static_cast<int>(ranking.size());
  const int budget = (max_features <= 0 || max_features > total)
                         ? total
                         : max_features;
  std::vector<SelectionStep> steps;
  std::vector<int> prefix;
  for (int k = 0; k < budget; ++k) {
    prefix.push_back(ranking[static_cast<size_t>(k)]);
    const double score = evaluator(dataset.SelectFeatures(prefix));
    steps.push_back({ranking[static_cast<size_t>(k)], score});
  }
  return steps;
}

std::vector<int> BestPrefix(const std::vector<SelectionStep>& steps) {
  size_t best_len = 0;
  double best_score = -1.0;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].score > best_score) {
      best_score = steps[i].score;
      best_len = i + 1;
    }
  }
  return PrefixOfSize(steps, best_len);
}

std::vector<int> PrefixOfSize(const std::vector<SelectionStep>& steps,
                              size_t k) {
  TRAJKIT_CHECK_LE(k, steps.size());
  std::vector<int> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(steps[i].feature_index);
  return out;
}

}  // namespace trajkit::ml
