#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace trajkit::ml {

Knn::Knn(KnnParams params) : params_(params) {}

Status Knn::Fit(const Dataset& train) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("cannot fit k-NN on an empty dataset");
  }
  if (params_.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  num_classes_ = train.num_classes();
  train_features_ = train.features();
  train_labels_ = train.labels();

  scale_min_.clear();
  scale_inv_range_.clear();
  if (params_.internal_scaling) {
    const size_t cols = train_features_.cols();
    scale_min_.assign(cols, 0.0);
    scale_inv_range_.assign(cols, 1.0);
    for (size_t c = 0; c < cols; ++c) {
      double lo = train_features_(0, c);
      double hi = lo;
      for (size_t r = 1; r < train_features_.rows(); ++r) {
        lo = std::min(lo, train_features_(r, c));
        hi = std::max(hi, train_features_(r, c));
      }
      scale_min_[c] = lo;
      scale_inv_range_[c] = hi > lo ? 1.0 / (hi - lo) : 0.0;
      for (size_t r = 0; r < train_features_.rows(); ++r) {
        train_features_(r, c) =
            (train_features_(r, c) - lo) * scale_inv_range_[c];
      }
    }
  }
  return Status::Ok();
}

std::vector<double> Knn::VoteRow(std::span<const double> row) const {
  // Scale the query like the training data.
  std::vector<double> query(row.begin(), row.end());
  if (!scale_min_.empty()) {
    for (size_t c = 0; c < query.size(); ++c) {
      query[c] = (query[c] - scale_min_[c]) * scale_inv_range_[c];
    }
  }
  struct Neighbour {
    double distance_sq;
    int label;
  };
  const size_t n = train_features_.rows();
  const size_t k = std::min<size_t>(static_cast<size_t>(params_.k), n);
  std::vector<Neighbour> neighbours(n);
  for (size_t i = 0; i < n; ++i) {
    double d = 0.0;
    const std::span<const double> t = train_features_.Row(i);
    for (size_t c = 0; c < query.size(); ++c) {
      const double diff = query[c] - t[c];
      d += diff * diff;
    }
    neighbours[i] = {d, train_labels_[i]};
  }
  std::nth_element(neighbours.begin(),
                   neighbours.begin() + static_cast<long>(k - 1),
                   neighbours.end(),
                   [](const Neighbour& a, const Neighbour& b) {
                     return a.distance_sq < b.distance_sq;
                   });
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (size_t i = 0; i < k; ++i) {
    const double weight =
        params_.distance_weighted
            ? 1.0 / (std::sqrt(neighbours[i].distance_sq) + 1e-9)
            : 1.0;
    votes[static_cast<size_t>(neighbours[i].label)] += weight;
  }
  return votes;
}

std::vector<int> Knn::Predict(const Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::vector<double> votes = VoteRow(features.Row(r));
    out[r] = static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                              votes.begin());
  }
  return out;
}

Result<Matrix> Knn::PredictProba(const Matrix& features) const {
  if (!fitted()) {
    return Status::FailedPrecondition("PredictProba before Fit");
  }
  Matrix probs(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::vector<double> votes = VoteRow(features.Row(r));
    double total = 0.0;
    for (double v : votes) total += v;
    for (size_t c = 0; c < votes.size(); ++c) {
      probs(r, c) = total > 0.0 ? votes[c] / total : 0.0;
    }
  }
  return probs;
}

std::unique_ptr<Classifier> Knn::Clone() const {
  return std::make_unique<Knn>(params_);
}

}  // namespace trajkit::ml
