#ifndef TRAJKIT_ML_ADABOOST_H_
#define TRAJKIT_ML_ADABOOST_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/decision_tree.h"

namespace trajkit::ml {

/// Hyper-parameters of multi-class AdaBoost (SAMME), sklearn-style:
/// depth-1 trees, 50 rounds, learning rate 1.
struct AdaBoostParams {
  int n_estimators = 50;
  int base_max_depth = 1;
  double learning_rate = 1.0;
  uint64_t seed = 42;
};

/// SAMME AdaBoost over shallow CART trees. Boosting stops early when a
/// round's weighted error reaches 0 (perfect learner) or exceeds the
/// random-guessing bound 1 - 1/K.
class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(AdaBoostParams params = {});

  Status Fit(const Dataset& train) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Result<Matrix> PredictProba(const Matrix& features) const override;
  std::string name() const override { return "adaboost"; }
  std::unique_ptr<Classifier> Clone() const override;

  size_t NumRounds() const { return learners_.size(); }
  bool fitted() const { return !learners_.empty(); }

 private:
  AdaBoostParams params_;
  int num_classes_ = 0;
  std::vector<DecisionTree> learners_;
  std::vector<double> alphas_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_ADABOOST_H_
