#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace trajkit::ml {

LogisticRegression::LogisticRegression(LogisticRegressionParams params)
    : params_(params) {}

void LogisticRegression::RowScores(std::span<const double> row,
                                   std::vector<double>& scores) const {
  const size_t d = num_features_ + 1;
  scores.assign(static_cast<size_t>(num_classes_), 0.0);
  for (int cls = 0; cls < num_classes_; ++cls) {
    const double* w = &weights_[static_cast<size_t>(cls) * d];
    double z = w[num_features_];
    for (size_t c = 0; c < num_features_; ++c) {
      double v = row[c];
      if (!scale_min_.empty()) {
        v = (v - scale_min_[c]) * scale_inv_range_[c];
      }
      z += w[c] * v;
    }
    scores[static_cast<size_t>(cls)] = z;
  }
}

Status LogisticRegression::Fit(const Dataset& train) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument(
        "cannot fit logistic regression on an empty dataset");
  }
  if (params_.epochs <= 0 || params_.learning_rate <= 0.0) {
    return Status::InvalidArgument("epochs and learning_rate must be > 0");
  }
  num_classes_ = train.num_classes();
  num_features_ = train.num_features();
  const size_t n = train.num_samples();
  const size_t d = num_features_ + 1;
  const size_t k = static_cast<size_t>(num_classes_);
  weights_.assign(k * d, 0.0);

  scale_min_.clear();
  scale_inv_range_.clear();
  if (params_.internal_scaling) {
    scale_min_.assign(num_features_, 0.0);
    scale_inv_range_.assign(num_features_, 1.0);
    for (size_t c = 0; c < num_features_; ++c) {
      double lo = train.features()(0, c);
      double hi = lo;
      for (size_t r = 1; r < n; ++r) {
        lo = std::min(lo, train.features()(r, c));
        hi = std::max(hi, train.features()(r, c));
      }
      scale_min_[c] = lo;
      scale_inv_range_[c] = hi > lo ? 1.0 / (hi - lo) : 0.0;
    }
  }
  // Pre-scale a working copy for the training loop.
  Matrix x = train.features();
  if (!scale_min_.empty()) {
    for (size_t c = 0; c < num_features_; ++c) {
      for (size_t r = 0; r < n; ++r) {
        x(r, c) = (x(r, c) - scale_min_[c]) * scale_inv_range_[c];
      }
    }
  }

  std::vector<double> velocity(weights_.size(), 0.0);
  std::vector<double> gradient(weights_.size(), 0.0);
  std::vector<double> lookahead(weights_.size(), 0.0);
  std::vector<double> probs(k);
  constexpr double kMomentum = 0.9;

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    // Nesterov lookahead.
    for (size_t i = 0; i < weights_.size(); ++i) {
      lookahead[i] = weights_[i] + kMomentum * velocity[i];
    }
    for (size_t r = 0; r < n; ++r) {
      // Softmax at the lookahead point.
      double max_z = -1e300;
      for (size_t cls = 0; cls < k; ++cls) {
        const double* w = &lookahead[cls * d];
        double z = w[num_features_];
        for (size_t c = 0; c < num_features_; ++c) z += w[c] * x(r, c);
        probs[cls] = z;
        max_z = std::max(max_z, z);
      }
      double sum = 0.0;
      for (double& p : probs) {
        p = std::exp(p - max_z);
        sum += p;
      }
      for (double& p : probs) p /= sum;
      const size_t y = static_cast<size_t>(train.labels()[r]);
      for (size_t cls = 0; cls < k; ++cls) {
        const double err = probs[cls] - (cls == y ? 1.0 : 0.0);
        double* g = &gradient[cls * d];
        for (size_t c = 0; c < num_features_; ++c) {
          g[c] += err * x(r, c);
        }
        g[num_features_] += err;
      }
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t cls = 0; cls < k; ++cls) {
      for (size_t c = 0; c < d; ++c) {
        const size_t i = cls * d + c;
        double g = gradient[i] * inv_n;
        if (c < num_features_) g += params_.l2 * lookahead[i];
        velocity[i] = kMomentum * velocity[i] - params_.learning_rate * g;
        weights_[i] += velocity[i];
      }
    }
  }
  return Status::Ok();
}

std::vector<int> LogisticRegression::Predict(const Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  std::vector<int> out(features.rows());
  std::vector<double> scores;
  for (size_t r = 0; r < features.rows(); ++r) {
    RowScores(features.Row(r), scores);
    out[r] = static_cast<int>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
  }
  return out;
}

Result<Matrix> LogisticRegression::PredictProba(
    const Matrix& features) const {
  if (!fitted()) {
    return Status::FailedPrecondition("PredictProba before Fit");
  }
  Matrix probs(features.rows(), static_cast<size_t>(num_classes_));
  std::vector<double> scores;
  for (size_t r = 0; r < features.rows(); ++r) {
    RowScores(features.Row(r), scores);
    const double max_z = *std::max_element(scores.begin(), scores.end());
    double sum = 0.0;
    for (size_t c = 0; c < scores.size(); ++c) {
      probs(r, c) = std::exp(scores[c] - max_z);
      sum += probs(r, c);
    }
    for (size_t c = 0; c < scores.size(); ++c) probs(r, c) /= sum;
  }
  return probs;
}

std::unique_ptr<Classifier> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(params_);
}

}  // namespace trajkit::ml
