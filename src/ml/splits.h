#ifndef TRAJKIT_ML_SPLITS_H_
#define TRAJKIT_ML_SPLITS_H_

#include <span>
#include <vector>

#include "common/rng.h"

namespace trajkit::ml {

/// One cross-validation fold: row indices of the training and test sets.
struct FoldSplit {
  std::vector<size_t> train_indices;
  std::vector<size_t> test_indices;
};

/// Random ("conventional") k-fold: samples are shuffled and dealt into k
/// nearly equal folds. This is the scheme the paper calls random
/// cross-validation and shows to be optimistic.
std::vector<FoldSplit> KFold(size_t num_samples, int k, Rng& rng);

/// Stratified k-fold: per-class shuffling keeps each fold's class mix close
/// to the global mix. `labels` supplies the class of each sample.
std::vector<FoldSplit> StratifiedKFold(std::span<const int> labels, int k,
                                       Rng& rng);

/// User-oriented ("group") k-fold: each distinct group id (user) appears in
/// exactly one test fold, so train and test users are disjoint — the
/// evaluation scheme of Endo et al. [4] and §4.4. Groups are shuffled, then
/// dealt to folds greedily by size to balance sample counts.
/// Precondition: at least k distinct groups.
std::vector<FoldSplit> GroupKFold(std::span<const int> groups, int k,
                                  Rng& rng);

/// Single random train/test split with the given test fraction.
FoldSplit TrainTestSplit(size_t num_samples, double test_fraction, Rng& rng);

/// Single split with disjoint users: whole groups are assigned to test until
/// the test set holds approximately `test_fraction` of the samples (the
/// paper's §4.3 "approximately divided 80% of the data as training").
FoldSplit GroupShuffleSplit(std::span<const int> groups, double test_fraction,
                            Rng& rng);

/// Temporal holdout: train on the chronologically earliest samples, test
/// on the latest `test_fraction` — the deployment-faithful "holdout"
/// strategy the paper's §5 names as future work. Ties in `times` are
/// broken by index. Precondition: at least 2 samples.
FoldSplit TemporalHoldout(std::span<const double> times,
                          double test_fraction);

/// Forward-chaining temporal k-fold (sklearn's TimeSeriesSplit): samples
/// are sorted by time and cut into k+1 contiguous blocks; fold i trains on
/// blocks [0, i] and tests on block i+1, so training data always precedes
/// test data. Precondition: at least k+1 samples.
std::vector<FoldSplit> TemporalKFold(std::span<const double> times, int k);

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_SPLITS_H_
