#ifndef TRAJKIT_ML_DECISION_TREE_H_
#define TRAJKIT_ML_DECISION_TREE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace trajkit::ml {

/// Hyper-parameters of the CART classification tree.
struct DecisionTreeParams {
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Maximum depth; <= 0 means unbounded.
  int max_depth = 0;
  /// A node with fewer samples becomes a leaf.
  int min_samples_split = 2;
  /// Both children of an accepted split must hold at least this many
  /// samples.
  int min_samples_leaf = 1;
  /// Number of features examined per node; <= 0 means all. Random forests
  /// pass sqrt(num_features).
  int max_features = 0;
  /// Minimum weighted impurity decrease for a split to be accepted.
  double min_impurity_decrease = 1e-12;
  /// Reweight samples inversely to their class frequency (sklearn's
  /// class_weight="balanced"); useful on GeoLife's imbalanced mode mix.
  bool balanced_class_weights = false;
  uint64_t seed = 42;
};

/// CART decision tree with gini/entropy splitting, optional per-node random
/// feature subsetting (for forests) and sample weights (for AdaBoost).
/// An embedded feature-selection method in the paper's taxonomy: fitted
/// trees expose impurity-decrease feature importances.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeParams params = {});

  Status Fit(const Dataset& train) override;

  /// Weighted fit; `weights` must be per-sample, non-negative, with at
  /// least one positive entry. Empty span = uniform.
  Status FitWeighted(const Dataset& train, std::span<const double> weights);

  std::vector<int> Predict(const Matrix& features) const override;
  Result<Matrix> PredictProba(const Matrix& features) const override;
  std::string name() const override { return "decision_tree"; }
  std::unique_ptr<Classifier> Clone() const override;

  /// Impurity-decrease importances over training columns; sums to 1 (or is
  /// all zeros for a single-leaf tree). Precondition: fitted.
  const std::vector<double>& FeatureImportances() const;

  /// Number of nodes (internal + leaves). Precondition: fitted.
  size_t NodeCount() const { return nodes_.size(); }
  /// Tree depth (root-only tree has depth 0). Precondition: fitted.
  int Depth() const { return depth_; }
  int num_classes() const { return num_classes_; }
  bool fitted() const { return !nodes_.empty(); }

  /// Leaf class distribution for one sample (used by RandomForest's
  /// probability averaging). Precondition: fitted.
  std::span<const double> LeafDistribution(std::span<const double> row) const;

  /// Appends a line-based text serialization of the fitted tree to `out`
  /// (see model_io.h for the file-level helpers). Precondition: fitted.
  void AppendSerialized(std::string& out) const;

  /// Parses one tree block from `lines` starting at `cursor` (advanced
  /// past the block). The inverse of AppendSerialized.
  static Result<DecisionTree> DeserializeBlock(
      const std::vector<std::string_view>& lines, size_t& cursor);

  struct Node {
    // Internal node: feature >= 0, children set. Leaf: feature == -1.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    // Index into leaf_distributions_ for leaves.
    int distribution = -1;
  };

  /// Read access to the fitted structure for compilers of alternative
  /// inference forms (ml/flat_forest.h lowers these into an SoA pool).
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::vector<double>>& leaf_distributions() const {
    return leaf_distributions_;
  }

 private:

  /// Per-fit scratch buffers shared by every BuildNode call: a node fully
  /// re-fills each buffer it uses before recursing, so reusing them across
  /// nodes (and letting children overwrite them) is safe and removes the
  /// per-node allocation churn.
  struct BuildScratch {
    struct Sample {
      double value;
      double weight;
      int label;
    };
    std::vector<Sample> samples;
    std::vector<double> counts;
    std::vector<double> left_counts;
    std::vector<int> candidates;
  };

  int BuildNode(const Matrix& x, const std::vector<int>& y,
                const std::vector<double>& w, std::vector<size_t>& indices,
                size_t begin, size_t end, int depth, Rng& rng,
                BuildScratch& scratch);
  size_t FindLeaf(std::span<const double> row) const;

  DecisionTreeParams params_;
  int num_classes_ = 0;
  int depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::vector<double>> leaf_distributions_;
  std::vector<double> importances_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_DECISION_TREE_H_
