#ifndef TRAJKIT_ML_DATASET_IO_H_
#define TRAJKIT_ML_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "ml/dataset.h"

namespace trajkit::ml {

/// CSV persistence for Datasets, for interop with pandas/sklearn-side
/// analysis. Layout: one header row with the feature names followed by
/// "__label" and "__group" columns; one row per sample.

/// Serializes to CSV text.
std::string DatasetToCsv(const Dataset& dataset);

/// Writes a dataset to a CSV file (creating parent directories).
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Parses a dataset from CSV text. Class names are synthesized as
/// "class<k>" for k in [0, max label] unless `class_names` is supplied.
Result<Dataset> DatasetFromCsv(std::string_view text,
                               std::vector<std::string> class_names = {});

/// Reads a dataset from a CSV file.
Result<Dataset> LoadDatasetCsv(const std::string& path,
                               std::vector<std::string> class_names = {});

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_DATASET_IO_H_
