#include "ml/factory.h"

#include <algorithm>
#include <cmath>

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace trajkit::ml {

namespace {

int Scaled(int base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

const std::vector<std::string>& AllClassifierNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{"decision_tree", "random_forest",
                                   "xgboost",       "adaboost",
                                   "svm",           "neural_network"};
  return *kNames;
}

const std::vector<std::string>& ExtendedClassifierNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>(AllClassifierNames());
    names->push_back("knn");
    names->push_back("logistic_regression");
    return names;
  }();
  return *kNames;
}

Result<std::unique_ptr<Classifier>> MakeClassifier(
    std::string_view name, const FactoryOptions& options) {
  const double scale = options.scale > 0.0 ? options.scale : 1.0;
  if (name == "decision_tree") {
    DecisionTreeParams params;
    params.seed = options.seed;
    return std::unique_ptr<Classifier>(new DecisionTree(params));
  }
  if (name == "random_forest") {
    RandomForestParams params;
    params.n_estimators = Scaled(50, scale);
    params.seed = options.seed;
    return std::unique_ptr<Classifier>(new RandomForest(params));
  }
  if (name == "xgboost") {
    GradientBoostingParams params;
    params.n_rounds = Scaled(50, scale);
    params.seed = options.seed;
    return std::unique_ptr<Classifier>(new GradientBoosting(params));
  }
  if (name == "adaboost") {
    AdaBoostParams params;
    params.n_estimators = Scaled(50, scale);
    params.seed = options.seed;
    return std::unique_ptr<Classifier>(new AdaBoost(params));
  }
  if (name == "svm") {
    LinearSvmParams params;
    params.epochs = Scaled(30, scale);
    params.seed = options.seed;
    return std::unique_ptr<Classifier>(new LinearSvm(params));
  }
  if (name == "knn") {
    KnnParams params;
    params.k = 5;
    return std::unique_ptr<Classifier>(new Knn(params));
  }
  if (name == "logistic_regression") {
    LogisticRegressionParams params;
    params.epochs = Scaled(200, scale);
    params.seed = options.seed;
    return std::unique_ptr<Classifier>(new LogisticRegression(params));
  }
  if (name == "neural_network") {
    MlpParams params;
    params.epochs = Scaled(100, scale);
    params.seed = options.seed;
    return std::unique_ptr<Classifier>(new Mlp(params));
  }
  return Status::InvalidArgument("unknown classifier: '" + std::string(name) +
                                 "'");
}

}  // namespace trajkit::ml
