#include "ml/dataset.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace trajkit::ml {

Result<Dataset> Dataset::Create(Matrix features, std::vector<int> labels,
                                std::vector<int> groups,
                                std::vector<std::string> feature_names,
                                std::vector<std::string> class_names) {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument(
        StrPrintf("feature rows (%zu) != labels (%zu)", features.rows(),
                  labels.size()));
  }
  if (!groups.empty() && groups.size() != labels.size()) {
    return Status::InvalidArgument(
        StrPrintf("groups (%zu) != labels (%zu)", groups.size(),
                  labels.size()));
  }
  if (!feature_names.empty() && feature_names.size() != features.cols()) {
    return Status::InvalidArgument(
        StrPrintf("feature names (%zu) != feature cols (%zu)",
                  feature_names.size(), features.cols()));
  }
  const int num_classes = static_cast<int>(class_names.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes) {
      return Status::InvalidArgument(
          StrPrintf("label %d at row %zu outside [0, %d)", labels[i], i,
                    num_classes));
    }
  }
  Dataset ds;
  ds.features_ = std::move(features);
  ds.labels_ = std::move(labels);
  ds.groups_ = groups.empty()
                   ? std::vector<int>(ds.labels_.size(), 0)
                   : std::move(groups);
  if (feature_names.empty()) {
    feature_names.reserve(ds.features_.cols());
    for (size_t c = 0; c < ds.features_.cols(); ++c) {
      feature_names.push_back(StrPrintf("f%zu", c));
    }
  }
  ds.feature_names_ = std::move(feature_names);
  ds.class_names_ = std::move(class_names);
  return ds;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(static_cast<size_t>(num_classes()), 0);
  for (int y : labels_) ++counts[static_cast<size_t>(y)];
  return counts;
}

std::vector<int> Dataset::DistinctGroups() const {
  std::set<int> set(groups_.begin(), groups_.end());
  return std::vector<int>(set.begin(), set.end());
}

Status Dataset::SetTimes(std::vector<double> times) {
  if (times.size() != labels_.size()) {
    return Status::InvalidArgument("times size != sample count");
  }
  times_ = std::move(times);
  return Status::Ok();
}

Dataset Dataset::SelectSamples(std::span<const size_t> row_indices) const {
  Dataset out;
  out.features_ = features_.SelectRows(row_indices);
  out.labels_.reserve(row_indices.size());
  out.groups_.reserve(row_indices.size());
  for (size_t r : row_indices) {
    TRAJKIT_CHECK_LT(r, labels_.size());
    out.labels_.push_back(labels_[r]);
    out.groups_.push_back(groups_[r]);
    if (!times_.empty()) out.times_.push_back(times_[r]);
  }
  out.feature_names_ = feature_names_;
  out.class_names_ = class_names_;
  return out;
}

Dataset Dataset::SelectFeatures(std::span<const int> column_indices) const {
  Dataset out;
  out.features_ = features_.SelectColumns(column_indices);
  out.labels_ = labels_;
  out.groups_ = groups_;
  out.times_ = times_;
  out.feature_names_.reserve(column_indices.size());
  for (int c : column_indices) {
    out.feature_names_.push_back(feature_names_[static_cast<size_t>(c)]);
  }
  out.class_names_ = class_names_;
  return out;
}

}  // namespace trajkit::ml
