#include "ml/stats_tests.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace trajkit::ml {

double StandardNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

namespace {

// Exact null CDF of W+ for n untied ranks via the subset-sum recurrence:
// counts[w] = number of subsets of {1..n} with rank sum w.
// P(W+ <= w) and P(W+ >= w) follow by summation. n <= 25 keeps the table
// small (n(n+1)/2 + 1 <= 326 entries) and the counts within double range.
void ExactTailProbabilities(int n, double w_plus, double* p_le, double* p_ge) {
  const int max_sum = n * (n + 1) / 2;
  std::vector<double> counts(static_cast<size_t>(max_sum) + 1, 0.0);
  counts[0] = 1.0;
  for (int rank = 1; rank <= n; ++rank) {
    for (int s = max_sum; s >= rank; --s) {
      counts[static_cast<size_t>(s)] +=
          counts[static_cast<size_t>(s - rank)];
    }
  }
  const double total = std::pow(2.0, static_cast<double>(n));
  double le = 0.0;
  double ge = 0.0;
  for (int s = 0; s <= max_sum; ++s) {
    if (static_cast<double>(s) <= w_plus + 1e-9) {
      le += counts[static_cast<size_t>(s)];
    }
    if (static_cast<double>(s) >= w_plus - 1e-9) {
      ge += counts[static_cast<size_t>(s)];
    }
  }
  *p_le = le / total;
  *p_ge = ge / total;
}

Result<WilcoxonResult> WilcoxonFromDifferences(std::vector<double> diffs,
                                               Alternative alternative) {
  // Drop zero differences.
  diffs.erase(std::remove_if(diffs.begin(), diffs.end(),
                             [](double d) { return d == 0.0; }),
              diffs.end());
  const int n = static_cast<int>(diffs.size());
  if (n < 1) {
    return Status::InvalidArgument(
        "Wilcoxon test needs at least one non-zero difference");
  }

  // Rank |d| with average ranks for ties.
  struct Entry {
    double abs_d;
    bool positive;
  };
  std::vector<Entry> entries;
  entries.reserve(diffs.size());
  for (double d : diffs) entries.push_back({std::fabs(d), d > 0.0});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.abs_d < b.abs_d; });

  double w_plus = 0.0;
  bool has_ties = false;
  double tie_correction = 0.0;  // Σ (t³ - t) over tie groups.
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    while (j < entries.size() && entries[j].abs_d == entries[i].abs_d) ++j;
    const double t = static_cast<double>(j - i);
    if (j - i > 1) {
      has_ties = true;
      tie_correction += t * t * t - t;
    }
    // Average rank of positions [i, j): ranks are 1-based.
    const double avg_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t p = i; p < j; ++p) {
      if (entries[p].positive) w_plus += avg_rank;
    }
    i = j;
  }

  WilcoxonResult result;
  result.statistic = w_plus;
  result.n_used = n;

  if (!has_ties && n <= 25) {
    result.exact = true;
    double p_le = 0.0;
    double p_ge = 0.0;
    ExactTailProbabilities(n, w_plus, &p_le, &p_ge);
    switch (alternative) {
      case Alternative::kTwoSided:
        result.p_value = std::min(1.0, 2.0 * std::min(p_le, p_ge));
        break;
      case Alternative::kGreater:
        result.p_value = p_ge;
        break;
      case Alternative::kLess:
        result.p_value = p_le;
        break;
    }
    return result;
  }

  // Normal approximation with tie correction and continuity correction.
  const double dn = static_cast<double>(n);
  const double mean = dn * (dn + 1.0) / 4.0;
  double variance =
      dn * (dn + 1.0) * (2.0 * dn + 1.0) / 24.0 - tie_correction / 48.0;
  if (variance <= 0.0) {
    return Status::InvalidArgument(
        "Wilcoxon variance is zero (all differences tied)");
  }
  const double sd = std::sqrt(variance);
  auto z_with_cc = [&](double shift) {
    return (w_plus - mean + shift) / sd;
  };
  switch (alternative) {
    case Alternative::kTwoSided: {
      const double d = w_plus - mean;
      const double z =
          (std::fabs(d) - 0.5) / sd;  // Continuity-corrected |z|.
      result.p_value = std::min(1.0, 2.0 * (1.0 - StandardNormalCdf(z)));
      break;
    }
    case Alternative::kGreater:
      result.p_value = 1.0 - StandardNormalCdf(z_with_cc(-0.5));
      break;
    case Alternative::kLess:
      result.p_value = StandardNormalCdf(z_with_cc(0.5));
      break;
  }
  return result;
}

}  // namespace

Result<WilcoxonResult> WilcoxonSignedRank(std::span<const double> x,
                                          std::span<const double> y,
                                          Alternative alternative) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("paired samples must have equal length");
  }
  if (x.empty()) {
    return Status::InvalidArgument("empty samples");
  }
  std::vector<double> diffs(x.size());
  for (size_t i = 0; i < x.size(); ++i) diffs[i] = x[i] - y[i];
  return WilcoxonFromDifferences(std::move(diffs), alternative);
}

Result<WilcoxonResult> WilcoxonSignedRankOneSample(std::span<const double> x,
                                                   double mu,
                                                   Alternative alternative) {
  if (x.empty()) {
    return Status::InvalidArgument("empty sample");
  }
  std::vector<double> diffs(x.size());
  for (size_t i = 0; i < x.size(); ++i) diffs[i] = x[i] - mu;
  return WilcoxonFromDifferences(std::move(diffs), alternative);
}

}  // namespace trajkit::ml
