#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace trajkit::ml {

LinearSvm::LinearSvm(LinearSvmParams params) : params_(params) {}

Status LinearSvm::Fit(const Dataset& train) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("cannot fit SVM on an empty dataset");
  }
  if (params_.lambda <= 0.0 || params_.epochs <= 0) {
    return Status::InvalidArgument("lambda and epochs must be positive");
  }
  num_classes_ = train.num_classes();
  num_features_ = train.num_features();
  const size_t n = train.num_samples();
  const size_t d = num_features_ + 1;  // +1 bias.
  weights_.assign(static_cast<size_t>(num_classes_) * d, 0.0);

  // Internal scaling: fit min-max on the training matrix.
  scale_min_.clear();
  scale_inv_range_.clear();
  if (params_.internal_scaling) {
    scale_min_.assign(num_features_, 0.0);
    scale_inv_range_.assign(num_features_, 1.0);
    for (size_t c = 0; c < num_features_; ++c) {
      double lo = train.features()(0, c);
      double hi = lo;
      for (size_t r = 1; r < n; ++r) {
        lo = std::min(lo, train.features()(r, c));
        hi = std::max(hi, train.features()(r, c));
      }
      scale_min_[c] = lo;
      scale_inv_range_[c] = (hi > lo) ? 1.0 / (hi - lo) : 0.0;
    }
  }
  auto scaled = [&](size_t r, size_t c) {
    const double v = train.features()(r, c);
    if (scale_min_.empty()) return v;
    return (v - scale_min_[c]) * scale_inv_range_[c];
  };

  Rng rng(params_.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  // Pegasos per one-vs-rest problem, with tail averaging: the returned
  // weight vector is the average of the iterates over the second half of
  // training, which removes most of the stochastic-subgradient jitter
  // (Rakhlin et al.'s alpha-suffix averaging).
  std::vector<double> averaged(d, 0.0);
  for (int cls = 0; cls < num_classes_; ++cls) {
    double* w = &weights_[static_cast<size_t>(cls) * d];
    std::fill(averaged.begin(), averaged.end(), 0.0);
    long averaged_steps = 0;
    long t = 0;
    const int tail_start_epoch = params_.epochs / 2;
    for (int epoch = 0; epoch < params_.epochs; ++epoch) {
      rng.Shuffle(order);
      for (size_t idx : order) {
        ++t;
        // 1/(lambda (t0 + t)) schedule: the t0 offset bounds the first
        // steps at eta_0 = 1 (raw Pegasos starts at 1/lambda, which is
        // enormous for small lambda and destabilizes the bias).
        const double t0 = 1.0 / params_.lambda;
        const double eta =
            1.0 / (params_.lambda * (t0 + static_cast<double>(t)));
        const double y = train.labels()[idx] == cls ? 1.0 : -1.0;
        double margin = w[num_features_];  // Bias.
        for (size_t c = 0; c < num_features_; ++c) {
          margin += w[c] * scaled(idx, c);
        }
        // L2 shrink on the weight part (not the bias).
        const double shrink = 1.0 - eta * params_.lambda;
        for (size_t c = 0; c < num_features_; ++c) w[c] *= shrink;
        if (y * margin < 1.0) {
          for (size_t c = 0; c < num_features_; ++c) {
            w[c] += eta * y * scaled(idx, c);
          }
          w[num_features_] += eta * y;
        }
        if (epoch >= tail_start_epoch) {
          for (size_t c = 0; c < d; ++c) averaged[c] += w[c];
          ++averaged_steps;
        }
      }
    }
    if (averaged_steps > 0) {
      for (size_t c = 0; c < d; ++c) {
        w[c] = averaged[c] / static_cast<double>(averaged_steps);
      }
    }
  }
  return Status::Ok();
}

std::vector<double> LinearSvm::DecisionFunction(
    std::span<const double> row) const {
  TRAJKIT_CHECK(fitted());
  TRAJKIT_CHECK_EQ(row.size(), num_features_);
  const size_t d = num_features_ + 1;
  std::vector<double> margins(static_cast<size_t>(num_classes_));
  for (int cls = 0; cls < num_classes_; ++cls) {
    const double* w = &weights_[static_cast<size_t>(cls) * d];
    double m = w[num_features_];
    for (size_t c = 0; c < num_features_; ++c) {
      double v = row[c];
      if (!scale_min_.empty()) v = (v - scale_min_[c]) * scale_inv_range_[c];
      m += w[c] * v;
    }
    margins[static_cast<size_t>(cls)] = m;
  }
  return margins;
}

std::vector<int> LinearSvm::Predict(const Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::vector<double> margins = DecisionFunction(features.Row(r));
    out[r] = static_cast<int>(
        std::max_element(margins.begin(), margins.end()) - margins.begin());
  }
  return out;
}

std::unique_ptr<Classifier> LinearSvm::Clone() const {
  return std::make_unique<LinearSvm>(params_);
}

}  // namespace trajkit::ml
