#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace trajkit::ml {

Mlp::Mlp(MlpParams params) : params_(std::move(params)) {}

std::vector<double> Mlp::ScaleRow(std::span<const double> row) const {
  std::vector<double> out(row.begin(), row.end());
  if (!scale_min_.empty()) {
    for (size_t c = 0; c < out.size(); ++c) {
      out[c] = (out[c] - scale_min_[c]) * scale_inv_range_[c];
    }
  }
  return out;
}

void Mlp::Forward(std::span<const double> input,
                  std::vector<std::vector<double>>& activations) const {
  activations.resize(layers_.size());
  std::span<const double> current = input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double>& act = activations[l];
    act.assign(static_cast<size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double z = layer.biases[static_cast<size_t>(o)];
      const double* w =
          &layer.weights[static_cast<size_t>(o) *
                         static_cast<size_t>(layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        z += w[i] * current[static_cast<size_t>(i)];
      }
      act[static_cast<size_t>(o)] = z;
    }
    if (l + 1 < layers_.size()) {
      for (double& v : act) v = std::max(v, 0.0);  // ReLU.
    } else {
      // Softmax.
      const double max_z = *std::max_element(act.begin(), act.end());
      double sum = 0.0;
      for (double& v : act) {
        v = std::exp(v - max_z);
        sum += v;
      }
      for (double& v : act) v /= sum;
    }
    current = act;
  }
}

Status Mlp::Fit(const Dataset& train) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("cannot fit MLP on an empty dataset");
  }
  if (params_.epochs <= 0 || params_.batch_size <= 0 ||
      params_.learning_rate <= 0.0) {
    return Status::InvalidArgument(
        "epochs, batch_size, learning_rate must be positive");
  }
  for (int h : params_.hidden_sizes) {
    if (h <= 0) return Status::InvalidArgument("hidden sizes must be > 0");
  }
  num_classes_ = train.num_classes();
  num_features_ = train.num_features();
  const size_t n = train.num_samples();

  scale_min_.clear();
  scale_inv_range_.clear();
  if (params_.internal_scaling) {
    scale_min_.assign(num_features_, 0.0);
    scale_inv_range_.assign(num_features_, 1.0);
    for (size_t c = 0; c < num_features_; ++c) {
      double lo = train.features()(0, c);
      double hi = lo;
      for (size_t r = 1; r < n; ++r) {
        lo = std::min(lo, train.features()(r, c));
        hi = std::max(hi, train.features()(r, c));
      }
      scale_min_[c] = lo;
      scale_inv_range_[c] = (hi > lo) ? 1.0 / (hi - lo) : 0.0;
    }
  }

  // Layer layout: input → hidden... → output.
  Rng rng(params_.seed);
  layers_.clear();
  int prev = static_cast<int>(num_features_);
  std::vector<int> widths = params_.hidden_sizes;
  widths.push_back(num_classes_);
  for (int width : widths) {
    Layer layer;
    layer.in = prev;
    layer.out = width;
    layer.weights.resize(static_cast<size_t>(prev) *
                         static_cast<size_t>(width));
    layer.biases.assign(static_cast<size_t>(width), 0.0);
    // He initialization for ReLU layers.
    const double scale = std::sqrt(2.0 / static_cast<double>(prev));
    for (double& w : layer.weights) w = rng.Gaussian(0.0, scale);
    layers_.push_back(std::move(layer));
    prev = width;
  }

  // Adam state per layer.
  struct AdamState {
    std::vector<double> mw, vw, mb, vb;
  };
  std::vector<AdamState> adam(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    adam[l].mw.assign(layers_[l].weights.size(), 0.0);
    adam[l].vw.assign(layers_[l].weights.size(), 0.0);
    adam[l].mb.assign(layers_[l].biases.size(), 0.0);
    adam[l].vb.assign(layers_[l].biases.size(), 0.0);
  }
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  long step = 0;

  // Gradient accumulators (same shapes as layers).
  std::vector<std::vector<double>> grad_w(layers_.size());
  std::vector<std::vector<double>> grad_b(layers_.size());
  std::vector<std::vector<double>> activations;
  std::vector<std::vector<double>> deltas(layers_.size());

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(params_.batch_size)) {
      const size_t stop =
          std::min(n, start + static_cast<size_t>(params_.batch_size));
      const double batch = static_cast<double>(stop - start);
      for (size_t l = 0; l < layers_.size(); ++l) {
        grad_w[l].assign(layers_[l].weights.size(), 0.0);
        grad_b[l].assign(layers_[l].biases.size(), 0.0);
      }

      for (size_t bi = start; bi < stop; ++bi) {
        const size_t row = order[bi];
        const std::vector<double> input =
            ScaleRow(train.features().Row(row));
        Forward(input, activations);

        // Output delta: softmax + cross-entropy → p - y.
        const size_t last = layers_.size() - 1;
        deltas[last] = activations[last];
        deltas[last][static_cast<size_t>(train.labels()[row])] -= 1.0;

        // Backprop through hidden layers.
        for (size_t l = last; l-- > 0;) {
          const Layer& next = layers_[l + 1];
          deltas[l].assign(static_cast<size_t>(next.in), 0.0);
          for (int o = 0; o < next.out; ++o) {
            const double d = deltas[l + 1][static_cast<size_t>(o)];
            const double* w =
                &next.weights[static_cast<size_t>(o) *
                              static_cast<size_t>(next.in)];
            for (int i = 0; i < next.in; ++i) {
              deltas[l][static_cast<size_t>(i)] += w[i] * d;
            }
          }
          // ReLU derivative.
          for (size_t i = 0; i < deltas[l].size(); ++i) {
            if (activations[l][i] <= 0.0) deltas[l][i] = 0.0;
          }
        }

        // Accumulate gradients.
        for (size_t l = 0; l < layers_.size(); ++l) {
          const std::vector<double>& in_act =
              (l == 0) ? input : activations[l - 1];
          const Layer& layer = layers_[l];
          for (int o = 0; o < layer.out; ++o) {
            const double d = deltas[l][static_cast<size_t>(o)];
            grad_b[l][static_cast<size_t>(o)] += d;
            double* gw = &grad_w[l][static_cast<size_t>(o) *
                                    static_cast<size_t>(layer.in)];
            for (int i = 0; i < layer.in; ++i) {
              gw[i] += d * in_act[static_cast<size_t>(i)];
            }
          }
        }
      }

      // Adam update.
      ++step;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
      for (size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (size_t i = 0; i < layer.weights.size(); ++i) {
          double g = grad_w[l][i] / batch + params_.l2 * layer.weights[i];
          adam[l].mw[i] = kBeta1 * adam[l].mw[i] + (1.0 - kBeta1) * g;
          adam[l].vw[i] = kBeta2 * adam[l].vw[i] + (1.0 - kBeta2) * g * g;
          layer.weights[i] -= params_.learning_rate *
                              (adam[l].mw[i] / bc1) /
                              (std::sqrt(adam[l].vw[i] / bc2) + kEps);
        }
        for (size_t i = 0; i < layer.biases.size(); ++i) {
          const double g = grad_b[l][i] / batch;
          adam[l].mb[i] = kBeta1 * adam[l].mb[i] + (1.0 - kBeta1) * g;
          adam[l].vb[i] = kBeta2 * adam[l].vb[i] + (1.0 - kBeta2) * g * g;
          layer.biases[i] -= params_.learning_rate *
                             (adam[l].mb[i] / bc1) /
                             (std::sqrt(adam[l].vb[i] / bc2) + kEps);
        }
      }
    }
  }
  return Status::Ok();
}

std::vector<int> Mlp::Predict(const Matrix& features) const {
  TRAJKIT_CHECK(fitted());
  std::vector<int> out(features.rows());
  std::vector<std::vector<double>> activations;
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::vector<double> input = ScaleRow(features.Row(r));
    Forward(input, activations);
    const std::vector<double>& probs = activations.back();
    out[r] = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }
  return out;
}

Result<Matrix> Mlp::PredictProba(const Matrix& features) const {
  if (!fitted()) {
    return Status::FailedPrecondition("PredictProba before Fit");
  }
  Matrix probs(features.rows(), static_cast<size_t>(num_classes_));
  std::vector<std::vector<double>> activations;
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::vector<double> input = ScaleRow(features.Row(r));
    Forward(input, activations);
    const std::vector<double>& p = activations.back();
    for (size_t c = 0; c < p.size(); ++c) probs(r, c) = p[c];
  }
  return probs;
}

std::unique_ptr<Classifier> Mlp::Clone() const {
  return std::make_unique<Mlp>(params_);
}

}  // namespace trajkit::ml
