#ifndef TRAJKIT_ML_FILTER_SELECTION_H_
#define TRAJKIT_ML_FILTER_SELECTION_H_

#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace trajkit::ml {

/// One feature's score under a filter criterion.
struct FeatureScore {
  int feature_index = -1;
  double score = 0.0;
};

/// Filter (classifier-independent) feature-selection criteria — the third
/// branch of the paper's §2 taxonomy next to the wrapper (§4.2 forward
/// search) and embedded (random-forest importance) methods implemented in
/// feature_selection.h / random_forest.h. All three return per-feature
/// scores sorted descending (ties broken by feature index).

/// Mutual information I(X_j; Y) after quantile-binning each feature into
/// `bins` equal-frequency bins (Y uses its class labels directly). Handles
/// non-linear dependence; the "information theoretical" family of [22].
/// Returns InvalidArgument for empty datasets or bins < 2.
Result<std::vector<FeatureScore>> MutualInformationScores(
    const Dataset& dataset, int bins = 10);

/// Chi-square statistic of the binned feature against the class label —
/// the Chi2 method of Liu & Setiono [18] that the paper's §2 cites (and
/// notes needs "some discretization strategies": the same quantile
/// binning is used here).
Result<std::vector<FeatureScore>> ChiSquareScores(const Dataset& dataset,
                                                  int bins = 10);

/// One-way ANOVA F statistic per feature (sklearn's f_classif): the
/// statistical filter family; no discretization required.
Result<std::vector<FeatureScore>> AnovaFScores(const Dataset& dataset);

/// Feature indices of `scores` in descending score order — feed to
/// IncrementalRankingSelection or Dataset::SelectFeatures.
std::vector<int> RankingFromScores(const std::vector<FeatureScore>& scores);

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_FILTER_SELECTION_H_
