#include "ml/metrics.h"

#include "common/check.h"
#include "common/strings.h"

namespace trajkit::ml {

ConfusionMatrix::ConfusionMatrix(std::span<const int> y_true,
                                 std::span<const int> y_pred,
                                 int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes) *
                  static_cast<size_t>(num_classes),
              0) {
  TRAJKIT_CHECK_EQ(y_true.size(), y_pred.size());
  TRAJKIT_CHECK(!y_true.empty());
  TRAJKIT_CHECK_GT(num_classes, 0);
  for (size_t i = 0; i < y_true.size(); ++i) {
    TRAJKIT_CHECK_GE(y_true[i], 0);
    TRAJKIT_CHECK_LT(y_true[i], num_classes);
    TRAJKIT_CHECK_GE(y_pred[i], 0);
    TRAJKIT_CHECK_LT(y_pred[i], num_classes);
    ++counts_[static_cast<size_t>(y_true[i]) *
                  static_cast<size_t>(num_classes) +
              static_cast<size_t>(y_pred[i])];
    ++total_;
  }
}

size_t ConfusionMatrix::Count(int true_class, int predicted_class) const {
  TRAJKIT_CHECK_GE(true_class, 0);
  TRAJKIT_CHECK_LT(true_class, num_classes_);
  TRAJKIT_CHECK_GE(predicted_class, 0);
  TRAJKIT_CHECK_LT(predicted_class, num_classes_);
  return counts_[static_cast<size_t>(true_class) *
                     static_cast<size_t>(num_classes_) +
                 static_cast<size_t>(predicted_class)];
}

size_t ConfusionMatrix::TruePositives(int c) const { return Count(c, c); }

size_t ConfusionMatrix::FalsePositives(int c) const {
  size_t fp = 0;
  for (int t = 0; t < num_classes_; ++t) {
    if (t != c) fp += Count(t, c);
  }
  return fp;
}

size_t ConfusionMatrix::FalseNegatives(int c) const {
  size_t fn = 0;
  for (int p = 0; p < num_classes_; ++p) {
    if (p != c) fn += Count(c, p);
  }
  return fn;
}

size_t ConfusionMatrix::Support(int c) const {
  size_t s = 0;
  for (int p = 0; p < num_classes_; ++p) s += Count(c, p);
  return s;
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  std::string out = "true\\pred";
  for (int c = 0; c < num_classes_; ++c) {
    out += StrPrintf("%12s",
                     c < static_cast<int>(class_names.size())
                         ? class_names[static_cast<size_t>(c)].c_str()
                         : StrPrintf("c%d", c).c_str());
  }
  out += '\n';
  for (int t = 0; t < num_classes_; ++t) {
    out += StrPrintf("%-9s",
                     t < static_cast<int>(class_names.size())
                         ? class_names[static_cast<size_t>(t)].c_str()
                         : StrPrintf("c%d", t).c_str());
    for (int p = 0; p < num_classes_; ++p) {
      out += StrPrintf("%12zu", Count(t, p));
    }
    out += '\n';
  }
  return out;
}

double Accuracy(std::span<const int> y_true, std::span<const int> y_pred) {
  TRAJKIT_CHECK_EQ(y_true.size(), y_pred.size());
  TRAJKIT_CHECK(!y_true.empty());
  size_t hits = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

ClassificationReport Evaluate(std::span<const int> y_true,
                              std::span<const int> y_pred, int num_classes) {
  const ConfusionMatrix cm(y_true, y_pred, num_classes);
  ClassificationReport rep;
  const size_t k = static_cast<size_t>(num_classes);
  rep.precision.assign(k, 0.0);
  rep.recall.assign(k, 0.0);
  rep.f1.assign(k, 0.0);
  rep.support.assign(k, 0);

  size_t correct = 0;
  for (int c = 0; c < num_classes; ++c) {
    const size_t tp = cm.TruePositives(c);
    const size_t fp = cm.FalsePositives(c);
    const size_t fn = cm.FalseNegatives(c);
    correct += tp;
    const size_t ci = static_cast<size_t>(c);
    rep.support[ci] = cm.Support(c);
    rep.precision[ci] =
        (tp + fp) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                      : 0.0;
    rep.recall[ci] =
        (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                      : 0.0;
    const double pr = rep.precision[ci] + rep.recall[ci];
    rep.f1[ci] = pr > 0.0 ? 2.0 * rep.precision[ci] * rep.recall[ci] / pr
                          : 0.0;
  }
  const double n = static_cast<double>(cm.TotalSamples());
  rep.accuracy = static_cast<double>(correct) / n;
  for (size_t c = 0; c < k; ++c) {
    rep.macro_precision += rep.precision[c] / static_cast<double>(k);
    rep.macro_recall += rep.recall[c] / static_cast<double>(k);
    rep.macro_f1 += rep.f1[c] / static_cast<double>(k);
    const double w = static_cast<double>(rep.support[c]) / n;
    rep.weighted_precision += w * rep.precision[c];
    rep.weighted_recall += w * rep.recall[c];
    rep.weighted_f1 += w * rep.f1[c];
  }
  return rep;
}

double CohensKappa(std::span<const int> y_true, std::span<const int> y_pred,
                   int num_classes) {
  const ConfusionMatrix cm(y_true, y_pred, num_classes);
  const double n = static_cast<double>(cm.TotalSamples());
  double observed = 0.0;
  double expected = 0.0;
  for (int c = 0; c < num_classes; ++c) {
    observed += static_cast<double>(cm.TruePositives(c)) / n;
    double row_total = 0.0;
    double col_total = 0.0;
    for (int other = 0; other < num_classes; ++other) {
      row_total += static_cast<double>(cm.Count(c, other));
      col_total += static_cast<double>(cm.Count(other, c));
    }
    expected += (row_total / n) * (col_total / n);
  }
  if (expected >= 1.0) return observed >= 1.0 ? 1.0 : 0.0;
  return (observed - expected) / (1.0 - expected);
}

double BalancedAccuracy(std::span<const int> y_true,
                        std::span<const int> y_pred, int num_classes) {
  const ClassificationReport report =
      Evaluate(y_true, y_pred, num_classes);
  double total = 0.0;
  int populated = 0;
  for (size_t c = 0; c < report.recall.size(); ++c) {
    if (report.support[c] == 0) continue;
    total += report.recall[c];
    ++populated;
  }
  return populated > 0 ? total / static_cast<double>(populated) : 0.0;
}

std::string ClassificationReport::ToString(
    const std::vector<std::string>& class_names) const {
  std::string out =
      StrPrintf("%-12s %9s %9s %9s %9s\n", "class", "precision", "recall",
                "f1", "support");
  for (size_t c = 0; c < precision.size(); ++c) {
    const std::string name = c < class_names.size()
                                 ? class_names[c]
                                 : StrPrintf("c%zu", c);
    out += StrPrintf("%-12s %9.4f %9.4f %9.4f %9zu\n", name.c_str(),
                     precision[c], recall[c], f1[c], support[c]);
  }
  out += StrPrintf("%-12s %9.4f\n", "accuracy", accuracy);
  out += StrPrintf("%-12s %9.4f %9.4f %9.4f\n", "macro", macro_precision,
                   macro_recall, macro_f1);
  out += StrPrintf("%-12s %9.4f %9.4f %9.4f\n", "weighted",
                   weighted_precision, weighted_recall, weighted_f1);
  return out;
}

}  // namespace trajkit::ml
