#include "ml/splits.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"

namespace trajkit::ml {

namespace {

// Converts per-fold test index sets into FoldSplits over [0, n).
std::vector<FoldSplit> FoldsFromTestSets(
    size_t num_samples, std::vector<std::vector<size_t>> test_sets) {
  std::vector<int> fold_of(num_samples, -1);
  for (size_t f = 0; f < test_sets.size(); ++f) {
    for (size_t idx : test_sets[f]) {
      fold_of[idx] = static_cast<int>(f);
    }
  }
  std::vector<FoldSplit> folds(test_sets.size());
  for (size_t f = 0; f < test_sets.size(); ++f) {
    folds[f].test_indices = std::move(test_sets[f]);
    std::sort(folds[f].test_indices.begin(), folds[f].test_indices.end());
  }
  for (size_t i = 0; i < num_samples; ++i) {
    for (size_t f = 0; f < folds.size(); ++f) {
      if (fold_of[i] != static_cast<int>(f)) {
        folds[f].train_indices.push_back(i);
      }
    }
  }
  return folds;
}

}  // namespace

std::vector<FoldSplit> KFold(size_t num_samples, int k, Rng& rng) {
  TRAJKIT_CHECK_GE(k, 2);
  TRAJKIT_CHECK_GE(num_samples, static_cast<size_t>(k));
  std::vector<size_t> order(num_samples);
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);
  std::vector<std::vector<size_t>> test_sets(static_cast<size_t>(k));
  for (size_t i = 0; i < order.size(); ++i) {
    test_sets[i % static_cast<size_t>(k)].push_back(order[i]);
  }
  return FoldsFromTestSets(num_samples, std::move(test_sets));
}

std::vector<FoldSplit> StratifiedKFold(std::span<const int> labels, int k,
                                       Rng& rng) {
  TRAJKIT_CHECK_GE(k, 2);
  TRAJKIT_CHECK_GE(labels.size(), static_cast<size_t>(k));
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  std::vector<std::vector<size_t>> test_sets(static_cast<size_t>(k));
  size_t offset = 0;  // Rotate fold assignment across classes for balance.
  for (auto& [label, indices] : by_class) {
    (void)label;
    rng.Shuffle(indices);
    for (size_t i = 0; i < indices.size(); ++i) {
      test_sets[(i + offset) % static_cast<size_t>(k)].push_back(indices[i]);
    }
    offset = (offset + indices.size()) % static_cast<size_t>(k);
  }
  return FoldsFromTestSets(labels.size(), std::move(test_sets));
}

std::vector<FoldSplit> GroupKFold(std::span<const int> groups, int k,
                                  Rng& rng) {
  TRAJKIT_CHECK_GE(k, 2);
  std::map<int, std::vector<size_t>> by_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    by_group[groups[i]].push_back(i);
  }
  TRAJKIT_CHECK_GE(by_group.size(), static_cast<size_t>(k))
      << "GroupKFold needs at least k distinct groups";

  // Shuffle group ids, then assign each (largest remaining first) to the
  // currently smallest fold so fold sizes stay balanced.
  std::vector<int> group_ids;
  group_ids.reserve(by_group.size());
  for (const auto& [gid, _] : by_group) group_ids.push_back(gid);
  rng.Shuffle(group_ids);
  std::stable_sort(group_ids.begin(), group_ids.end(),
                   [&](int a, int b) {
                     return by_group[a].size() > by_group[b].size();
                   });

  std::vector<std::vector<size_t>> test_sets(static_cast<size_t>(k));
  std::vector<size_t> fold_sizes(static_cast<size_t>(k), 0);
  for (int gid : group_ids) {
    const size_t smallest =
        static_cast<size_t>(std::min_element(fold_sizes.begin(),
                                             fold_sizes.end()) -
                            fold_sizes.begin());
    const std::vector<size_t>& members = by_group[gid];
    test_sets[smallest].insert(test_sets[smallest].end(), members.begin(),
                               members.end());
    fold_sizes[smallest] += members.size();
  }
  return FoldsFromTestSets(groups.size(), std::move(test_sets));
}

FoldSplit TrainTestSplit(size_t num_samples, double test_fraction, Rng& rng) {
  TRAJKIT_CHECK_GT(test_fraction, 0.0);
  TRAJKIT_CHECK_LT(test_fraction, 1.0);
  std::vector<size_t> order(num_samples);
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);
  const size_t test_count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num_samples) *
                             test_fraction));
  FoldSplit split;
  split.test_indices.assign(order.begin(),
                            order.begin() + static_cast<long>(test_count));
  split.train_indices.assign(order.begin() + static_cast<long>(test_count),
                             order.end());
  std::sort(split.test_indices.begin(), split.test_indices.end());
  std::sort(split.train_indices.begin(), split.train_indices.end());
  return split;
}

FoldSplit GroupShuffleSplit(std::span<const int> groups, double test_fraction,
                            Rng& rng) {
  TRAJKIT_CHECK_GT(test_fraction, 0.0);
  TRAJKIT_CHECK_LT(test_fraction, 1.0);
  std::map<int, std::vector<size_t>> by_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    by_group[groups[i]].push_back(i);
  }
  TRAJKIT_CHECK_GE(by_group.size(), 2u)
      << "GroupShuffleSplit needs at least 2 distinct groups";
  std::vector<int> group_ids;
  group_ids.reserve(by_group.size());
  for (const auto& [gid, _] : by_group) group_ids.push_back(gid);
  rng.Shuffle(group_ids);

  const size_t target =
      static_cast<size_t>(static_cast<double>(groups.size()) * test_fraction);
  FoldSplit split;
  size_t test_count = 0;
  for (int gid : group_ids) {
    const std::vector<size_t>& members = by_group[gid];
    // Always give test at least one group; stop once the target is reached.
    if (test_count == 0 || test_count + members.size() / 2 < target) {
      split.test_indices.insert(split.test_indices.end(), members.begin(),
                                members.end());
      test_count += members.size();
    } else {
      split.train_indices.insert(split.train_indices.end(), members.begin(),
                                 members.end());
    }
  }
  TRAJKIT_CHECK(!split.train_indices.empty())
      << "test fraction too large: every group landed in the test set";
  std::sort(split.test_indices.begin(), split.test_indices.end());
  std::sort(split.train_indices.begin(), split.train_indices.end());
  return split;
}

namespace {

std::vector<size_t> TimeOrder(std::span<const double> times) {
  std::vector<size_t> order(times.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return times[a] < times[b];
  });
  return order;
}

}  // namespace

FoldSplit TemporalHoldout(std::span<const double> times,
                          double test_fraction) {
  TRAJKIT_CHECK_GT(test_fraction, 0.0);
  TRAJKIT_CHECK_LT(test_fraction, 1.0);
  TRAJKIT_CHECK_GE(times.size(), 2u);
  const std::vector<size_t> order = TimeOrder(times);
  size_t test_count = static_cast<size_t>(
      static_cast<double>(times.size()) * test_fraction);
  test_count = std::max<size_t>(1, std::min(test_count, times.size() - 1));
  const size_t split_at = times.size() - test_count;
  FoldSplit split;
  split.train_indices.assign(order.begin(),
                             order.begin() + static_cast<long>(split_at));
  split.test_indices.assign(order.begin() + static_cast<long>(split_at),
                            order.end());
  std::sort(split.train_indices.begin(), split.train_indices.end());
  std::sort(split.test_indices.begin(), split.test_indices.end());
  return split;
}

std::vector<FoldSplit> TemporalKFold(std::span<const double> times, int k) {
  TRAJKIT_CHECK_GE(k, 1);
  TRAJKIT_CHECK_GE(times.size(), static_cast<size_t>(k) + 1);
  const std::vector<size_t> order = TimeOrder(times);
  const size_t n = times.size();
  const size_t blocks = static_cast<size_t>(k) + 1;
  std::vector<FoldSplit> folds;
  folds.reserve(static_cast<size_t>(k));
  for (int fold = 0; fold < k; ++fold) {
    // Block boundaries: block b covers [b*n/blocks, (b+1)*n/blocks).
    const size_t train_end =
        (static_cast<size_t>(fold) + 1) * n / blocks;
    const size_t test_end =
        (static_cast<size_t>(fold) + 2) * n / blocks;
    FoldSplit split;
    split.train_indices.assign(order.begin(),
                               order.begin() + static_cast<long>(train_end));
    split.test_indices.assign(order.begin() + static_cast<long>(train_end),
                              order.begin() + static_cast<long>(test_end));
    std::sort(split.train_indices.begin(), split.train_indices.end());
    std::sort(split.test_indices.begin(), split.test_indices.end());
    folds.push_back(std::move(split));
  }
  return folds;
}

}  // namespace trajkit::ml
