#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace trajkit::ml {

namespace {

double ImpurityFromCounts(const std::vector<double>& counts, double total,
                          SplitCriterion criterion) {
  if (total <= 0.0) return 0.0;
  if (criterion == SplitCriterion::kGini) {
    double sum_sq = 0.0;
    for (double c : counts) {
      const double p = c / total;
      sum_sq += p * p;
    }
    return 1.0 - sum_sq;
  }
  double entropy = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeParams params)
    : params_(params) {}

Status DecisionTree::Fit(const Dataset& train) {
  return FitWeighted(train, {});
}

Status DecisionTree::FitWeighted(const Dataset& train,
                                 std::span<const double> weights) {
  if (train.num_samples() == 0) {
    return Status::InvalidArgument("cannot fit a tree on an empty dataset");
  }
  if (!weights.empty() && weights.size() != train.num_samples()) {
    return Status::InvalidArgument("weights size != sample count");
  }
  std::vector<double> w(train.num_samples(), 1.0);
  if (params_.balanced_class_weights) {
    // weight(c) = n / (k * count_c); combined multiplicatively with any
    // explicit sample weights below.
    const std::vector<size_t> counts = train.ClassCounts();
    const double n = static_cast<double>(train.num_samples());
    const double k = static_cast<double>(train.num_classes());
    for (size_t i = 0; i < w.size(); ++i) {
      const size_t c = static_cast<size_t>(train.labels()[i]);
      if (counts[c] > 0) {
        w[i] = n / (k * static_cast<double>(counts[c]));
      }
    }
  }
  if (!weights.empty()) {
    double total = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] < 0.0) {
        return Status::InvalidArgument("negative sample weight");
      }
      w[i] *= weights[i];
      total += weights[i];
    }
    if (total <= 0.0) {
      return Status::InvalidArgument("all sample weights are zero");
    }
  }

  num_classes_ = train.num_classes();
  nodes_.clear();
  leaf_distributions_.clear();
  importances_.assign(train.num_features(), 0.0);
  depth_ = 0;

  std::vector<size_t> indices(train.num_samples());
  std::iota(indices.begin(), indices.end(), 0u);
  Rng rng(params_.seed);
  BuildScratch scratch;
  scratch.samples.reserve(train.num_samples());
  scratch.counts.reserve(static_cast<size_t>(num_classes_));
  scratch.left_counts.reserve(static_cast<size_t>(num_classes_));
  scratch.candidates.reserve(train.num_features());
  BuildNode(train.features(), train.labels(), w, indices, 0, indices.size(),
            0, rng, scratch);

  // Normalize importances to sum 1 (when any split happened).
  const double total_importance =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total_importance > 0.0) {
    for (double& v : importances_) v /= total_importance;
  }
  return Status::Ok();
}

int DecisionTree::BuildNode(const Matrix& x, const std::vector<int>& y,
                            const std::vector<double>& w,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, int depth, Rng& rng,
                            BuildScratch& scratch) {
  TRAJKIT_CHECK_LT(begin, end);
  depth_ = std::max(depth_, depth);
  const size_t n = end - begin;
  const size_t k = static_cast<size_t>(num_classes_);

  std::vector<double>& counts = scratch.counts;
  counts.assign(k, 0.0);
  double total_weight = 0.0;
  for (size_t i = begin; i < end; ++i) {
    counts[static_cast<size_t>(y[indices[i]])] += w[indices[i]];
    total_weight += w[indices[i]];
  }
  const double node_impurity =
      ImpurityFromCounts(counts, total_weight, params_.criterion);

  auto make_leaf = [&]() -> int {
    std::vector<double> dist(k, 0.0);
    if (total_weight > 0.0) {
      for (size_t c = 0; c < k; ++c) dist[c] = counts[c] / total_weight;
    }
    Node node;
    node.feature = -1;
    node.distribution = static_cast<int>(leaf_distributions_.size());
    leaf_distributions_.push_back(std::move(dist));
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  };

  const bool depth_exhausted =
      params_.max_depth > 0 && depth >= params_.max_depth;
  if (depth_exhausted || n < static_cast<size_t>(params_.min_samples_split) ||
      node_impurity <= 0.0 || total_weight <= 0.0) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset of max_features.
  const int num_features = static_cast<int>(x.cols());
  std::vector<int>& candidates = scratch.candidates;
  candidates.resize(static_cast<size_t>(num_features));
  std::iota(candidates.begin(), candidates.end(), 0);
  int num_candidates = num_features;
  if (params_.max_features > 0 && params_.max_features < num_features) {
    // Partial Fisher–Yates: the first max_features entries become a
    // uniform random subset.
    num_candidates = params_.max_features;
    for (int i = 0; i < num_candidates; ++i) {
      const int j = i + static_cast<int>(rng.NextBounded(
                            static_cast<uint64_t>(num_features - i)));
      std::swap(candidates[static_cast<size_t>(i)],
                candidates[static_cast<size_t>(j)]);
    }
  }

  struct SplitChoice {
    int feature = -1;
    double threshold = 0.0;
    double impurity_decrease = 0.0;
  };
  SplitChoice best;

  // Scratch: (value, weight, label) triplets sorted per candidate feature.
  using Sample = BuildScratch::Sample;
  std::vector<Sample>& samples = scratch.samples;
  samples.resize(n);
  std::vector<double>& left_counts = scratch.left_counts;
  left_counts.resize(k);

  for (int ci = 0; ci < num_candidates; ++ci) {
    const int f = candidates[static_cast<size_t>(ci)];
    for (size_t i = 0; i < n; ++i) {
      const size_t row = indices[begin + i];
      samples[i] = {x(row, static_cast<size_t>(f)), w[row], y[row]};
    }
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) {
                return a.value < b.value;
              });
    if (samples.front().value == samples.back().value) continue;

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_weight = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_counts[static_cast<size_t>(samples[i].label)] += samples[i].weight;
      left_weight += samples[i].weight;
      if (samples[i].value == samples[i + 1].value) continue;
      const size_t left_n = i + 1;
      const size_t right_n = n - left_n;
      if (left_n < static_cast<size_t>(params_.min_samples_leaf) ||
          right_n < static_cast<size_t>(params_.min_samples_leaf)) {
        continue;
      }
      const double right_weight = total_weight - left_weight;
      double left_impurity =
          ImpurityFromCounts(left_counts, left_weight, params_.criterion);
      // Right counts derived from totals.
      double right_impurity;
      {
        double sum_metric = 0.0;
        if (params_.criterion == SplitCriterion::kGini) {
          for (size_t c = 0; c < k; ++c) {
            const double rc = counts[c] - left_counts[c];
            const double p = right_weight > 0.0 ? rc / right_weight : 0.0;
            sum_metric += p * p;
          }
          right_impurity = 1.0 - sum_metric;
        } else {
          right_impurity = 0.0;
          for (size_t c = 0; c < k; ++c) {
            const double rc = counts[c] - left_counts[c];
            if (rc <= 0.0 || right_weight <= 0.0) continue;
            const double p = rc / right_weight;
            right_impurity -= p * std::log2(p);
          }
        }
      }
      const double children_impurity =
          (left_weight * left_impurity + right_weight * right_impurity) /
          total_weight;
      const double decrease = node_impurity - children_impurity;
      if (decrease > best.impurity_decrease) {
        best.feature = f;
        best.threshold = 0.5 * (samples[i].value + samples[i + 1].value);
        best.impurity_decrease = decrease;
      }
    }
  }

  if (best.feature < 0 ||
      best.impurity_decrease < params_.min_impurity_decrease) {
    return make_leaf();
  }

  // Partition indices[begin, end) by the chosen split (stable partition so
  // builds are deterministic).
  std::stable_partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](size_t row) {
        return x(row, static_cast<size_t>(best.feature)) <= best.threshold;
      });
  size_t mid = begin;
  while (mid < end &&
         x(indices[mid], static_cast<size_t>(best.feature)) <=
             best.threshold) {
    ++mid;
  }
  TRAJKIT_CHECK(mid > begin && mid < end)
      << "degenerate split on feature" << best.feature;

  // Importance: weighted impurity decrease, weighted by node share.
  importances_[static_cast<size_t>(best.feature)] +=
      total_weight * best.impurity_decrease;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best.threshold;
  const int left =
      BuildNode(x, y, w, indices, begin, mid, depth + 1, rng, scratch);
  nodes_[static_cast<size_t>(node_index)].left = left;
  const int right =
      BuildNode(x, y, w, indices, mid, end, depth + 1, rng, scratch);
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

size_t DecisionTree::FindLeaf(std::span<const double> row) const {
  TRAJKIT_CHECK(fitted());
  size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const double v = row[static_cast<size_t>(nodes_[node].feature)];
    node = static_cast<size_t>(v <= nodes_[node].threshold
                                   ? nodes_[node].left
                                   : nodes_[node].right);
  }
  return node;
}

std::span<const double> DecisionTree::LeafDistribution(
    std::span<const double> row) const {
  const size_t leaf = FindLeaf(row);
  return leaf_distributions_[static_cast<size_t>(nodes_[leaf].distribution)];
}

std::vector<int> DecisionTree::Predict(const Matrix& features) const {
  std::vector<int> out(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::span<const double> dist = LeafDistribution(features.Row(r));
    out[r] = static_cast<int>(
        std::max_element(dist.begin(), dist.end()) - dist.begin());
  }
  return out;
}

Result<Matrix> DecisionTree::PredictProba(const Matrix& features) const {
  if (!fitted()) {
    return Status::FailedPrecondition("PredictProba before Fit");
  }
  Matrix probs(features.rows(), static_cast<size_t>(num_classes_));
  for (size_t r = 0; r < features.rows(); ++r) {
    const std::span<const double> dist = LeafDistribution(features.Row(r));
    for (size_t c = 0; c < dist.size(); ++c) probs(r, c) = dist[c];
  }
  return probs;
}

std::unique_ptr<Classifier> DecisionTree::Clone() const {
  return std::make_unique<DecisionTree>(params_);
}

const std::vector<double>& DecisionTree::FeatureImportances() const {
  TRAJKIT_CHECK(fitted());
  return importances_;
}

}  // namespace trajkit::ml
