#ifndef TRAJKIT_ML_LINEAR_SVM_H_
#define TRAJKIT_ML_LINEAR_SVM_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace trajkit::ml {

/// Hyper-parameters of the linear SVM.
struct LinearSvmParams {
  /// L2 regularization strength (Pegasos λ); C ≈ 1/(λ·n). The fairly
  /// strong default mirrors an untuned sklearn-style configuration (the
  /// paper ran all six classifiers at library defaults, where the SVM
  /// placed last).
  double lambda = 1e-2;
  /// Passes over the training data.
  int epochs = 20;
  /// When true (default), features are internally min-max scaled before
  /// training/prediction (SVMs are scale-sensitive; the paper normalizes
  /// in step 7 but the classifier-selection experiment runs without it).
  bool internal_scaling = true;
  uint64_t seed = 42;
};

/// One-vs-rest linear SVM trained with the Pegasos stochastic sub-gradient
/// solver on the hinge loss. Decision: argmax of per-class margins.
class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(LinearSvmParams params = {});

  Status Fit(const Dataset& train) override;
  std::vector<int> Predict(const Matrix& features) const override;
  std::string name() const override { return "svm"; }
  std::unique_ptr<Classifier> Clone() const override;

  bool fitted() const { return num_classes_ > 0; }

  /// Raw per-class margins for one row (after internal scaling).
  std::vector<double> DecisionFunction(std::span<const double> row) const;

 private:
  LinearSvmParams params_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  // weights_[k * (num_features_ + 1) + f]; the last slot is the bias.
  std::vector<double> weights_;
  // Internal min-max ranges (empty when internal_scaling is off).
  std::vector<double> scale_min_;
  std::vector<double> scale_inv_range_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_LINEAR_SVM_H_
