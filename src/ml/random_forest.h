#ifndef TRAJKIT_ML_RANDOM_FOREST_H_
#define TRAJKIT_ML_RANDOM_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/decision_tree.h"

namespace trajkit::ml {

class FlatForest;
struct FlatForestOptions;
struct FlatForestScratch;

/// Hyper-parameters of the random forest. Defaults follow the paper's
/// §4.3 setting ("random forest classifier with 50 estimators", sklearn
/// conventions elsewhere: gini, sqrt feature subsetting, bootstrap).
struct RandomForestParams {
  int n_estimators = 50;
  SplitCriterion criterion = SplitCriterion::kGini;
  int max_depth = 0;          // Unbounded, like sklearn's default.
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features examined per node; <= 0 means round(sqrt(num_features)).
  int max_features = 0;
  bool bootstrap = true;
  /// Forwarded to every tree: reweight samples inversely to class
  /// frequency.
  bool balanced_class_weights = false;
  uint64_t seed = 42;
};

/// Bagged ensemble of CART trees with per-node feature subsetting.
/// Prediction averages the trees' leaf class distributions (sklearn's
/// soft voting). Exposes mean impurity-decrease feature importances — the
/// "information theoretical feature importance" ranking of §4.2.
class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {});

  Status Fit(const Dataset& train) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Result<Matrix> PredictProba(const Matrix& features) const override;
  std::string name() const override { return "random_forest"; }
  std::unique_ptr<Classifier> Clone() const override;

  /// Mean of per-tree normalized importances; sums to ~1. Precondition:
  /// fitted.
  const std::vector<double>& FeatureImportances() const;

  /// Feature indices sorted by decreasing importance (ties broken by
  /// index). Precondition: fitted.
  std::vector<int> ImportanceRanking() const;

  size_t NumTrees() const { return trees_.size(); }
  bool fitted() const { return !trees_.empty(); }
  int num_classes() const { return num_classes_; }

  /// The fitted trees (read-only; FlatForest::Compile lowers them).
  /// Precondition: fitted.
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Compiles the flat inference form (ml/flat_forest.h): a contiguous
  /// SoA node pool with branchless descent and a batched multi-row
  /// kernel. Once compiled, Predict/PredictProba delegate to it — with
  /// bit-identical results. Re-fitting drops the compiled form. The
  /// overload with options can additionally request int16 threshold
  /// quantization (accepted only behind its exactness check).
  /// Precondition: fitted.
  Status CompileFlat();
  Status CompileFlat(const FlatForestOptions& options);
  /// Same, reusing a caller-owned compile workspace across refits (see
  /// FlatForestScratch); nullptr behaves like the plain overload.
  Status CompileFlat(const FlatForestOptions& options,
                     FlatForestScratch* scratch);

  /// The compiled form, or nullptr when CompileFlat was not called (or a
  /// refit invalidated it). Copies of a compiled forest share the
  /// immutable flat form.
  const FlatForest* flat() const { return flat_.get(); }

  /// Text serialization of the fitted forest (see model_io.h for the
  /// file-level helpers). Precondition: fitted.
  std::string Serialize() const;

  /// Parses a forest serialized by Serialize(). The restored forest
  /// predicts identically; hyper-parameters are restored for Clone().
  static Result<RandomForest> Deserialize(std::string_view text);

 private:
  RandomForestParams params_;
  int num_classes_ = 0;
  std::vector<DecisionTree> trees_;
  std::vector<double> importances_;
  std::shared_ptr<const FlatForest> flat_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_RANDOM_FOREST_H_
