#include "ml/filter_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace trajkit::ml {

namespace {

// Quantile-bins one feature column: each value maps to a bin in
// [0, bins). Equal values share a bin (bin edges come from order
// statistics), so constant columns collapse to one bin.
std::vector<int> QuantileBin(const Matrix& x, size_t column, int bins) {
  const size_t n = x.rows();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return x(a, column) < x(b, column);
  });
  std::vector<int> bin_of(n, 0);
  // Walk the sorted order; advance the bin at quantile boundaries but
  // never split ties across bins.
  int bin = 0;
  for (size_t rank = 0; rank < n; ++rank) {
    if (rank > 0) {
      const int target_bin = static_cast<int>(
          static_cast<size_t>(bins) * rank / n);
      const bool tie_with_prev =
          x(order[rank], column) == x(order[rank - 1], column);
      if (target_bin > bin && !tie_with_prev) bin = target_bin;
    }
    bin_of[order[rank]] = bin;
  }
  return bin_of;
}

// Joint histogram of (bin, class) counts.
struct Contingency {
  std::vector<double> joint;  // bins × classes, row-major.
  std::vector<double> bin_totals;
  std::vector<double> class_totals;
  double total = 0.0;
  int bins = 0;
  int classes = 0;

  double At(int b, int c) const {
    return joint[static_cast<size_t>(b) * static_cast<size_t>(classes) +
                 static_cast<size_t>(c)];
  }
};

Contingency BuildContingency(const std::vector<int>& bin_of,
                             const std::vector<int>& labels, int bins,
                             int classes) {
  Contingency table;
  table.bins = bins;
  table.classes = classes;
  table.joint.assign(static_cast<size_t>(bins) *
                         static_cast<size_t>(classes),
                     0.0);
  table.bin_totals.assign(static_cast<size_t>(bins), 0.0);
  table.class_totals.assign(static_cast<size_t>(classes), 0.0);
  for (size_t i = 0; i < bin_of.size(); ++i) {
    const size_t b = static_cast<size_t>(bin_of[i]);
    const size_t c = static_cast<size_t>(labels[i]);
    table.joint[b * static_cast<size_t>(classes) + c] += 1.0;
    table.bin_totals[b] += 1.0;
    table.class_totals[c] += 1.0;
    table.total += 1.0;
  }
  return table;
}

std::vector<FeatureScore> SortScores(std::vector<FeatureScore> scores) {
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     return a.score > b.score;
                   });
  return scores;
}

Status ValidateInput(const Dataset& dataset, int bins) {
  if (dataset.num_samples() == 0 || dataset.num_features() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  if (bins < 2) {
    return Status::InvalidArgument("bins must be >= 2");
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<FeatureScore>> MutualInformationScores(
    const Dataset& dataset, int bins) {
  TRAJKIT_RETURN_IF_ERROR(ValidateInput(dataset, bins));
  const int classes = dataset.num_classes();
  std::vector<FeatureScore> scores;
  scores.reserve(dataset.num_features());
  for (size_t f = 0; f < dataset.num_features(); ++f) {
    const std::vector<int> bin_of =
        QuantileBin(dataset.features(), f, bins);
    const Contingency table =
        BuildContingency(bin_of, dataset.labels(), bins, classes);
    double mi = 0.0;
    for (int b = 0; b < bins; ++b) {
      for (int c = 0; c < classes; ++c) {
        const double joint = table.At(b, c);
        if (joint <= 0.0) continue;
        const double p_joint = joint / table.total;
        const double p_bin =
            table.bin_totals[static_cast<size_t>(b)] / table.total;
        const double p_class =
            table.class_totals[static_cast<size_t>(c)] / table.total;
        mi += p_joint * std::log(p_joint / (p_bin * p_class));
      }
    }
    scores.push_back({static_cast<int>(f), std::max(mi, 0.0)});
  }
  return SortScores(std::move(scores));
}

Result<std::vector<FeatureScore>> ChiSquareScores(const Dataset& dataset,
                                                  int bins) {
  TRAJKIT_RETURN_IF_ERROR(ValidateInput(dataset, bins));
  const int classes = dataset.num_classes();
  std::vector<FeatureScore> scores;
  scores.reserve(dataset.num_features());
  for (size_t f = 0; f < dataset.num_features(); ++f) {
    const std::vector<int> bin_of =
        QuantileBin(dataset.features(), f, bins);
    const Contingency table =
        BuildContingency(bin_of, dataset.labels(), bins, classes);
    double chi2 = 0.0;
    for (int b = 0; b < bins; ++b) {
      const double bin_total = table.bin_totals[static_cast<size_t>(b)];
      if (bin_total <= 0.0) continue;
      for (int c = 0; c < classes; ++c) {
        const double expected =
            bin_total * table.class_totals[static_cast<size_t>(c)] /
            table.total;
        if (expected <= 0.0) continue;
        const double diff = table.At(b, c) - expected;
        chi2 += diff * diff / expected;
      }
    }
    scores.push_back({static_cast<int>(f), chi2});
  }
  return SortScores(std::move(scores));
}

Result<std::vector<FeatureScore>> AnovaFScores(const Dataset& dataset) {
  TRAJKIT_RETURN_IF_ERROR(ValidateInput(dataset, /*bins=*/2));
  const int classes = dataset.num_classes();
  const double n = static_cast<double>(dataset.num_samples());
  const std::vector<size_t> class_counts = dataset.ClassCounts();
  int populated_classes = 0;
  for (size_t count : class_counts) {
    if (count > 0) ++populated_classes;
  }
  if (populated_classes < 2) {
    return Status::InvalidArgument(
        "ANOVA F needs at least two populated classes");
  }
  const double df_between = static_cast<double>(populated_classes - 1);
  const double df_within = n - static_cast<double>(populated_classes);
  if (df_within <= 0.0) {
    return Status::InvalidArgument("not enough samples for ANOVA F");
  }

  std::vector<FeatureScore> scores;
  scores.reserve(dataset.num_features());
  std::vector<double> class_sums(static_cast<size_t>(classes));
  for (size_t f = 0; f < dataset.num_features(); ++f) {
    std::fill(class_sums.begin(), class_sums.end(), 0.0);
    double grand_sum = 0.0;
    for (size_t i = 0; i < dataset.num_samples(); ++i) {
      const double v = dataset.features()(i, f);
      class_sums[static_cast<size_t>(dataset.labels()[i])] += v;
      grand_sum += v;
    }
    const double grand_mean = grand_sum / n;
    double ss_between = 0.0;
    for (int c = 0; c < classes; ++c) {
      const double count =
          static_cast<double>(class_counts[static_cast<size_t>(c)]);
      if (count <= 0.0) continue;
      const double mean = class_sums[static_cast<size_t>(c)] / count;
      ss_between += count * (mean - grand_mean) * (mean - grand_mean);
    }
    double ss_within = 0.0;
    for (size_t i = 0; i < dataset.num_samples(); ++i) {
      const size_t c = static_cast<size_t>(dataset.labels()[i]);
      const double mean =
          class_sums[c] / static_cast<double>(class_counts[c]);
      const double d = dataset.features()(i, f) - mean;
      ss_within += d * d;
    }
    double f_stat = 0.0;
    if (ss_within > 0.0) {
      f_stat = (ss_between / df_between) / (ss_within / df_within);
    } else if (ss_between > 0.0) {
      f_stat = std::numeric_limits<double>::infinity();
    }
    scores.push_back({static_cast<int>(f), f_stat});
  }
  return SortScores(std::move(scores));
}

std::vector<int> RankingFromScores(const std::vector<FeatureScore>& scores) {
  std::vector<int> ranking;
  ranking.reserve(scores.size());
  for (const FeatureScore& s : scores) ranking.push_back(s.feature_index);
  return ranking;
}

}  // namespace trajkit::ml
