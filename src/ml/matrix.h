#ifndef TRAJKIT_ML_MATRIX_H_
#define TRAJKIT_ML_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace trajkit::ml {

/// Dense row-major matrix of doubles. Rows are samples, columns features.
/// Deliberately minimal: storage + views + the few linear-algebra helpers
/// the classifiers need.
class Matrix {
 public:
  /// Empty 0×0 matrix.
  Matrix() = default;

  /// rows×cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from nested vectors; all inner vectors must share one size.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c) {
    TRAJKIT_CHECK_LT(r, rows_);
    TRAJKIT_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    TRAJKIT_CHECK_LT(r, rows_);
    TRAJKIT_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops.
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous view of row r.
  std::span<const double> Row(size_t r) const {
    TRAJKIT_CHECK_LT(r, rows_);
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }
  std::span<double> MutableRow(size_t r) {
    TRAJKIT_CHECK_LT(r, rows_);
    return std::span<double>(data_.data() + r * cols_, cols_);
  }

  /// Copy of column c (columns are strided in row-major storage).
  std::vector<double> Column(size_t c) const;

  /// New matrix containing the given rows, in order.
  Matrix SelectRows(std::span<const size_t> row_indices) const;

  /// New matrix containing the given columns, in order.
  Matrix SelectColumns(std::span<const int> column_indices) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_MATRIX_H_
