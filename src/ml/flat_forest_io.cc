#include <cstring>
#include <string>

#include "common/csv.h"
#include "common/strings.h"
#include "ml/flat_forest.h"

// Flat-forest dump v1: the compiled SoA arrays written verbatim as one raw
// little-endian image, so loading is a straight copy (and, eventually, an
// mmap — ROADMAP item 2's stretch goal).
//
//   magic   "TKFLATF1"
//   header  num_classes i32, num_features u64, num_leaves u64,
//           num_distributions u64, quantized u8
//   arrays  each as u64 element count + raw elements, in order:
//           feature i32 | threshold f64 | child i32 | dist_offset i32 |
//           roots i32 | depths i32 | dist_table f64
//           then, when quantized: qthreshold i16 | qlo f64 | qscale f64
//
// The round trip is bit-identical — thresholds, distribution sums, and the
// quantized mirror are raw memory copies, so a loaded forest predicts
// exactly like the one dumped.

namespace trajkit::ml {
namespace {

static_assert(sizeof(double) == 8, "flat-forest dump assumes 8-byte doubles");

constexpr char kMagic[8] = {'T', 'K', 'F', 'L', 'A', 'T', 'F', '1'};

template <typename T>
void AppendScalar(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

template <typename T>
void AppendArray(std::string& out, const std::vector<T>& values) {
  AppendScalar(out, static_cast<uint64_t>(values.size()));
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(T));
}

class DumpReader {
 public:
  explicit DumpReader(const std::string& data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  template <typename T>
  Result<T> ReadScalar(const char* what) {
    if (remaining() < sizeof(T)) {
      return Status::ParseError(
          StrPrintf("truncated flat-forest dump reading %s", what));
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  Result<std::vector<T>> ReadArray(const char* what) {
    TRAJKIT_ASSIGN_OR_RETURN(uint64_t count, ReadScalar<uint64_t>(what));
    const size_t bytes = static_cast<size_t>(count) * sizeof(T);
    if (remaining() < bytes) {
      return Status::ParseError(StrPrintf(
          "truncated flat-forest dump: %s declares %llu elements", what,
          static_cast<unsigned long long>(count)));
    }
    std::vector<T> values(static_cast<size_t>(count));
    std::memcpy(values.data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return values;
  }

  Status ReadMagic() {
    if (remaining() < sizeof(kMagic) ||
        std::memcmp(data_.data() + pos_, kMagic, sizeof(kMagic)) != 0) {
      return Status::ParseError("not a flat-forest dump (bad magic)");
    }
    pos_ += sizeof(kMagic);
    return Status::Ok();
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

Status FlatForest::SaveTo(const std::string& path) const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendScalar(out, static_cast<int32_t>(num_classes_));
  AppendScalar(out, static_cast<uint64_t>(num_features_));
  AppendScalar(out, static_cast<uint64_t>(num_leaves_));
  AppendScalar(out, static_cast<uint64_t>(num_distributions_));
  AppendScalar(out, static_cast<uint8_t>(quantized() ? 1 : 0));
  AppendArray(out, feature_);
  AppendArray(out, threshold_);
  AppendArray(out, child_);
  AppendArray(out, dist_offset_);
  AppendArray(out, roots_);
  AppendArray(out, depths_);
  AppendArray(out, dist_table_);
  if (quantized()) {
    AppendArray(out, qthreshold_);
    AppendArray(out, qlo_);
    AppendArray(out, qscale_);
  }
  return WriteStringToFile(path, out);
}

Result<FlatForest> FlatForest::LoadFrom(const std::string& path) {
  TRAJKIT_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  DumpReader reader(data);
  {
    const Status status = reader.ReadMagic();
    if (!status.ok()) {
      return Status::ParseError(path + ": " + status.message());
    }
  }
  FlatForest forest;
  TRAJKIT_ASSIGN_OR_RETURN(int32_t num_classes,
                           reader.ReadScalar<int32_t>("num_classes"));
  TRAJKIT_ASSIGN_OR_RETURN(uint64_t num_features,
                           reader.ReadScalar<uint64_t>("num_features"));
  TRAJKIT_ASSIGN_OR_RETURN(uint64_t num_leaves,
                           reader.ReadScalar<uint64_t>("num_leaves"));
  TRAJKIT_ASSIGN_OR_RETURN(uint64_t num_distributions,
                           reader.ReadScalar<uint64_t>("num_distributions"));
  TRAJKIT_ASSIGN_OR_RETURN(uint8_t quantized,
                           reader.ReadScalar<uint8_t>("quantized"));
  forest.num_classes_ = num_classes;
  forest.num_features_ = static_cast<size_t>(num_features);
  forest.num_leaves_ = static_cast<size_t>(num_leaves);
  forest.num_distributions_ = static_cast<size_t>(num_distributions);
  TRAJKIT_ASSIGN_OR_RETURN(forest.feature_,
                           reader.ReadArray<int32_t>("feature"));
  TRAJKIT_ASSIGN_OR_RETURN(forest.threshold_,
                           reader.ReadArray<double>("threshold"));
  TRAJKIT_ASSIGN_OR_RETURN(forest.child_, reader.ReadArray<int32_t>("child"));
  TRAJKIT_ASSIGN_OR_RETURN(forest.dist_offset_,
                           reader.ReadArray<int32_t>("dist_offset"));
  TRAJKIT_ASSIGN_OR_RETURN(forest.roots_, reader.ReadArray<int32_t>("roots"));
  TRAJKIT_ASSIGN_OR_RETURN(forest.depths_,
                           reader.ReadArray<int32_t>("depths"));
  TRAJKIT_ASSIGN_OR_RETURN(forest.dist_table_,
                           reader.ReadArray<double>("dist_table"));
  if (quantized != 0) {
    TRAJKIT_ASSIGN_OR_RETURN(forest.qthreshold_,
                             reader.ReadArray<int16_t>("qthreshold"));
    TRAJKIT_ASSIGN_OR_RETURN(forest.qlo_, reader.ReadArray<double>("qlo"));
    TRAJKIT_ASSIGN_OR_RETURN(forest.qscale_,
                             reader.ReadArray<double>("qscale"));
  }

  // Shape validation: every cross-array invariant the kernels rely on.
  const size_t n = forest.feature_.size();
  if (forest.threshold_.size() != n || forest.child_.size() != n ||
      forest.dist_offset_.size() != n) {
    return Status::ParseError(path + ": node arrays disagree on length");
  }
  if (forest.roots_.size() != forest.depths_.size()) {
    return Status::ParseError(path + ": roots/depths disagree on length");
  }
  if (forest.num_classes_ <= 0 ||
      forest.dist_table_.size() !=
          forest.num_distributions_ *
              static_cast<size_t>(forest.num_classes_)) {
    return Status::ParseError(path + ": distribution table shape mismatch");
  }
  if (quantized != 0 &&
      (forest.qthreshold_.size() != n ||
       forest.qlo_.size() != forest.num_features_ ||
       forest.qscale_.size() != forest.num_features_)) {
    return Status::ParseError(path + ": quantized mirror shape mismatch");
  }
  for (const int32_t root : forest.roots_) {
    if (root < 0 || static_cast<size_t>(root) >= n) {
      return Status::ParseError(path + ": tree root out of range");
    }
  }
  return forest;
}

}  // namespace trajkit::ml
