#ifndef TRAJKIT_ML_STATS_TESTS_H_
#define TRAJKIT_ML_STATS_TESTS_H_

#include <span>

#include "common/result.h"

namespace trajkit::ml {

/// Direction of the alternative hypothesis.
enum class Alternative { kTwoSided, kGreater, kLess };

/// Outcome of a Wilcoxon signed-rank test.
struct WilcoxonResult {
  /// Sum of ranks of positive differences (W+), the test statistic.
  double statistic = 0.0;
  double p_value = 1.0;
  /// Non-zero differences actually used.
  int n_used = 0;
  /// True when the exact null distribution was enumerated (small n, no
  /// ties); false when the normal approximation was used.
  bool exact = false;
};

/// Wilcoxon signed-rank test on paired samples (the paper's test for
/// comparing per-fold classifier accuracies, §4.1). Zero differences are
/// dropped (Wilcoxon's original treatment); ties in |d| get average ranks.
/// Exact p-values are enumerated for n ≤ 25 without ties; otherwise a
/// normal approximation with tie correction and continuity correction is
/// used. Returns InvalidArgument when inputs mismatch or fewer than 1
/// non-zero difference remains.
Result<WilcoxonResult> WilcoxonSignedRank(
    std::span<const double> x, std::span<const double> y,
    Alternative alternative = Alternative::kTwoSided);

/// One-sample variant: tests the location of `x` against `mu` (the paper's
/// §4.3 comparison of per-fold accuracies against a published number).
Result<WilcoxonResult> WilcoxonSignedRankOneSample(
    std::span<const double> x, double mu,
    Alternative alternative = Alternative::kTwoSided);

/// Standard normal CDF (used by the approximation; exposed for tests).
double StandardNormalCdf(double z);

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_STATS_TESTS_H_
