#ifndef TRAJKIT_ML_LOGISTIC_REGRESSION_H_
#define TRAJKIT_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace trajkit::ml {

/// Hyper-parameters of multinomial logistic regression.
struct LogisticRegressionParams {
  /// L2 regularization strength (sklearn's 1/C per sample).
  double l2 = 1e-4;
  int epochs = 200;
  double learning_rate = 0.5;  // Full-batch gradient step size.
  bool internal_scaling = true;
  uint64_t seed = 42;
};

/// Multinomial (softmax) logistic regression trained by full-batch
/// gradient descent with Nesterov momentum. A calibrated linear baseline
/// complementing the paper's six families.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionParams params = {});

  Status Fit(const Dataset& train) override;
  std::vector<int> Predict(const Matrix& features) const override;
  Result<Matrix> PredictProba(const Matrix& features) const override;
  std::string name() const override { return "logistic_regression"; }
  std::unique_ptr<Classifier> Clone() const override;

  bool fitted() const { return num_classes_ > 0; }

 private:
  void RowScores(std::span<const double> row,
                 std::vector<double>& scores) const;

  LogisticRegressionParams params_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  // weights_[k * (num_features_ + 1) + f]; last slot is the bias.
  std::vector<double> weights_;
  std::vector<double> scale_min_;
  std::vector<double> scale_inv_range_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_LOGISTIC_REGRESSION_H_
