#ifndef TRAJKIT_ML_DATASET_H_
#define TRAJKIT_ML_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace trajkit::ml {

/// A supervised learning problem: a feature matrix, integer class labels in
/// [0, num_classes), a per-sample group id (the user id, for user-oriented
/// cross-validation), and the human-readable names of features and classes.
class Dataset {
 public:
  Dataset() = default;

  /// Assembles and validates a dataset. Labels must be in
  /// [0, class_names.size()); groups must have the same length as labels
  /// (or be empty, in which case each sample gets group 0).
  static Result<Dataset> Create(Matrix features, std::vector<int> labels,
                                std::vector<int> groups,
                                std::vector<std::string> feature_names,
                                std::vector<std::string> class_names);

  /// Attaches per-sample timestamps (seconds since epoch; the segment's
  /// start time in the pipeline). Enables the temporal splitters.
  /// Returns InvalidArgument on length mismatch.
  Status SetTimes(std::vector<double> times);

  /// Per-sample timestamps; empty when never set.
  const std::vector<double>& times() const { return times_; }
  bool has_times() const { return !times_.empty(); }

  size_t num_samples() const { return features_.rows(); }
  size_t num_features() const { return features_.cols(); }
  int num_classes() const { return static_cast<int>(class_names_.size()); }

  const Matrix& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<int>& groups() const { return groups_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& class_names() const { return class_names_; }

  /// Per-class sample counts.
  std::vector<size_t> ClassCounts() const;

  /// Distinct group ids, ascending.
  std::vector<int> DistinctGroups() const;

  /// New dataset with only the given samples (metadata shared).
  Dataset SelectSamples(std::span<const size_t> row_indices) const;

  /// New dataset with only the given feature columns.
  Dataset SelectFeatures(std::span<const int> column_indices) const;

  /// Mutable access used by scalers, which transform features in place.
  Matrix& mutable_features() { return features_; }

 private:
  Matrix features_;
  std::vector<int> labels_;
  std::vector<int> groups_;
  std::vector<double> times_;  // Empty when unavailable.
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
};

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_DATASET_H_
