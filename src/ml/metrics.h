#ifndef TRAJKIT_ML_METRICS_H_
#define TRAJKIT_ML_METRICS_H_

#include <span>
#include <string>
#include <vector>

namespace trajkit::ml {

/// Row-major confusion matrix: entry (true, predicted).
class ConfusionMatrix {
 public:
  /// Builds from parallel label vectors; labels must lie in
  /// [0, num_classes). Precondition: equal non-zero lengths.
  ConfusionMatrix(std::span<const int> y_true, std::span<const int> y_pred,
                  int num_classes);

  int num_classes() const { return num_classes_; }
  size_t Count(int true_class, int predicted_class) const;
  size_t TotalSamples() const { return total_; }

  /// Per-class counts.
  size_t TruePositives(int c) const;
  size_t FalsePositives(int c) const;
  size_t FalseNegatives(int c) const;
  size_t Support(int c) const;  // Number of true samples of class c.

  /// Renders with optional class names.
  std::string ToString(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  size_t total_ = 0;
  std::vector<size_t> counts_;  // num_classes × num_classes, row-major.
};

/// Fraction of matching predictions. Precondition: equal non-zero lengths.
double Accuracy(std::span<const int> y_true, std::span<const int> y_pred);

/// Per-class and averaged precision/recall/F1. Classes with zero support
/// contribute 0 to macro averages (sklearn's zero_division=0 behaviour) and
/// are excluded from weighted averages by their zero weight.
struct ClassificationReport {
  std::vector<double> precision;  // Per class.
  std::vector<double> recall;
  std::vector<double> f1;
  std::vector<size_t> support;
  double accuracy = 0.0;
  double macro_precision = 0.0;
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
  double weighted_precision = 0.0;
  double weighted_recall = 0.0;
  double weighted_f1 = 0.0;

  /// sklearn-style text report.
  std::string ToString(const std::vector<std::string>& class_names = {}) const;
};

/// Computes the full report from label vectors.
ClassificationReport Evaluate(std::span<const int> y_true,
                              std::span<const int> y_pred, int num_classes);

/// Cohen's kappa: agreement corrected for chance. 1 = perfect, 0 = chance
/// level, negative = worse than chance. Robust on imbalanced label sets
/// (GeoLife's modes are heavily imbalanced, §4).
double CohensKappa(std::span<const int> y_true, std::span<const int> y_pred,
                   int num_classes);

/// Balanced accuracy: mean per-class recall (macro recall). The accuracy
/// analogue that an always-majority classifier cannot game.
double BalancedAccuracy(std::span<const int> y_true,
                        std::span<const int> y_pred, int num_classes);

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_METRICS_H_
