#ifndef TRAJKIT_ML_FACTORY_H_
#define TRAJKIT_ML_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ml/classifier.h"

namespace trajkit::ml {

/// Knobs of the classifier factory.
struct FactoryOptions {
  uint64_t seed = 42;
  /// Multiplies ensemble sizes / epochs; < 1 builds faster, weaker models
  /// for quick experiments or tests. Clamped so sizes stay >= 1.
  double scale = 1.0;
};

/// The six classifier families of Fig. 2, by canonical name:
/// "decision_tree", "random_forest", "xgboost", "adaboost", "svm",
/// "neural_network".
const std::vector<std::string>& AllClassifierNames();

/// The six paper families plus the library's extra baselines
/// ("knn", "logistic_regression").
const std::vector<std::string>& ExtendedClassifierNames();

/// Constructs an unfitted classifier by family name with the paper's
/// hyper-parameter conventions (RF: 50 estimators, ...). Returns
/// InvalidArgument for unknown names.
Result<std::unique_ptr<Classifier>> MakeClassifier(
    std::string_view name, const FactoryOptions& options = {});

}  // namespace trajkit::ml

#endif  // TRAJKIT_ML_FACTORY_H_
