#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace trajkit::stats {

namespace {

// Average ranks (1-based, ties averaged).
std::vector<double> AverageRanks(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && values[order[j]] == values[order[i]]) ++j;
    const double avg =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t p = i; p < j; ++p) ranks[order[p]] = avg;
    i = j;
  }
  return ranks;
}

}  // namespace

Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("samples must have equal length");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("need at least 2 observations");
  }
  const double n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= n;
  mean_y /= n;
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) {
    return Status::InvalidArgument("zero variance sample");
  }
  return cov / std::sqrt(var_x * var_y);
}

Result<double> SpearmanCorrelation(std::span<const double> x,
                                   std::span<const double> y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("samples must have equal length");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("need at least 2 observations");
  }
  const std::vector<double> rx = AverageRanks(x);
  const std::vector<double> ry = AverageRanks(y);
  return PearsonCorrelation(rx, ry);
}

Result<double> MeanPairwiseCorrelation(
    std::span<const std::vector<double>> series) {
  double total = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < series.size(); ++a) {
    for (size_t b = a + 1; b < series.size(); ++b) {
      const Result<double> r = PearsonCorrelation(series[a], series[b]);
      if (!r.ok()) continue;  // Skip degenerate pairs.
      total += r.value();
      ++pairs;
    }
  }
  if (pairs == 0) {
    return Status::InvalidArgument(
        "fewer than two usable series for pairwise correlation");
  }
  return total / static_cast<double>(pairs);
}

}  // namespace trajkit::stats
