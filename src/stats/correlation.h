#ifndef TRAJKIT_STATS_CORRELATION_H_
#define TRAJKIT_STATS_CORRELATION_H_

#include <span>
#include <vector>

#include "common/result.h"

namespace trajkit::stats {

/// Pearson product-moment correlation of two equal-length samples.
/// Returns InvalidArgument for length mismatch, n < 2, or zero variance.
Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y);

/// Spearman rank correlation (Pearson on average ranks; robust to
/// monotone transformations and outliers).
Result<double> SpearmanCorrelation(std::span<const double> x,
                                   std::span<const double> y);

/// Mean pairwise Pearson correlation across the rows of `series` (each row
/// one variable observed over the same positions) — the statistic behind
/// §4.4's claim that per-fold scores agree less between classifiers under
/// user-oriented CV than under random CV. Rows with zero variance are
/// skipped; returns InvalidArgument when fewer than two usable rows.
Result<double> MeanPairwiseCorrelation(
    std::span<const std::vector<double>> series);

}  // namespace trajkit::stats

#endif  // TRAJKIT_STATS_CORRELATION_H_
