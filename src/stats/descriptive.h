#ifndef TRAJKIT_STATS_DESCRIPTIVE_H_
#define TRAJKIT_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace trajkit::stats {

/// Minimum of a non-empty range. Precondition: !values.empty().
double Min(std::span<const double> values);

/// Maximum of a non-empty range. Precondition: !values.empty().
double Max(std::span<const double> values);

/// Arithmetic mean of a non-empty range.
double Mean(std::span<const double> values);

/// Population variance (ddof = 0, numpy default). Precondition: non-empty.
double Variance(std::span<const double> values);

/// Population standard deviation (ddof = 0). Precondition: non-empty.
double StdDev(std::span<const double> values);

/// Sample standard deviation (ddof = 1). Precondition: size >= 2.
double SampleStdDev(std::span<const double> values);

/// Median via the percentile-50 definition. Precondition: non-empty.
double Median(std::span<const double> values);

/// Percentile with numpy's default "linear" interpolation:
/// rank = p/100 * (n-1); result interpolates between the two surrounding
/// order statistics. `p` in [0, 100]. Precondition: non-empty.
double Percentile(std::span<const double> values, double p);

/// Computes several percentiles with a single sort.
std::vector<double> Percentiles(std::span<const double> values,
                                std::span<const double> ps);

/// Like Percentiles, but writes the ps.size() results into `out` and uses
/// `scratch` for the sorted copy (refilled each call), so tight extraction
/// loops pay no per-call allocation. Precondition: out.size() == ps.size().
void PercentilesInto(std::span<const double> values,
                     std::span<const double> ps,
                     std::vector<double>& scratch, std::span<double> out);

/// Single-pass accumulator for min/max/mean/variance (Welford). Useful for
/// streaming point features without materializing them.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  /// Preconditions for the accessors below: count() > 0 (count() > 1 for
  /// SampleVariance).
  double min() const;
  double max() const;
  double mean() const;
  double PopulationVariance() const;
  double PopulationStdDev() const;
  double SampleVariance() const;

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped to the
/// edge bins. Used for corpus diagnostics in the synthetic generator.
class Histogram {
 public:
  /// Precondition: lo < hi, bins > 0.
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  size_t bin_count(size_t i) const { return counts_.at(i); }
  size_t num_bins() const { return counts_.size(); }
  size_t total() const { return total_; }

  /// Lower edge of bin i.
  double BinLowerEdge(size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace trajkit::stats

#endif  // TRAJKIT_STATS_DESCRIPTIVE_H_
