#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace trajkit::stats {

double Min(std::span<const double> values) {
  TRAJKIT_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  TRAJKIT_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Mean(std::span<const double> values) {
  TRAJKIT_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  TRAJKIT_CHECK(!values.empty());
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

double SampleStdDev(std::span<const double> values) {
  TRAJKIT_CHECK_GE(values.size(), 2u);
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Median(std::span<const double> values) {
  return Percentile(values, 50.0);
}

namespace {

double PercentileOfSorted(std::span<const double> sorted, double p) {
  const size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(n - 1);
  const double lo_rank = std::floor(rank);
  const size_t lo = static_cast<size_t>(lo_rank);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = rank - lo_rank;
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double Percentile(std::span<const double> values, double p) {
  TRAJKIT_CHECK(!values.empty());
  TRAJKIT_CHECK_GE(p, 0.0);
  TRAJKIT_CHECK_LE(p, 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

std::vector<double> Percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  std::vector<double> out(ps.size());
  std::vector<double> scratch;
  PercentilesInto(values, ps, scratch, out);
  return out;
}

void PercentilesInto(std::span<const double> values,
                     std::span<const double> ps,
                     std::vector<double>& scratch, std::span<double> out) {
  TRAJKIT_CHECK(!values.empty());
  TRAJKIT_CHECK_EQ(out.size(), ps.size());
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  for (size_t i = 0; i < ps.size(); ++i) {
    TRAJKIT_CHECK_GE(ps[i], 0.0);
    TRAJKIT_CHECK_LE(ps[i], 100.0);
    out[i] = PercentileOfSorted(scratch, ps[i]);
  }
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::min() const {
  TRAJKIT_CHECK_GT(count_, 0u);
  return min_;
}

double RunningStats::max() const {
  TRAJKIT_CHECK_GT(count_, 0u);
  return max_;
}

double RunningStats::mean() const {
  TRAJKIT_CHECK_GT(count_, 0u);
  return mean_;
}

double RunningStats::PopulationVariance() const {
  TRAJKIT_CHECK_GT(count_, 0u);
  return m2_ / static_cast<double>(count_);
}

double RunningStats::PopulationStdDev() const {
  return std::sqrt(PopulationVariance());
}

double RunningStats::SampleVariance() const {
  TRAJKIT_CHECK_GT(count_, 1u);
  return m2_ / static_cast<double>(count_ - 1);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * (n2 / n);
  m2_ += other.m2_ + delta * delta * (n1 * n2 / n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  TRAJKIT_CHECK_LT(lo, hi);
  TRAJKIT_CHECK_GT(bins, 0u);
}

void Histogram::Add(double x) {
  const double span = hi_ - lo_;
  double frac = (x - lo_) / span;
  frac = std::clamp(frac, 0.0, 1.0);
  size_t bin = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_;
}

double Histogram::BinLowerEdge(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace trajkit::stats
