#ifndef TRAJKIT_COMMON_RETRY_H_
#define TRAJKIT_COMMON_RETRY_H_

// Retry-with-backoff helpers for transient failures: a jittered
// exponential Backoff schedule (deterministic under a seeded RNG, so
// chaos-replay runs are reproducible) and a generic RetryWithBackoff
// driver. Used by the serving replay loop to resubmit requests that
// resolved with a retryable status (fault-injected Unavailable).

#include <cstdint>
#include <functional>
#include <utility>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace trajkit {

/// Knobs of a jittered exponential backoff schedule.
struct RetryOptions {
  /// Total attempts, including the first; <= 1 means no retries.
  int max_attempts = 3;
  /// Delay before the first retry, before jitter.
  double initial_backoff_seconds = 0.001;
  /// Growth factor per retry.
  double multiplier = 2.0;
  /// Upper bound on the un-jittered delay.
  double max_backoff_seconds = 0.050;
  /// Fraction of the delay randomized away: the emitted delay is uniform
  /// in [(1 - jitter) * base, base]. 0 = fully deterministic spacing.
  double jitter = 0.5;
};

/// True for status codes worth retrying: transient failures
/// (kUnavailable), as opposed to deterministic errors (bad request,
/// missing model) that retrying cannot fix.
bool IsRetryableStatus(const Status& status);

/// A jittered exponential backoff schedule. Two Backoff instances built
/// from the same options and seed emit the same delay sequence
/// (the jitter draws come from a private seeded Rng).
class Backoff {
 public:
  Backoff(RetryOptions options, uint64_t seed);

  /// The next delay in seconds: base * multiplier^k clamped to
  /// max_backoff_seconds, jittered down by up to `jitter`.
  double NextDelaySeconds();

  /// Restarts the schedule (the jitter stream is NOT rewound, so a reused
  /// Backoff keeps drawing fresh jitter).
  void Reset() { next_base_ = options_.initial_backoff_seconds; }

  int attempts() const { return attempts_; }

 private:
  RetryOptions options_;
  Rng rng_;
  double next_base_;
  int attempts_ = 0;
};

/// Calls `fn` up to options.max_attempts times, sleeping the backoff
/// delay between attempts via `sleep_fn(seconds)`. Retries only while
/// `fn` returns a retryable status (IsRetryableStatus); the first
/// success, non-retryable error, or the final attempt's result is
/// returned. `sleep_fn` is injectable so tests can run without wall-clock
/// sleeps.
template <typename T>
Result<T> RetryWithBackoff(const RetryOptions& options, uint64_t seed,
                           const std::function<Result<T>()>& fn,
                           const std::function<void(double)>& sleep_fn) {
  Backoff backoff(options, seed);
  while (true) {
    Result<T> result = fn();
    if (result.ok() || !IsRetryableStatus(result.status()) ||
        backoff.attempts() + 1 >= options.max_attempts) {
      return result;
    }
    sleep_fn(backoff.NextDelaySeconds());
  }
}

/// Blocks the calling thread for `seconds` (no-op for <= 0).
void SleepForSeconds(double seconds);

/// RetryWithBackoff with a real std::this_thread::sleep_for sleeper.
template <typename T>
Result<T> RetryWithBackoff(const RetryOptions& options, uint64_t seed,
                           const std::function<Result<T>()>& fn) {
  return RetryWithBackoff<T>(options, seed, fn, &SleepForSeconds);
}

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_RETRY_H_
