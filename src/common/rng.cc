#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace trajkit {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t n) {
  TRAJKIT_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TRAJKIT_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  TRAJKIT_CHECK_GT(mean, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    TRAJKIT_CHECK_GE(w, 0.0);
    total += w;
  }
  TRAJKIT_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace trajkit
