#include "common/harness_options.h"

#include <cstdio>
#include <cstring>

#include "common/parallel.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace trajkit {
namespace {

/// If `arg` is "--<key>=<value>", returns the value; nullptr otherwise.
const char* MatchFlag(const char* arg, const char* key) {
  const size_t key_len = std::strlen(key);
  if (std::strncmp(arg, "--", 2) != 0) return nullptr;
  if (std::strncmp(arg + 2, key, key_len) != 0) return nullptr;
  if (arg[2 + key_len] != '=') return nullptr;
  return arg + 2 + key_len + 1;
}

}  // namespace

HarnessOptions HarnessOptions::FromFlags(const Flags& flags) {
  HarnessOptions options;
  options.threads = flags.GetInt("threads", 0);
  options.timing_json = flags.GetString("timing_json", "");
  options.metrics_json = flags.GetString("metrics_json", "");
  options.metrics_prom = flags.GetString("metrics_prom", "");
  options.timeseries_json = flags.GetString("timeseries_json", "");
  options.trace_json = flags.GetString("trace_json", "");
  options.trace_test = flags.GetString("trace_test", "");
  options.trace_sample = flags.GetUint64("trace_sample", 1);
  options.trace_buffer =
      static_cast<size_t>(flags.GetUint64("trace_buffer", 8192));
  return options;
}

HarnessOptions HarnessOptions::FromArgv(int* argc, char** argv) {
  HarnessOptions options;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (const char* value = MatchFlag(argv[i], "threads")) {
      options.threads =
          static_cast<int>(ParseInt64(value).value_or(0));
    } else if (const char* value = MatchFlag(argv[i], "timing_json")) {
      options.timing_json = value;
    } else if (const char* value = MatchFlag(argv[i], "metrics_json")) {
      options.metrics_json = value;
    } else if (const char* value = MatchFlag(argv[i], "metrics_prom")) {
      options.metrics_prom = value;
    } else if (const char* value = MatchFlag(argv[i], "timeseries_json")) {
      options.timeseries_json = value;
    } else if (const char* value = MatchFlag(argv[i], "trace_json")) {
      options.trace_json = value;
    } else if (const char* value = MatchFlag(argv[i], "trace_test")) {
      options.trace_test = value;
    } else if (const char* value = MatchFlag(argv[i], "trace_sample")) {
      options.trace_sample =
          static_cast<uint64_t>(ParseInt64(value).value_or(1));
    } else if (const char* value = MatchFlag(argv[i], "trace_buffer")) {
      options.trace_buffer =
          static_cast<size_t>(ParseInt64(value).value_or(8192));
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return options;
}

int HarnessOptions::ApplyThreads() const {
  if (threads > 0) SetMaxThreads(threads);
  return MaxThreads();
}

void HarnessOptions::ConfigureTracing() const {
  if (!tracing_requested()) return;
  obs::RequestTracerOptions tracer_options;
  tracer_options.enabled = true;
  tracer_options.sample_every = trace_sample == 0 ? 1 : trace_sample;
  tracer_options.buffer_capacity = trace_buffer == 0 ? 8192 : trace_buffer;
  obs::RequestTracer::Global().Configure(tracer_options);
}

bool HarnessOptions::DumpTrace() const {
  bool ok = true;
  const obs::RequestTracer& tracer = obs::RequestTracer::Global();
  if (!trace_json.empty()) {
    if (obs::WriteTextFile(trace_json, tracer.ToChromeTraceJson())) {
      std::printf("trace written to %s\n", trace_json.c_str());
    } else {
      ok = false;
    }
  }
  if (!trace_test.empty()) {
    if (obs::WriteTextFile(trace_test, tracer.ToTestFormat())) {
      std::printf("trace test dump written to %s\n", trace_test.c_str());
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace trajkit
