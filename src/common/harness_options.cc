#include "common/harness_options.h"

#include <cstring>

#include "common/parallel.h"
#include "common/strings.h"

namespace trajkit {
namespace {

/// If `arg` is "--<key>=<value>", returns the value; nullptr otherwise.
const char* MatchFlag(const char* arg, const char* key) {
  const size_t key_len = std::strlen(key);
  if (std::strncmp(arg, "--", 2) != 0) return nullptr;
  if (std::strncmp(arg + 2, key, key_len) != 0) return nullptr;
  if (arg[2 + key_len] != '=') return nullptr;
  return arg + 2 + key_len + 1;
}

}  // namespace

HarnessOptions HarnessOptions::FromFlags(const Flags& flags) {
  HarnessOptions options;
  options.threads = flags.GetInt("threads", 0);
  options.timing_json = flags.GetString("timing_json", "");
  options.metrics_json = flags.GetString("metrics_json", "");
  return options;
}

HarnessOptions HarnessOptions::FromArgv(int* argc, char** argv) {
  HarnessOptions options;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (const char* value = MatchFlag(argv[i], "threads")) {
      options.threads =
          static_cast<int>(ParseInt64(value).value_or(0));
    } else if (const char* value = MatchFlag(argv[i], "timing_json")) {
      options.timing_json = value;
    } else if (const char* value = MatchFlag(argv[i], "metrics_json")) {
      options.metrics_json = value;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return options;
}

int HarnessOptions::ApplyThreads() const {
  if (threads > 0) SetMaxThreads(threads);
  return MaxThreads();
}

}  // namespace trajkit
