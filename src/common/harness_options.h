#ifndef TRAJKIT_COMMON_HARNESS_OPTIONS_H_
#define TRAJKIT_COMMON_HARNESS_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/flags.h"
#include "obs/timeseries.h"

namespace trajkit {

/// The shared flags every TrajKit executable (experiment harnesses,
/// microbenchmarks, the CLI) accepts, parsed in one place instead of
/// re-declared per harness:
///
///   --threads=N        bound the shared worker pool (0/absent keeps the
///                      process default, which honors TRAJKIT_THREADS)
///   --timing_json=F    machine-readable phase timings (bench::TimingJson)
///   --metrics_json=F   process metrics registry dump after the run
///   --metrics_prom=F   the same dump in Prometheus text exposition
///   --timeseries_json=F  time-series store dump (entry points that tick
///                      a TimeSeriesStore pass it to MetricsArtifacts)
///   --trace_json=F     request-trace dump (Chrome trace-event JSON for
///                      chrome://tracing / Perfetto); also enables the
///                      flight recorder for the run
///   --trace_test=F     deterministic byte-stable trace dump (rank
///                      timestamps); also enables the recorder
///   --trace_sample=N   head sampling: export every Nth trace (default 1)
///   --trace_buffer=M   per-thread flight-recorder capacity in events
///                      (default 8192)
struct HarnessOptions {
  int threads = 0;
  std::string timing_json;
  std::string metrics_json;
  std::string metrics_prom;
  std::string timeseries_json;
  std::string trace_json;
  std::string trace_test;
  uint64_t trace_sample = 1;
  size_t trace_buffer = 8192;

  /// Reads the shared flags from parsed flags.
  static HarnessOptions FromFlags(const Flags& flags);

  /// Parses the shared flags directly from argv and REMOVES the matched
  /// arguments (for mains that hand the remaining argv to another flag
  /// parser, e.g. google-benchmark, which rejects flags it does not know).
  static HarnessOptions FromArgv(int* argc, char** argv);

  /// Applies --threads (no-op for <= 0) and returns the effective pool
  /// budget. Call once, before any dataset/model work.
  int ApplyThreads() const;

  /// True when any --trace_* output was requested.
  bool tracing_requested() const {
    return !trace_json.empty() || !trace_test.empty();
  }

  /// Configures the global RequestTracer from the --trace_* flags (no-op
  /// when no trace output was requested — tracing stays disabled and the
  /// serve path is bit-identical to an untraced run). Call before serving.
  void ConfigureTracing() const;

  /// Writes --trace_json / --trace_test from the global tracer if
  /// requested. Returns false (with a stderr note) when a file cannot be
  /// written.
  bool DumpTrace() const;

  /// The metric-artifact flags as obs::WriteMetricsArtifacts options.
  /// `timeseries` wires the store of entry points that tick one (nullptr
  /// otherwise — --timeseries_json then fails loudly instead of writing
  /// nothing).
  obs::MetricsArtifactOptions MetricsArtifacts(
      const obs::TimeSeriesStore* timeseries = nullptr) const {
    obs::MetricsArtifactOptions artifacts;
    artifacts.metrics_json = metrics_json;
    artifacts.metrics_prom = metrics_prom;
    artifacts.timeseries_json = timeseries_json;
    artifacts.timeseries = timeseries;
    return artifacts;
  }
};

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_HARNESS_OPTIONS_H_
