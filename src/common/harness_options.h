#ifndef TRAJKIT_COMMON_HARNESS_OPTIONS_H_
#define TRAJKIT_COMMON_HARNESS_OPTIONS_H_

#include <string>

#include "common/flags.h"

namespace trajkit {

/// The flag trio every TrajKit executable (experiment harnesses,
/// microbenchmarks, the CLI) accepts, parsed in one place instead of
/// re-declared per harness:
///
///   --threads=N        bound the shared worker pool (0/absent keeps the
///                      process default, which honors TRAJKIT_THREADS)
///   --timing_json=F    machine-readable phase timings (bench::TimingJson)
///   --metrics_json=F   process metrics registry dump after the run
struct HarnessOptions {
  int threads = 0;
  std::string timing_json;
  std::string metrics_json;

  /// Reads the trio from parsed flags.
  static HarnessOptions FromFlags(const Flags& flags);

  /// Parses the trio directly from argv and REMOVES the matched arguments
  /// (for mains that hand the remaining argv to another flag parser, e.g.
  /// google-benchmark, which rejects flags it does not know).
  static HarnessOptions FromArgv(int* argc, char** argv);

  /// Applies --threads (no-op for <= 0) and returns the effective pool
  /// budget. Call once, before any dataset/model work.
  int ApplyThreads() const;
};

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_HARNESS_OPTIONS_H_
