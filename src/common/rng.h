#ifndef TRAJKIT_COMMON_RNG_H_
#define TRAJKIT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace trajkit {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**), seeded via
/// splitmix64. Every stochastic component in TrajKit (data generation,
/// bagging, CV shuffles, SGD) draws from an explicitly passed Rng so that
/// experiments are reproducible bit-for-bit from a seed.
class Rng {
 public:
  /// Seeds the stream; two Rng with the same seed produce identical output.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  /// Re-initializes the state from `seed`.
  void Reseed(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBounded(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached pair).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli with success probability p.
  bool NextBernoulli(double p);

  /// Exponential with the given mean. Precondition: mean > 0.
  double Exponential(double mean);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Precondition: at least one weight > 0.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent deterministic child stream; used to give each
  /// parallel component (tree, user, fold) its own generator.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_RNG_H_
