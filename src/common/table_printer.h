#ifndef TRAJKIT_COMMON_TABLE_PRINTER_H_
#define TRAJKIT_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace trajkit {

/// Formats experiment results as fixed-width ASCII tables, the way the
/// bench harnesses print the paper's rows. Columns are sized to content and
/// numeric-looking cells are right-aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it is padded or truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal places.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  /// Renders the table, including a rule under the header.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_TABLE_PRINTER_H_
