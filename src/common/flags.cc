#include "common/flags.h"

#include "common/strings.h"

namespace trajkit {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    // insert_or_assign instead of operator[]= : the latter trips a GCC 12
    // -Wrestrict false positive (PR 105651) under -Werror.
    if (eq == std::string_view::npos) {
      values_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      values_.insert_or_assign(std::string(arg.substr(0, eq)),
                               std::string(arg.substr(eq + 1)));
    }
  }
}

int Flags::GetInt(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return static_cast<int>(ParseInt64(it->second).value_or(fallback));
}

uint64_t Flags::GetUint64(const std::string& key, uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return static_cast<uint64_t>(ParseUint64(it->second).value_or(fallback));
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return ParseDouble(it->second).value_or(fallback);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

}  // namespace trajkit
