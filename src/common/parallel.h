#ifndef TRAJKIT_COMMON_PARALLEL_H_
#define TRAJKIT_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace trajkit {

/// Process-wide thread budget used by ParallelFor/ParallelMap. Resolution
/// order: the last SetMaxThreads value, else the TRAJKIT_THREADS environment
/// variable, else std::thread::hardware_concurrency(). Always >= 1.
int MaxThreads();

/// Sets the process-wide thread budget; n <= 0 restores the default
/// (TRAJKIT_THREADS env or hardware concurrency). The shared pool is resized
/// lazily. Precondition: no ParallelFor is in flight on any thread — call it
/// from setup code (flag parsing, test fixtures), not from workers.
void SetMaxThreads(int n);

/// Runs fn(i) for every i in [begin, end) on the shared thread pool, in
/// chunks of `grain` consecutive indices (grain 0 is treated as 1). The
/// calling thread participates, so the function also works — and cannot
/// deadlock — when invoked from inside another parallel region (e.g. a
/// cross-validation fold fitting a forest).
///
/// Determinism contract: chunk *scheduling* is nondeterministic, so fn must
/// only write to per-index state (slot i of a pre-sized output) and derive
/// any randomness from a per-index seed. Under that discipline results are
/// bit-identical at every thread count; every parallel call site in TrajKit
/// follows it (see DESIGN.md "Parallelism & determinism").
///
/// fn must not throw across this boundary as a matter of API style; if it
/// does, the first exception is captured and returned as an Internal status
/// (remaining chunks are skipped) instead of terminating the process.
Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn);

/// Maps fn over [0, n) and returns the results in index order (slot i holds
/// fn(i), regardless of which thread computed it). T only needs to be
/// movable, not default-constructible, so Result<U> values work; fallible
/// per-item work should return Result<U> and be unwrapped by the caller in
/// index order. Exceptions surface as an Internal status like ParallelFor.
template <typename T, typename Fn>
Result<std::vector<T>> ParallelMap(size_t n, size_t grain, Fn&& fn) {
  std::vector<std::optional<T>> slots(n);
  Status status = ParallelFor(
      0, n, grain, [&](size_t i) { slots[i].emplace(fn(i)); });
  if (!status.ok()) return status;
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_PARALLEL_H_
