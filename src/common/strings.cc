#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace trajkit {

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::ParseError("empty string is not a double");
  }
  std::string buf(stripped);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("not a double: '" + buf + "'");
  }
  return value;
}

Result<long long> ParseInt64(std::string_view text) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  std::string buf(stripped);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("not an integer: '" + buf + "'");
  }
  return value;
}

Result<unsigned long long> ParseUint64(std::string_view text) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::ParseError("empty string is not an unsigned integer");
  }
  if (stripped.front() == '-') {
    return Status::ParseError("negative value is not an unsigned integer: '" +
                              std::string(stripped) + "'");
  }
  std::string buf(stripped);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("not an unsigned integer: '" + buf + "'");
  }
  return value;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace trajkit
