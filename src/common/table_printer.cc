#include "common/table_printer.h"

#include <cctype>
#include <cstdio>
#include <iostream>

#include "common/strings.h"

namespace trajkit {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(StrPrintf("%.*f", precision, v));
  }
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row,
                        std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      const size_t pad = widths[c] - row[c].size();
      if (LooksNumeric(row[c])) {
        out.append(pad, ' ');
        out += row[c];
      } else {
        out += row[c];
        out.append(pad, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  render_row(header_, out);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) render_row(row, out);
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace trajkit
