#ifndef TRAJKIT_COMMON_STOPWATCH_H_
#define TRAJKIT_COMMON_STOPWATCH_H_

#include <chrono>

namespace trajkit {

/// Monotonic wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_STOPWATCH_H_
