#ifndef TRAJKIT_COMMON_STRINGS_H_
#define TRAJKIT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace trajkit {

/// Splits `text` on every occurrence of `sep`. Adjacent separators yield
/// empty fields; an empty input yields a single empty field (CSV semantics).
std::vector<std::string_view> SplitString(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True iff `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lower-casing (locale independent).
std::string ToLowerAscii(std::string_view text);

/// Parses a base-10 double; whole string must be consumed (modulo
/// surrounding whitespace).
Result<double> ParseDouble(std::string_view text);

/// Parses a base-10 64-bit signed integer; whole string must be consumed.
Result<long long> ParseInt64(std::string_view text);

/// Parses a base-10 64-bit unsigned integer; whole string must be consumed
/// and no leading '-' is accepted (strtoull would silently wrap it).
Result<unsigned long long> ParseUint64(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_STRINGS_H_
