#ifndef TRAJKIT_COMMON_CHECK_H_
#define TRAJKIT_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace trajkit::internal_check {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Used only via the TRAJKIT_CHECK* macros; invariant violations are
/// programmer errors, not recoverable conditions.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace trajkit::internal_check

/// Aborts with a diagnostic if `cond` is false. For invariants and documented
/// preconditions only — recoverable errors use Status/Result.
#define TRAJKIT_CHECK(cond)                                        \
  if (cond) {                                                      \
  } else /* NOLINT */                                              \
    ::trajkit::internal_check::CheckFailureStream(__FILE__, __LINE__, #cond)

#define TRAJKIT_CHECK_EQ(a, b) TRAJKIT_CHECK((a) == (b))
#define TRAJKIT_CHECK_NE(a, b) TRAJKIT_CHECK((a) != (b))
#define TRAJKIT_CHECK_LT(a, b) TRAJKIT_CHECK((a) < (b))
#define TRAJKIT_CHECK_LE(a, b) TRAJKIT_CHECK((a) <= (b))
#define TRAJKIT_CHECK_GT(a, b) TRAJKIT_CHECK((a) > (b))
#define TRAJKIT_CHECK_GE(a, b) TRAJKIT_CHECK((a) >= (b))

#endif  // TRAJKIT_COMMON_CHECK_H_
