#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/strings.h"
#include "obs/metrics.h"

namespace trajkit {

namespace {

/// Pool instrumentation, resolved once (leaked with the registry so worker
/// threads can record during process exit). Counters are relaxed atomics —
/// one add per chunk / invocation, negligible next to chunk bodies.
struct PoolMetrics {
  obs::Counter& invocations;
  obs::Counter& invocations_serial;
  obs::Counter& chunks;
  obs::Gauge& worker_idle_seconds;
  obs::Gauge& threads;

  static PoolMetrics& Get() {
    static PoolMetrics* metrics = new PoolMetrics{
        obs::MetricsRegistry::Global().GetCounter("parallel.invocations"),
        obs::MetricsRegistry::Global().GetCounter(
            "parallel.invocations_serial"),
        obs::MetricsRegistry::Global().GetCounter("parallel.chunks"),
        obs::MetricsRegistry::Global().GetGauge(
            "parallel.worker_idle_seconds"),
        obs::MetricsRegistry::Global().GetGauge("parallel.threads"),
    };
    return *metrics;
  }
};

int DefaultThreads() {
  if (const char* env = std::getenv("TRAJKIT_THREADS")) {
    const Result<long long> parsed = ParseInt64(env);
    if (parsed.ok() && parsed.value() > 0) {
      return static_cast<int>(parsed.value());
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One ParallelFor invocation. Chunks are claimed with an atomic cursor by
/// whichever thread (pool worker or the caller itself) gets there first;
/// callers block only on chunks that were actually claimed, which always
/// finish, so nested invocations cannot deadlock.
struct ParallelWork {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t chunks_total = 0;
  const std::function<void(size_t)>* fn = nullptr;

  std::atomic<size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t chunks_done = 0;  // Guarded by mu.
  std::string error;       // Guarded by mu; first failure wins.

  void RunChunks() {
    while (true) {
      const size_t offset = cursor.fetch_add(grain, std::memory_order_relaxed);
      const size_t chunk_begin = begin + offset;
      if (chunk_begin >= end) return;
      const size_t chunk_end = std::min(chunk_begin + grain, end);
      // After a failure the remaining chunks are claimed but not executed,
      // so the completion count still converges and waiters wake up.
      PoolMetrics::Get().chunks.Increment();
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          for (size_t i = chunk_begin; i < chunk_end; ++i) (*fn)(i);
        } catch (const std::exception& e) {
          RecordFailure(e.what());
        } catch (...) {
          RecordFailure("unknown exception in parallel region");
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (++chunks_done == chunks_total) done_cv.notify_all();
    }
  }

  void RecordFailure(const char* what) {
    std::lock_guard<std::mutex> lock(mu);
    if (!failed.load(std::memory_order_relaxed)) {
      error = what;
      failed.store(true, std::memory_order_relaxed);
    }
  }

  void AwaitCompletion() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [this] { return chunks_done == chunks_total; });
  }
};

/// Shared lazily-started fixed pool. Spawns MaxThreads()-1 workers on first
/// use (the submitting thread is the Nth lane); SetMaxThreads joins and
/// respawns. Workers only ever run ParallelWork claim loops, never block on
/// other tasks.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();  // Leaked: workers may
    return *pool;  // outlive static destruction order; they are detached
  }                // from process teardown concerns (no I/O at exit).

  int target_threads() {
    std::lock_guard<std::mutex> lock(mu_);
    return target_;
  }

  void set_target_threads(int n) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const int target = n > 0 ? n : DefaultThreads();
      if (target == target_) return;
      target_ = target;
      stop_epoch_++;
      queue_.clear();
      to_join.swap(workers_);
      cv_.notify_all();
    }
    for (std::thread& worker : to_join) worker.join();
  }

  void Submit(std::shared_ptr<ParallelWork> work) {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty() && target_ > 1) {
      workers_.reserve(static_cast<size_t>(target_ - 1));
      for (int i = 0; i < target_ - 1; ++i) {
        workers_.emplace_back(&ThreadPool::WorkerLoop, this, stop_epoch_);
      }
    }
    queue_.push_back(std::move(work));
    cv_.notify_one();
  }

 private:
  ThreadPool() : target_(DefaultThreads()) {}

  void WorkerLoop(uint64_t epoch) {
    while (true) {
      std::shared_ptr<ParallelWork> work;
      {
        std::unique_lock<std::mutex> lock(mu_);
        const auto wait_start = std::chrono::steady_clock::now();
        cv_.wait(lock, [&] {
          return stop_epoch_ != epoch || !queue_.empty();
        });
        PoolMetrics::Get().worker_idle_seconds.Add(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wait_start)
                .count());
        if (stop_epoch_ != epoch) return;
        work = std::move(queue_.front());
        queue_.pop_front();
      }
      work->RunChunks();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ParallelWork>> queue_;
  std::vector<std::thread> workers_;
  int target_;
  uint64_t stop_epoch_ = 0;
};

}  // namespace

int MaxThreads() { return ThreadPool::Global().target_threads(); }

void SetMaxThreads(int n) { ThreadPool::Global().set_target_threads(n); }

Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn) {
  if (end <= begin) return Status::Ok();
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t chunks = (n + grain - 1) / grain;
  const int threads = MaxThreads();
  if (threads <= 1 || chunks <= 1) {
    PoolMetrics::Get().invocations_serial.Increment();
    // Serial fast path: same exception contract, no pool involvement.
    try {
      for (size_t i = begin; i < end; ++i) fn(i);
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    } catch (...) {
      return Status::Internal("unknown exception in parallel region");
    }
    return Status::Ok();
  }

  PoolMetrics::Get().invocations.Increment();
  PoolMetrics::Get().threads.Set(threads);
  auto work = std::make_shared<ParallelWork>();
  work->begin = begin;
  work->end = end;
  work->grain = grain;
  work->chunks_total = chunks;
  work->fn = &fn;

  // One helper per chunk beyond the one the caller will run itself, capped
  // by the worker budget. Helpers that wake up after all chunks are claimed
  // exit immediately, so over-submission is harmless.
  const size_t helpers = std::min<size_t>(
      static_cast<size_t>(threads - 1), chunks - 1);
  ThreadPool& pool = ThreadPool::Global();
  for (size_t h = 0; h < helpers; ++h) pool.Submit(work);
  work->RunChunks();
  work->AwaitCompletion();

  if (work->failed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(work->mu);
    return Status::Internal(work->error);
  }
  return Status::Ok();
}

}  // namespace trajkit
