#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace trajkit {

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

Backoff::Backoff(RetryOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  options_.initial_backoff_seconds =
      std::max(options_.initial_backoff_seconds, 0.0);
  options_.max_backoff_seconds =
      std::max(options_.max_backoff_seconds, options_.initial_backoff_seconds);
  options_.multiplier = std::max(options_.multiplier, 1.0);
  options_.jitter = std::clamp(options_.jitter, 0.0, 1.0);
  next_base_ = options_.initial_backoff_seconds;
}

double Backoff::NextDelaySeconds() {
  const double base = std::min(next_base_, options_.max_backoff_seconds);
  next_base_ = std::min(next_base_ * options_.multiplier,
                        options_.max_backoff_seconds);
  ++attempts_;
  // Jitter draws are consumed even when jitter == 0 so that toggling the
  // knob does not shift the rest of a seeded stream.
  const double u = rng_.NextDouble();
  return base * (1.0 - options_.jitter * u);
}

void SleepForSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace trajkit
