#ifndef TRAJKIT_COMMON_FLAGS_H_
#define TRAJKIT_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace trajkit {

/// Minimal command-line parser for the experiment harnesses and the CLI:
/// recognizes "--key=value" and bare "--key" (value "1"); anything not
/// starting with "--" is collected as a positional argument.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Typed lookups with fallbacks (malformed values fall back too).
  int GetInt(const std::string& key, int fallback) const;
  /// Full-width unsigned lookup for 64-bit seeds: GetInt would narrow
  /// through int and mangle seeds above 2^31-1.
  uint64_t GetUint64(const std::string& key, uint64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  bool Has(const std::string& key) const;

  /// Non-flag arguments in order (e.g. the CLI subcommand).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace trajkit

#endif  // TRAJKIT_COMMON_FLAGS_H_
